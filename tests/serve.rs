//! End-to-end tests of the `ipcp serve` daemon: concurrent clients get
//! responses byte-identical to one-shot CLI output, tenants share one
//! disk cache with exactly-predicted traffic, the byte budget evicts
//! LRU sessions, admission control sheds load without wedging the
//! control plane, and shutdown drains in-flight work.

use ipcp::cli::{execute, parse_args};
use ipcp::core::serve::{spawn, Client, ServeConfig, OVERLOADED};
use std::path::PathBuf;

const HEAT: &str = "\
global n
proc init()
  n = 64
end
proc compute(k)
  print(n + k)
end
main
  call init()
  call compute(8)
end
";

const DISPATCH: &str = "\
proc scale(x, f)
  print(x * f)
end
proc twice(y)
  call scale(y, 2)
end
main
  call twice(10)
  call twice(11)
end
";

fn one_shot(argv: &[&str], source: &str) -> String {
    let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
    let cli = parse_args(&argv).expect("golden argv parses");
    execute(&cli, source).expect("golden run succeeds")
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ipcp_serve_{tag}_{}", std::process::id()))
}

/// The value of a `name{labels} value` metric line in Prometheus text.
fn metric(text: &str, line_start: &str) -> Option<u64> {
    text.lines()
        .find(|l| l.starts_with(line_start) && l.as_bytes().get(line_start.len()) == Some(&b' '))
        .and_then(|l| l[line_start.len()..].trim().parse().ok())
}

#[test]
fn sixteen_concurrent_clients_get_one_shot_identical_bytes() {
    let socket = temp_path("identity.sock");
    let golden_analyze = one_shot(&["analyze", "heat.mf"], HEAT);
    let golden_cond = one_shot(&["analyze", "heat.mf", "--level", "cond"], HEAT);
    let golden_explain = one_shot(&["explain", "heat.mf", "compute"], HEAT);
    let golden_dispatch = one_shot(&["analyze", "dispatch.mf"], DISPATCH);

    let handle = spawn(ServeConfig::new(&socket)).expect("daemon starts");
    std::thread::scope(|scope| {
        for client_idx in 0..16u64 {
            let (socket, ga, gc, ge, gd) = (
                &socket,
                &golden_analyze,
                &golden_cond,
                &golden_explain,
                &golden_dispatch,
            );
            scope.spawn(move || {
                let mut client = Client::connect(socket).expect("connects");
                let out = client
                    .call(client_idx, "analyze", &[("source", HEAT)])
                    .expect("transport")
                    .into_result()
                    .expect("analyze ok");
                assert_eq!(out, *ga, "client {client_idx}: analyze drifted");
                let out = client
                    .call(
                        client_idx,
                        "analyze",
                        &[("source", HEAT), ("level", "cond")],
                    )
                    .expect("transport")
                    .into_result()
                    .expect("cond ok");
                assert_eq!(out, *gc, "client {client_idx}: cond analyze drifted");
                let out = client
                    .call(
                        client_idx,
                        "explain",
                        &[("source", HEAT), ("proc", "compute")],
                    )
                    .expect("transport")
                    .into_result()
                    .expect("explain ok");
                assert_eq!(out, *ge, "client {client_idx}: explain drifted");
                let out = client
                    .call(client_idx, "analyze", &[("source", DISPATCH)])
                    .expect("transport")
                    .into_result()
                    .expect("dispatch ok");
                assert_eq!(out, *gd, "client {client_idx}: second tenant drifted");
            });
        }
    });
    let mut control = Client::connect(&socket).expect("connects");
    control
        .call(99, "shutdown", &[])
        .expect("transport")
        .into_result()
        .expect("shutdown ok");
    let summary = handle.join().expect("clean exit");
    assert_eq!(summary.requests, 16 * 4 + 1, "{summary:?}");
    assert_eq!(summary.overloaded, 0, "{summary:?}");
    assert_eq!(summary.tenants, 2, "{summary:?}");
    assert!(!socket.exists(), "socket file must be removed on shutdown");
}

/// The concurrent-tenant stress test: N threads interleave analyze,
/// explain, and why over two tenants sharing one disk cache. Warm
/// requests recompute nothing (the first-computation miss count does
/// not grow past warm-up) and the shared cache's stats add up exactly:
/// one miss + one write per distinct outcome, a hit for every `why`-
/// driven consult, and zero quarantines without injected faults.
#[test]
fn concurrent_tenants_share_the_disk_cache_without_recomputation() {
    let socket = temp_path("tenants.sock");
    let cache_dir = temp_path("tenants.cache");
    let _ = std::fs::remove_dir_all(&cache_dir);
    let golden_heat = one_shot(&["analyze", "heat.mf"], HEAT);
    let golden_dispatch = one_shot(&["analyze", "dispatch.mf"], DISPATCH);
    let golden_explain = one_shot(&["explain", "heat.mf", "compute"], HEAT);

    let mut config = ServeConfig::new(&socket);
    config.cache_dir = Some(cache_dir.clone());
    let handle = spawn(config).expect("daemon starts");

    // Warm-up: one analyze per tenant populates the memo, the shared
    // session, and the disk entry (one miss + one write each).
    let mut warm = Client::connect(&socket).expect("connects");
    for source in [HEAT, DISPATCH] {
        warm.call(1, "analyze", &[("source", source)])
            .expect("transport")
            .into_result()
            .expect("warm-up ok");
    }
    let after_warmup = warm
        .call(2, "metrics", &[])
        .expect("transport")
        .into_result()
        .expect("metrics ok");
    let warm_first = metric(
        &after_warmup,
        "ipcp_serve_session_miss_reason_total{reason=\"first-computation\"}",
    )
    .expect("warm-up cold runs report first-computation misses");
    assert!(warm_first > 0, "{after_warmup}");

    const THREADS: u64 = 8;
    const ITERS: u64 = 3;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let (socket, gh, gd, ge) = (&socket, &golden_heat, &golden_dispatch, &golden_explain);
            scope.spawn(move || {
                let mut client = Client::connect(socket).expect("connects");
                for i in 0..ITERS {
                    let id = t * 100 + i;
                    let out = client
                        .call(id, "analyze", &[("source", HEAT)])
                        .expect("transport")
                        .into_result()
                        .expect("analyze ok");
                    assert_eq!(out, *gh);
                    let out = client
                        .call(id, "analyze", &[("source", DISPATCH)])
                        .expect("transport")
                        .into_result()
                        .expect("analyze ok");
                    assert_eq!(out, *gd);
                    let out = client
                        .call(id, "explain", &[("source", HEAT), ("proc", "compute")])
                        .expect("transport")
                        .into_result()
                        .expect("explain ok");
                    assert_eq!(out, *ge);
                    for source in [HEAT, DISPATCH] {
                        let why = client
                            .call(id, "why", &[("source", source)])
                            .expect("transport")
                            .into_result()
                            .expect("why ok");
                        // A warm consult recomputes nothing; `why` says so.
                        assert!(why.contains("up to date"), "{why}");
                    }
                }
            });
        }
    });

    let metrics = warm
        .call(3, "metrics", &[])
        .expect("transport")
        .into_result()
        .expect("metrics ok");
    // Zero first-computation misses after warm-up: the counter froze.
    let stress_first = metric(
        &metrics,
        "ipcp_serve_session_miss_reason_total{reason=\"first-computation\"}",
    )
    .expect("counter still exposed");
    assert_eq!(
        stress_first, warm_first,
        "warm requests recomputed:\n{metrics}"
    );
    // Exactly-predicted shared-cache traffic: one miss + one write per
    // distinct outcome (2 tenants × 1 level), one hit per `why`-driven
    // consult, and nothing quarantined or double-counted.
    let disk = |op: &str| {
        metric(
            &metrics,
            &format!("ipcp_serve_diskcache_operations_total{{op=\"{op}\"}}"),
        )
        .unwrap_or_else(|| panic!("missing disk counter `{op}`:\n{metrics}"))
    };
    assert_eq!(disk("misses"), 2, "{metrics}");
    assert_eq!(disk("writes"), 2, "{metrics}");
    assert_eq!(disk("hits"), THREADS * ITERS * 2, "{metrics}");
    assert_eq!(disk("quarantined"), 0, "{metrics}");
    assert_eq!(disk("write_errors"), 0, "{metrics}");
    // The latency histograms cover every op that ran.
    for op in ["analyze", "explain", "why", "metrics"] {
        assert!(
            metrics.contains(&format!(
                "ipcp_serve_request_latency_microseconds{{op=\"{op}\",quantile=\"0.5\"}}"
            )),
            "no p50 for `{op}`:\n{metrics}"
        );
    }

    warm.call(4, "shutdown", &[])
        .expect("transport")
        .into_result()
        .expect("shutdown ok");
    let summary = handle.join().expect("clean exit");
    assert_eq!(summary.overloaded, 0, "{summary:?}");
    assert_eq!(summary.tenants, 2, "{summary:?}");
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn tenant_byte_budget_evicts_lru_sessions_without_changing_output() {
    let socket = temp_path("evict.sock");
    let golden_heat = one_shot(&["analyze", "heat.mf"], HEAT);
    let golden_dispatch = one_shot(&["analyze", "dispatch.mf"], DISPATCH);
    let mut config = ServeConfig::new(&socket);
    // A 1-byte budget keeps only the tenant just touched resident: every
    // alternation evicts the other session and recomputes from scratch.
    config.max_tenant_bytes = Some(1);
    let handle = spawn(config).expect("daemon starts");
    let mut client = Client::connect(&socket).expect("connects");
    for round in 0..3u64 {
        let out = client
            .call(round, "analyze", &[("source", HEAT)])
            .expect("transport")
            .into_result()
            .expect("analyze ok");
        assert_eq!(out, golden_heat, "round {round}");
        let out = client
            .call(round, "analyze", &[("source", DISPATCH)])
            .expect("transport")
            .into_result()
            .expect("analyze ok");
        assert_eq!(out, golden_dispatch, "round {round}");
    }
    client
        .call(9, "shutdown", &[])
        .expect("transport")
        .into_result()
        .expect("shutdown ok");
    let summary = handle.join().expect("clean exit");
    // Six admissions alternating two tenants: every one after the first
    // evicts its predecessor.
    assert_eq!(summary.evictions, 5, "{summary:?}");
    assert_eq!(summary.tenants, 1, "{summary:?}");
}

#[test]
fn admission_control_sheds_analysis_load_but_answers_control_ops() {
    let socket = temp_path("admission.sock");
    let mut config = ServeConfig::new(&socket);
    // Drain mode: no analysis capacity at all.
    config.max_inflight = 0;
    let handle = spawn(config).expect("daemon starts");
    let mut client = Client::connect(&socket).expect("connects");
    for op in ["analyze", "why"] {
        let err = client
            .call(1, op, &[("source", HEAT)])
            .expect("transport")
            .into_result()
            .expect_err("must be rejected");
        assert_eq!(err, OVERLOADED);
    }
    // The control plane stays responsive while saturated.
    let metrics = client
        .call(2, "metrics", &[])
        .expect("transport")
        .into_result()
        .expect("metrics ok");
    assert_eq!(metric(&metrics, "ipcp_serve_overloaded_total"), Some(2));
    client
        .call(3, "shutdown", &[])
        .expect("transport")
        .into_result()
        .expect("shutdown ok");
    let summary = handle.join().expect("clean exit");
    assert_eq!(summary.overloaded, 2, "{summary:?}");
    assert_eq!(summary.tenants, 0, "{summary:?}");
}

/// A shutdown racing a slow analyze must drain: the in-flight request
/// completes and its response reaches the client intact.
#[test]
fn shutdown_drains_an_inflight_analyze() {
    let socket = temp_path("drain.sock");
    let program = ipcp::suite::generate_scale(&ipcp::suite::ScaleSpec::with_procs(400, 7)).source;
    let golden = one_shot(&["analyze", "big.mf"], &program);
    let handle = spawn(ServeConfig::new(&socket)).expect("daemon starts");

    let mut slow = Client::connect(&socket).expect("connects");
    let mut control = Client::connect(&socket).expect("connects");
    std::thread::scope(|scope| {
        let worker = scope.spawn(move || {
            slow.call(1, "analyze", &[("source", &program)])
                .expect("transport survives the shutdown")
                .into_result()
                .expect("analyze ok")
        });
        // Let the analyze land server-side, then pull the plug.
        std::thread::sleep(std::time::Duration::from_millis(50));
        control
            .call(2, "shutdown", &[])
            .expect("transport")
            .into_result()
            .expect("shutdown ok");
        let out = worker.join().expect("worker thread");
        assert_eq!(out, golden, "drained response drifted from one-shot output");
    });
    let summary = handle.join().expect("clean exit");
    assert_eq!(summary.requests, 2, "{summary:?}");
}

#[test]
fn protocol_errors_answer_without_killing_the_connection() {
    let socket = temp_path("errors.sock");
    let handle = spawn(ServeConfig::new(&socket)).expect("daemon starts");
    let mut client = Client::connect(&socket).expect("connects");

    let err = client
        .call_raw("this is not json")
        .expect("transport")
        .to_string();
    assert!(err.contains("bad request"), "{err}");
    let err = client
        .call(1, "transmogrify", &[("source", HEAT)])
        .expect("transport")
        .into_result()
        .expect_err("unknown op");
    assert!(err.contains("unknown op"), "{err}");
    let err = client
        .call(2, "analyze", &[("source", HEAT), ("level", "warp")])
        .expect("transport")
        .into_result()
        .expect_err("unknown level");
    assert!(err.contains("unknown level"), "{err}");
    let err = client
        .call(3, "analyze", &[("source", "proc oops(\nend\n")])
        .expect("transport")
        .into_result()
        .expect_err("diagnostics");
    assert!(!err.is_empty());
    // The connection survives every error above.
    let out = client
        .call(4, "analyze", &[("source", HEAT)])
        .expect("transport")
        .into_result()
        .expect("analyze ok");
    assert_eq!(out, one_shot(&["analyze", "heat.mf"], HEAT));
    client
        .call(5, "shutdown", &[])
        .expect("transport")
        .into_result()
        .expect("shutdown ok");
    handle.join().expect("clean exit");
}
