//! Acceptance scenario for the incrementality audit: on a ~1000-procedure
//! generated corpus, editing one procedure's body and re-analyzing against
//! the persistent cache must attribute every recomputed phase to exactly
//! that procedure's closure — zero `first computation` misses anywhere —
//! and a second run must report everything up to date.

use ipcp::cli::{execute, parse_args};
use ipcp::suite::gen::{generate_scale, ScaleSpec};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ipcp-audit-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn argv(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

/// Replaces the single body line of `proc {name}()` with `replacement`.
fn edit_proc_body(source: &str, name: &str, replacement: &str) -> String {
    let marker = format!("proc {name}()\n");
    let at = source.find(&marker).expect("proc present in corpus") + marker.len();
    let line_end = at + source[at..].find('\n').expect("body line terminated") + 1;
    format!("{}{replacement}\n{}", &source[..at], &source[line_end..])
}

/// The recomputed-unit names listed under one `phase {name}:` section.
fn phase_entries(report: &str, phase: &str) -> Vec<String> {
    let header = format!("phase {phase}:");
    let mut out = Vec::new();
    let mut inside = false;
    for line in report.lines() {
        if line.starts_with("phase ") {
            inside = line.starts_with(&header);
            continue;
        }
        if inside && line.starts_with("  ") {
            if let Some((name, _)) = line.trim_start().split_once(':') {
                out.push(name.to_string());
            }
        }
    }
    out
}

#[test]
fn one_proc_edit_attributes_exactly_its_closure() {
    let dir = temp_dir("edit");
    let dir_str = dir.to_string_lossy().into_owned();
    let base = generate_scale(&ScaleSpec::with_procs(1000, 7)).source;

    // Cold run populates the cache and writes the audit ledger.
    let analyze = parse_args(&argv(&["analyze", "scale.mf", "--cache-dir", &dir_str])).unwrap();
    execute(&analyze, &base).unwrap();

    // Edit exactly one leaf procedure's body. Its closure is itself plus
    // its only caller, `main`.
    let edited = edit_proc_body(&base, "rdr0", "  print(424242)");
    assert_ne!(base, edited);

    let why = parse_args(&argv(&["why", "scale.mf", "--cache-dir", &dir_str])).unwrap();
    let out = execute(&why, &edited).unwrap();

    assert!(out.contains("changed procedures: rdr0\n"), "{out}");
    assert!(
        !out.contains("first computation"),
        "an incremental edit must produce zero first-computation misses:\n{out}"
    );
    assert!(out.contains("input changed (procs: rdr0)"), "{out}");
    // Every proc-scoped phase recomputes exactly the edited closure.
    for phase in ["ssa", "retjf", "symvals", "forward-jf", "dce"] {
        let mut entries = phase_entries(&out, phase);
        entries.sort();
        assert_eq!(
            entries,
            ["main", "rdr0"],
            "phase {phase} must recompute exactly the edited closure:\n{out}"
        );
    }
    // Program-scoped phases attribute their single unit to the edit too.
    for phase in ["callgraph", "modref", "solve", "subst"] {
        assert_eq!(
            phase_entries(&out, phase),
            [phase],
            "program-scoped phase {phase} must recompute once:\n{out}"
        );
    }

    // `why` advanced the ledger and repopulated the cache, so a second
    // run over the same source is served entirely from disk.
    let again = execute(&why, &edited).unwrap();
    assert!(!again.contains("changed procedures"), "{again}");
    assert!(!again.contains("input changed"), "{again}");
    assert!(!again.contains("first computation"), "{again}");
    assert!(again.contains("0 recomputed"), "{again}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn why_first_run_and_filters() {
    let dir = temp_dir("filters");
    let dir_str = dir.to_string_lossy().into_owned();
    let base = generate_scale(&ScaleSpec::with_procs(40, 11)).source;

    // A first run under a fresh label is all first-computation.
    let why = parse_args(&argv(&["why", "small.mf", "--cache-dir", &dir_str])).unwrap();
    let cold = execute(&why, &base).unwrap();
    assert!(cold.contains("first analysis under this label"), "{cold}");
    assert!(cold.contains("first computation"), "{cold}");

    let edited = edit_proc_body(&base, "rdr1", "  print(7)");

    // A phase filter narrows the report to that phase's full list.
    let ssa_only = parse_args(&argv(&["why", "small.mf", "ssa", "--cache-dir", &dir_str])).unwrap();
    let out = execute(&ssa_only, &edited).unwrap();
    assert!(out.contains("phase ssa:"), "{out}");
    for phase in ["callgraph", "modref", "solve", "subst", "diskcache"] {
        assert!(
            !out.contains(&format!("phase {phase}:")),
            "phase filter must hide {phase}:\n{out}"
        );
    }
    let mut entries = phase_entries(&out, "ssa");
    entries.sort();
    assert_eq!(entries, ["main", "rdr1"], "{out}");

    // A proc filter keeps only phases that recomputed that unit; after
    // the run above the ledger is current, so nothing is recomputed.
    let proc_only =
        parse_args(&argv(&["why", "small.mf", "rdr1", "--cache-dir", &dir_str])).unwrap();
    let out = execute(&proc_only, &edited).unwrap();
    assert!(out.contains("nothing recomputed for `rdr1`"), "{out}");

    let _ = std::fs::remove_dir_all(&dir);
}
