//! Persistent disk-cache properties.
//!
//! Two invariants anchor the crash-safe cache:
//!
//! 1. **Warm-start byte identity** — an analysis served from a reopened
//!    on-disk cache is bit-identical (over the wire encoding of the full
//!    [`ipcp::core::AnalysisOutcome`]) to both the cold run that
//!    populated it and a cache-less run, at any worker count, and the
//!    Table-2 configuration sweep survives a reopen unchanged.
//! 2. **Faults degrade to cold** — under every [`IoFaultKind`], at every
//!    eligible trigger point, the analysis neither panics nor changes
//!    its answer; corrupt entries are quarantined with the damage
//!    visible in the cache's stats and robustness ledger, and the cache
//!    self-heals on the recovery pass.

use ipcp::core::{
    AnalysisConfig, AnalysisSession, DiskCache, FaultyIo, IoFaultInjector, IoFaultKind,
};
use ipcp::ir::codec::encode_to_vec;
use ipcp::JumpFunctionKind;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-unique, sequence-numbered scratch directory (tests in one
/// binary run concurrently; a shared dir would cross-contaminate).
static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ipcp-cache-prop-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open(dir: &Path) -> Arc<DiskCache> {
    Arc::new(DiskCache::open(dir).expect("open cache"))
}

fn cached_session(ir: &ipcp::ir::Program, cache: &Arc<DiskCache>) -> AnalysisSession {
    let mut session = AnalysisSession::new(ir);
    session.attach_disk_cache(Arc::clone(cache));
    session
}

/// The Table-2 axes: every jump-function kind, with and without return
/// jump functions. Eight distinct cache keys per program.
fn sweep_configs() -> Vec<AnalysisConfig> {
    let mut configs = Vec::new();
    for kind in JumpFunctionKind::ALL {
        for rjf in [true, false] {
            configs.push(AnalysisConfig {
                jump_function: kind,
                return_jump_functions: rjf,
                ..AnalysisConfig::default()
            });
        }
    }
    configs
}

// ---- random program generation -------------------------------------------

/// Small random programs with enough interprocedural structure (a leaf
/// procedure, a function, globals, an optional conflicting second call)
/// that outcomes genuinely vary across draws and configurations.
fn small_program() -> impl Strategy<Value = String> {
    (
        -9i64..10,       // global initializer
        -20i64..21,      // leaf offset
        -5i64..6,        // function multiplier
        -20i64..21,      // call argument
        -20i64..21,      // function argument
        prop::bool::ANY, // second call with a different argument?
        prop::bool::ANY, // reassign the global in main?
    )
        .prop_map(|(g, k, m, a, b, clash, setg)| {
            let second = if clash {
                format!("  call leaf({})\n", a + 1)
            } else {
                String::new()
            };
            let set_global = if setg {
                format!("  ga = {}\n", g + 2)
            } else {
                String::new()
            };
            format!(
                "global ga = {g}\n\
                 proc leaf(v)\n  print(v + {k})\n  print(ga)\nend\n\
                 func f0(x)\n  return x * {m}\nend\n\
                 main\n{set_global}  va = f0({b})\n  call leaf({a})\n{second}  print(va)\nend\n"
            )
        })
}

// ---- warm-start byte identity --------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Cold populate, reopen, warm re-analyze: the outcome's wire bytes
    /// never move, with or without fuel, at 1 and 4 workers — and the
    /// cache traffic is exactly what the metering policy predicts
    /// (metered runs bypass the disk entirely).
    #[test]
    fn warm_start_is_byte_identical_to_cold(
        src in small_program(),
        jobs in proptest::sample::select(vec![1usize, 4]),
        fuel in proptest::sample::select(vec![None, Some(300u64)]),
    ) {
        let ir = ipcp::ir::compile_to_ir(&src).expect("generated programs compile");
        let config = AnalysisConfig { jobs, fuel, ..AnalysisConfig::default() };
        let plain_bytes = encode_to_vec(&AnalysisSession::new(&ir).analyze(&config));
        let prov_before = ipcp::core::analyze_provenance(&ir, &AnalysisConfig::default())
            .attribution_table();

        let dir = temp_dir("warm");
        let cold_cache = open(&dir);
        let cold = cached_session(&ir, &cold_cache).analyze(&config);
        prop_assert_eq!(encode_to_vec(&cold), plain_bytes.clone(), "cold vs plain");

        // Fresh session, fresh cache handle, same directory.
        let warm_cache = open(&dir);
        let warm = cached_session(&ir, &warm_cache).analyze(&config);
        prop_assert_eq!(encode_to_vec(&warm), plain_bytes, "warm vs plain");

        let (cold_stats, warm_stats) = (cold_cache.stats(), warm_cache.stats());
        if fuel.is_none() {
            prop_assert_eq!(cold_stats.misses, 1);
            prop_assert_eq!(cold_stats.writes, 1);
            prop_assert_eq!(warm_stats.hits, 1);
            prop_assert_eq!(warm_stats.misses, 0);
        } else {
            // Metered budgets route through the reference pipeline and
            // must leave no disk traffic at all.
            prop_assert_eq!(cold_stats.writes + cold_stats.misses, 0);
            prop_assert_eq!(warm_stats.hits + warm_stats.misses, 0);
        }

        // Attaching a disk cache never perturbs independent analyses
        // over the same IR.
        let prov_after = ipcp::core::analyze_provenance(&ir, &AnalysisConfig::default())
            .attribution_table();
        prop_assert_eq!(prov_after, prov_before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The full 8-configuration Table-2 sweep produces identical
    /// substitution counts cold, warm across a reopen, and cache-less —
    /// and the warm pass is pure hit traffic.
    #[test]
    fn table2_sweep_counts_survive_reopen(src in small_program()) {
        let ir = ipcp::ir::compile_to_ir(&src).expect("generated programs compile");
        let configs = sweep_configs();
        let plain_session = AnalysisSession::new(&ir);
        let want: Vec<usize> = configs
            .iter()
            .map(|c| plain_session.analyze(c).substitutions.total)
            .collect();

        let dir = temp_dir("sweep");
        let cold_cache = open(&dir);
        let cold_session = cached_session(&ir, &cold_cache);
        let cold: Vec<usize> = configs
            .iter()
            .map(|c| cold_session.analyze(c).substitutions.total)
            .collect();
        prop_assert_eq!(&cold, &want, "cold sweep vs plain");

        let warm_cache = open(&dir);
        let warm_session = cached_session(&ir, &warm_cache);
        let warm: Vec<usize> = configs
            .iter()
            .map(|c| warm_session.analyze(c).substitutions.total)
            .collect();
        prop_assert_eq!(&warm, &want, "warm sweep vs plain");
        prop_assert_eq!(warm_cache.stats().hits, configs.len() as u64);
        prop_assert_eq!(warm_cache.stats().misses, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ---- deterministic fault-injection campaign ------------------------------

/// Every fault kind × every eligible trigger position × four programs ×
/// a four-configuration sweep, cold under the fault and warm through the
/// real filesystem: 768 fault-exposed analyses (the issue's 500-run
/// floor), zero panics, zero wrong results, and the damage always lands
/// in the stats/robustness ledger of the cache that absorbed it.
#[test]
fn fault_campaign_every_kind_degrades_to_cold() {
    let programs = [
        "global ga = 3\nproc leaf(v)\n  print(v + ga)\nend\nmain\n  call leaf(4)\nend\n",
        "func sq(x)\n  return x * x\nend\nmain\n  va = sq(7)\n  print(va)\nend\n",
        "global n\nproc init()\n  n = 64\nend\nproc use(k)\n  print(n + k)\nend\n\
         main\n  call init()\n  call use(8)\nend\n",
        "proc a(v)\n  call b(v + 1)\nend\nproc b(v)\n  print(v * 2)\nend\n\
         main\n  call a(5)\n  call a(5)\nend\n",
    ];
    // Four distinct cache keys per pass: four eligible writes and four
    // eligible renames, so triggers 1..=4 always find their op.
    let configs: Vec<AnalysisConfig> = JumpFunctionKind::ALL
        .into_iter()
        .map(|kind| AnalysisConfig {
            jump_function: kind,
            ..AnalysisConfig::default()
        })
        .collect();

    let mut iterations = 0u64;
    for (pi, src) in programs.iter().enumerate() {
        let ir = ipcp::ir::compile_to_ir(src).expect("campaign programs compile");
        let plain = AnalysisSession::new(&ir);
        let golden: Vec<Vec<u8>> = configs
            .iter()
            .map(|c| encode_to_vec(&plain.analyze(c)))
            .collect();

        for kind in IoFaultKind::ALL {
            for trigger in 1..=4u64 {
                let dir = temp_dir(&format!("campaign-{pi}"));

                // Cold pass with the fault armed.
                let injector = Arc::new(IoFaultInjector::new(kind, trigger));
                let faulty = Box::new(FaultyIo::new(Arc::clone(&injector)));
                let cold_cache =
                    Arc::new(DiskCache::with_io(&dir, faulty).expect("open faulty cache"));
                let cold_session = cached_session(&ir, &cold_cache);
                for (c, want) in configs.iter().zip(&golden) {
                    iterations += 1;
                    let got = encode_to_vec(&cold_session.analyze(c));
                    assert_eq!(&got, want, "cold wrong under {kind} @{trigger} (prog {pi})");
                }
                assert_eq!(
                    injector.injected(),
                    1,
                    "{kind} @{trigger} never fired (prog {pi})"
                );
                let cold_stats = cold_cache.stats();
                match kind {
                    // Errors surface at store time, in the cold ledger.
                    IoFaultKind::Enospc | IoFaultKind::Eacces | IoFaultKind::RenameFail => {
                        assert_eq!(cold_stats.write_errors, 1, "{kind} @{trigger}");
                        assert!(
                            !cold_cache.robustness().anomalies.is_empty(),
                            "{kind} @{trigger}: store failure left no anomaly"
                        );
                    }
                    // Silent corruption publishes a bad entry; it is only
                    // discoverable on the next read.
                    IoFaultKind::TornWrite | IoFaultKind::Truncate | IoFaultKind::BitFlip => {
                        assert_eq!(cold_stats.write_errors, 0, "{kind} @{trigger}");
                    }
                }

                // Warm pass through the real filesystem: whatever the
                // fault left behind, the answers match cold exactly.
                let warm_cache = open(&dir);
                let warm_session = cached_session(&ir, &warm_cache);
                for (c, want) in configs.iter().zip(&golden) {
                    iterations += 1;
                    let got = encode_to_vec(&warm_session.analyze(c));
                    assert_eq!(&got, want, "warm wrong under {kind} @{trigger} (prog {pi})");
                }
                let warm_stats = warm_cache.stats();
                assert_eq!(
                    warm_stats.hits + warm_stats.misses,
                    configs.len() as u64,
                    "{kind} @{trigger}"
                );
                match kind {
                    // The corrupt entry is quarantined, recorded, and
                    // recomputed; the other three entries hit.
                    IoFaultKind::TornWrite | IoFaultKind::Truncate | IoFaultKind::BitFlip => {
                        assert_eq!(warm_stats.quarantined, 1, "{kind} @{trigger}");
                        assert_eq!(warm_stats.misses, 1, "{kind} @{trigger}");
                        assert!(
                            !warm_cache.robustness().anomalies.is_empty(),
                            "{kind} @{trigger}: quarantine left no anomaly"
                        );
                    }
                    // The failed store simply never published: one plain
                    // miss, nothing to quarantine.
                    IoFaultKind::Enospc | IoFaultKind::Eacces | IoFaultKind::RenameFail => {
                        assert_eq!(warm_stats.quarantined, 0, "{kind} @{trigger}");
                        assert_eq!(warm_stats.misses, 1, "{kind} @{trigger}");
                    }
                }

                // The warm pass self-healed the cache: every entry now
                // validates and nothing is left to quarantine.
                let verify = open(&dir).verify();
                assert_eq!(verify.valid, configs.len() as u64, "{kind} @{trigger}");
                assert_eq!(verify.quarantined, 0, "{kind} @{trigger}");
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
    assert!(
        iterations >= 500,
        "campaign ran only {iterations} fault-exposed analyses"
    );
}
