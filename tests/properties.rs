//! Property-based tests over randomly generated Minifor programs.
//!
//! The generator below produces arbitrary well-typed programs (globals,
//! two subroutines, one function, and a main, with nested control flow,
//! arrays, reads, and cross-procedure calls) whose loops always have
//! small literal bounds, so every program terminates quickly. On these
//! programs we check the repository's deepest invariants:
//!
//! 1. the AST interpreter and the IR evaluator agree exactly;
//! 2. SSA construction always verifies (under both kill oracles);
//! 3. substituting the analyzer's constants into the IR — at any
//!    configuration — never changes program behaviour;
//! 4. the `CONSTANTS` sets grow monotonically with jump-function
//!    precision;
//! 5. the analysis is deterministic.

use ipcp::core::{analyze, AnalysisConfig, JumpFunctionKind};
use ipcp::lang::interp::{self as ast_interp, InterpConfig};
use proptest::prelude::*;

// ---- random program generation -----------------------------------------

/// Scalar integer variables usable inside a procedure body.
const VARS: [&str; 4] = ["va", "vb", "vc", "vd"];
/// Global integer scalars.
const GLOBALS: [&str; 2] = ["ga", "gb"];

fn literal() -> impl Strategy<Value = String> {
    (-20i64..21).prop_map(|v| {
        if v < 0 {
            format!("(0 - {})", -v)
        } else {
            v.to_string()
        }
    })
}

fn var_name() -> impl Strategy<Value = String> {
    prop_oneof![
        proptest::sample::select(VARS.to_vec()).prop_map(str::to_string),
        proptest::sample::select(GLOBALS.to_vec()).prop_map(str::to_string),
    ]
}

fn expr(depth: u32, params: &'static [&'static str]) -> BoxedStrategy<String> {
    let leaf = if params.is_empty() {
        prop_oneof![
            literal(),
            var_name(),
            // Bounded array read: index forced into 1..=7 (length 8).
            var_name().prop_map(|v| format!("arr({v} % 4 + 4)")),
        ]
        .boxed()
    } else {
        prop_oneof![
            literal(),
            var_name(),
            proptest::sample::select(params.to_vec()).prop_map(str::to_string),
            var_name().prop_map(|v| format!("arr({v} % 4 + 4)")),
        ]
        .boxed()
    };
    leaf.prop_recursive(depth, 16, 2, |inner| {
        (
            inner.clone(),
            inner,
            proptest::sample::select(vec!["+", "-", "*", "/", "%", "==", "<", ">="]),
        )
            .prop_map(|(a, b, op)| format!("({a} {op} {b})"))
    })
    .boxed()
}

fn stmt(depth: u32, params: &'static [&'static str], calls: bool) -> BoxedStrategy<String> {
    let assign = (var_name(), expr(2, params)).prop_map(|(v, e)| format!("{v} = {e}\n"));
    let store =
        (var_name(), expr(1, params)).prop_map(|(v, e)| format!("arr({v} % 4 + 4) = {e}\n"));
    let print = expr(2, params).prop_map(|e| format!("print({e})\n"));
    let read = var_name().prop_map(|v| format!("read({v})\n"));
    // Real-typed traffic exercises the promotion/conversion paths; real
    // values never propagate, so these are analysis-neutral.
    let real_stmt = (expr(1, params), prop::bool::ANY).prop_map(|(e, show)| {
        if show {
            format!("rv = {e} * 0.5\nprint(rv)\n")
        } else {
            format!("rv = rv + {e}\n")
        }
    });
    let base = if params.is_empty() {
        prop_oneof![3 => assign, 2 => print, 1 => store, 1 => read, 1 => real_stmt].boxed()
    } else {
        let param_assign = (proptest::sample::select(params.to_vec()), expr(2, params))
            .prop_map(|(v, e)| format!("{v} = {e}\n"));
        prop_oneof![3 => assign, 2 => param_assign, 2 => print, 1 => store, 1 => read, 1 => real_stmt]
            .boxed()
    };
    if depth == 0 {
        return base;
    }
    let block =
        proptest::collection::vec(stmt(depth - 1, params, calls), 0..3).prop_map(|v| v.concat());
    let if_stmt = (expr(1, params), block.clone(), block.clone())
        .prop_map(|(c, t, e)| format!("if {c} then\n{t}else\n{e}end\n"));
    // Each nesting level gets its own loop variable: reusing one across
    // nested loops can produce a non-terminating reset cycle under the
    // language's while-style `do` semantics.
    let do_stmt = (1i64..4, 1i64..6, block.clone())
        .prop_map(move |(lo, hi, b)| format!("do d{depth} = {lo}, {hi}\n{b}end\n"));
    // Bounded `while`: a dedicated counter (per nesting level, never
    // touched by the generated body, which only uses VARS/GLOBALS/params)
    // guarantees termination.
    let while_stmt = (1i64..6, block.clone()).prop_map(move |(n, b)| {
        format!("w{depth} = {n}\nwhile w{depth} > 0 do\nw{depth} = w{depth} - 1\n{b}end\n")
    });
    let call_p0 = expr(1, params).prop_map(|e| format!("call p0({e})\n"));
    let call_fn = (var_name(), expr(1, params)).prop_map(|(v, e)| format!("{v} = f0({e})\n"));
    if calls {
        prop_oneof![4 => base, 2 => if_stmt, 2 => do_stmt, 1 => while_stmt, 1 => call_p0, 1 => call_fn]
            .boxed()
    } else {
        prop_oneof![4 => base, 2 => if_stmt, 2 => do_stmt, 1 => while_stmt].boxed()
    }
}

fn body(params: &'static [&'static str], calls: bool) -> impl Strategy<Value = String> {
    proptest::collection::vec(stmt(2, params, calls), 0..6).prop_map(|v| v.concat())
}

prop_compose! {
    fn program()(
        ga in -9i64..10,
        p0_body in body(&["px"], false),
        f0_body in body(&["fx"], false),
        p1_body in body(&["qx", "qy"], true),
        main_body in body(&[], true),
        ret in expr(1, &["fx"]),
    ) -> String {
        format!(
            "global ga = {ga}\nglobal gb\n\
             proc p0(px)\n  integer arr(8)\n  real rv\n{p0_body}end\n\
             func f0(fx)\n  integer arr(8)\n  real rv\n{f0_body}  return {ret}\nend\n\
             proc p1(qx, qy)\n  integer arr(8)\n  real rv\n{p1_body}end\n\
             main\n  integer arr(8)\n  real rv\n{main_body}  call p1(3, va)\nend\n"
        )
    }
}

/// Plenty of input for `read` (bounded loops keep the count finite).
fn test_input() -> Vec<i64> {
    (0..512).map(|i| (i * 7 + 3) % 23 - 11).collect()
}

fn interp_config() -> InterpConfig {
    InterpConfig {
        input: test_input(),
        max_steps: 2_000_000,
        ..InterpConfig::default()
    }
}

// ---- properties ----------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn ast_and_ir_semantics_agree(src in program()) {
        let checked = ipcp::lang::compile(&src).expect("generated programs compile");
        let ir = ipcp::ir::lower::lower(&checked);
        ipcp::ir::validate::validate(&ir).expect("lowered IR validates");
        let cfg = interp_config();
        let ast_out = ast_interp::run(&checked, &cfg).map(|o| o.output);
        let ir_out = ipcp::ir::eval::run(&ir, &cfg).map(|o| o.output);
        prop_assert_eq!(ast_out, ir_out);
    }

    #[test]
    fn ssa_always_verifies(src in program()) {
        let ir = ipcp::ir::compile_to_ir(&src).expect("compiles");
        for pid in ir.proc_ids() {
            let proc = ir.proc(pid);
            for oracle in [
                &ipcp::ssa::WorstCaseKills as &dyn ipcp::ssa::KillOracle,
                &ipcp::ssa::NoKills,
            ] {
                let ssa = ipcp::ssa::build_ssa(&ir, proc, oracle);
                if let Err(errs) = ipcp::ssa::verify::verify(proc, &ssa) {
                    prop_assert!(false, "SSA invalid for {}: {errs:?}", proc.name);
                }
            }
        }
    }

    #[test]
    fn substitution_preserves_behaviour(src in program()) {
        use ipcp::analysis::{augment_global_vars, compute_modref, CallGraph, ModKills};
        use ipcp::core::{apply_substitutions, build_return_jfs, solver, RjfConstEval, RjfLattice};

        let mut ir = ipcp::ir::compile_to_ir(&src).expect("compiles");
        let cfg = interp_config();
        let before = ipcp::ir::eval::run(&ir, &cfg);

        let cg = CallGraph::new(&ir);
        let modref = compute_modref(&ir, &cg);
        augment_global_vars(&mut ir, &modref);
        let cg = CallGraph::new(&ir);
        let kills = ModKills::new(&ir, &modref);
        let rjfs = build_return_jfs(&ir, &cg, &kills);
        let eval_rjfs = RjfConstEval { rjfs: &rjfs };
        let jfs = ipcp::core::build_forward_jfs(
            &ir, &cg, &modref, JumpFunctionKind::Polynomial, &kills, &eval_rjfs,
        );
        let vals = solver::solve(&ir, &cg, &modref, &jfs);
        let lattice = RjfLattice { rjfs: &rjfs };

        let mut transformed = ir.clone();
        apply_substitutions(&mut transformed, &kills, &lattice, Some(&vals));
        ipcp::ir::validate::validate(&transformed).expect("valid after substitution");
        let after = ipcp::ir::eval::run(&transformed, &cfg);

        match (&before, &after) {
            (Ok(b), Ok(a)) => prop_assert_eq!(&b.output, &a.output),
            // Runtime errors (division by zero, bounds) must be identical.
            (Err(b), Err(a)) => prop_assert_eq!(b, a),
            _ => prop_assert!(false, "one run failed, the other did not: {before:?} vs {after:?}"),
        }
    }

    #[test]
    fn constants_grow_with_jump_function_precision(src in program()) {
        let ir = ipcp::ir::compile_to_ir(&src).expect("compiles");
        let mut prev: Option<Vec<std::collections::BTreeMap<ipcp::core::Slot, i64>>> = None;
        for kind in JumpFunctionKind::ALL {
            let out = analyze(&ir, &AnalysisConfig { jump_function: kind, ..Default::default() });
            if let Some(prev_consts) = &prev {
                for (weaker, stronger) in prev_consts.iter().zip(out.constants.iter()) {
                    for (slot, value) in weaker {
                        prop_assert_eq!(
                            stronger.get(slot),
                            Some(value),
                            "{:?} lost by more precise kind {}",
                            slot,
                            kind
                        );
                    }
                }
            }
            prev = Some(out.constants);
        }
    }

    #[test]
    fn gsa_extension_is_sound_and_no_weaker(src in program()) {
        // Gated jump functions must (a) find at least the default
        // configuration's constants and (b) stay semantically sound when
        // substituted.
        use ipcp::analysis::{augment_global_vars, compute_modref, CallGraph, ModKills};
        use ipcp::core::{apply_substitutions, solver, RjfLattice};
        use ipcp::analysis::symeval::SymEvalOptions;

        let ir = ipcp::ir::compile_to_ir(&src).expect("compiles");
        let plain = analyze(&ir, &AnalysisConfig::default());
        let gsa_cfg = AnalysisConfig { gsa: true, ..AnalysisConfig::default() };
        let gsa = analyze(&ir, &gsa_cfg);
        for (weaker, stronger) in plain.constants.iter().zip(gsa.constants.iter()) {
            for (slot, value) in weaker {
                prop_assert_eq!(stronger.get(slot), Some(value), "gsa lost {:?}", slot);
            }
        }

        // Soundness via substitution equivalence under gsa.
        let mut prog = ir.clone();
        let cfg = interp_config();
        let before = ipcp::ir::eval::run(&prog, &cfg);
        let cg = CallGraph::new(&prog);
        let modref = compute_modref(&prog, &cg);
        augment_global_vars(&mut prog, &modref);
        let cg = CallGraph::new(&prog);
        let kills = ModKills::new(&prog, &modref);
        let options = SymEvalOptions { gated_phis: true };
        let rjfs = ipcp::core::retjf::build_return_jfs_with(&prog, &cg, &kills, options);
        let eval_rjfs = ipcp::core::RjfConstEval { rjfs: &rjfs };
        let jfs = ipcp::core::forward::build_forward_jfs_with(
            &prog, &cg, &modref, JumpFunctionKind::Polynomial, &kills, &eval_rjfs, options,
        );
        let vals = solver::solve(&prog, &cg, &modref, &jfs);
        let lattice = RjfLattice { rjfs: &rjfs };
        let mut transformed = prog.clone();
        apply_substitutions(&mut transformed, &kills, &lattice, Some(&vals));
        ipcp::ir::validate::validate(&transformed).expect("valid");
        let after = ipcp::ir::eval::run(&transformed, &cfg);
        match (&before, &after) {
            (Ok(b), Ok(a)) => prop_assert_eq!(&b.output, &a.output),
            (Err(b), Err(a)) => prop_assert_eq!(b, a),
            _ => prop_assert!(false, "divergence: {before:?} vs {after:?}"),
        }
    }

    #[test]
    fn optimize_preserves_behaviour(src in program()) {
        use ipcp::core::{optimize, OptimizeConfig};
        let ir = ipcp::ir::compile_to_ir(&src).expect("compiles");
        let cfg = interp_config();
        let before = ipcp::ir::eval::run(&ir, &cfg);
        for (clone_procedures, gsa) in [(false, false), (true, false), (false, true)] {
            let config = OptimizeConfig {
                clone_procedures,
                analysis: AnalysisConfig { gsa, ..AnalysisConfig::default() },
                ..OptimizeConfig::default()
            };
            let (optimized, _) = optimize(&ir, &config);
            ipcp::ir::validate::validate(&optimized).expect("valid");
            let after = ipcp::ir::eval::run(&optimized, &cfg);
            match (&before, &after) {
                (Ok(b), Ok(a)) => prop_assert_eq!(&b.output, &a.output),
                (Err(b), Err(a)) => prop_assert_eq!(b, a),
                _ => prop_assert!(
                    false,
                    "optimize diverged (clone={clone_procedures}, gsa={gsa}): {before:?} vs {after:?}"
                ),
            }
        }
    }

    #[test]
    fn analysis_deterministic(src in program()) {
        let ir = ipcp::ir::compile_to_ir(&src).expect("compiles");
        let a = analyze(&ir, &AnalysisConfig::default());
        let b = analyze(&ir, &AnalysisConfig::default());
        prop_assert_eq!(a.constants, b.constants);
        prop_assert_eq!(a.substitutions, b.substitutions);
    }
}

// ---- resource-governance properties ---------------------------------------

/// Asserts a degraded outcome is sound against the full-fuel outcome:
/// where the degraded run claims a constant, the full run must have
/// found the *same* constant. (The converse — the full run knowing more
/// — is exactly what degradation is allowed to lose.)
fn assert_degraded_soundness(
    full: &ipcp::core::AnalysisOutcome,
    degraded: &ipcp::core::AnalysisOutcome,
) {
    for (p, (full_consts, degraded_consts)) in full
        .constants
        .iter()
        .zip(degraded.constants.iter())
        .enumerate()
    {
        for (slot, value) in degraded_consts {
            assert_eq!(
                full_consts.get(slot),
                Some(value),
                "degraded run invented {slot:?} = {value} in proc {p}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The whole pipeline terminates without panicking at any fuel level,
    /// and every constant a starved run still claims agrees with the
    /// unlimited run.
    #[test]
    fn fuel_limited_analysis_never_panics_and_stays_sound(
        src in program(),
        fuel in 0u64..4000,
    ) {
        let ir = ipcp::ir::compile_to_ir(&src).expect("compiles");
        let full = analyze(&ir, &AnalysisConfig::default());
        let starved = analyze(&ir, &AnalysisConfig { fuel: Some(fuel), ..Default::default() });
        assert_degraded_soundness(&full, &starved);
        let report = &starved.robustness;
        prop_assert!(report.exhausted || report.total_degradations() == 0);
        if let Some(limit) = report.fuel_limit {
            prop_assert!(report.fuel_consumed <= limit);
        }
    }

    /// Deterministic fault injection: failing the budget at exactly the
    /// Nth checkpoint — for every configuration corner — still produces a
    /// sound outcome. 48 cases × 4 configs ≥ the issue's 100-pair floor.
    #[test]
    fn fault_injection_at_any_checkpoint_is_sound(
        src in program(),
        allowed in 0u64..600,
    ) {
        use ipcp::core::{analyze_with_budget, Budget, FaultInjector, SolverKind};
        let ir = ipcp::ir::compile_to_ir(&src).expect("compiles");
        for config in [
            AnalysisConfig::default(),
            AnalysisConfig { solver: SolverKind::BindingGraph, ..Default::default() },
            AnalysisConfig { complete_propagation: true, ..Default::default() },
            AnalysisConfig { gsa: true, rjf_full_composition: true, ..Default::default() },
        ] {
            let full = analyze(&ir, &config);
            let budget = Budget::from_source(FaultInjector::new(allowed));
            let injected = analyze_with_budget(&ir, &config, &budget);
            assert_degraded_soundness(&full, &injected);
        }
    }
}

#[test]
fn deep_call_chain_completes_under_tiny_fuel() {
    let depth = 60;
    let mut src = format!("proc p{depth}(v)\nprint(v)\nend\n");
    for i in (1..depth).rev() {
        src.push_str(&format!("proc p{i}(v)\ncall p{}(v + 1)\nend\n", i + 1));
    }
    src.push_str("main\ncall p1(0)\nend\n");
    let ir = ipcp::ir::compile_to_ir(&src).expect("compiles");
    let full = analyze(&ir, &AnalysisConfig::default());
    assert!(full.constant_slot_count() >= depth as usize);
    for fuel in [0, 1, 7, 50, 500] {
        let out = analyze(
            &ir,
            &AnalysisConfig {
                fuel: Some(fuel),
                ..Default::default()
            },
        );
        for (full_consts, degraded) in full.constants.iter().zip(out.constants.iter()) {
            for (slot, value) in degraded {
                assert_eq!(full_consts.get(slot), Some(value), "fuel {fuel}");
            }
        }
        assert!(
            out.robustness.exhausted,
            "fuel {fuel} should starve the chain"
        );
    }
}

#[test]
fn mutual_recursion_completes_under_tiny_fuel() {
    let src = "\
proc even(n)\nif n > 0 then\ncall odd(n - 1)\nend\nend\n\
proc odd(n)\nif n > 0 then\ncall even(n - 1)\nend\nend\n\
main\ncall even(8)\nend\n";
    let ir = ipcp::ir::compile_to_ir(src).expect("compiles");
    for fuel in 0..40u64 {
        let out = analyze(
            &ir,
            &AnalysisConfig {
                fuel: Some(fuel),
                ..Default::default()
            },
        );
        // No panic, no divergence; a starved run records why it is coarse.
        if out.robustness.exhausted {
            assert!(out.robustness.total_degradations() > 0, "fuel {fuel}");
        }
    }
}

// ---- analysis-session properties -------------------------------------------

/// A random point in the full configuration space, including fuel-limited
/// corners (which the session routes through the reference pipeline).
fn arb_config() -> impl Strategy<Value = AnalysisConfig> {
    use ipcp::core::{ExhaustionPolicy, SolverKind};
    (
        proptest::sample::select(JumpFunctionKind::ALL.to_vec()),
        proptest::bool::ANY,
        proptest::bool::ANY,
        proptest::bool::ANY,
        proptest::bool::ANY,
        (
            proptest::bool::ANY,
            proptest::bool::ANY,
            proptest::bool::ANY,
        ),
        proptest::sample::select(vec![SolverKind::CallGraph, SolverKind::BindingGraph]),
        (
            proptest::sample::select(vec![None, Some(0u64), Some(50), Some(5000)]),
            proptest::sample::select(vec![0usize, 1, 2, 8]),
        ),
    )
        .prop_map(
            |(
                jump_function,
                rjf,
                mod_info,
                complete,
                interprocedural,
                (compose, gsa, branch_feasibility),
                solver,
                (fuel, jobs),
            )| {
                AnalysisConfig {
                    jump_function,
                    return_jump_functions: rjf,
                    mod_info,
                    complete_propagation: complete,
                    interprocedural,
                    rjf_full_composition: compose,
                    solver,
                    gsa,
                    branch_feasibility,
                    jobs,
                    fuel,
                    on_exhausted: ExhaustionPolicy::Degrade,
                }
            },
        )
}

/// Field-by-field outcome equality (the outcome struct itself is not
/// `PartialEq`).
fn assert_outcomes_identical(
    got: &ipcp::core::AnalysisOutcome,
    want: &ipcp::core::AnalysisOutcome,
    what: &str,
) {
    assert_eq!(got.program, want.program, "{what}: program");
    assert_eq!(got.constants, want.constants, "{what}: constants");
    assert_eq!(
        got.substitutions, want.substitutions,
        "{what}: substitutions"
    );
    assert_eq!(got.stats, want.stats, "{what}: stats");
    assert_eq!(got.robustness, want.robustness, "{what}: robustness");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// One shared session, an arbitrary sweep of configurations: every
    /// outcome — program, CONSTANTS, substitution counts, cost stats, and
    /// the robustness report — is identical to the pre-session
    /// straight-line pipeline run fresh per configuration.
    #[test]
    fn session_sweep_equivalent_to_reference(
        src in program(),
        configs in proptest::collection::vec(arb_config(), 1..5),
    ) {
        use ipcp::core::{analyze_reference, AnalysisSession};
        let ir = ipcp::ir::compile_to_ir(&src).expect("compiles");
        let session = AnalysisSession::new(&ir);
        for (i, config) in configs.iter().enumerate() {
            let got = session.analyze(config);
            let want = analyze_reference(&ir, config);
            assert_outcomes_identical(&got, &want, &format!("config #{i}: {config:?}"));
        }
    }

    /// Incremental complete propagation (invalidate only fingerprints
    /// that moved) reaches exactly the fixpoint of the reference restart
    /// loop — and replaying the converged analysis is pure cache traffic.
    #[test]
    fn incremental_complete_propagation_matches_restart_loop(
        src in program(),
        kind in proptest::sample::select(JumpFunctionKind::ALL.to_vec()),
        gsa in proptest::bool::ANY,
    ) {
        use ipcp::core::{analyze_reference, AnalysisSession};
        let ir = ipcp::ir::compile_to_ir(&src).expect("compiles");
        let config = AnalysisConfig {
            jump_function: kind,
            complete_propagation: true,
            gsa,
            ..AnalysisConfig::default()
        };
        let session = AnalysisSession::new(&ir);
        let got = session.analyze(&config);
        let want = analyze_reference(&ir, &config);
        assert_outcomes_identical(&got, &want, "complete propagation");

        // The converged state is fully memoized: re-analyzing computes
        // nothing new, whatever the DCE round count was.
        let misses = session.stats().total_misses();
        let again = session.analyze(&config);
        assert_outcomes_identical(&again, &want, "replay");
        prop_assert_eq!(session.stats().total_misses(), misses, "replay computed artifacts");
    }

    /// Determinism under parallelism: for any program and configuration,
    /// running the analysis at 1, 2, and 8 worker threads yields
    /// byte-identical outcomes — same transformed program, same CONSTANTS
    /// sets, same substitution counts, same cost stats, same robustness
    /// report.
    #[test]
    fn thread_count_never_changes_the_outcome(
        src in program(),
        config in arb_config(),
    ) {
        let ir = ipcp::ir::compile_to_ir(&src).expect("compiles");
        let want = analyze(&ir, &AnalysisConfig { jobs: 1, ..config });
        for jobs in [2usize, 8] {
            let got = analyze(&ir, &AnalysisConfig { jobs, ..config });
            assert_outcomes_identical(&got, &want, &format!("jobs={jobs} vs 1: {config:?}"));
        }
    }

    /// Observability is free: running the analysis with a recording
    /// trace sink attached produces an outcome — program, CONSTANTS,
    /// substitution counts, cost stats, robustness report — identical
    /// to the untraced run, at 1 and 4 workers and under fuel metering.
    #[test]
    fn tracing_never_changes_the_outcome(
        src in program(),
        config in arb_config(),
    ) {
        use ipcp::core::obs::TraceSink;
        use ipcp::core::AnalysisSession;
        let ir = ipcp::ir::compile_to_ir(&src).expect("compiles");
        for jobs in [1usize, 4] {
            for fuel in [None, Some(200u64), Some(100_000)] {
                let config = AnalysisConfig { jobs, fuel, ..config };
                let plain = AnalysisSession::new(&ir)
                    .analyze_checked(&config)
                    .expect("Degrade policy never errors");
                let sink = TraceSink::new();
                let traced = AnalysisSession::new(&ir)
                    .analyze_checked_obs(&config, &sink)
                    .expect("Degrade policy never errors");
                assert_outcomes_identical(
                    &traced,
                    &plain,
                    &format!("traced vs plain: {config:?}"),
                );
                prop_assert_eq!(
                    &traced.robustness, &plain.robustness,
                    "robustness report drifted under tracing: {:?}", config
                );
            }
        }
    }

    /// The full observability stack — trace sink, latency histograms,
    /// and the disk cache's audit ledger — never changes the outcome:
    /// cold and warm cached+traced runs match the plain run byte for
    /// byte, and the warm run's audit reports nothing recomputed.
    #[test]
    fn cache_and_tracing_together_never_change_the_outcome(
        src in program(),
        config in arb_config(),
    ) {
        use ipcp::core::obs::TraceSink;
        use ipcp::core::{AnalysisSession, DiskCache};
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        static DIR_SEQ: AtomicU64 = AtomicU64::new(0);
        let ir = ipcp::ir::compile_to_ir(&src).expect("compiles");
        let config = AnalysisConfig { fuel: None, ..config };
        let plain = AnalysisSession::new(&ir)
            .analyze_checked(&config)
            .expect("Degrade policy never errors");
        let dir = std::env::temp_dir().join(format!(
            "ipcp-prop-obs-cache-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        for pass in ["cold", "warm"] {
            let mut session = AnalysisSession::new(&ir);
            session.attach_disk_cache(Arc::new(DiskCache::open(&dir).expect("cache opens")));
            session.set_audit_label("prop.mf");
            let session = session;
            let sink = TraceSink::new();
            let got = session
                .analyze_checked_obs(&config, &sink)
                .expect("Degrade policy never errors");
            assert_outcomes_identical(
                &got,
                &plain,
                &format!("{pass} cached+traced vs plain: {config:?}"),
            );
            let audit = session.last_audit().expect("unmetered run always audits");
            if pass == "warm" {
                prop_assert_eq!(
                    audit.total_recomputed(), 0,
                    "warm cached run recomputed artifacts: {:?}", config
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ---- front-end round-trip property ---------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn pretty_print_round_trips(src in program()) {
        let ast = ipcp::lang::parser::parse(&src).expect("parses");
        let printed = ipcp::lang::pretty::program_to_string(&ast);
        let reparsed = ipcp::lang::parser::parse(&printed)
            .unwrap_or_else(|e| panic!("reparse failed:\n{}\n{printed}", e.render(&printed)));
        prop_assert_eq!(ipcp::lang::pretty::program_to_string(&reparsed), printed);
    }
}
