//! End-to-end pipeline tests: exact `CONSTANTS` sets and substitution
//! counts on hand-written programs, across the full configuration matrix.

use ipcp::core::{analyze_source, AnalysisConfig, JumpFunctionKind, Slot};
use ipcp::ir::GlobalId;

fn config(kind: JumpFunctionKind) -> AnalysisConfig {
    AnalysisConfig {
        jump_function: kind,
        ..AnalysisConfig::default()
    }
}

/// CONSTANTS of `proc_name` as (slot, value) pairs.
fn constants_of(outcome: &ipcp::core::AnalysisOutcome, proc_name: &str) -> Vec<(Slot, i64)> {
    let pid = outcome.program.proc_by_name(proc_name).expect("proc");
    outcome.constants[pid.index()]
        .iter()
        .map(|(s, v)| (*s, *v))
        .collect()
}

const DOC_EXAMPLE: &str = "
global n
proc init()
  n = 64
end
proc compute(k)
  print(n + k)
end
main
  call init()
  call compute(8)
end
";

#[test]
fn doc_example_exact_constants() {
    let out = analyze_source(DOC_EXAMPLE, &AnalysisConfig::default()).unwrap();
    let mut consts = constants_of(&out, "compute");
    consts.sort();
    assert_eq!(
        consts,
        vec![(Slot::Formal(0), 8), (Slot::Global(GlobalId(0)), 64)]
    );
    // compute's body: `n + k` has two countable uses.
    assert_eq!(out.substitutions.total, 2);
}

#[test]
fn doc_example_without_rjf_loses_global() {
    let cfg = AnalysisConfig {
        return_jump_functions: false,
        ..AnalysisConfig::default()
    };
    let out = analyze_source(DOC_EXAMPLE, &cfg).unwrap();
    assert_eq!(constants_of(&out, "compute"), vec![(Slot::Formal(0), 8)]);
    assert_eq!(out.substitutions.total, 1);
}

/// The paper's running structure: constants along multi-edge paths.
const MULTI_HOP: &str = "
proc level3(c)
  print(c)
  print(c * c)
end
proc level2(b)
  call level3(b)
end
proc level1(a)
  call level2(a)
end
main
  call level1(6)
end
";

#[test]
fn multi_hop_by_kind() {
    // literal: only level1 learns a = 6 (1 slot), no uses inside level1.
    let out = analyze_source(MULTI_HOP, &config(JumpFunctionKind::Literal)).unwrap();
    assert_eq!(out.constant_slot_count(), 1);
    assert_eq!(out.substitutions.total, 0);

    // intraprocedural: same (the actual at level1's site is a formal).
    let out = analyze_source(
        MULTI_HOP,
        &config(JumpFunctionKind::IntraproceduralConstant),
    )
    .unwrap();
    assert_eq!(out.constant_slot_count(), 1);
    assert_eq!(out.substitutions.total, 0);

    // pass-through: the whole chain lights up; level3 uses c three times
    // (`print(c)` once, `print(c * c)` twice).
    let out = analyze_source(MULTI_HOP, &config(JumpFunctionKind::PassThrough)).unwrap();
    assert_eq!(out.constant_slot_count(), 3);
    assert_eq!(out.substitutions.total, 3);

    // polynomial: identical here (the paper's empirical headline).
    let out = analyze_source(MULTI_HOP, &config(JumpFunctionKind::Polynomial)).unwrap();
    assert_eq!(out.constant_slot_count(), 3);
    assert_eq!(out.substitutions.total, 3);
}

const POLYNOMIAL_ONLY: &str = "
proc sink(z)
  print(z)
end
proc middle(x)
  call sink(3 * x * x + 2 * x + 1)
end
main
  call middle(2)
end
";

#[test]
fn polynomial_expressions_need_polynomial_kind() {
    let out = analyze_source(POLYNOMIAL_ONLY, &config(JumpFunctionKind::PassThrough)).unwrap();
    assert_eq!(constants_of(&out, "sink"), vec![]);
    let out = analyze_source(POLYNOMIAL_ONLY, &config(JumpFunctionKind::Polynomial)).unwrap();
    assert_eq!(constants_of(&out, "sink"), vec![(Slot::Formal(0), 17)]);
}

const DIVISION_JF: &str = "
proc sink(z)
  print(z)
end
proc middle(x)
  call sink(x / 2 + x % 3)
end
main
  call middle(9)
end
";

#[test]
fn division_and_remainder_supported_in_jump_functions() {
    // 9/2 + 9%3 = 4 — expression jump functions cover all integer ops.
    let out = analyze_source(DIVISION_JF, &config(JumpFunctionKind::Polynomial)).unwrap();
    assert_eq!(constants_of(&out, "sink"), vec![(Slot::Formal(0), 4)]);
}

const CONFLICT: &str = "
proc f(a, b)
  print(a + b)
end
main
  call f(1, 9)
  call f(2, 9)
end
";

#[test]
fn conflicting_sites_meet_to_bottom_agreeing_stay() {
    let out = analyze_source(CONFLICT, &AnalysisConfig::default()).unwrap();
    assert_eq!(constants_of(&out, "f"), vec![(Slot::Formal(1), 9)]);
    assert_eq!(out.substitutions.total, 1);
}

const BY_REF_RETURN: &str = "
proc answer(x)
  x = 42
end
proc double(x)
  x = x * 2
end
main
  call answer(q)
  call double(q)
  print(q)
end
";

#[test]
fn by_reference_results_flow_through_rjfs() {
    let out = analyze_source(BY_REF_RETURN, &AnalysisConfig::default()).unwrap();
    // double is invoked with q = 42, and main's final print sees 84.
    assert_eq!(constants_of(&out, "double"), vec![(Slot::Formal(0), 42)]);
    assert_eq!(out.substitutions.total, 2); // `x * 2` inside double, print(q)
}

#[test]
fn rjf_composition_extension_beats_paper_rule() {
    // g is set from a *parameter* of the caller's caller; the paper's
    // constant-or-⊥ return jump function evaluation cannot track it, the
    // full-composition extension can.
    let src = "
global g
proc setg(v)
  g = v
end
proc relay(w)
  call setg(w + 1)
  call reader()
end
proc reader()
  print(g)
end
main
  call relay(4)
end
";
    let paper = analyze_source(src, &AnalysisConfig::default()).unwrap();
    let ext = analyze_source(
        src,
        &AnalysisConfig {
            rjf_full_composition: true,
            ..AnalysisConfig::default()
        },
    )
    .unwrap();
    let g = Slot::Global(GlobalId(0));
    let reader_paper = constants_of(&paper, "reader");
    let reader_ext = constants_of(&ext, "reader");
    assert!(!reader_paper.contains(&(g, 5)), "{reader_paper:?}");
    assert!(reader_ext.contains(&(g, 5)), "{reader_ext:?}");
}

const COMPLETE_PROP: &str = "
proc kernel(debug)
  if debug then
    read(v)
    x = v
  else
    x = 12
  end
  call leaf(x)
end
proc leaf(p)
  print(p)
  print(p + 1)
  print(p + 2)
end
main
  call kernel(0)
end
";

#[test]
fn complete_propagation_unlocks_guarded_constants() {
    let plain = analyze_source(COMPLETE_PROP, &AnalysisConfig::default()).unwrap();
    assert_eq!(constants_of(&plain, "leaf"), vec![]);
    let complete = analyze_source(
        COMPLETE_PROP,
        &AnalysisConfig {
            complete_propagation: true,
            ..AnalysisConfig::default()
        },
    )
    .unwrap();
    assert_eq!(constants_of(&complete, "leaf"), vec![(Slot::Formal(0), 12)]);
    assert_eq!(complete.stats.dce_rounds, 1);
    assert!(complete.substitutions.total > plain.substitutions.total);
}

#[test]
fn gsa_extension_subsumes_complete_propagation_here() {
    // The paper (§4.2): complete propagation's results "can be achieved by
    // basing the jump-function generator on a gated single-assignment
    // form". The gsa extension finds leaf's constant in ONE pass, no DCE.
    let gsa = analyze_source(
        COMPLETE_PROP,
        &AnalysisConfig {
            gsa: true,
            ..AnalysisConfig::default()
        },
    )
    .unwrap();
    assert_eq!(constants_of(&gsa, "leaf"), vec![(Slot::Formal(0), 12)]);
    assert_eq!(gsa.stats.dce_rounds, 0);

    let complete = analyze_source(
        COMPLETE_PROP,
        &AnalysisConfig {
            complete_propagation: true,
            ..AnalysisConfig::default()
        },
    )
    .unwrap();
    assert_eq!(gsa.substitutions.total, complete.substitutions.total);
}

#[test]
fn binding_solver_matches_worklist_solver() {
    use ipcp::core::SolverKind;
    for src in [
        DOC_EXAMPLE,
        MULTI_HOP,
        CONFLICT,
        BY_REF_RETURN,
        COMPLETE_PROP,
    ] {
        let a = analyze_source(src, &AnalysisConfig::default()).unwrap();
        let b = analyze_source(
            src,
            &AnalysisConfig {
                solver: SolverKind::BindingGraph,
                ..AnalysisConfig::default()
            },
        )
        .unwrap();
        assert_eq!(a.constants, b.constants, "{src}");
        assert_eq!(a.substitutions, b.substitutions, "{src}");
    }
}

#[test]
fn recursive_programs_are_sound() {
    let src = "
func fact(n)
  if n <= 1 then
    return 1
  end
  return n * fact(n - 1)
end
main
  print(fact(5))
end
";
    for kind in JumpFunctionKind::ALL {
        let out = analyze_source(src, &config(kind)).unwrap();
        // n varies across the recursion; nothing may be claimed constant.
        assert_eq!(constants_of(&out, "fact"), vec![], "{kind}");
    }
}

#[test]
fn uncalled_procedures_report_no_constants() {
    let src = "
proc orphan(a)
  print(a)
end
main
  print(1)
end
";
    let out = analyze_source(src, &AnalysisConfig::default()).unwrap();
    assert_eq!(constants_of(&out, "orphan"), vec![]);
    assert_eq!(out.substitutions.total, 0);
}

#[test]
fn real_values_never_propagate() {
    let src = "
proc f(real r, k)
  print(r)
  print(k)
end
main
  call f(1.5, 3)
end
";
    let out = analyze_source(src, &AnalysisConfig::default()).unwrap();
    // Only the integer k is a constant (the paper propagates integers only).
    assert_eq!(constants_of(&out, "f"), vec![(Slot::Formal(1), 3)]);
}

#[test]
fn array_elements_never_propagate() {
    let src = "
proc f(p)
  print(p)
end
main
  integer a(4)
  a(1) = 7
  call f(a(1))
end
";
    let out = analyze_source(src, &AnalysisConfig::default()).unwrap();
    // a(1) holds 7 at the call, but array elements are ⊥ by design.
    assert_eq!(constants_of(&out, "f"), vec![]);
}

#[test]
fn analysis_is_deterministic() {
    let a = analyze_source(DOC_EXAMPLE, &AnalysisConfig::default()).unwrap();
    let b = analyze_source(DOC_EXAMPLE, &AnalysisConfig::default()).unwrap();
    assert_eq!(a.constants, b.constants);
    assert_eq!(a.substitutions, b.substitutions);
    assert_eq!(a.stats, b.stats);
}
