//! Integration test over the checked-in showcase program
//! (`examples/programs/heat.mf`), exercising the CLI surface end to end.

use ipcp::cli::{execute, parse_args};

const HEAT: &str = include_str!("../examples/programs/heat.mf");

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

#[test]
fn heat_analyzes_with_expected_constants() {
    let cli = parse_args(&args(&["analyze", "heat.mf"])).unwrap();
    let out = execute(&cli, HEAT).unwrap();
    assert!(out.contains("CONSTANTS(sweep) = { npoints = 64 }"), "{out}");
    assert!(out.contains("nsteps = 10"), "{out}");
    assert!(out.contains("checks = 2"), "{out}");
}

#[test]
fn heat_constants_need_return_jump_functions() {
    let cli = parse_args(&args(&["analyze", "heat.mf", "--no-rjf"])).unwrap();
    let out = execute(&cli, HEAT).unwrap();
    assert!(out.contains("no interprocedural constants"), "{out}");
}

#[test]
fn heat_runs_and_conserves_mass() {
    let cli = parse_args(&args(&["run", "heat.mf"])).unwrap();
    let out = execute(&cli, HEAT).unwrap();
    let values: Vec<i64> = out.lines().map(|l| l.parse().unwrap()).collect();
    // report fires at steps 5 and 10 (printing step, total), then main
    // prints the final total.
    assert_eq!(values.len(), 5, "{out}");
    assert_eq!(values[0], 5);
    assert_eq!(values[2], 10);
    // Diffusion with integer division only loses mass slowly; the final
    // total stays below the injected 1500 and above zero.
    let final_total = *values.last().unwrap();
    assert!(final_total > 0 && final_total <= 1500, "{final_total}");
    assert_eq!(values[3], final_total, "last report total equals final");
}

#[test]
fn heat_transform_is_equivalent() {
    let run = parse_args(&args(&["run", "heat.mf"])).unwrap();
    let before = execute(&run, HEAT).unwrap();

    // Transform prints IR; re-evaluate it through the library instead.
    use ipcp::analysis::{augment_global_vars, compute_modref, CallGraph, ModKills};
    use ipcp::core::{apply_substitutions, build_return_jfs, solver, RjfConstEval, RjfLattice};
    let mut program = ipcp::ir::compile_to_ir(HEAT).unwrap();
    let cg = CallGraph::new(&program);
    let modref = compute_modref(&program, &cg);
    augment_global_vars(&mut program, &modref);
    let cg = CallGraph::new(&program);
    let kills = ModKills::new(&program, &modref);
    let rjfs = build_return_jfs(&program, &cg, &kills);
    let jfs = ipcp::core::build_forward_jfs(
        &program,
        &cg,
        &modref,
        ipcp::core::JumpFunctionKind::Polynomial,
        &kills,
        &RjfConstEval { rjfs: &rjfs },
    );
    let vals = solver::solve(&program, &cg, &modref, &jfs);
    let mut transformed = program.clone();
    let n = apply_substitutions(
        &mut transformed,
        &kills,
        &RjfLattice { rjfs: &rjfs },
        Some(&vals),
    );
    assert!(n >= 8, "substitutions applied: {n}");
    let out = ipcp::ir::eval::run(&transformed, &Default::default()).unwrap();
    let after: String = out.output.iter().map(|v| format!("{v}\n")).collect();
    assert_eq!(before, after);
}

#[test]
fn heat_has_a_cloning_opportunity() {
    // inject() is called with different positions/amounts.
    let cli = parse_args(&args(&["clones", "heat.mf"])).unwrap();
    let out = execute(&cli, HEAT).unwrap();
    assert!(out.contains("clone `inject`"), "{out}");
}

const POLY: &str = include_str!("../examples/programs/poly.mf");

#[test]
fn poly_program_needs_polynomial_jump_functions() {
    let pass = parse_args(&args(&["analyze", "poly.mf", "--jf", "pass"])).unwrap();
    let poly = parse_args(&args(&["analyze", "poly.mf", "--jf", "poly"])).unwrap();
    let pass_out = execute(&pass, POLY).unwrap();
    let poly_out = execute(&poly, POLY).unwrap();
    // layout's n = 8 is visible to both; fill/edge only to polynomial.
    assert!(
        pass_out.contains("CONSTANTS(layout) = { n = 8 }"),
        "{pass_out}"
    );
    assert!(!pass_out.contains("CONSTANTS(fill)"), "{pass_out}");
    assert!(
        poly_out.contains("CONSTANTS(fill) = { count = 80, stride = 17 }"),
        "{poly_out}"
    );
    assert!(
        poly_out.contains("CONSTANTS(edge) = { last = 80 }"),
        "{poly_out}"
    );
}

#[test]
fn poly_program_runs_identically_after_source_transform() {
    let transformed =
        ipcp::core::transform_source(POLY, &ipcp::core::AnalysisConfig::default()).unwrap();
    assert!(transformed.substitutions > 0);
    let run = parse_args(&args(&["run", "poly.mf"])).unwrap();
    let before = execute(&run, POLY).unwrap();
    let after = execute(&run, &transformed.source).unwrap();
    assert_eq!(before, after);
}

#[test]
fn heat_is_alias_clean() {
    let cli = parse_args(&args(&["lint", "heat.mf"])).unwrap();
    assert!(execute(&cli, HEAT).unwrap().contains("no aliasing"));
}
