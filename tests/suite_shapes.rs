//! Reproduction tests over the full synthetic benchmark suite: the
//! analyzer's measured substitution counts must land on (or within a
//! couple of counts of) the paper's Tables 2 and 3, and every qualitative
//! conclusion of the paper must hold.

use ipcp::core::{analyze, AnalysisConfig, JumpFunctionKind};
use ipcp::suite::{all_specs, generate, paper_row};

struct Measured {
    name: String,
    poly: usize,
    pass_through: usize,
    intra: usize,
    literal: usize,
    poly_no_rjf: usize,
    poly_no_mod: usize,
    complete: usize,
    baseline: usize,
}

fn measure_all() -> Vec<Measured> {
    all_specs()
        .iter()
        .map(|spec| {
            let program = generate(spec);
            let ir = ipcp::ir::compile_to_ir(&program.source).expect("compiles");
            let base = AnalysisConfig::default();
            let run = |c: &AnalysisConfig| analyze(&ir, c).substitutions.total;
            Measured {
                name: spec.name.to_string(),
                poly: run(&base),
                pass_through: run(&AnalysisConfig {
                    jump_function: JumpFunctionKind::PassThrough,
                    ..base
                }),
                intra: run(&AnalysisConfig {
                    jump_function: JumpFunctionKind::IntraproceduralConstant,
                    ..base
                }),
                literal: run(&AnalysisConfig {
                    jump_function: JumpFunctionKind::Literal,
                    ..base
                }),
                poly_no_rjf: run(&AnalysisConfig {
                    return_jump_functions: false,
                    ..base
                }),
                poly_no_mod: run(&AnalysisConfig {
                    mod_info: false,
                    ..base
                }),
                complete: run(&AnalysisConfig {
                    complete_propagation: true,
                    ..base
                }),
                baseline: run(&AnalysisConfig::intraprocedural_baseline()),
            }
        })
        .collect()
}

/// |measured − paper| must stay within this absolute tolerance for the
/// tightly-fitted cells (the generator places countable uses exactly;
/// the ±2 slack covers the documented off-by-one motif interactions).
const TIGHT: usize = 2;

#[test]
fn table2_matches_paper() {
    for m in measure_all() {
        let p = paper_row(&m.name).expect("paper row");
        assert!(
            m.poly.abs_diff(p.poly) <= TIGHT,
            "{}: poly {} vs {}",
            m.name,
            m.poly,
            p.poly
        );
        assert!(
            m.pass_through.abs_diff(p.pass_through) <= TIGHT,
            "{}: pass-through {} vs {}",
            m.name,
            m.pass_through,
            p.pass_through
        );
        assert!(
            m.intra.abs_diff(p.intraprocedural) <= TIGHT,
            "{}: intra {} vs {}",
            m.name,
            m.intra,
            p.intraprocedural
        );
        assert!(
            m.literal.abs_diff(p.literal) <= TIGHT,
            "{}: literal {} vs {}",
            m.name,
            m.literal,
            p.literal
        );
        assert!(
            m.poly_no_rjf.abs_diff(p.poly_no_rjf) <= TIGHT,
            "{}: no-RJF {} vs {}",
            m.name,
            m.poly_no_rjf,
            p.poly_no_rjf
        );
    }
}

#[test]
fn table3_matches_paper() {
    // `ocean` without MOD is the one documented loose cell: the paper's
    // implementation retained some init constants that the fitted motif
    // model cannot express (EXPERIMENTS.md discusses it).
    for m in measure_all() {
        let p = paper_row(&m.name).expect("paper row");
        let no_mod_tolerance = if m.name == "ocean" { 20 } else { TIGHT };
        assert!(
            m.poly_no_mod.abs_diff(p.poly_no_mod) <= no_mod_tolerance,
            "{}: no-MOD {} vs {}",
            m.name,
            m.poly_no_mod,
            p.poly_no_mod
        );
        assert!(
            m.complete.abs_diff(p.complete) <= TIGHT,
            "{}: complete {} vs {}",
            m.name,
            m.complete,
            p.complete
        );
        assert!(
            m.baseline.abs_diff(p.intraprocedural_only) <= TIGHT,
            "{}: baseline {} vs {}",
            m.name,
            m.baseline,
            p.intraprocedural_only
        );
    }
}

#[test]
fn paper_conclusions_hold() {
    let all = measure_all();
    for m in &all {
        // §6: "The pass-through and polynomial parameter forward jump
        // functions were equivalent in the number of constants found."
        assert_eq!(m.poly, m.pass_through, "{}", m.name);
        // Precision hierarchy.
        assert!(m.literal <= m.intra, "{}", m.name);
        assert!(m.intra <= m.pass_through, "{}", m.name);
        // Return jump functions never hurt.
        assert!(m.poly_no_rjf <= m.poly, "{}", m.name);
        // "Incorporating MOD information is important."
        assert!(m.poly_no_mod <= m.poly, "{}", m.name);
        // Complete propagation never finds fewer.
        assert!(m.complete >= m.poly, "{}", m.name);
        // "Interprocedural propagation always detected more constants
        // than strictly intraprocedural propagation" (for programs that
        // contained constants).
        assert!(m.baseline <= m.poly, "{}", m.name);
    }

    // §4.2: return jump functions "more than tripled" ocean's constants.
    let ocean = all.iter().find(|m| m.name == "ocean").unwrap();
    assert!(ocean.poly as f64 / ocean.poly_no_rjf as f64 > 2.5);

    // §4.2: MOD strikingly matters in adm, linpackd, matrix300, ocean,
    // simple, and spec77.
    for name in ["adm", "linpackd", "matrix300", "ocean", "simple", "spec77"] {
        let m = all.iter().find(|m| m.name == name).unwrap();
        assert!(
            (m.poly_no_mod as f64) <= 0.6 * m.poly as f64,
            "{name}: MOD effect should be large ({} vs {})",
            m.poly_no_mod,
            m.poly
        );
    }

    // §4.2: complete propagation "exposed few additional constants" —
    // only ocean and spec77 gain at all, and modestly.
    for m in &all {
        let gain = m.complete - m.poly;
        if m.name == "ocean" || m.name == "spec77" {
            assert!(gain > 0, "{}", m.name);
            assert!(gain <= 12, "{}: {gain}", m.name);
        } else {
            assert_eq!(gain, 0, "{}", m.name);
        }
    }
}

#[test]
fn binding_solver_agrees_on_whole_suite() {
    use ipcp::core::SolverKind;
    for spec in all_specs() {
        let program = generate(&spec);
        let ir = ipcp::ir::compile_to_ir(&program.source).expect("compiles");
        let a = analyze(&ir, &AnalysisConfig::default());
        let b = analyze(
            &ir,
            &AnalysisConfig {
                solver: SolverKind::BindingGraph,
                ..AnalysisConfig::default()
            },
        );
        assert_eq!(a.constants, b.constants, "{}", spec.name);
        assert_eq!(a.substitutions, b.substitutions, "{}", spec.name);
    }
}

#[test]
fn gsa_extension_subsumes_complete_propagation_on_suite() {
    // §4.2: gated single assignment achieves complete propagation's
    // results in a single pass. On every suite program, gsa must reach at
    // least the complete-propagation count without any DCE round.
    for spec in all_specs() {
        let program = generate(&spec);
        let ir = ipcp::ir::compile_to_ir(&program.source).expect("compiles");
        let complete = analyze(
            &ir,
            &AnalysisConfig {
                complete_propagation: true,
                ..AnalysisConfig::default()
            },
        );
        let gsa = analyze(
            &ir,
            &AnalysisConfig {
                gsa: true,
                ..AnalysisConfig::default()
            },
        );
        assert!(
            gsa.substitutions.total >= complete.substitutions.total,
            "{}: gsa {} vs complete {}",
            spec.name,
            gsa.substitutions.total,
            complete.substitutions.total
        );
        assert_eq!(gsa.stats.dce_rounds, 0, "{}", spec.name);
    }
}

#[test]
fn suite_transformation_preserves_behaviour() {
    use ipcp::analysis::{augment_global_vars, compute_modref, CallGraph, ModKills};
    use ipcp::core::{apply_substitutions, build_return_jfs, solver, RjfConstEval, RjfLattice};
    use ipcp::lang::interp::InterpConfig;

    // End-to-end soundness at scale: substituting the discovered
    // constants into every suite program must not change its output.
    for spec in all_specs() {
        let generated = generate(&spec);
        let mut program = ipcp::ir::compile_to_ir(&generated.source).expect("compiles");
        let config = InterpConfig {
            input: generated.input(),
            max_steps: 200_000_000,
            ..InterpConfig::default()
        };
        let before = ipcp::ir::eval::run(&program, &config).expect("runs");

        let cg = CallGraph::new(&program);
        let modref = compute_modref(&program, &cg);
        augment_global_vars(&mut program, &modref);
        let cg = CallGraph::new(&program);
        let kills = ModKills::new(&program, &modref);
        let rjfs = build_return_jfs(&program, &cg, &kills);
        let eval_rjfs = RjfConstEval { rjfs: &rjfs };
        let jfs = ipcp::core::build_forward_jfs(
            &program,
            &cg,
            &modref,
            JumpFunctionKind::Polynomial,
            &kills,
            &eval_rjfs,
        );
        let vals = solver::solve(&program, &cg, &modref, &jfs);
        let lattice = RjfLattice { rjfs: &rjfs };

        let mut transformed = program.clone();
        let n = apply_substitutions(&mut transformed, &kills, &lattice, Some(&vals));
        assert!(n > 0, "{}: something must be substitutable", spec.name);
        ipcp::ir::validate::validate(&transformed).expect("valid after substitution");
        let after = ipcp::ir::eval::run(&transformed, &config).expect("still runs");
        assert_eq!(before.output, after.output, "{}", spec.name);
    }
}
