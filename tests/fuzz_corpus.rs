//! Replays the checked-in fuzz corpus: every minimized repro in
//! `tests/fuzz-corpus/` must keep passing both semantic-preservation
//! oracles at the full precision ladder — the four forward
//! jump-function levels plus conditional propagation. A repro that
//! fails here means a previously fixed optimizer bug has regressed.

use ipcp::suite::fuzz::{check_case, parse_repro_input, CheckOutcome, FuzzLevel};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fuzz-corpus")
}

#[test]
fn corpus_replays_clean_at_every_level() {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/fuzz-corpus must exist")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "mf"))
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 5,
        "expected the satellite regressions to be checked in, found {entries:?}"
    );
    for path in entries {
        let text = std::fs::read_to_string(&path).unwrap();
        let input = parse_repro_input(&text);
        let outcome = check_case(&text, &input, &FuzzLevel::ALL, 1_000_000);
        match outcome {
            CheckOutcome::Pass(class) => {
                eprintln!("{}: pass ({class})", path.display());
            }
            other => panic!("{}: {:?}", path.display(), other),
        }
    }
}

#[test]
fn corpus_exercises_an_infeasible_branch_prune() {
    // At least one repro must drive conditional propagation's edge
    // pruning, so the cond oracle path stays covered on every replay.
    let text = std::fs::read_to_string(corpus_dir().join("cond-infeasible-branch-prune.mf"))
        .expect("the cond repro must be checked in");
    let program = ipcp::ir::compile_to_ir(&text).unwrap();
    let poly = ipcp::analyze(
        &program,
        &FuzzLevel::Forward(ipcp::JumpFunctionKind::Polynomial).config(),
    );
    let cond = ipcp::analyze(&program, &FuzzLevel::Conditional.config());
    assert!(cond.stats.pruned_call_edges > 0, "{:?}", cond.stats);
    let count = |o: &ipcp::AnalysisOutcome| -> usize { o.constants.iter().map(|m| m.len()).sum() };
    assert!(
        count(&cond) > count(&poly),
        "cond must find strictly more constants: {} vs {}",
        count(&cond),
        count(&poly)
    );
}

#[test]
fn corpus_traps_are_the_interesting_ones() {
    // The corpus is not just trap-free programs: at least one repro must
    // exercise a runtime trap so trap-equivalence stays covered.
    let mut classes = Vec::new();
    for entry in std::fs::read_dir(corpus_dir())
        .unwrap()
        .filter_map(|e| e.ok())
    {
        let path = entry.path();
        if path.extension().is_none_or(|x| x != "mf") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let input = parse_repro_input(&text);
        if let CheckOutcome::Pass(class) = check_case(&text, &input, &FuzzLevel::ALL, 1_000_000) {
            classes.push(class);
        }
    }
    assert!(classes.iter().any(|c| c == "ok"), "{classes:?}");
    assert!(classes.iter().any(|c| c != "ok"), "{classes:?}");
}
