//! The `ipcp` command-line driver: analyze, run, transform, and lint
//! Minifor programs. Run with no arguments for usage.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match ipcp::cli::parse_args(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // `fuzz` generates its own programs and parses no input file.
    let source = if cli.file.is_empty() {
        String::new()
    } else {
        match std::fs::read_to_string(&cli.file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read `{}`: {e}", cli.file);
                return ExitCode::FAILURE;
            }
        }
    };
    match ipcp::cli::execute(&cli, &source) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
