//! Command-line interface for the `ipcp` binary.
//!
//! Hand-rolled argument parsing (no CLI dependency) kept in the library
//! so it is unit-testable; the binary in `src/bin/ipcp.rs` is a thin
//! wrapper.

use crate::core::{AnalysisConfig, ExhaustionPolicy, JumpFunctionKind, SolverKind};
use crate::suite::fuzz::FuzzLevel;
use std::fmt;

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The subcommand to run.
    pub command: Command,
    /// Input source file.
    pub file: String,
    /// Analysis configuration assembled from the flags.
    pub config: AnalysisConfig,
    /// Whether `optimize` should clone procedures (`--clone`).
    pub clone_procedures: bool,
    /// `read` inputs for `run` (from `--input a,b,c`).
    pub input: Vec<i64>,
    /// Whether `analyze` should print per-phase wall-clock and cache
    /// statistics from the analysis session (`--timings`).
    pub timings: bool,
    /// Where `analyze` should write a Chrome trace-event JSON file
    /// (`--trace-out <path>`); `None` leaves tracing disabled.
    pub trace_out: Option<String>,
    /// The procedure `explain` should report on.
    pub explain_proc: Option<String>,
    /// Optional phase or procedure filter for `why`.
    pub why_filter: Option<String>,
    /// The parameter/global/slot name `explain` should narrow to.
    pub explain_param: Option<String>,
    /// Iteration count for `fuzz` (`--iters`).
    pub fuzz_iters: u64,
    /// Campaign seed for `fuzz` (`--seed`).
    pub fuzz_seed: u64,
    /// Where `fuzz` writes minimized repros (`--corpus-dir`); `None`
    /// reports violations without writing files.
    pub fuzz_corpus_dir: Option<String>,
    /// Precision ladder `fuzz` checks (from `--level`, which caps the
    /// ladder at the named level; default: the four forward levels).
    pub fuzz_levels: Vec<FuzzLevel>,
    /// Persistent artifact cache directory (`--cache-dir`); `None`
    /// leaves the cross-run cache disabled.
    pub cache_dir: Option<String>,
    /// The action for the `cache` command.
    pub cache_action: Option<CacheAction>,
    /// Unix socket path for `serve` (`--socket`).
    pub socket: Option<String>,
    /// Bound on concurrently executing analysis requests for `serve`
    /// (`--max-inflight`); excess requests get an `overloaded` error.
    pub max_inflight: usize,
    /// Byte budget for resident tenant sessions in `serve`
    /// (`--max-tenant-bytes`); `None` never evicts.
    pub max_tenant_bytes: Option<u64>,
}

/// Maintenance actions of the `cache` command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheAction {
    /// Report entry count, total bytes, and quarantine count.
    Stats,
    /// Validate every entry, quarantining the ones that fail.
    Verify,
    /// Remove every entry and quarantined file.
    Clear,
}

impl CacheAction {
    fn parse(word: &str) -> Option<CacheAction> {
        Some(match word {
            "stats" => CacheAction::Stats,
            "verify" => CacheAction::Verify,
            "clear" => CacheAction::Clear,
            _ => return None,
        })
    }
}

/// Subcommands of the `ipcp` binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Analyze and print CONSTANTS sets plus the substitution counts.
    Analyze,
    /// Run the program through the IR evaluator.
    Run,
    /// Print the lowered IR.
    Ir,
    /// Substitute constants + eliminate dead code, print transformed IR.
    Transform,
    /// Run the full optimizer (substitute + DCE + optional cloning) and
    /// print the optimized IR.
    Optimize,
    /// Report procedure-cloning opportunities.
    Clones,
    /// Check the FORTRAN no-alias rule.
    Lint,
    /// Explain the provenance of a procedure's interprocedural
    /// constants (justifying call edges, jump-function levels,
    /// return-jump-function recoveries).
    Explain,
    /// Print Prometheus-style metrics of one traced analysis run.
    Metrics,
    /// Explain what an incremental re-analysis recomputed and why,
    /// against the audit ledger persisted next to the disk cache.
    Why,
    /// Differential + metamorphic fuzzing of the optimize pipeline
    /// (semantic preservation at every jump-function level).
    Fuzz,
    /// Inspect or maintain a persistent artifact cache directory.
    Cache,
    /// Run the resident multi-tenant analysis daemon on a Unix socket.
    Serve,
}

impl Command {
    fn parse(word: &str) -> Option<Command> {
        Some(match word {
            "analyze" => Command::Analyze,
            "run" => Command::Run,
            "ir" => Command::Ir,
            "transform" => Command::Transform,
            "optimize" => Command::Optimize,
            "clones" => Command::Clones,
            "lint" => Command::Lint,
            "explain" => Command::Explain,
            "metrics" => Command::Metrics,
            "why" => Command::Why,
            "fuzz" => Command::Fuzz,
            "cache" => Command::Cache,
            "serve" => Command::Serve,
            _ => return None,
        })
    }
}

/// A usage / parse error with a message for the user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageError(pub String);

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.0)?;
        f.write_str(USAGE)
    }
}

impl std::error::Error for UsageError {}

/// The usage text.
pub const USAGE: &str = "\
usage: ipcp <command> <file.mf> [options]

commands:
  analyze     print CONSTANTS sets and substitution counts
  run         execute the program (IR evaluator)
  ir          print the lowered IR
  transform   substitute constants into the *source* and print it
  optimize    full optimizer: substitute + DCE (+ cloning with --clone)
  clones      report procedure-cloning opportunities
  lint        check the FORTRAN no-alias rule
  explain     explain a constant's provenance: explain <file.mf> <proc> [param]
  metrics     print Prometheus-style metrics of one traced analysis run
  why         re-analyze against the persistent cache and explain every
              recomputed phase: why <file.mf> [phase|proc] --cache-dir <dir>
              (names the changed procedures/globals or config facets; the
              audit ledger lives under <dir>/audit/)
  fuzz        differential fuzzing of the optimizer (no file argument);
              checks semantic preservation at all four jump-function levels
              (add --level cond to extend the ladder to conditional
              propagation with its per-procedure monotonicity oracle)
  cache       persistent cache maintenance (no file argument):
              cache <stats|verify|clear> --cache-dir <dir>
  serve       resident analysis daemon (no file argument):
              serve --socket <path> [--cache-dir <dir>] [--max-inflight <N>]
              [--max-tenant-bytes <N>]; accepts line-delimited JSON requests
              ({\"id\":1,\"op\":\"analyze\",\"source\":\"...\"}) with ops
              analyze/explain/why/metrics/shutdown; responses are
              byte-identical to one-shot output

options:
  --level <literal|intra|pass|poly|cond>
                                  analysis precision level: the four forward
                                  jump-function kinds, or `cond` = conditional
                                  constant propagation (polynomial jump
                                  functions + interprocedural branch
                                  feasibility; infeasible call edges are
                                  pruned, sharpening callee constants).
                                  for `fuzz`, checks the whole ladder up to
                                  and including the named level
  --jf <literal|intra|pass|poly>  forward jump function kind (default poly)
  --no-rjf                        disable return jump functions
  --no-mod                        drop interprocedural MOD information
  --complete                      iterate propagation with dead code elimination
  --intraprocedural               purely intraprocedural baseline
  --composition                   full symbolic return-JF composition (extension)
  --gsa                           gated (γ) jump functions (extension)
  --binding-solver                use the binding-multigraph solver
  --clone                         enable procedure cloning in `optimize`
  --input <a,b,c>                 read() inputs for `run`
  --fuel <N>                      analysis fuel budget (default unlimited);
                                  exhausted phases degrade gracefully
  --jobs <N>                      worker threads for the parallel analysis
                                  phases (default: every available core;
                                  0 or 1 runs sequentially — results are
                                  bit-identical at any setting)
  --timings                       print per-phase wall-clock + cache stats
                                  of the analysis session (`analyze` only)
  --trace-out <path>              write a Chrome trace-event JSON file of
                                  the analysis run (`analyze` only; open
                                  in chrome://tracing or Perfetto)
  --on-exhausted <degrade|error>  what fuel exhaustion means (default degrade)
  --iters <N>                     programs to generate (`fuzz` only, default 100)
  --seed <N>                      campaign seed (`fuzz` only, default 1993);
                                  results are independent of --jobs
  --corpus-dir <path>             write minimized repros here (`fuzz` only;
                                  default: report without writing files)
  --cache-dir <path>              persistent artifact cache: `analyze` serves
                                  unmetered runs from it (corrupt entries are
                                  quarantined and recomputed cold); required
                                  by the `cache` command; shared by every
                                  tenant under `serve`
  --socket <path>                 Unix socket the `serve` daemon listens on
                                  (required by `serve`)
  --max-inflight <N>              analysis requests allowed in flight at once
                                  (`serve` only, default 64); excess requests
                                  fail fast with an `overloaded` error
  --max-tenant-bytes <N>          byte budget for resident tenant sessions
                                  (`serve` only, default unlimited); least
                                  recently used sessions are evicted
";

/// Parses the argument list (without the program name).
///
/// # Errors
///
/// Returns a [`UsageError`] describing the first problem found.
pub fn parse_args(args: &[String]) -> Result<Cli, UsageError> {
    let mut it = args.iter();
    let command = it
        .next()
        .and_then(|w| Command::parse(w))
        .ok_or_else(|| UsageError("missing or unknown command".into()))?;
    // `fuzz` generates its own programs, `cache` operates on a
    // directory, and `serve` receives sources over its socket, so none
    // of them takes a file argument.
    let file = if matches!(command, Command::Fuzz | Command::Cache | Command::Serve) {
        String::new()
    } else {
        it.next()
            .cloned()
            .ok_or_else(|| UsageError("missing input file".into()))?
    };

    // The CLI is a leaf consumer, so it defaults to every available core
    // (library callers keep the conservative `IPCP_JOBS`-or-1 default).
    let mut config = AnalysisConfig {
        jobs: crate::core::Parallelism::auto().jobs,
        ..AnalysisConfig::default()
    };
    let mut input = Vec::new();
    let mut clone_procedures = false;
    let mut timings = false;
    let mut trace_out = None;
    let mut fuzz_iters = 100u64;
    let mut fuzz_seed = 1993u64;
    let mut fuzz_corpus_dir = None;
    let mut fuzz_levels = FuzzLevel::FORWARD.to_vec();
    let mut cache_dir = None;
    let mut socket = None;
    let mut max_inflight = crate::core::serve::DEFAULT_MAX_INFLIGHT;
    let mut max_tenant_bytes = None;
    let mut positionals: Vec<String> = Vec::new();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--jf" => {
                let kind = it
                    .next()
                    .ok_or_else(|| UsageError("--jf needs a value".into()))?;
                config.jump_function = match kind.as_str() {
                    "literal" => JumpFunctionKind::Literal,
                    "intra" => JumpFunctionKind::IntraproceduralConstant,
                    "pass" => JumpFunctionKind::PassThrough,
                    "poly" => JumpFunctionKind::Polynomial,
                    other => {
                        return Err(UsageError(format!("unknown jump function `{other}`")));
                    }
                };
            }
            "--level" => {
                let name = it
                    .next()
                    .ok_or_else(|| UsageError("--level needs a value".into()))?;
                let level = match name.as_str() {
                    "literal" => FuzzLevel::Forward(JumpFunctionKind::Literal),
                    "intra" => FuzzLevel::Forward(JumpFunctionKind::IntraproceduralConstant),
                    "pass" => FuzzLevel::Forward(JumpFunctionKind::PassThrough),
                    "poly" => FuzzLevel::Forward(JumpFunctionKind::Polynomial),
                    "cond" => FuzzLevel::Conditional,
                    other => {
                        return Err(UsageError(format!("unknown level `{other}`")));
                    }
                };
                // `--level` reconfigures the analysis for file commands
                // and caps the fuzzing ladder for `fuzz`.
                let lcfg = level.config();
                config.jump_function = lcfg.jump_function;
                config.branch_feasibility = lcfg.branch_feasibility;
                let cut = FuzzLevel::ALL
                    .iter()
                    .position(|&l| l == level)
                    .unwrap_or(FuzzLevel::ALL.len() - 1);
                fuzz_levels = FuzzLevel::ALL[..=cut].to_vec();
            }
            "--no-rjf" => config.return_jump_functions = false,
            "--no-mod" => config.mod_info = false,
            "--complete" => config.complete_propagation = true,
            "--intraprocedural" => {
                config.interprocedural = false;
                config.return_jump_functions = false;
            }
            "--composition" => config.rjf_full_composition = true,
            "--gsa" => config.gsa = true,
            "--clone" => clone_procedures = true,
            "--timings" => timings = true,
            "--trace-out" => {
                let path = it
                    .next()
                    .ok_or_else(|| UsageError("--trace-out needs a path".into()))?;
                trace_out = Some(path.clone());
            }
            "--binding-solver" => config.solver = SolverKind::BindingGraph,
            "--fuel" => {
                let n = it
                    .next()
                    .ok_or_else(|| UsageError("--fuel needs a value".into()))?;
                config.fuel = Some(
                    n.parse::<u64>()
                        .map_err(|_| UsageError(format!("bad --fuel value `{n}`")))?,
                );
            }
            "--jobs" => {
                let n = it
                    .next()
                    .ok_or_else(|| UsageError("--jobs needs a value".into()))?;
                config.jobs = n
                    .parse::<usize>()
                    .map_err(|_| UsageError(format!("bad --jobs value `{n}`")))?;
            }
            "--on-exhausted" => {
                let policy = it
                    .next()
                    .ok_or_else(|| UsageError("--on-exhausted needs a value".into()))?;
                config.on_exhausted = match policy.as_str() {
                    "degrade" => ExhaustionPolicy::Degrade,
                    "error" => ExhaustionPolicy::Error,
                    other => {
                        return Err(UsageError(format!(
                            "unknown exhaustion policy `{other}` (expected degrade or error)"
                        )));
                    }
                };
            }
            "--iters" => {
                let n = it
                    .next()
                    .ok_or_else(|| UsageError("--iters needs a value".into()))?;
                fuzz_iters = n
                    .parse::<u64>()
                    .map_err(|_| UsageError(format!("bad --iters value `{n}`")))?;
            }
            "--seed" => {
                let n = it
                    .next()
                    .ok_or_else(|| UsageError("--seed needs a value".into()))?;
                fuzz_seed = n
                    .parse::<u64>()
                    .map_err(|_| UsageError(format!("bad --seed value `{n}`")))?;
            }
            "--corpus-dir" => {
                let path = it
                    .next()
                    .ok_or_else(|| UsageError("--corpus-dir needs a path".into()))?;
                fuzz_corpus_dir = Some(path.clone());
            }
            "--cache-dir" => {
                let path = it
                    .next()
                    .ok_or_else(|| UsageError("--cache-dir needs a path".into()))?;
                cache_dir = Some(path.clone());
            }
            "--socket" => {
                let path = it
                    .next()
                    .ok_or_else(|| UsageError("--socket needs a path".into()))?;
                socket = Some(path.clone());
            }
            "--max-inflight" => {
                let n = it
                    .next()
                    .ok_or_else(|| UsageError("--max-inflight needs a value".into()))?;
                max_inflight = n
                    .parse::<usize>()
                    .map_err(|_| UsageError(format!("bad --max-inflight value `{n}`")))?;
            }
            "--max-tenant-bytes" => {
                let n = it
                    .next()
                    .ok_or_else(|| UsageError("--max-tenant-bytes needs a value".into()))?;
                max_tenant_bytes = Some(
                    n.parse::<u64>()
                        .map_err(|_| UsageError(format!("bad --max-tenant-bytes value `{n}`")))?,
                );
            }
            "--input" => {
                let list = it
                    .next()
                    .ok_or_else(|| UsageError("--input needs a value".into()))?;
                input = list
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| {
                        s.trim()
                            .parse::<i64>()
                            .map_err(|_| UsageError(format!("bad --input element `{s}`")))
                    })
                    .collect::<Result<_, _>>()?;
            }
            other if other.starts_with("--") => {
                return Err(UsageError(format!("unknown option `{other}`")));
            }
            word => positionals.push(word.to_string()),
        }
    }

    let mut cache_action = None;
    let mut why_filter = None;
    let (explain_proc, explain_param) = if command == Command::Explain {
        let mut pos = positionals.into_iter();
        let proc = pos
            .next()
            .ok_or_else(|| UsageError("explain needs a procedure name".into()))?;
        let param = pos.next();
        if let Some(extra) = pos.next() {
            return Err(UsageError(format!("unexpected argument `{extra}`")));
        }
        (Some(proc), param)
    } else if command == Command::Cache {
        let mut pos = positionals.into_iter();
        let action = pos
            .next()
            .ok_or_else(|| UsageError("cache needs an action (stats, verify, or clear)".into()))?;
        cache_action = Some(CacheAction::parse(&action).ok_or_else(|| {
            UsageError(format!(
                "unknown cache action `{action}` (expected stats, verify, or clear)"
            ))
        })?);
        if let Some(extra) = pos.next() {
            return Err(UsageError(format!("unexpected argument `{extra}`")));
        }
        if cache_dir.is_none() {
            return Err(UsageError("cache needs --cache-dir <dir>".into()));
        }
        (None, None)
    } else if command == Command::Why {
        let mut pos = positionals.into_iter();
        why_filter = pos.next();
        if let Some(extra) = pos.next() {
            return Err(UsageError(format!("unexpected argument `{extra}`")));
        }
        if cache_dir.is_none() {
            return Err(UsageError("why needs --cache-dir <dir>".into()));
        }
        (None, None)
    } else if command == Command::Serve {
        if let Some(extra) = positionals.first() {
            return Err(UsageError(format!("unexpected argument `{extra}`")));
        }
        if socket.is_none() {
            return Err(UsageError("serve needs --socket <path>".into()));
        }
        (None, None)
    } else {
        if let Some(extra) = positionals.first() {
            return Err(UsageError(format!("unexpected argument `{extra}`")));
        }
        (None, None)
    };

    Ok(Cli {
        command,
        file,
        config,
        clone_procedures,
        input,
        timings,
        trace_out,
        explain_proc,
        why_filter,
        explain_param,
        fuzz_iters,
        fuzz_seed,
        fuzz_corpus_dir,
        fuzz_levels,
        cache_dir,
        cache_action,
        socket,
        max_inflight,
        max_tenant_bytes,
    })
}

/// A drift between `parse_args` and `execute`: an invariant the parser
/// should have enforced did not hold at execution time (e.g. a library
/// caller constructed a [`Cli`] by hand). Degrades to a diagnostic with
/// nonzero exit, never a panic.
fn internal_usage(what: &str) -> String {
    format!("internal usage error: {what} (parse_args/execute drift — please report this)")
}

/// Executes a parsed command against source text; returns the output to
/// print.
///
/// # Errors
///
/// Returns a rendered error string (front-end diagnostics or runtime
/// failures).
pub fn execute(cli: &Cli, source: &str) -> Result<String, String> {
    use crate::analysis::{augment_global_vars, compute_modref, CallGraph, ModKills};
    use crate::core::report;
    use std::fmt::Write as _;

    let render_diag = |e: crate::lang::Diagnostics| -> String { e.render(source) };

    match cli.command {
        Command::Analyze => {
            let program = crate::ir::compile_to_ir(source).map_err(render_diag)?;
            let mut session = crate::core::AnalysisSession::new(&program);
            if let Some(dir) = &cli.cache_dir {
                let cache = crate::core::DiskCache::open(dir)
                    .map_err(|e| format!("cannot open cache `{dir}`: {e}"))?;
                session.attach_disk_cache(std::sync::Arc::new(cache));
            }
            session.set_audit_label(&cli.file);
            let session = session;
            let mut trace_note = None;
            let outcome = match &cli.trace_out {
                Some(path) => {
                    let sink = crate::core::obs::TraceSink::new();
                    let outcome = session
                        .analyze_checked_obs(&cli.config, &sink)
                        .map_err(|e| e.to_string())?;
                    let snapshot = sink.snapshot();
                    let json = crate::core::obs::chrome_trace_json(&snapshot);
                    std::fs::write(path, &json)
                        .map_err(|e| format!("cannot write `{path}`: {e}"))?;
                    trace_note = Some(format!(
                        "trace: {} spans, {} transitions written to {path}",
                        snapshot.spans.len(),
                        snapshot.transitions.len()
                    ));
                    outcome
                }
                None => session
                    .analyze_checked(&cli.config)
                    .map_err(|e| e.to_string())?,
            };
            // One renderer for the CLI and the serve daemon keeps their
            // outputs byte-identical (only fuel-limited runs that
            // actually degraded say anything beyond the default).
            let mut out = report::analyze_to_string(&outcome);
            if cli.timings {
                let _ = write!(
                    out,
                    "\nphase timings (analysis session):\n{}",
                    session.stats()
                );
                // Cache traffic rides on --timings so default output
                // stays byte-identical with and without --cache-dir.
                if let Some(cache) = session.disk_cache() {
                    let _ = writeln!(out, "disk cache: {}", cache.stats());
                }
                // Miss-reason attribution from the incrementality audit
                // (`ipcp why` has the per-phase breakdown).
                let miss_reasons = session.stats().miss_reasons;
                if !miss_reasons.is_empty() {
                    let rendered: Vec<String> = miss_reasons
                        .iter()
                        .map(|(label, n)| format!("{label} {n}"))
                        .collect();
                    let _ = writeln!(out, "miss reasons: {}", rendered.join(", "));
                }
                // Memory figures of the scaling study: process peak RSS
                // (when procfs exposes it) and the jump-function arena's
                // high-water mark.
                if let Some(peak) = crate::core::obs::peak_rss_bytes() {
                    let _ = writeln!(out, "peak RSS: {} KiB", peak / 1024);
                }
                let _ = writeln!(
                    out,
                    "jump-function arena high-water: {} entries",
                    crate::core::arena_high_water()
                );
            }
            if let Some(note) = trace_note {
                let _ = writeln!(out, "\n{note}");
            }
            Ok(out)
        }
        Command::Run => {
            let program = crate::ir::compile_to_ir(source).map_err(render_diag)?;
            let config = crate::lang::interp::InterpConfig {
                input: cli.input.clone(),
                ..Default::default()
            };
            let outcome = crate::ir::eval::run(&program, &config).map_err(|e| e.to_string())?;
            let mut out = String::new();
            for v in &outcome.output {
                let _ = writeln!(out, "{v}");
            }
            Ok(out)
        }
        Command::Ir => {
            let program = crate::ir::compile_to_ir(source).map_err(render_diag)?;
            Ok(crate::ir::print::program_to_string(&program))
        }
        Command::Transform => {
            let out = crate::core::transform_source(source, &cli.config).map_err(render_diag)?;
            Ok(format!(
                "# {} occurrences substituted\n{}",
                out.substitutions, out.source
            ))
        }
        Command::Optimize => {
            let program = crate::ir::compile_to_ir(source).map_err(render_diag)?;
            let config = crate::core::OptimizeConfig {
                analysis: cli.config,
                clone_procedures: cli.clone_procedures,
                ..Default::default()
            };
            let (optimized, stats) = crate::core::optimize(&program, &config);
            let mut out = format!(
                "# {} operands substituted, {} clones, {} rounds, {} -> {} instructions\n",
                stats.substituted_operands,
                stats.clones_created,
                stats.rounds,
                stats.instrs_before,
                stats.instrs_after
            );
            out.push_str(&crate::ir::print::program_to_string(&optimized));
            Ok(out)
        }
        Command::Clones => {
            let mut program = crate::ir::compile_to_ir(source).map_err(render_diag)?;
            let cg = CallGraph::new(&program);
            let modref = compute_modref(&program, &cg);
            augment_global_vars(&mut program, &modref);
            let cg = CallGraph::new(&program);
            let kills = ModKills::new(&program, &modref);
            let rjfs = crate::core::build_return_jfs(&program, &cg, &kills);
            let jfs = crate::core::build_forward_jfs(
                &program,
                &cg,
                &modref,
                cli.config.jump_function,
                &kills,
                &crate::core::RjfConstEval { rjfs: &rjfs },
            );
            let vals = crate::core::solver::solve(&program, &cg, &modref, &jfs);
            let ops = crate::core::cloning_opportunities(&program, &cg, &jfs, &vals);
            Ok(crate::core::cloning::opportunities_to_string(
                &program, &ops,
            ))
        }
        Command::Explain => {
            let program = crate::ir::compile_to_ir(source).map_err(render_diag)?;
            let proc = cli
                .explain_proc
                .as_deref()
                .ok_or_else(|| internal_usage("explain reached execution without a procedure"))?;
            crate::core::serve::render_explain(
                &program,
                &cli.config,
                proc,
                cli.explain_param.as_deref(),
            )
        }
        Command::Metrics => {
            let program = crate::ir::compile_to_ir(source).map_err(render_diag)?;
            let mut session = crate::core::AnalysisSession::new(&program);
            if let Some(dir) = &cli.cache_dir {
                let cache = crate::core::DiskCache::open(dir)
                    .map_err(|e| format!("cannot open cache `{dir}`: {e}"))?;
                session.attach_disk_cache(std::sync::Arc::new(cache));
            }
            session.set_audit_label(&cli.file);
            let session = session;
            let sink = crate::core::obs::TraceSink::new();
            session
                .analyze_checked_obs(&cli.config, &sink)
                .map_err(|e| e.to_string())?;
            let mut out = crate::core::obs::prometheus_text(&sink.snapshot());
            let prov = crate::core::analyze_provenance(&program, &cli.config);
            let a = prov.attribution;
            out.push_str(
                "# HELP ipcp_substitutions_by_level Substitutions attributed to each \
                 jump-function provenance level.\n\
                 # TYPE ipcp_substitutions_by_level gauge\n",
            );
            for (label, n) in [
                ("literal", a.literal),
                ("intraprocedural", a.intraprocedural),
                ("pass_through", a.pass_through),
                ("polynomial", a.polynomial),
                ("local", a.local),
            ] {
                let _ = writeln!(out, "ipcp_substitutions_by_level{{level=\"{label}\"}} {n}");
            }
            out.push_str(
                "# HELP ipcp_jumpfn_arena_high_water Peak jump-function arena size \
                 (entries) across the process.\n\
                 # TYPE ipcp_jumpfn_arena_high_water gauge\n",
            );
            let _ = writeln!(
                out,
                "ipcp_jumpfn_arena_high_water {}",
                crate::core::arena_high_water()
            );
            if let Some(peak) = crate::core::obs::peak_rss_bytes() {
                out.push_str(
                    "# HELP ipcp_peak_rss_bytes Process peak resident set size.\n\
                     # TYPE ipcp_peak_rss_bytes gauge\n",
                );
                let _ = writeln!(out, "ipcp_peak_rss_bytes {peak}");
            }
            let miss_reasons = session.stats().miss_reasons;
            if !miss_reasons.is_empty() {
                out.push_str(
                    "# HELP ipcp_miss_reason_total Recomputed artifacts by miss reason \
                     (incrementality audit).\n\
                     # TYPE ipcp_miss_reason_total counter\n",
                );
                for (label, n) in &miss_reasons {
                    let _ = writeln!(out, "ipcp_miss_reason_total{{reason=\"{label}\"}} {n}");
                }
            }
            if let Some(cache) = session.disk_cache() {
                let cs = cache.stats();
                out.push_str(
                    "# HELP ipcp_diskcache_operations_total Persistent-cache traffic of \
                     this run.\n\
                     # TYPE ipcp_diskcache_operations_total counter\n",
                );
                for (op, n) in [
                    ("hits", cs.hits),
                    ("misses", cs.misses),
                    ("writes", cs.writes),
                    ("write_errors", cs.write_errors),
                    ("quarantined", cs.quarantined),
                    ("evicted", cs.evicted),
                ] {
                    let _ = writeln!(out, "ipcp_diskcache_operations_total{{op=\"{op}\"}} {n}");
                }
            }
            Ok(out)
        }
        Command::Why => {
            let program = crate::ir::compile_to_ir(source).map_err(render_diag)?;
            let mut session = crate::core::AnalysisSession::new(&program);
            let dir = cli
                .cache_dir
                .as_deref()
                .ok_or_else(|| internal_usage("why reached execution without --cache-dir"))?;
            let cache = crate::core::DiskCache::open(dir)
                .map_err(|e| format!("cannot open cache `{dir}`: {e}"))?;
            session.attach_disk_cache(std::sync::Arc::new(cache));
            session.set_audit_label(&cli.file);
            let session = session;
            session
                .analyze_checked(&cli.config)
                .map_err(|e| e.to_string())?;
            let audit = session
                .last_audit()
                .ok_or_else(|| "no incrementality audit available (metered run?)".to_string())?;
            Ok(audit.render(cli.why_filter.as_deref()))
        }
        Command::Fuzz => {
            use crate::suite::fuzz::{run_fuzz, FuzzConfig};
            let config = FuzzConfig {
                iters: cli.fuzz_iters,
                seed: cli.fuzz_seed,
                jobs: cli.config.jobs.max(1),
                levels: cli.fuzz_levels.clone(),
                corpus_dir: cli.fuzz_corpus_dir.as_ref().map(std::path::PathBuf::from),
                ..FuzzConfig::default()
            };
            let report = match &cli.trace_out {
                Some(path) => {
                    let sink = crate::core::obs::TraceSink::new();
                    let report = run_fuzz(&config, &sink);
                    let json = crate::core::obs::chrome_trace_json(&sink.snapshot());
                    std::fs::write(path, &json)
                        .map_err(|e| format!("cannot write `{path}`: {e}"))?;
                    report
                }
                None => run_fuzz(&config, &crate::core::obs::NoopSink),
            };
            let ladder: Vec<&str> = config.levels.iter().map(|l| l.name()).collect();
            let mut out = format!(
                "fuzz: seed {} at levels {}\n{}\n",
                cli.fuzz_seed,
                ladder.join("/"),
                report.summary()
            );
            for v in &report.violations {
                let _ = writeln!(
                    out,
                    "VIOLATION [{} @ {}] seed {:#018x}: {}",
                    v.oracle, v.level, v.seed, v.detail
                );
            }
            for path in &report.repro_paths {
                let _ = writeln!(out, "repro written: {}", path.display());
            }
            if report.violations.is_empty() {
                Ok(out)
            } else {
                Err(out)
            }
        }
        Command::Cache => {
            let dir = cli
                .cache_dir
                .as_deref()
                .ok_or_else(|| internal_usage("cache reached execution without --cache-dir"))?;
            let action = cli
                .cache_action
                .ok_or_else(|| internal_usage("cache reached execution without an action"))?;
            let cache = crate::core::DiskCache::open(dir)
                .map_err(|e| format!("cannot open cache `{dir}`: {e}"))?;
            match action {
                CacheAction::Stats => Ok(format!(
                    "cache {dir}: {} entries, {} bytes, {} quarantined\n",
                    cache.entry_count(),
                    cache.total_bytes(),
                    cache.quarantine_count()
                )),
                CacheAction::Verify => {
                    let outcome = cache.verify();
                    Ok(format!(
                        "cache verify: {} valid, {} quarantined\n",
                        outcome.valid, outcome.quarantined
                    ))
                }
                CacheAction::Clear => {
                    let removed = cache.clear();
                    Ok(format!("cache clear: {removed} files removed\n"))
                }
            }
        }
        Command::Serve => {
            let socket = cli
                .socket
                .as_deref()
                .ok_or_else(|| internal_usage("serve reached execution without --socket"))?;
            let config = crate::core::serve::ServeConfig {
                socket: socket.into(),
                cache_dir: cli.cache_dir.as_deref().map(Into::into),
                max_tenant_bytes: cli.max_tenant_bytes,
                max_inflight: cli.max_inflight,
                jobs: cli.config.jobs,
            };
            let summary = crate::core::serve::run(config).map_err(|e| format!("serve: {e}"))?;
            Ok(format!(
                "serve: {} requests served ({} overloaded), {} tenants resident, \
                 {} evicted; clean shutdown\n",
                summary.requests, summary.overloaded, summary.tenants, summary.evictions
            ))
        }
        Command::Lint => {
            let program = crate::ir::compile_to_ir(source).map_err(render_diag)?;
            let cg = CallGraph::new(&program);
            let modref = compute_modref(&program, &cg);
            let violations = crate::analysis::check_aliasing(&program, &modref);
            if violations.is_empty() {
                Ok("no aliasing violations\n".into())
            } else {
                let mut out = String::new();
                for v in &violations {
                    let _ = writeln!(
                        out,
                        "{}: call to `{}`: {}",
                        program.proc(v.caller).name,
                        program.proc(v.callee).name,
                        v.kind
                    );
                }
                Err(out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    const PROGRAM: &str = "proc f(a)\n  print(a)\nend\nmain\n  call f(5)\nend\n";

    #[test]
    fn parse_minimal() {
        let cli = parse_args(&args(&["analyze", "x.mf"])).unwrap();
        assert_eq!(cli.command, Command::Analyze);
        assert_eq!(cli.file, "x.mf");
        // The CLI upgrades the library's conservative jobs default to
        // every available core; everything else is untouched.
        let expected = AnalysisConfig {
            jobs: crate::core::Parallelism::auto().jobs,
            ..AnalysisConfig::default()
        };
        assert_eq!(cli.config, expected);
    }

    #[test]
    fn parse_jobs_flag() {
        let cli = parse_args(&args(&["analyze", "x.mf", "--jobs", "4"])).unwrap();
        assert_eq!(cli.config.jobs, 4);
        let cli = parse_args(&args(&["analyze", "x.mf", "--jobs", "0"])).unwrap();
        assert_eq!(cli.config.jobs, 0);
        assert!(parse_args(&args(&["analyze", "x.mf", "--jobs"])).is_err());
        assert!(parse_args(&args(&["analyze", "x.mf", "--jobs", "many"])).is_err());
        assert!(parse_args(&args(&["analyze", "x.mf", "--jobs", "-2"])).is_err());
    }

    #[test]
    fn parse_all_flags() {
        let cli = parse_args(&args(&[
            "analyze",
            "x.mf",
            "--jf",
            "pass",
            "--no-rjf",
            "--no-mod",
            "--complete",
            "--composition",
            "--gsa",
            "--binding-solver",
        ]))
        .unwrap();
        assert_eq!(cli.config.jump_function, JumpFunctionKind::PassThrough);
        assert!(!cli.config.return_jump_functions);
        assert!(!cli.config.mod_info);
        assert!(cli.config.complete_propagation);
        assert!(cli.config.rjf_full_composition);
        assert!(cli.config.gsa);
        assert_eq!(cli.config.solver, SolverKind::BindingGraph);
    }

    #[test]
    fn parse_input_list() {
        let cli = parse_args(&args(&["run", "x.mf", "--input", "1,2, 3"])).unwrap();
        assert_eq!(cli.input, vec![1, 2, 3]);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_args(&args(&[])).is_err());
        assert!(parse_args(&args(&["bogus", "x.mf"])).is_err());
        assert!(parse_args(&args(&["analyze"])).is_err());
        assert!(parse_args(&args(&["analyze", "x.mf", "--jf"])).is_err());
        assert!(parse_args(&args(&["analyze", "x.mf", "--jf", "magic"])).is_err());
        assert!(parse_args(&args(&["analyze", "x.mf", "--wat"])).is_err());
        assert!(parse_args(&args(&["run", "x.mf", "--input", "1,x"])).is_err());
        let err = parse_args(&args(&[])).unwrap_err();
        assert!(err.to_string().contains("usage:"));
    }

    #[test]
    fn parse_fuel_flags() {
        let cli = parse_args(&args(&[
            "analyze",
            "x.mf",
            "--fuel",
            "10000",
            "--on-exhausted",
            "error",
        ]))
        .unwrap();
        assert_eq!(cli.config.fuel, Some(10000));
        assert_eq!(cli.config.on_exhausted, ExhaustionPolicy::Error);
        let cli = parse_args(&args(&["analyze", "x.mf", "--on-exhausted", "degrade"])).unwrap();
        assert_eq!(cli.config.on_exhausted, ExhaustionPolicy::Degrade);
        assert_eq!(cli.config.fuel, None);
    }

    #[test]
    fn parse_fuel_errors() {
        assert!(parse_args(&args(&["analyze", "x.mf", "--fuel"])).is_err());
        assert!(parse_args(&args(&["analyze", "x.mf", "--fuel", "lots"])).is_err());
        assert!(parse_args(&args(&["analyze", "x.mf", "--fuel", "-3"])).is_err());
        assert!(parse_args(&args(&["analyze", "x.mf", "--on-exhausted"])).is_err());
        assert!(parse_args(&args(&["analyze", "x.mf", "--on-exhausted", "panic"])).is_err());
        let err = parse_args(&args(&["analyze", "x.mf", "--fuel", "lots"])).unwrap_err();
        assert!(err.to_string().contains("bad --fuel value"), "{err}");
    }

    #[test]
    fn execute_analyze_starved_degrades() {
        let cli = parse_args(&args(&["analyze", "x.mf", "--fuel", "0"])).unwrap();
        let out = execute(&cli, PROGRAM).unwrap();
        assert!(out.contains("robustness:"), "{out}");
        assert!(out.contains("exhausted"), "{out}");
        // Degraded result is coarser, never wrong: no constants claimed.
        assert!(out.contains("no interprocedural constants"), "{out}");
    }

    #[test]
    fn execute_analyze_starved_error_policy() {
        let cli = parse_args(&args(&[
            "analyze",
            "x.mf",
            "--fuel",
            "0",
            "--on-exhausted",
            "error",
        ]))
        .unwrap();
        let err = execute(&cli, PROGRAM).unwrap_err();
        assert!(err.contains("fuel exhausted"), "{err}");
    }

    #[test]
    fn execute_analyze_ample_fuel_is_clean() {
        let plain = parse_args(&args(&["analyze", "x.mf"])).unwrap();
        let fueled = parse_args(&args(&["analyze", "x.mf", "--fuel", "1000000"])).unwrap();
        let a = execute(&plain, PROGRAM).unwrap();
        let b = execute(&fueled, PROGRAM).unwrap();
        assert_eq!(a, b, "ample fuel must not change output");
        assert!(!a.contains("robustness:"));
    }

    #[test]
    fn execute_analyze() {
        let cli = parse_args(&args(&["analyze", "x.mf"])).unwrap();
        let out = execute(&cli, PROGRAM).unwrap();
        assert!(out.contains("CONSTANTS(f)"), "{out}");
        assert!(out.contains("a = 5"), "{out}");
    }

    /// A constant predicate guards a dispatch: only `--level cond` may
    /// prune the dead call edge and recover the callee constant.
    const DISPATCH: &str = "proc kernel(k)\n  print((k + 1))\nend\nproc dispatch(mode)\n  if (mode == 1) then\n    call kernel(3)\n  else\n    call kernel(9)\n  end\nend\nmain\n  call dispatch(1)\nend\n";

    #[test]
    fn execute_analyze_level_cond_prunes_infeasible_edges() {
        let poly = parse_args(&args(&["analyze", "x.mf", "--level", "poly"])).unwrap();
        let out = execute(&poly, DISPATCH).unwrap();
        assert!(!out.contains("CONSTANTS(kernel)"), "{out}");
        assert!(!out.contains("pruned call edges"), "{out}");

        let cond = parse_args(&args(&["analyze", "x.mf", "--level", "cond"])).unwrap();
        let out = execute(&cond, DISPATCH).unwrap();
        assert!(out.contains("CONSTANTS(kernel)"), "{out}");
        assert!(out.contains("k = 3"), "{out}");
        assert!(out.contains("pruned call edges: 1"), "{out}");
    }

    #[test]
    fn execute_explain_level_cond_justifies_the_surviving_edge() {
        let cli = parse_args(&args(&[
            "explain", "x.mf", "kernel", "k", "--level", "cond",
        ]))
        .unwrap();
        let out = execute(&cli, DISPATCH).unwrap();
        assert!(out.contains("kernel.k = 3"), "{out}");
        assert!(out.contains("dispatch"), "{out}");
    }

    #[test]
    fn parse_and_execute_timings() {
        let plain = parse_args(&args(&["analyze", "x.mf"])).unwrap();
        assert!(!plain.timings);
        let cli = parse_args(&args(&["analyze", "x.mf", "--timings"])).unwrap();
        assert!(cli.timings);
        let out = execute(&cli, PROGRAM).unwrap();
        assert!(out.contains("phase timings"), "{out}");
        assert!(out.contains("ssa"), "{out}");
        assert!(out.contains("misses"), "{out}");
        // Without the flag the output is unchanged.
        let quiet = execute(&plain, PROGRAM).unwrap();
        assert!(!quiet.contains("phase timings"), "{quiet}");
    }

    #[test]
    fn execute_run() {
        let cli = parse_args(&args(&["run", "x.mf"])).unwrap();
        let out = execute(&cli, PROGRAM).unwrap();
        assert_eq!(out, "5\n");
    }

    #[test]
    fn execute_run_with_input() {
        let cli = parse_args(&args(&["run", "x.mf", "--input", "9"])).unwrap();
        let out = execute(&cli, "main\n  read(x)\n  print(x + 1)\nend\n").unwrap();
        assert_eq!(out, "10\n");
    }

    #[test]
    fn execute_ir_and_transform() {
        let cli = parse_args(&args(&["ir", "x.mf"])).unwrap();
        let out = execute(&cli, PROGRAM).unwrap();
        assert!(out.contains("call f"), "{out}");

        let cli = parse_args(&args(&["transform", "x.mf"])).unwrap();
        let out = execute(&cli, PROGRAM).unwrap();
        assert!(out.contains("occurrences substituted"), "{out}");
        assert!(out.contains("print(5)"), "{out}");
    }

    #[test]
    fn execute_optimize() {
        let cli = parse_args(&args(&["optimize", "x.mf", "--clone"])).unwrap();
        assert!(cli.clone_procedures);
        let src = "proc f(a)\n  print(a)\nend\nmain\n  call f(1)\n  call f(2)\nend\n";
        let out = execute(&cli, src).unwrap();
        assert!(out.contains("clones"), "{out}");
        assert!(out.contains("f__c1"), "{out}");
    }

    #[test]
    fn execute_clones() {
        let cli = parse_args(&args(&["clones", "x.mf"])).unwrap();
        let src = "proc f(a)\n  print(a)\nend\nmain\n  call f(1)\n  call f(2)\nend\n";
        let out = execute(&cli, src).unwrap();
        assert!(out.contains("clone `f`"), "{out}");
    }

    #[test]
    fn execute_lint() {
        let cli = parse_args(&args(&["lint", "x.mf"])).unwrap();
        assert!(execute(&cli, PROGRAM).unwrap().contains("no aliasing"));
        let bad = "proc f(a, b)\n  a = 1\nend\nmain\n  call f(x, x)\nend\n";
        let err = execute(&cli, bad).unwrap_err();
        assert!(err.contains("passed by reference"), "{err}");
    }

    const GLOBALS_PROGRAM: &str = "\
global n\n\
proc init()\n  n = 64\nend\n\
proc compute(k)\n  print(n + k)\nend\n\
main\n  call init()\n  call compute(8)\nend\n";

    #[test]
    fn parse_explain_positionals() {
        let cli = parse_args(&args(&["explain", "x.mf", "compute", "k"])).unwrap();
        assert_eq!(cli.command, Command::Explain);
        assert_eq!(cli.explain_proc.as_deref(), Some("compute"));
        assert_eq!(cli.explain_param.as_deref(), Some("k"));
        let cli = parse_args(&args(&["explain", "x.mf", "compute"])).unwrap();
        assert_eq!(cli.explain_param, None);
        assert!(parse_args(&args(&["explain", "x.mf"])).is_err());
        assert!(parse_args(&args(&["explain", "x.mf", "a", "b", "c"])).is_err());
        // Positionals are rejected everywhere else.
        assert!(parse_args(&args(&["analyze", "x.mf", "stray"])).is_err());
    }

    #[test]
    fn execute_explain() {
        let cli = parse_args(&args(&["explain", "x.mf", "compute", "k"])).unwrap();
        let out = execute(&cli, GLOBALS_PROGRAM).unwrap();
        assert!(out.contains("compute.k = 8"), "{out}");
        assert!(out.contains("<- main"), "{out}");
        // Without a parameter the whole procedure plus the attribution
        // table is reported.
        let cli = parse_args(&args(&["explain", "x.mf", "compute"])).unwrap();
        let out = execute(&cli, GLOBALS_PROGRAM).unwrap();
        assert!(out.contains("compute.n = 64"), "{out}");
        assert!(out.contains("substitutions by provenance level"), "{out}");
        // Unknown names are errors.
        let cli = parse_args(&args(&["explain", "x.mf", "nosuch"])).unwrap();
        assert!(execute(&cli, GLOBALS_PROGRAM).is_err());
    }

    #[test]
    fn execute_metrics() {
        let cli = parse_args(&args(&["metrics", "x.mf"])).unwrap();
        let out = execute(&cli, GLOBALS_PROGRAM).unwrap();
        assert!(out.contains("ipcp_spans_total"), "{out}");
        assert!(out.contains("ipcp_phase_self_time_microseconds"), "{out}");
        assert!(
            out.contains("ipcp_substitutions_by_level{level=\"literal\"}"),
            "{out}"
        );
    }

    #[test]
    fn parse_why() {
        let cli = parse_args(&args(&["why", "x.mf", "--cache-dir", "d"])).unwrap();
        assert_eq!(cli.command, Command::Why);
        assert_eq!(cli.why_filter, None);
        assert_eq!(cli.cache_dir.as_deref(), Some("d"));
        let cli = parse_args(&args(&["why", "x.mf", "ssa", "--cache-dir", "d"])).unwrap();
        assert_eq!(cli.why_filter.as_deref(), Some("ssa"));
        // --cache-dir is mandatory and at most one filter is accepted.
        assert!(parse_args(&args(&["why", "x.mf"])).is_err());
        assert!(parse_args(&args(&["why", "x.mf", "a", "b", "--cache-dir", "d"])).is_err());
    }

    #[test]
    fn parse_serve() {
        let cli = parse_args(&args(&["serve", "--socket", "/tmp/ipcp.sock"])).unwrap();
        assert_eq!(cli.command, Command::Serve);
        assert_eq!(cli.socket.as_deref(), Some("/tmp/ipcp.sock"));
        assert_eq!(cli.max_inflight, crate::core::serve::DEFAULT_MAX_INFLIGHT);
        assert_eq!(cli.max_tenant_bytes, None);
        let cli = parse_args(&args(&[
            "serve",
            "--socket",
            "s.sock",
            "--max-inflight",
            "3",
            "--max-tenant-bytes",
            "4096",
            "--cache-dir",
            "d",
        ]))
        .unwrap();
        assert_eq!(cli.max_inflight, 3);
        assert_eq!(cli.max_tenant_bytes, Some(4096));
        assert_eq!(cli.cache_dir.as_deref(), Some("d"));
        // --socket is mandatory, positionals are rejected, and the
        // numeric flags validate their arguments.
        assert!(parse_args(&args(&["serve"])).is_err());
        assert!(parse_args(&args(&["serve", "x.mf", "--socket", "s"])).is_err());
        assert!(parse_args(&args(&["serve", "--socket", "s", "--max-inflight", "lots"])).is_err());
        assert!(parse_args(&args(&["serve", "--socket", "s", "--max-tenant-bytes"])).is_err());
    }

    /// The four execution arms that rely on parser-enforced invariants
    /// must degrade to a usage error — never panic — when handed a
    /// hand-constructed [`Cli`] that violates them (e.g. from a library
    /// caller bypassing `parse_args`).
    #[test]
    fn execute_degrades_gracefully_on_parser_executor_drift() {
        let base = parse_args(&args(&["analyze", "x.mf"])).unwrap();
        let cases = [
            Cli {
                command: Command::Explain,
                explain_proc: None,
                ..base.clone()
            },
            Cli {
                command: Command::Why,
                cache_dir: None,
                ..base.clone()
            },
            Cli {
                command: Command::Cache,
                cache_dir: None,
                cache_action: Some(CacheAction::Stats),
                ..base.clone()
            },
            Cli {
                command: Command::Cache,
                cache_dir: Some("unused".into()),
                cache_action: None,
                ..base.clone()
            },
            Cli {
                command: Command::Serve,
                socket: None,
                ..base.clone()
            },
        ];
        for cli in cases {
            let err = execute(&cli, PROGRAM)
                .expect_err(&format!("{:?} must fail, not succeed", cli.command));
            assert!(
                err.contains("internal usage error"),
                "{:?}: {err}",
                cli.command
            );
        }
    }

    #[test]
    fn execute_why_attributes_an_edit() {
        let dir = temp_cache_dir("why");
        let dir_str = dir.to_string_lossy().into_owned();
        let why = parse_args(&args(&["why", "x.mf", "--cache-dir", &dir_str])).unwrap();
        let cold = execute(&why, GLOBALS_PROGRAM).unwrap();
        assert!(cold.contains("first analysis under this label"), "{cold}");
        assert!(cold.contains("first computation"), "{cold}");
        // Edit only `compute`; its closure is itself plus its caller.
        let edited = GLOBALS_PROGRAM.replace("print(n + k)", "print(n * k)");
        let out = execute(&why, &edited).unwrap();
        assert!(out.contains("changed procedures: compute"), "{out}");
        assert!(out.contains("input changed (procs: compute)"), "{out}");
        assert!(!out.contains("first computation"), "{out}");
        assert!(
            !out.contains("init:"),
            "init is outside the closure:\n{out}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn timings_reports_miss_reasons_with_cache_dir() {
        let dir = temp_cache_dir("timings-reasons");
        let dir_str = dir.to_string_lossy().into_owned();
        let cli = parse_args(&args(&[
            "analyze",
            "x.mf",
            "--cache-dir",
            &dir_str,
            "--timings",
        ]))
        .unwrap();
        let out = execute(&cli, GLOBALS_PROGRAM).unwrap();
        assert!(out.contains("miss reasons: first-computation"), "{out}");
        // A warm re-run recomputes nothing, so the line disappears.
        let warm = execute(&cli, GLOBALS_PROGRAM).unwrap();
        assert!(!warm.contains("miss reasons:"), "{warm}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn execute_metrics_with_cache_dir_reports_disk_counters() {
        let dir = temp_cache_dir("metrics-disk");
        let dir_str = dir.to_string_lossy().into_owned();
        let cli = parse_args(&args(&["metrics", "x.mf", "--cache-dir", &dir_str])).unwrap();
        let out = execute(&cli, GLOBALS_PROGRAM).unwrap();
        assert!(
            out.contains("ipcp_miss_reason_total{reason=\"first-computation\"}"),
            "{out}"
        );
        assert!(
            out.contains("ipcp_diskcache_operations_total{op=\"misses\"} 1"),
            "{out}"
        );
        assert!(
            out.contains("ipcp_diskcache_operations_total{op=\"writes\"} 1"),
            "{out}"
        );
        // Warm run: served from disk, nothing recomputed.
        let warm = execute(&cli, GLOBALS_PROGRAM).unwrap();
        assert!(
            warm.contains("ipcp_diskcache_operations_total{op=\"hits\"} 1"),
            "{warm}"
        );
        assert!(!warm.contains("ipcp_miss_reason_total"), "{warm}");
        // Without --cache-dir the disk counter family is absent.
        let plain = parse_args(&args(&["metrics", "x.mf"])).unwrap();
        let out = execute(&plain, GLOBALS_PROGRAM).unwrap();
        assert!(!out.contains("ipcp_diskcache_operations_total"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_trace_out() {
        let cli = parse_args(&args(&["analyze", "x.mf", "--trace-out", "t.json"])).unwrap();
        assert_eq!(cli.trace_out.as_deref(), Some("t.json"));
        assert!(parse_args(&args(&["analyze", "x.mf", "--trace-out"])).is_err());
    }

    #[test]
    fn execute_analyze_trace_out_writes_valid_trace() {
        let path = std::env::temp_dir().join("ipcp_cli_trace_test.json");
        let path_str = path.to_string_lossy().into_owned();
        let cli = parse_args(&args(&["analyze", "x.mf", "--trace-out", &path_str])).unwrap();
        let out = execute(&cli, GLOBALS_PROGRAM).unwrap();
        assert!(out.contains("trace:"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let stats = crate::core::obs::validate_chrome_trace(&json).unwrap();
        assert!(stats.spans > 0, "{stats:?}");
        // The analysis result itself is unchanged by tracing.
        let plain = parse_args(&args(&["analyze", "x.mf"])).unwrap();
        let quiet = execute(&plain, GLOBALS_PROGRAM).unwrap();
        assert!(out.starts_with(&quiet), "traced output must extend plain");
    }

    #[test]
    fn parse_fuzz_takes_no_file() {
        let cli = parse_args(&args(&["fuzz"])).unwrap();
        assert_eq!(cli.command, Command::Fuzz);
        assert!(cli.file.is_empty());
        assert_eq!(cli.fuzz_iters, 100);
        assert_eq!(cli.fuzz_seed, 1993);
        assert_eq!(cli.fuzz_corpus_dir, None);
        let cli = parse_args(&args(&[
            "fuzz",
            "--iters",
            "25",
            "--seed",
            "42",
            "--jobs",
            "3",
            "--corpus-dir",
            "repros",
        ]))
        .unwrap();
        assert_eq!(cli.fuzz_iters, 25);
        assert_eq!(cli.fuzz_seed, 42);
        assert_eq!(cli.config.jobs, 3);
        assert_eq!(cli.fuzz_corpus_dir.as_deref(), Some("repros"));
        assert!(parse_args(&args(&["fuzz", "--iters"])).is_err());
        assert!(parse_args(&args(&["fuzz", "--iters", "lots"])).is_err());
        assert!(parse_args(&args(&["fuzz", "--seed", "x"])).is_err());
    }

    #[test]
    fn execute_fuzz_small_campaign_is_clean() {
        let cli = parse_args(&args(&["fuzz", "--iters", "15", "--seed", "11"])).unwrap();
        let out = execute(&cli, "").unwrap();
        assert!(out.contains("0 violations"), "{out}");
        assert!(out.contains("15 programs"), "{out}");
    }

    #[test]
    fn execute_reports_compile_errors() {
        let cli = parse_args(&args(&["analyze", "x.mf"])).unwrap();
        let err = execute(&cli, "main\ncall nope()\nend\n").unwrap_err();
        assert!(err.contains("unknown procedure"), "{err}");
    }

    #[test]
    fn parse_cache_command() {
        let cli = parse_args(&args(&["cache", "stats", "--cache-dir", "d"])).unwrap();
        assert_eq!(cli.command, Command::Cache);
        assert!(cli.file.is_empty());
        assert_eq!(cli.cache_action, Some(CacheAction::Stats));
        assert_eq!(cli.cache_dir.as_deref(), Some("d"));
        let cli = parse_args(&args(&["cache", "verify", "--cache-dir", "d"])).unwrap();
        assert_eq!(cli.cache_action, Some(CacheAction::Verify));
        let cli = parse_args(&args(&["cache", "clear", "--cache-dir", "d"])).unwrap();
        assert_eq!(cli.cache_action, Some(CacheAction::Clear));
        // Missing action, unknown action, extra args, missing dir.
        assert!(parse_args(&args(&["cache", "--cache-dir", "d"])).is_err());
        assert!(parse_args(&args(&["cache", "tidy", "--cache-dir", "d"])).is_err());
        assert!(parse_args(&args(&["cache", "stats", "extra", "--cache-dir", "d"])).is_err());
        assert!(parse_args(&args(&["cache", "stats"])).is_err());
        assert!(parse_args(&args(&["analyze", "x.mf", "--cache-dir"])).is_err());
    }

    fn temp_cache_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ipcp-cli-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn execute_analyze_with_cache_dir_is_output_identical_warm_and_cold() {
        let dir = temp_cache_dir("warm");
        let dir_str = dir.to_string_lossy().into_owned();
        let plain = parse_args(&args(&["analyze", "x.mf"])).unwrap();
        let cached = parse_args(&args(&["analyze", "x.mf", "--cache-dir", &dir_str])).unwrap();
        let golden = execute(&plain, GLOBALS_PROGRAM).unwrap();
        let cold = execute(&cached, GLOBALS_PROGRAM).unwrap();
        let warm = execute(&cached, GLOBALS_PROGRAM).unwrap();
        assert_eq!(cold, golden, "cold cached run must match uncached output");
        assert_eq!(warm, golden, "warm cached run must match uncached output");
        // The warm run really came from disk: a fresh process-equivalent
        // session with --timings reports a diskcache hit.
        let timed = parse_args(&args(&[
            "analyze",
            "x.mf",
            "--cache-dir",
            &dir_str,
            "--timings",
        ]))
        .unwrap();
        let out = execute(&timed, GLOBALS_PROGRAM).unwrap();
        assert!(out.contains("diskcache"), "{out}");
        assert!(out.contains("disk cache: hits 1"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn execute_cache_stats_verify_clear() {
        let dir = temp_cache_dir("maint");
        let dir_str = dir.to_string_lossy().into_owned();
        // Populate the cache with one analysis.
        let analyze = parse_args(&args(&["analyze", "x.mf", "--cache-dir", &dir_str])).unwrap();
        execute(&analyze, GLOBALS_PROGRAM).unwrap();

        let stats = parse_args(&args(&["cache", "stats", "--cache-dir", &dir_str])).unwrap();
        let out = execute(&stats, "").unwrap();
        assert!(out.contains("1 entries"), "{out}");
        assert!(out.contains("0 quarantined"), "{out}");

        let verify = parse_args(&args(&["cache", "verify", "--cache-dir", &dir_str])).unwrap();
        let out = execute(&verify, "").unwrap();
        assert!(out.contains("1 valid, 0 quarantined"), "{out}");

        // Corrupt the entry; verify must quarantine it.
        let entry = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|d| d.path())
            .find(|p| p.extension().is_some_and(|e| e == "art"))
            .unwrap();
        let mut bytes = std::fs::read(&entry).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&entry, &bytes).unwrap();
        let out = execute(&verify, "").unwrap();
        assert!(out.contains("0 valid, 1 quarantined"), "{out}");

        let clear = parse_args(&args(&["cache", "clear", "--cache-dir", &dir_str])).unwrap();
        let out = execute(&clear, "").unwrap();
        assert!(out.contains("1 files removed"), "{out}");
        let out = execute(&stats, "").unwrap();
        assert!(out.contains("0 entries"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn execute_analyze_recovers_goldenly_from_corrupt_cache() {
        let dir = temp_cache_dir("corrupt");
        let dir_str = dir.to_string_lossy().into_owned();
        let plain = parse_args(&args(&["analyze", "x.mf"])).unwrap();
        let cached = parse_args(&args(&["analyze", "x.mf", "--cache-dir", &dir_str])).unwrap();
        let golden = execute(&plain, GLOBALS_PROGRAM).unwrap();
        execute(&cached, GLOBALS_PROGRAM).unwrap();
        // Truncate the entry mid-payload.
        let entry = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|d| d.path())
            .find(|p| p.extension().is_some_and(|e| e == "art"))
            .unwrap();
        let bytes = std::fs::read(&entry).unwrap();
        std::fs::write(&entry, &bytes[..bytes.len() / 2]).unwrap();
        let recovered = execute(&cached, GLOBALS_PROGRAM).unwrap();
        assert_eq!(recovered, golden, "corruption must fall back to cold");
        let stats = parse_args(&args(&["cache", "stats", "--cache-dir", &dir_str])).unwrap();
        let out = execute(&stats, "").unwrap();
        assert!(out.contains("1 quarantined"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
