//! # ipcp — interprocedural constant propagation with jump functions
//!
//! A from-scratch reproduction of *"Interprocedural Constant Propagation:
//! A Study of Jump Function Implementations"* (Grove & Torczon,
//! PLDI 1993), including every substrate the study needed:
//!
//! | crate | role |
//! |---|---|
//! | [`lang`] | Minifor, a FORTRAN-77-flavoured mini language (front end + reference interpreter) |
//! | [`ir`] | three-address CFG IR, lowering, validation, evaluation |
//! | [`ssa`] | dominators, dominance frontiers, SSA construction with pluggable call-kill oracles |
//! | [`analysis`] | call graph, MOD/REF summaries, polynomials, symbolic value numbering, SCCP, DCE |
//! | [`core`] | the paper's contribution: four forward jump functions, return jump functions, the interprocedural solver, substitution counting, the configurable driver |
//! | [`suite`] | the twelve synthetic SPEC/PERFECT-style benchmark programs |
//!
//! The `ipcp-bench` crate regenerates the paper's Tables 1–3 (binaries
//! `table1`/`table2`/`table3`/`report`) and benchmarks the §3.1.5 cost
//! tradeoff with Criterion.
//!
//! ## Quick start
//!
//! ```
//! use ipcp::core::{analyze_source, AnalysisConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let outcome = analyze_source(
//!     "global n\n\
//!      proc init()\n  n = 64\nend\n\
//!      proc kernel(k)\n  print(n + k)\nend\n\
//!      main\n  call init()\n  call kernel(8)\nend\n",
//!     &AnalysisConfig::default(),
//! )?;
//! assert_eq!(outcome.constant_slot_count(), 2); // kernel: k = 8, n = 64
//! # Ok(())
//! # }
//! ```

pub mod cli;

/// The Minifor front end (re-export of `ipcp-lang`).
pub use ipcp_lang as lang;

/// The mid-level IR (re-export of `ipcp-ir`).
pub use ipcp_ir as ir;

/// SSA construction (re-export of `ipcp-ssa`).
pub use ipcp_ssa as ssa;

/// Supporting analyses (re-export of `ipcp-analysis`).
pub use ipcp_analysis as analysis;

/// Interprocedural constant propagation (re-export of `ipcp-core`).
pub use ipcp_core as core;

/// The synthetic benchmark suite (re-export of `ipcp-suite`).
pub use ipcp_suite as suite;

pub use ipcp_core::{analyze, analyze_source, AnalysisConfig, AnalysisOutcome, JumpFunctionKind};
