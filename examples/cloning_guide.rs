//! Procedure cloning guided by interprocedural constants — the
//! Metzger & Stroud application the paper cites (§1, §5): constants that
//! *conflict* across call sites (and so meet to ⊥) become per-clone
//! constants once the procedure is specialized by arriving value.
//!
//! ```sh
//! cargo run --example cloning_guide
//! ```

use ipcp::analysis::{augment_global_vars, compute_modref, CallGraph, ModKills};
use ipcp::core::{
    apply_cloning, build_forward_jfs, build_return_jfs, cloning, cloning_opportunities, report,
    solver, AnalysisConfig, JumpFunctionKind, RjfConstEval,
};
use ipcp::lang::interp::InterpConfig;

/// A stencil kernel invoked with two different radii and one unknown one:
/// `radius` meets to ⊥, although each call site knows it exactly.
const SOURCE: &str = "
proc stencil(radius, n)
  s = 0
  do i = 1, n
    s = s + i * radius
  end
  print(s)
end

main
  call stencil(1, 10)
  call stencil(3, 10)
  call stencil(3, 20)
  read(r)
  call stencil(r, 30)
end
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut program = ipcp::ir::compile_to_ir(SOURCE)?;
    let cg = CallGraph::new(&program);
    let modref = compute_modref(&program, &cg);
    augment_global_vars(&mut program, &modref);
    let cg = CallGraph::new(&program);
    let kills = ModKills::new(&program, &modref);
    let rjfs = build_return_jfs(&program, &cg, &kills);
    let jfs = build_forward_jfs(
        &program,
        &cg,
        &modref,
        JumpFunctionKind::Polynomial,
        &kills,
        &RjfConstEval { rjfs: &rjfs },
    );
    let vals = solver::solve(&program, &cg, &modref, &jfs);

    // 1. Guidance: which procedures are worth cloning, on which slot?
    let ops = cloning_opportunities(&program, &cg, &jfs, &vals);
    println!("== cloning opportunities ==");
    print!("{}", cloning::opportunities_to_string(&program, &ops));
    // Both formals conflict across sites: n (10/20/30) and radius (1/3/?).
    assert_eq!(ops.len(), 2);

    // 2. Transform: clone per constant variant and redirect call sites.
    let (cloned, n) = apply_cloning(&program, &cg, &jfs, &vals, &ops);
    println!("\ncreated {n} clones; procedures now:");
    for pid in cloned.proc_ids() {
        println!("  {}", cloned.proc(pid).name);
    }

    // Behaviour is unchanged.
    let cfg = InterpConfig {
        input: vec![2],
        ..InterpConfig::default()
    };
    let before = ipcp::ir::eval::run(&program, &cfg)?;
    let after = ipcp::ir::eval::run(&cloned, &cfg)?;
    assert_eq!(before.output, after.output);

    // 3. Re-analyze: each clone's radius is now a constant.
    let plain = ipcp::core::analyze(&program, &AnalysisConfig::default());
    let specialized = ipcp::core::analyze(&cloned, &AnalysisConfig::default());
    println!("\n== before cloning ==");
    print!("{}", report::constants_to_string(&plain));
    println!("== after cloning ==");
    print!("{}", report::constants_to_string(&specialized));
    println!(
        "\nconstant slots: {} → {}, substitutions: {} → {}",
        plain.constant_slot_count(),
        specialized.constant_slot_count(),
        plain.substitutions.total,
        specialized.substitutions.total
    );
    assert!(specialized.constant_slot_count() > plain.constant_slot_count());
    assert!(specialized.substitutions.total > plain.substitutions.total);
    Ok(())
}
