//! The dependence-analysis motivation (paper §1): Shen, Li & Yew found
//! that with interprocedural constants "approximately 50 percent of the
//! subscripts which had previously been considered nonlinear were found
//! to be linear" — and nonlinear subscripts defeat dependence analyzers.
//!
//! This example classifies every array subscript in a library-style
//! program under the intraprocedural baseline and under full
//! interprocedural constant propagation.
//!
//! ```sh
//! cargo run --example subscripts
//! ```

use ipcp::core::{subscript_counts, AnalysisConfig};

/// A BLAS-flavoured library: strides and leading dimensions arrive as
/// arguments or via a configuration routine, so the baseline sees them as
/// unknown. Two kernels are genuinely nonlinear (indirect/diagonal-
/// product indexing) and stay that way.
const SOURCE: &str = "
global lda

proc setlda()
  lda = 8
end

proc axpy(x(), y(), n, incx)
  do i = 1, n
    y(i) = y(i) + x(incx * i - incx + 1)
  end
end

proc getcol(m(), col, n, out())
  do i = 1, n
    out(i) = m(lda * (i - 1) + col)
  end
end

proc diagprod(m(), n)
  p = 1
  do i = 1, n
    p = p * m(i * i)
  end
  print(p)
end

proc gather(m(), idx(), n)
  s = 0
  do i = 1, n
    s = s + m(idx(i))
  end
  print(s)
end

main
  integer a(64), b(64), c(64), perm(8)
  call setlda()
  do i = 1, 8
    a(i) = i
    perm(i) = 9 - i
  end
  call axpy(a, b, 8, 1)
  call getcol(a, 3, 8, c)
  call diagprod(a, 8)
  call gather(a, perm, 8)
end
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = ipcp::ir::compile_to_ir(SOURCE)?;

    let baseline = subscript_counts(&program, &AnalysisConfig::intraprocedural_baseline());
    let full = subscript_counts(&program, &AnalysisConfig::default());

    println!("array subscripts: {}", baseline.total());
    println!(
        "  intraprocedural view:   {} constant, {} linear, {} nonlinear",
        baseline.constant, baseline.linear, baseline.nonlinear
    );
    println!(
        "  with interprocedural:   {} constant, {} linear, {} nonlinear",
        full.constant, full.linear, full.nonlinear
    );

    let recovered = baseline.nonlinear - full.nonlinear;
    let pct = 100.0 * recovered as f64 / baseline.nonlinear as f64;
    println!(
        "\n{recovered} of {} previously-nonlinear subscripts became analyzable ({pct:.0}%)",
        baseline.nonlinear
    );
    println!("(Shen, Li & Yew measured ≈50% on FORTRAN library routines — paper §1)");

    // axpy's strided access and getcol's lda-indexed access linearize;
    // diagprod (i*i) and gather (indirect) legitimately stay nonlinear.
    assert!(full.nonlinear < baseline.nonlinear);
    assert!(
        full.nonlinear >= 2,
        "i*i and indirect indexing stay nonlinear"
    );
    assert!(
        (40.0..=80.0).contains(&pct),
        "roughly the Shen-Li-Yew ratio, got {pct}"
    );
    Ok(())
}
