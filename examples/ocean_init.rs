//! The `ocean` story (paper §4.2): an initialization routine assigns
//! constants to many globals, and *return jump functions* are what lets
//! the analyzer see those constants in every routine called afterwards —
//! in the paper they "more than tripled the number of constants" found in
//! ocean. This example reproduces the effect on the synthetic `ocean`
//! benchmark and on a minimal distilled program.
//!
//! ```sh
//! cargo run --example ocean_init
//! ```

use ipcp::core::{analyze, analyze_source, AnalysisConfig};
use ipcp::suite::{generate, spec};

const DISTILLED: &str = "
global nx
global ny

proc init()
  nx = 64
  ny = 32
end

proc stepx()
  do i = 1, nx
    print(i)
  end
end

proc stepy()
  do j = 1, ny
    print(j)
  end
end

main
  call init()
  call stepx()
  call stepy()
end
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let with = AnalysisConfig::default();
    let without = AnalysisConfig {
        return_jump_functions: false,
        ..with
    };

    println!("== distilled init-routine pattern ==");
    let w = analyze_source(DISTILLED, &with)?;
    let wo = analyze_source(DISTILLED, &without)?;
    println!(
        "with return jump functions:    {} constant slots, {} substitutions",
        w.constant_slot_count(),
        w.substitutions.total
    );
    println!(
        "without return jump functions: {} constant slots, {} substitutions",
        wo.constant_slot_count(),
        wo.substitutions.total
    );
    assert!(w.constant_slot_count() > wo.constant_slot_count());

    println!("\n== synthetic `ocean` benchmark ==");
    let ocean = generate(&spec("ocean").expect("ocean spec"));
    let ir = ipcp::ir::compile_to_ir(&ocean.source)?;
    let w = analyze(&ir, &with);
    let wo = analyze(&ir, &without);
    let ratio = w.substitutions.total as f64 / wo.substitutions.total.max(1) as f64;
    println!(
        "with RJFs: {}   without: {}   ratio: {ratio:.2}x  (paper: 194 / 62 = 3.13x)",
        w.substitutions.total, wo.substitutions.total
    );
    assert!(
        ratio > 2.5,
        "return jump functions should matter ~3x on ocean"
    );
    Ok(())
}
