//! Quickstart: compile a Minifor program, run interprocedural constant
//! propagation, and inspect the results.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ipcp::core::{analyze_source, report, AnalysisConfig};

const SOURCE: &str = "
global rows
global cols

proc setup()
  rows = 100
  cols = 100
end

proc scale(factor, v())
  do i = 1, rows
    v(i) = v(i) * factor
  end
end

proc checksum(v())
  s = 0
  do i = 1, rows
    s = s + v(i)
  end
  print(s)
end

main
  integer data(100)
  call setup()
  do i = 1, rows
    data(i) = i
  end
  call scale(3, data)
  call checksum(data)
end
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The default configuration is the paper's most precise practical
    // setup: polynomial jump functions + return jump functions + MOD.
    let outcome = analyze_source(SOURCE, &AnalysisConfig::default())?;

    println!("== CONSTANTS sets (values known on entry to each procedure) ==");
    print!("{}", report::constants_to_string(&outcome));

    println!("\n== substitutions per procedure (the paper's metric) ==");
    print!("{}", report::substitutions_to_string(&outcome));

    println!("\n== summary ==");
    println!("{}", report::summary_line(&outcome));

    // `scale` and `checksum` both learn rows = 100 (set by `setup` and
    // carried by its return jump function), and `scale` learns factor = 3.
    assert!(outcome.constant_slot_count() >= 3);
    Ok(())
}
