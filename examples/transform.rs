//! Source-to-source transformation: substitute the discovered constants
//! into the program, run dead code elimination, and print the IR before
//! and after — then run both to show they are observationally equivalent.
//!
//! ```sh
//! cargo run --example transform
//! ```

use ipcp::analysis::{
    augment_global_vars, compute_modref, dce, sccp, CallGraph, ModKills, SccpConfig,
};
use ipcp::core::{build_return_jfs, solver, subst, RjfLattice};
use ipcp::ir::{compile_to_ir, eval, print as ir_print, validate};
use ipcp::lang::interp::InterpConfig;
use ipcp::ssa::build_ssa;

const SOURCE: &str = "
global mode

proc configure()
  mode = 2
end

proc kernel(n)
  if mode == 1 then
    read(extra)
    print(n + extra)
  else
    print(n * mode)
  end
end

main
  call configure()
  call kernel(21)
end
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut program = compile_to_ir(SOURCE)?;
    let before_text = ir_print::program_to_string(&program);
    let before_out = eval::run(&program, &InterpConfig::default())?;

    // Analyze: call graph → MOD/REF → return JFs → forward JFs → solve.
    let cg = CallGraph::new(&program);
    let modref = compute_modref(&program, &cg);
    augment_global_vars(&mut program, &modref);
    let cg = CallGraph::new(&program);
    let kills = ModKills::new(&program, &modref);
    let rjfs = build_return_jfs(&program, &cg, &kills);
    let eval_rjfs = ipcp::core::RjfConstEval { rjfs: &rjfs };
    let jfs = ipcp::core::build_forward_jfs(
        &program,
        &cg,
        &modref,
        ipcp::core::JumpFunctionKind::Polynomial,
        &kills,
        &eval_rjfs,
    );
    let vals = solver::solve(&program, &cg, &modref, &jfs);
    let lattice = RjfLattice { rjfs: &rjfs };

    // Transform: substitute constants, then eliminate dead code.
    let mut transformed = program.clone();
    let replaced = subst::apply_substitutions(&mut transformed, &kills, &lattice, Some(&vals));
    for pid in transformed.proc_ids().collect::<Vec<_>>() {
        let proc_copy = transformed.proc(pid).clone();
        let ssa = build_ssa(&transformed, &proc_copy, &kills);
        let env = solver::entry_env_of(&transformed, pid, &vals);
        let result = sccp::sccp(
            &proc_copy,
            &ssa,
            &SccpConfig {
                entry_env: &env,
                calls: &lattice,
            },
        );
        let mut proc = proc_copy;
        dce::dce_round(&transformed, &mut proc, &ssa, &result, &kills);
        *transformed.proc_mut(pid) = proc;
    }
    validate::validate(&transformed).expect("transformed program is valid IR");

    println!("== original IR ==\n{before_text}");
    println!("== transformed IR ({replaced} operands substituted, dead code removed) ==");
    println!("{}", ir_print::program_to_string(&transformed));

    let after_out = eval::run(&transformed, &InterpConfig::default())?;
    assert_eq!(
        before_out.output, after_out.output,
        "transformation preserves behaviour"
    );
    println!(
        "both versions print {:?} — behaviour preserved",
        before_out.output
    );

    // The dead `mode == 1` branch (with its read!) is gone.
    let kernel = transformed.proc(transformed.proc_by_name("kernel").unwrap());
    let reads_left = kernel
        .blocks
        .iter()
        .flat_map(|b| &b.instrs)
        .filter(|i| matches!(i, ipcp::ir::Instr::Read { .. }))
        .count();
    assert_eq!(reads_left, 0, "the dead branch's read was eliminated");
    Ok(())
}
