//! A tour of the four forward jump function implementations (paper §3.1):
//! the same program analyzed at each precision level, showing which
//! interprocedural constants each one discovers.
//!
//! ```sh
//! cargo run --example jump_function_tour
//! ```

use ipcp::core::{analyze_source, report, AnalysisConfig, JumpFunctionKind};

/// One constant flows four different ways:
///  * `leaf_lit`   gets a source literal           → every kind finds it,
///  * `leaf_comp`  gets a locally computed constant → intraprocedural+,
///  * `leaf_chain` sits behind a pass-through chain → pass-through+,
///  * `leaf_poly`  gets an affine function of a formal → polynomial only.
const SOURCE: &str = "
proc leaf_lit(a)
  print(a)
end

proc leaf_comp(b)
  print(b)
end

proc leaf_chain(c)
  print(c)
end

proc leaf_poly(d)
  print(d)
end

proc relay(x)
  call leaf_chain(x)
  call leaf_poly(2 * x + 1)
end

main
  call leaf_lit(10)
  k = 5 * 4
  call leaf_comp(k)
  call relay(7)
end
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for kind in JumpFunctionKind::ALL {
        let config = AnalysisConfig {
            jump_function: kind,
            ..AnalysisConfig::default()
        };
        let outcome = analyze_source(SOURCE, &config)?;
        println!("=== {kind} jump functions ===");
        print!("{}", report::constants_to_string(&outcome));
        println!(
            "    {} constant slot(s), {} substitution(s)\n",
            outcome.constant_slot_count(),
            outcome.substitutions.total
        );
    }

    // The hierarchy the paper reports: literal ⊆ intraprocedural ⊆
    // pass-through ⊆ polynomial.
    let totals: Vec<usize> = JumpFunctionKind::ALL
        .iter()
        .map(|&kind| {
            let config = AnalysisConfig {
                jump_function: kind,
                ..AnalysisConfig::default()
            };
            analyze_source(SOURCE, &config)
                .expect("compiles")
                .constant_slot_count()
        })
        .collect();
    assert!(totals.windows(2).all(|w| w[0] <= w[1]), "{totals:?}");
    assert_eq!(
        totals,
        vec![2, 3, 4, 5],
        "literal, intra, pass-through, polynomial"
    );
    println!("constant slots per kind: {totals:?} — strictly growing precision");
    Ok(())
}
