//! The parallelization motivation (paper §1): "interprocedural constants
//! are often used as loop bounds", and knowing them "allows the compiler
//! to make informed decisions about the profitability of parallel
//! execution". This example finds every `do` loop whose trip count
//! becomes a compile-time constant once interprocedural constants are
//! known — information a parallelizing compiler would use directly.
//!
//! ```sh
//! cargo run --example loop_bounds
//! ```

use ipcp::analysis::{
    augment_global_vars, compute_modref, sccp, CallGraph, LatticeVal, ModKills, PessimisticCalls,
    SccpConfig,
};
use ipcp::core::{solver, AnalysisConfig, RjfLattice};
use ipcp::ir::compile_to_ir;
use ipcp::ssa::{build_ssa, SsaTerminator};

const SOURCE: &str = "
global gridsize

proc setup()
  gridsize = 512
end

proc smooth(v(), n)
  do i = 1, n
    v(i) = v(i) + 1
  end
end

proc sweep(v())
  do i = 1, gridsize
    v(i) = v(i) * 2
  end
end

proc ragged(v(), m)
  do i = 1, m
    v(i) = 0
  end
end

main
  integer field(512)
  call setup()
  call smooth(field, 512)
  call sweep(field)
  read(limit)
  call ragged(field, limit)
end
";

/// Counts loop back-edge branches whose condition is constant-bounded:
/// we report a branch as "analyzable" when the loop-bound comparison has
/// a constant right-hand side under the given entry environment.
fn constant_bounded_loops(
    program: &ipcp::ir::Program,
    vals: Option<&solver::ValSets>,
    kills: &ModKills<'_>,
) -> usize {
    let mut found = 0;
    for pid in program.proc_ids() {
        let proc = program.proc(pid);
        let ssa = build_ssa(program, proc, kills);
        let bottom = ipcp::analysis::sccp::bottom_entry;
        let result = match vals {
            Some(v) => {
                let env = solver::entry_env_of(program, pid, v);
                sccp::sccp(
                    &proc.clone(),
                    &ssa,
                    &SccpConfig {
                        entry_env: &env,
                        calls: &PessimisticCalls,
                    },
                )
            }
            None => sccp::sccp(
                &proc.clone(),
                &ssa,
                &SccpConfig {
                    entry_env: &bottom,
                    calls: &PessimisticCalls,
                },
            ),
        };
        for (b, blk) in ssa.rpo_blocks() {
            // A loop header: a branch whose block is its own successor's
            // dominator and has a back edge — approximated here as any
            // branch fed by a `<=`/`>=` comparison against a constant.
            if let SsaTerminator::Branch { cond, .. } = &blk.term {
                let _ = b;
                if let Some(name) = cond.as_name() {
                    if let ipcp::ssa::DefSite::Instr { block, index } = ssa.def(name).site {
                        if let Some(src_blk) = ssa.block(block) {
                            if let ipcp::ssa::SsaInstr::Binary { op, rhs, .. } =
                                &src_blk.instrs[index]
                            {
                                use ipcp::ir::instr::BinOp;
                                if matches!(op, BinOp::Le | BinOp::Ge)
                                    && matches!(result.of_operand(*rhs), LatticeVal::Const(_))
                                {
                                    found += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    found
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut program = compile_to_ir(SOURCE)?;
    let cg = CallGraph::new(&program);
    let modref = compute_modref(&program, &cg);
    augment_global_vars(&mut program, &modref);
    let cg = CallGraph::new(&program);
    let kills = ModKills::new(&program, &modref);

    // Without interprocedural information: only literal in-procedure
    // bounds are constant.
    let before = constant_bounded_loops(&program, None, &kills);

    // With it: `smooth`'s n = 512 and `sweep`'s gridsize = 512 join in.
    let rjfs = ipcp::core::build_return_jfs(&program, &cg, &kills);
    let eval_rjfs = ipcp::core::RjfConstEval { rjfs: &rjfs };
    let jfs = ipcp::core::build_forward_jfs(
        &program,
        &cg,
        &modref,
        ipcp::core::JumpFunctionKind::Polynomial,
        &kills,
        &eval_rjfs,
    );
    let vals = solver::solve(&program, &cg, &modref, &jfs);
    let _ = RjfLattice { rjfs: &rjfs };
    let after = constant_bounded_loops(&program, Some(&vals), &kills);

    println!("loops with compile-time-constant bounds:");
    println!("  intraprocedural view only: {before}");
    println!("  with interprocedural constants: {after}");
    println!("  (`ragged`'s bound comes from `read`, so it stays unknown)");
    assert!(after > before);

    // Cross-check with the driver façade.
    let outcome = ipcp::core::analyze(&program, &AnalysisConfig::default());
    println!(
        "\ndriver summary: {}",
        ipcp::core::report::summary_line(&outcome)
    );
    Ok(())
}
