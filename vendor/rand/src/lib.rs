//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of `rand` it actually uses: a
//! seedable deterministic generator (`StdRng`), the `SeedableRng`
//! constructor `seed_from_u64`, and `Rng::gen_range` over half-open
//! integer ranges. The generator is splitmix64 — statistically fine for
//! test-program generation and fully deterministic across platforms.

use std::ops::Range;

/// Core source of randomness: a 64-bit output stream.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds. Only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// splitmix64: tiny, solid, deterministic.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(state: u64) -> Self {
        SplitMix64 { state }
    }
}

pub mod rngs {
    /// The standard generator. Unlike upstream `rand` this is a small
    /// deterministic PRNG, which is exactly what the test-suite
    /// generator wants (stable programs per seed across platforms).
    pub type StdRng = super::SplitMix64;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000), b.gen_range(0..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let u = rng.gen_range(2usize..9);
            assert!((2..9).contains(&u));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<i64> = (0..8).map(|_| a.gen_range(0i64..1_000_000)).collect();
        let vb: Vec<i64> = (0..8).map(|_| b.gen_range(0i64..1_000_000)).collect();
        assert_ne!(va, vb);
    }
}
