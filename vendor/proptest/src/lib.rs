//! Offline drop-in subset of the `proptest` 1.x API.
//!
//! The build environment cannot reach crates.io, so the workspace
//! vendors the slice of proptest its tests use:
//!
//! * the [`strategy::Strategy`] trait with `prop_map`, `prop_recursive`
//!   and `boxed`;
//! * strategies for integer ranges, tuples, `&'static str` patterns of
//!   the form `.{a,b}`, [`sample::select`], [`collection::vec`] and
//!   [`bool::ANY`];
//! * the [`proptest!`], [`prop_compose!`], [`prop_oneof!`],
//!   [`prop_assert!`] and [`prop_assert_eq!`] macros;
//! * [`test_runner::ProptestConfig`] with a `cases` knob.
//!
//! Generation is deterministic (per-case seeded splitmix64) so CI
//! failures reproduce exactly. There is no shrinking: on failure the
//! runner prints the generated input and re-raises the panic, which is
//! enough to paste the offending program into a unit test.

pub mod strategy;

pub mod test_runner {
    /// Runner configuration. Only `cases` is consulted; `max_shrink_iters`
    /// exists for struct-update compatibility (`..Default::default()`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property is checked against.
        pub cases: u32,
        /// Accepted for compatibility; the shim does not shrink.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// Deterministic per-case generator state (splitmix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_case(case: u64) -> Self {
            // Distinct, well-mixed stream per case index.
            TestRng {
                state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// Drives one property: generates `config.cases` inputs and runs the
    /// body on each, reporting the failing input on panic.
    pub fn run_proptest<S, F>(config: ProptestConfig, strategy: S, mut body: F)
    where
        S: crate::strategy::Strategy,
        S::Value: std::fmt::Debug,
        F: FnMut(S::Value),
    {
        for case in 0..config.cases {
            let mut rng = TestRng::for_case(case as u64);
            let value = strategy.generate(&mut rng);
            let shown = format!("{value:#?}");
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                body(value);
            }));
            if let Err(payload) = outcome {
                eprintln!(
                    "proptest: case {case}/{} failed for input:\n{shown}",
                    config.cases
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding one element of `options`, uniformly.
    #[derive(Clone, Debug)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Uniform choice among the given options (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy yielding a `Vec` whose length is drawn from `len` and
    /// whose elements are drawn from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform `bool` strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod num {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);
}

pub mod string {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `&'static str` acts as a string strategy, as in upstream proptest
    /// where the pattern is a full regex. The shim understands the one
    /// form the repository uses — `.{lo,hi}` — and treats any other
    /// pattern as a literal. Generated characters mix printable ASCII
    /// with newlines, tabs and a few multibyte code points so lexer
    /// fuzzing still sees interesting input.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            match parse_dot_repeat(self) {
                Some((lo, hi)) => {
                    let span = (hi - lo + 1) as u64;
                    let n = lo + rng.below(span) as usize;
                    (0..n).map(|_| random_char(rng)).collect()
                }
                None => (*self).to_string(),
            }
        }
    }

    /// Parses `.{lo,hi}` and returns `(lo, hi)`.
    fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
        let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
        let (lo, hi) = rest.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }

    fn random_char(rng: &mut TestRng) -> char {
        match rng.below(20) {
            0 => '\n',
            1 => '\t',
            2 => char::from_u32(0x00C0 + rng.below(0x80) as u32).unwrap_or('é'),
            3 => char::from_u32(0x4E00 + rng.below(0x100) as u32).unwrap_or('中'),
            _ => (0x20 + rng.below(0x5F) as u8) as char,
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

// ---- macros ---------------------------------------------------------------

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `#[test] fn name(binding in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (@impl ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::test_runner::run_proptest(
                    config,
                    ($($strategy,)+),
                    |($($arg,)+)| $body,
                );
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Defines a function returning a composed strategy:
/// `prop_compose! { fn name()(a in s1, b in s2) -> T { expr } }`.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($outer:tt)*)(
        $($arg:ident in $strategy:expr),+ $(,)?
    ) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(
                ($($strategy,)+),
                move |($($arg,)+)| $body,
            )
        }
    };
}

/// Weighted or unweighted union of strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy)),)+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy)),)+
        ])
    };
}

/// Asserts inside a property; the runner reports the generated input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn digits() -> impl Strategy<Value = String> {
        (0i64..10).prop_map(|d| d.to_string())
    }

    prop_compose! {
        fn pair()(a in 1i64..5, b in digits()) -> String {
            format!("{a}:{b}")
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_in_bounds(v in -20i64..21) {
            prop_assert!((-20..21).contains(&v));
        }

        #[test]
        fn composed_pairs_parse(s in pair()) {
            let (a, b) = s.split_once(':').expect("separator");
            prop_assert!(a.parse::<i64>().is_ok(), "bad a: {}", a);
            prop_assert!(b.parse::<i64>().is_ok());
        }

        #[test]
        fn oneof_and_collections(
            words in crate::collection::vec(
                crate::sample::select(vec!["x", "y"]),
                0..4,
            ),
            flag in crate::bool::ANY,
            text in ".{0,16}",
        ) {
            prop_assert!(words.len() < 4);
            prop_assert!(text.chars().count() <= 16);
            let _ = flag;
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        let leaf = (0i64..10).prop_map(|v| v.to_string()).boxed();
        let expr = leaf.prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner)
                .prop_map(|(a, b)| format!("({a}+{b})"))
                .boxed()
        });
        let mut rng = crate::test_runner::TestRng::for_case(9);
        for _ in 0..50 {
            let s = expr.generate(&mut rng);
            assert!(!s.is_empty());
        }
    }

    #[test]
    fn union_respects_weights_loosely() {
        let u = prop_oneof![9 => Just(1u8), 1 => Just(2u8)];
        let mut rng = crate::test_runner::TestRng::for_case(3);
        let ones = (0..200).filter(|_| u.generate(&mut rng) == 1).count();
        assert!(ones > 120, "weighted union heavily favors 1, got {ones}");
    }
}
