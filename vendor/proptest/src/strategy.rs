//! The `Strategy` trait and combinators.
//!
//! A strategy in this shim is a deterministic generator: given the
//! per-case RNG it produces one value. Shrinking is intentionally
//! absent; the runner reports the whole failing input instead.

use crate::test_runner::TestRng;
use std::rc::Rc;

pub trait Strategy {
    type Value;

    /// Produces one value from the per-case RNG.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, map }
    }

    /// Builds a recursive strategy: at each of `depth` levels the result
    /// is either the accumulated strategy so far or one application of
    /// `recurse` to it. `_desired_size` and `_expected_branch_size`
    /// exist for signature compatibility with upstream.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            let deeper = recurse(strat.clone()).boxed();
            // Lean toward leaves so expected output size stays small.
            strat = Union::new(vec![(2, strat), (1, deeper)]).boxed();
        }
        strat
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            generate: Rc::new(move |rng| self.generate(rng)),
        }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.inner.generate(rng))
    }
}

/// Type-erased, cheaply clonable strategy handle.
pub struct BoxedStrategy<V> {
    generate: Rc<dyn Fn(&mut TestRng) -> V>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            generate: Rc::clone(&self.generate),
        }
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.generate)(rng)
    }
}

/// Weighted union of same-valued strategies; used by `prop_oneof!`.
pub struct Union<V> {
    options: Vec<(u32, BoxedStrategy<V>)>,
    total_weight: u64,
}

impl<V> Union<V> {
    pub fn new(options: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! requires at least one arm");
        let total_weight = options.iter().map(|&(w, _)| w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! weights must not all be zero");
        Union {
            options,
            total_weight,
        }
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
            total_weight: self.total_weight,
        }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total_weight);
        for (weight, strat) in &self.options {
            if pick < *weight as u64 {
                return strat.generate(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("pick is below the total weight")
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
