//! Offline drop-in subset of the `criterion` 0.5 API.
//!
//! The build environment cannot reach crates.io, so the workspace
//! vendors the slice of criterion the benches use: `Criterion`,
//! `BenchmarkGroup` (with `sample_size`, `bench_function`,
//! `bench_with_input`, `finish`), `BenchmarkId::new`, `black_box`, and
//! the `criterion_group!`/`criterion_main!` macros. Measurement is a
//! simple wall-clock median over a handful of samples — enough to
//! compare orders of magnitude and keep the bench binaries honest
//! (they compile, run, and time real work), without upstream's
//! statistical machinery.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: fmt::Display, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up call, then `sample_count` timed samples.
        black_box(routine());
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed / self.iters_per_sample as u32);
        }
    }
}

fn run_one(name: &str, sample_count: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        sample_count,
    };
    f(&mut bencher);
    bencher.samples.sort();
    let median = bencher
        .samples
        .get(bencher.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    println!(
        "bench: {name:<60} median {median:>12.3?} ({} samples)",
        bencher.samples.len()
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_count: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Upstream requires >= 10; the shim just keeps runs short.
        self.sample_count = n.clamp(1, 10);
        self
    }

    pub fn bench_function<S: fmt::Display, F: FnMut(&mut Bencher)>(&mut self, id: S, mut f: F) {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_count, |b| f(b));
    }

    pub fn bench_with_input<S, I, F>(&mut self, id: S, input: &I, mut f: F)
    where
        S: fmt::Display,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_count, |b| f(b, input));
    }

    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_count: 5,
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, 5, |b| f(b));
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut calls = 0usize;
        group.bench_function("f", |b| b.iter(|| calls += 1));
        group.bench_with_input(BenchmarkId::new("g", 3), &4usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        assert!(calls >= 2);
    }
}
