//! SSA form data structures.
//!
//! SSA is built as a *parallel* representation: the underlying IR is left
//! untouched, and an [`SsaProc`] mirrors its reachable blocks with renamed
//! operands. Only integer/real **scalars** get SSA names; arrays remain
//! opaque (loads are treated as unknown values by the constant analyses,
//! exactly as in the paper).
//!
//! Calls carry explicit *kill* lists: the caller-side variables a call may
//! redefine (by-reference actuals and globals). The kill sets are supplied
//! by a [`crate::build::KillOracle`], which is how interprocedural MOD
//! information — or its absence — is threaded into SSA construction.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use ipcp_ir::{BlockId, ProcId, TrapKind, VarId};
pub use ipcp_lang::ast::{BinOp, UnOp};
use std::collections::HashMap;
use std::fmt;

/// An SSA value name (index into [`SsaProc::defs`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SsaName(pub u32);

impl SsaName {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SsaName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Where an SSA name is defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefSite {
    /// The variable's value on procedure entry (formals and globals carry
    /// the incoming interprocedural value; locals are undefined/zero).
    Entry,
    /// A phi node at the start of `block`.
    Phi {
        /// Block holding the phi.
        block: BlockId,
    },
    /// The explicit destination of the instruction at `block.index`.
    Instr {
        /// Defining block.
        block: BlockId,
        /// Instruction index within the block.
        index: usize,
    },
    /// An implicit definition by the call at `block.index` (a by-reference
    /// actual or global the callee may modify).
    CallImplicit {
        /// Defining block.
        block: BlockId,
        /// Instruction index within the block.
        index: usize,
    },
}

/// Metadata for one SSA name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefInfo {
    /// The source variable this name is a version of.
    pub var: VarId,
    /// Defining site.
    pub site: DefSite,
}

/// An operand in SSA form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SsaOperand {
    /// Integer literal.
    Const(i64),
    /// Real literal.
    RealConst(f64),
    /// An SSA value.
    Name(SsaName),
}

impl SsaOperand {
    /// The SSA name, if this operand is one.
    pub fn as_name(self) -> Option<SsaName> {
        match self {
            SsaOperand::Name(n) => Some(n),
            _ => None,
        }
    }

    /// The integer literal, if this operand is one.
    pub fn as_const(self) -> Option<i64> {
        match self {
            SsaOperand::Const(c) => Some(c),
            _ => None,
        }
    }
}

/// A call argument in SSA form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsaCallArg {
    /// The value flowing into the callee (for by-ref arguments, the current
    /// SSA name of the referenced variable; `None` for whole arrays, which
    /// have no scalar SSA value).
    pub value: Option<SsaOperand>,
    /// The referenced variable for by-ref arguments.
    pub by_ref_var: Option<VarId>,
}

/// A variable implicitly redefined by a call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SsaKill {
    /// The caller-side variable.
    pub var: VarId,
    /// Its new SSA name after the call.
    pub name: SsaName,
}

/// An instruction in SSA form (mirrors [`ipcp_ir::Instr`]).
#[derive(Debug, Clone, PartialEq)]
pub enum SsaInstr {
    /// `dst = src`
    Copy {
        /// Defined name.
        dst: SsaName,
        /// Source.
        src: SsaOperand,
    },
    /// `dst = op src`
    Unary {
        /// Defined name.
        dst: SsaName,
        /// Operator.
        op: UnOp,
        /// Operand.
        src: SsaOperand,
    },
    /// `dst = lhs op rhs`
    Binary {
        /// Defined name.
        dst: SsaName,
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: SsaOperand,
        /// Right operand.
        rhs: SsaOperand,
    },
    /// `dst = (real) src`
    IntToReal {
        /// Defined name.
        dst: SsaName,
        /// Source.
        src: SsaOperand,
    },
    /// `dst = arr(index)` — always an unknown value to the analyses.
    Load {
        /// Defined name.
        dst: SsaName,
        /// Array variable (not SSA-renamed).
        arr: VarId,
        /// Index operand.
        index: SsaOperand,
    },
    /// `arr(index) = value`
    Store {
        /// Array variable (not SSA-renamed).
        arr: VarId,
        /// Index operand.
        index: SsaOperand,
        /// Stored value.
        value: SsaOperand,
    },
    /// A call with explicit implicit-def (kill) list.
    Call {
        /// Callee procedure.
        callee: ProcId,
        /// Arguments, positionally matching the callee's formals.
        args: Vec<SsaCallArg>,
        /// Function result name.
        dst: Option<SsaName>,
        /// Variables this call may redefine, with their post-call names.
        kills: Vec<SsaKill>,
        /// Snapshot of the reaching names of every scalar global in the
        /// caller's variable table, taken *before* the call. Jump function
        /// construction reads a global's value at the call site from here
        /// (globals are implicit actual parameters — the paper's
        /// footnote 1).
        globals_in: Vec<(VarId, SsaName)>,
    },
    /// `dst = read()`
    Read {
        /// Defined name.
        dst: SsaName,
    },
    /// `print(value)`
    Print {
        /// Printed operand.
        value: SsaOperand,
    },
}

impl SsaInstr {
    /// The explicit destination name, if any (does not include call kills).
    pub fn dst(&self) -> Option<SsaName> {
        match self {
            SsaInstr::Copy { dst, .. }
            | SsaInstr::Unary { dst, .. }
            | SsaInstr::Binary { dst, .. }
            | SsaInstr::IntToReal { dst, .. }
            | SsaInstr::Load { dst, .. }
            | SsaInstr::Read { dst } => Some(*dst),
            SsaInstr::Call { dst, .. } => *dst,
            SsaInstr::Store { .. } | SsaInstr::Print { .. } => None,
        }
    }

    /// Invokes `f` on every operand this instruction reads.
    pub fn for_each_use(&self, mut f: impl FnMut(SsaOperand)) {
        match self {
            SsaInstr::Copy { src, .. }
            | SsaInstr::Unary { src, .. }
            | SsaInstr::IntToReal { src, .. } => f(*src),
            SsaInstr::Binary { lhs, rhs, .. } => {
                f(*lhs);
                f(*rhs);
            }
            SsaInstr::Load { index, .. } => f(*index),
            SsaInstr::Store { index, value, .. } => {
                f(*index);
                f(*value);
            }
            SsaInstr::Call { args, .. } => {
                for a in args {
                    if let Some(v) = a.value {
                        f(v);
                    }
                }
            }
            SsaInstr::Print { value } => f(*value),
            SsaInstr::Read { .. } => {}
        }
    }
}

/// A block terminator in SSA form.
#[derive(Debug, Clone, PartialEq)]
pub enum SsaTerminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Conditional branch.
    Branch {
        /// Condition.
        cond: SsaOperand,
        /// Non-zero successor.
        then_bb: BlockId,
        /// Zero successor.
        else_bb: BlockId,
    },
    /// Procedure return.
    Return {
        /// Returned value (functions only).
        value: Option<SsaOperand>,
        /// Snapshot of the reaching names of every formal and scalar
        /// global at this exit. Return jump function construction reads a
        /// slot's exit value from here.
        exit: Vec<(VarId, SsaName)>,
    },
    /// Runtime trap.
    Trap(TrapKind),
}

impl SsaTerminator {
    /// Successor blocks.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            SsaTerminator::Jump(b) => vec![*b],
            SsaTerminator::Branch {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            _ => vec![],
        }
    }

    /// The returned operand, if this is a `Return` with a value.
    pub fn return_value(&self) -> Option<SsaOperand> {
        match self {
            SsaTerminator::Return { value, .. } => *value,
            _ => None,
        }
    }
}

/// A phi node.
#[derive(Debug, Clone, PartialEq)]
pub struct Phi {
    /// Defined name.
    pub dst: SsaName,
    /// The merged variable.
    pub var: VarId,
    /// `(predecessor, incoming name)` pairs, one per reachable predecessor.
    pub args: Vec<(BlockId, SsaName)>,
}

/// One block in SSA form.
#[derive(Debug, Clone, PartialEq)]
pub struct SsaBlock {
    /// Phi nodes (conceptually executed in parallel at block entry).
    pub phis: Vec<Phi>,
    /// Instructions.
    pub instrs: Vec<SsaInstr>,
    /// Terminator.
    pub term: SsaTerminator,
}

/// A procedure in SSA form, parallel to its IR [`ipcp_ir::Procedure`].
#[derive(Debug, Clone)]
pub struct SsaProc {
    /// Per-block SSA data; `None` for unreachable blocks.
    pub blocks: Vec<Option<SsaBlock>>,
    /// All SSA names.
    pub defs: Vec<DefInfo>,
    /// Entry name of each variable that has one (created on demand for
    /// variables whose entry value is observable).
    pub entry_names: HashMap<VarId, SsaName>,
    /// CFG facts used during construction (reused by downstream passes).
    pub cfg: Cfg,
    /// Dominator tree used during construction.
    pub dom: DomTree,
    /// Malformed-but-validated IR shapes construction recovered from
    /// instead of panicking (each entry is a stable description). Callers
    /// forward these into the analysis `RobustnessReport`.
    pub anomalies: Vec<String>,
}

impl SsaProc {
    /// Metadata for `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is out of range.
    pub fn def(&self, name: SsaName) -> DefInfo {
        self.defs[name.index()]
    }

    /// The variable `name` is a version of.
    pub fn var_of(&self, name: SsaName) -> VarId {
        self.def(name).var
    }

    /// Number of SSA names.
    pub fn name_count(&self) -> usize {
        self.defs.len()
    }

    /// The SSA block for `b`, if reachable.
    pub fn block(&self, b: BlockId) -> Option<&SsaBlock> {
        self.blocks[b.index()].as_ref()
    }

    /// The entry name of `var`, if the entry value is observable anywhere.
    pub fn entry_name(&self, var: VarId) -> Option<SsaName> {
        self.entry_names.get(&var).copied()
    }

    /// Iterates over reachable blocks in reverse postorder.
    pub fn rpo_blocks(&self) -> impl Iterator<Item = (BlockId, &SsaBlock)> + '_ {
        self.cfg
            .rpo
            .iter()
            .map(move |&b| (b, self.blocks[b.index()].as_ref().expect("reachable")))
    }
}
