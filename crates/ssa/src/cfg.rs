//! CFG utilities: reachability, reverse postorder, predecessor lists.

use ipcp_ir::{BlockId, Procedure};

/// Precomputed CFG facts for one procedure, restricted to blocks reachable
/// from the entry.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// `reachable[b]` — whether block `b` is reachable from the entry.
    pub reachable: Vec<bool>,
    /// Reachable blocks in reverse postorder (entry first).
    pub rpo: Vec<BlockId>,
    /// `rpo_index[b]` — position of `b` in [`Cfg::rpo`] (`usize::MAX` for
    /// unreachable blocks).
    pub rpo_index: Vec<usize>,
    /// Predecessors of each block, restricted to reachable predecessors.
    pub preds: Vec<Vec<BlockId>>,
}

impl Cfg {
    /// Computes CFG facts for `proc`.
    pub fn new(proc: &Procedure) -> Self {
        let n = proc.blocks.len();
        let mut reachable = vec![false; n];
        let mut postorder = Vec::with_capacity(n);

        // Iterative DFS computing postorder.
        let mut stack: Vec<(BlockId, usize)> = vec![(proc.entry(), 0)];
        reachable[proc.entry().index()] = true;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let succs = proc.block(b).term.successors();
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                if !reachable[s.index()] {
                    reachable[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                postorder.push(b);
                stack.pop();
            }
        }

        let rpo: Vec<BlockId> = postorder.into_iter().rev().collect();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }

        let mut preds = vec![Vec::new(); n];
        for &b in &rpo {
            for s in proc.block(b).term.successors() {
                if reachable[s.index()] {
                    preds[s.index()].push(b);
                }
            }
        }

        Cfg {
            reachable,
            rpo,
            rpo_index,
            preds,
        }
    }

    /// Whether block `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.reachable[b.index()]
    }

    /// Number of reachable blocks.
    pub fn reachable_count(&self) -> usize {
        self.rpo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcp_ir::compile_to_ir;

    fn cfg_of(src: &str) -> (ipcp_ir::Program, Cfg) {
        let program = compile_to_ir(src).expect("compiles");
        let cfg = Cfg::new(program.proc(program.main));
        (program, cfg)
    }

    #[test]
    fn straight_line() {
        let (_, cfg) = cfg_of("main\nx = 1\nend\n");
        assert_eq!(cfg.rpo.len(), 1);
        assert_eq!(cfg.rpo[0], BlockId(0));
        assert!(cfg.preds[0].is_empty());
    }

    #[test]
    fn diamond_rpo_order() {
        let (program, cfg) = cfg_of("main\nif x then\ny = 1\nelse\ny = 2\nend\nz = y\nend\n");
        let main = program.proc(program.main);
        assert_eq!(cfg.rpo.len(), main.blocks.len());
        // Entry first; join last.
        assert_eq!(cfg.rpo[0], main.entry());
        let join = cfg.rpo[cfg.rpo.len() - 1];
        assert_eq!(cfg.preds[join.index()].len(), 2);
        // RPO property: every non-back-edge predecessor precedes the block.
        for &b in &cfg.rpo {
            for &p in &cfg.preds[b.index()] {
                // In an acyclic CFG preds come strictly earlier.
                assert!(cfg.rpo_index[p.index()] < cfg.rpo_index[b.index()]);
            }
        }
    }

    #[test]
    fn loop_back_edge() {
        let (_, cfg) = cfg_of("main\nwhile x < 3 do\nx = x + 1\nend\nend\n");
        // Header (index 1 in lowering) has entry and body as preds.
        let header = BlockId(1);
        assert_eq!(cfg.preds[header.index()].len(), 2);
        // One of them is a back edge (later in RPO).
        let later = cfg.preds[header.index()]
            .iter()
            .filter(|p| cfg.rpo_index[p.index()] > cfg.rpo_index[header.index()])
            .count();
        assert_eq!(later, 1);
    }

    #[test]
    fn unreachable_blocks_excluded() {
        let (program, cfg) = {
            let program =
                compile_to_ir("proc f()\nreturn\nx = 1\nend\nmain\ncall f()\nend\n").unwrap();
            let f = program.proc_by_name("f").unwrap();
            let cfg = Cfg::new(program.proc(f));
            (program, cfg)
        };
        let f = program.proc(program.proc_by_name("f").unwrap());
        assert!(cfg.reachable_count() < f.blocks.len());
        assert!(cfg.is_reachable(f.entry()));
        let unreachable = f.block_ids().find(|&b| !cfg.is_reachable(b)).unwrap();
        assert_eq!(cfg.rpo_index[unreachable.index()], usize::MAX);
    }
}
