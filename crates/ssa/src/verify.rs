//! SSA well-formedness verification.
//!
//! Checks the invariants downstream analyses rely on:
//!
//! 1. every name is defined exactly once, at the site its
//!    [`DefInfo`] records;
//! 2. every use is dominated by its definition (phi uses are checked at
//!    the end of the corresponding predecessor);
//! 3. each phi has exactly one argument per reachable predecessor edge;
//! 4. names are versions of the variable their uses claim.

use crate::ssa::*;
use ipcp_ir::{BlockId, Procedure};
use std::collections::HashMap;

/// Verifies SSA form, returning all violations.
///
/// # Errors
///
/// Returns a non-empty list of violation messages if `ssa` is malformed.
pub fn verify(_proc: &Procedure, ssa: &SsaProc) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();

    // ---- 1. definition sites are consistent and unique ------------------
    let mut seen_def = vec![false; ssa.name_count()];
    let mut record_def = |name: SsaName, site: DefSite, errors: &mut Vec<String>| {
        if name.index() >= ssa.name_count() {
            errors.push(format!("{name} out of range"));
            return;
        }
        if seen_def[name.index()] {
            errors.push(format!("{name} defined more than once"));
        }
        seen_def[name.index()] = true;
        let info = ssa.def(name);
        if info.site != site {
            errors.push(format!(
                "{name} recorded at {:?} but found at {site:?}",
                info.site
            ));
        }
    };

    for (b, blk) in ssa.rpo_blocks() {
        for phi in &blk.phis {
            record_def(phi.dst, DefSite::Phi { block: b }, &mut errors);
            if ssa.var_of(phi.dst) != phi.var {
                errors.push(format!("phi {} merges wrong variable", phi.dst));
            }
        }
        for (i, instr) in blk.instrs.iter().enumerate() {
            if let Some(d) = instr.dst() {
                record_def(d, DefSite::Instr { block: b, index: i }, &mut errors);
            }
            if let SsaInstr::Call { kills, .. } = instr {
                for k in kills {
                    record_def(
                        k.name,
                        DefSite::CallImplicit { block: b, index: i },
                        &mut errors,
                    );
                    if ssa.var_of(k.name) != k.var {
                        errors.push(format!("kill {} tagged with wrong variable", k.name));
                    }
                }
            }
        }
    }
    for (&var, &name) in &ssa.entry_names {
        record_def(name, DefSite::Entry, &mut errors);
        if ssa.var_of(name) != var {
            errors.push(format!("entry name {name} tagged with wrong variable"));
        }
    }
    for (i, defined) in seen_def.iter().enumerate() {
        if !defined {
            errors.push(format!("s{i} has no defining site"));
        }
    }

    // ---- 2. uses dominated by defs --------------------------------------
    // Position of each def for intra-block ordering: phis count as position
    // 0, instruction i as position i + 1.
    let def_pos = |name: SsaName| -> Option<(BlockId, usize)> {
        match ssa.def(name).site {
            DefSite::Entry => None,
            DefSite::Phi { block } => Some((block, 0)),
            DefSite::Instr { block, index } | DefSite::CallImplicit { block, index } => {
                Some((block, index + 1))
            }
        }
    };
    let dominated = |use_block: BlockId, use_pos: usize, name: SsaName| -> bool {
        match def_pos(name) {
            None => true, // entry dominates everything
            Some((db, dp)) => {
                if db == use_block {
                    dp <= use_pos
                } else {
                    ssa.dom.dominates(db, use_block)
                }
            }
        }
    };

    for (b, blk) in ssa.rpo_blocks() {
        for (i, instr) in blk.instrs.iter().enumerate() {
            instr.for_each_use(|op| {
                if let Some(n) = op.as_name() {
                    if !dominated(b, i + 1, n) {
                        errors.push(format!("use of {n} at {b}[{i}] not dominated by its def"));
                    }
                }
            });
        }
        // Snapshot names on calls are uses too.
        for (i, instr) in blk.instrs.iter().enumerate() {
            if let SsaInstr::Call { globals_in, .. } = instr {
                for &(var, n) in globals_in {
                    if ssa.var_of(n) != var {
                        errors.push(format!("call snapshot {n} tagged with wrong variable"));
                    }
                    if !dominated(b, i + 1, n) {
                        errors.push(format!(
                            "call snapshot use of {n} at {b}[{i}] not dominated"
                        ));
                    }
                }
            }
        }
        match &blk.term {
            SsaTerminator::Branch { cond, .. } => {
                if let Some(n) = cond.as_name() {
                    if !dominated(b, usize::MAX, n) {
                        errors.push(format!("branch use of {n} at {b} not dominated"));
                    }
                }
            }
            SsaTerminator::Return { value, exit } => {
                if let Some(n) = value.and_then(|op| op.as_name()) {
                    if !dominated(b, usize::MAX, n) {
                        errors.push(format!("return use of {n} at {b} not dominated"));
                    }
                }
                for &(var, n) in exit {
                    if ssa.var_of(n) != var {
                        errors.push(format!("exit snapshot {n} tagged with wrong variable"));
                    }
                    if !dominated(b, usize::MAX, n) {
                        errors.push(format!("exit snapshot use of {n} at {b} not dominated"));
                    }
                }
            }
            _ => {}
        }
    }

    // ---- 3. phi arguments match predecessor edges ------------------------
    for (b, blk) in ssa.rpo_blocks() {
        // Count predecessor edges.
        let mut edge_count: HashMap<BlockId, usize> = HashMap::new();
        for &p in &ssa.cfg.preds[b.index()] {
            *edge_count.entry(p).or_default() += 1;
        }
        for phi in &blk.phis {
            let mut arg_count: HashMap<BlockId, usize> = HashMap::new();
            for &(p, arg) in &phi.args {
                *arg_count.entry(p).or_default() += 1;
                if ssa.var_of(arg) != phi.var {
                    errors.push(format!(
                        "phi {} argument {arg} is a version of the wrong variable",
                        phi.dst
                    ));
                }
                // The argument must be live at the end of the predecessor.
                if !dominated(p, usize::MAX, arg) {
                    errors.push(format!(
                        "phi {} argument {arg} not dominated at end of {p}",
                        phi.dst
                    ));
                }
            }
            if arg_count != edge_count {
                errors.push(format!(
                    "phi {} at {b} has args {arg_count:?} but predecessor edges {edge_count:?}",
                    phi.dst
                ));
            }
        }
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_ssa, NoKills, WorstCaseKills};
    use ipcp_ir::compile_to_ir;

    fn verify_src(src: &str) {
        let program = compile_to_ir(src).expect("compiles");
        for pid in program.proc_ids() {
            let proc = program.proc(pid);
            for oracle in [&WorstCaseKills as &dyn crate::build::KillOracle, &NoKills] {
                let ssa = build_ssa(&program, proc, oracle);
                if let Err(errs) = verify(proc, &ssa) {
                    panic!(
                        "SSA verification failed for `{}`:\n{errs:#?}\n{src}",
                        proc.name
                    );
                }
            }
        }
    }

    #[test]
    fn verifies_straight_line() {
        verify_src("main\nx = 1\ny = x + 2\nprint(y)\nend\n");
    }

    #[test]
    fn verifies_branches_and_loops() {
        verify_src(
            "main\nread(n)\ns = 0\ndo i = 1, n\nif i % 2 == 0 then\ns = s + i\nelse\ns = s - i\nend\nend\nprint(s)\nend\n",
        );
    }

    #[test]
    fn verifies_nested_loops() {
        verify_src(
            "main\ns = 0\ndo i = 1, 5\nj = i\nwhile j > 0 do\nj = j - 1\ns = s + 1\nend\nend\nprint(s)\nend\n",
        );
    }

    #[test]
    fn verifies_calls_with_kills() {
        verify_src(
            "global g\nproc f(a, b)\na = b + g\ng = g + 1\nend\n\
             main\nx = 1\ny = 2\ncall f(x, y)\ncall f(y, x)\nprint(x + y + g)\nend\n",
        );
    }

    #[test]
    fn verifies_functions_and_recursion() {
        verify_src(
            "func fib(n)\nif n < 2 then\nreturn n\nend\nreturn fib(n - 1) + fib(n - 2)\nend\n\
             main\nprint(fib(10))\nend\n",
        );
    }

    #[test]
    fn verifies_arrays_and_reads() {
        verify_src(
            "main\ninteger a(10)\nread(k)\ndo i = 1, 10\na(i) = k * i\nend\nprint(a(k))\nend\n",
        );
    }

    #[test]
    fn verifies_unreachable_code() {
        verify_src("proc f()\nreturn\nx = 1\nprint(x)\nend\nmain\ncall f()\nend\n");
    }

    #[test]
    fn verifies_variable_step_do() {
        verify_src("main\nread(k)\ndo i = 10, 0, k\nprint(i)\nend\nend\n");
    }

    #[test]
    fn verifies_hand_built_irreducible_cfg() {
        // Structured lowering never produces irreducible graphs, but the
        // substrate must not assume reducibility (hand-built IR and future
        // transforms could). Build the classic two-entry loop:
        //
        //   entry --c--> A --> B --> A   (B also jumps back to A)
        //         \----> B
        use ipcp_ir::{Block, Instr, Operand, Procedure, Terminator, VarDecl, VarKind};
        use ipcp_lang::ast::{BinOp, ProcKind, Ty};

        let mut main = Procedure::new("main", ProcKind::Main);
        let c = main.add_var(VarDecl {
            name: "c".into(),
            ty: Ty::INT,
            kind: VarKind::Local,
        });
        let x = main.add_var(VarDecl {
            name: "x".into(),
            ty: Ty::INT,
            kind: VarKind::Local,
        });
        let exit_cond = main.add_var(VarDecl {
            name: "t".into(),
            ty: Ty::INT,
            kind: VarKind::Local,
        });

        let a = main.add_block(Block::new(Terminator::Return(None)));
        let b = main.add_block(Block::new(Terminator::Return(None)));
        let out = main.add_block(Block::new(Terminator::Return(None)));

        // entry: read c; branch c ? A : B
        main.block_mut(ipcp_ir::ENTRY_BLOCK)
            .instrs
            .push(Instr::Read { dst: c });
        main.block_mut(ipcp_ir::ENTRY_BLOCK).term = Terminator::Branch {
            cond: Operand::Var(c),
            then_bb: a,
            else_bb: b,
        };
        // A: x = x + 1; jump B
        main.block_mut(a).instrs.push(Instr::Binary {
            dst: x,
            op: BinOp::Add,
            lhs: Operand::Var(x),
            rhs: Operand::Const(1),
        });
        main.block_mut(a).term = Terminator::Jump(b);
        // B: t = x < 10; branch t ? A : out
        main.block_mut(b).instrs.push(Instr::Binary {
            dst: exit_cond,
            op: BinOp::Lt,
            lhs: Operand::Var(x),
            rhs: Operand::Const(10),
        });
        main.block_mut(b).term = Terminator::Branch {
            cond: Operand::Var(exit_cond),
            then_bb: a,
            else_bb: out,
        };
        // out: print x; return
        main.block_mut(out).instrs.push(Instr::Print {
            value: Operand::Var(x),
        });

        let program = ipcp_ir::Program {
            globals: vec![],
            procs: vec![main],
            main: ipcp_ir::ProcId(0),
        };
        ipcp_ir::validate::validate(&program).expect("hand-built IR is valid");
        let proc = program.proc(program.main);
        for oracle in [&WorstCaseKills as &dyn crate::build::KillOracle, &NoKills] {
            let ssa = build_ssa(&program, proc, oracle);
            if let Err(errs) = verify(proc, &ssa) {
                panic!("irreducible CFG broke SSA: {errs:#?}");
            }
        }
        // The evaluator agrees with expectations: entry reads c.
        use ipcp_lang::interp::{InterpConfig, Value};
        let out1 = ipcp_ir::eval::run(
            &program,
            &InterpConfig {
                input: vec![1],
                ..InterpConfig::default()
            },
        )
        .unwrap();
        assert_eq!(out1.output, vec![Value::Int(10)]);
        let out0 = ipcp_ir::eval::run(
            &program,
            &InterpConfig {
                input: vec![0],
                ..InterpConfig::default()
            },
        )
        .unwrap();
        assert_eq!(out0.output, vec![Value::Int(10)]);
    }

    #[test]
    fn detects_corrupted_phi() {
        let program =
            compile_to_ir("main\nif c then\ny = 1\nelse\ny = 2\nend\nprint(y)\nend\n").unwrap();
        let proc = program.proc(program.main);
        let mut ssa = build_ssa(&program, proc, &WorstCaseKills);
        // Drop one phi argument.
        for blk in ssa.blocks.iter_mut().flatten() {
            for phi in &mut blk.phis {
                phi.args.pop();
            }
        }
        assert!(verify(proc, &ssa).is_err());
    }

    #[test]
    fn detects_wrong_def_site() {
        let program = compile_to_ir("main\nx = 1\nprint(x)\nend\n").unwrap();
        let proc = program.proc(program.main);
        let mut ssa = build_ssa(&program, proc, &WorstCaseKills);
        // Corrupt a def record.
        for d in &mut ssa.defs {
            if let DefSite::Instr { block, .. } = d.site {
                d.site = DefSite::Phi { block };
            }
        }
        assert!(verify(proc, &ssa).is_err());
    }
}
