//! # ipcp-ssa — SSA construction for the Minifor IR
//!
//! Builds pruned-to-reachable, minimal SSA form (Cytron et al.) over
//! [`ipcp_ir`] procedures, with dominators and dominance frontiers computed
//! by the Cooper–Harvey–Kennedy iterative algorithm. The paper's analyzer
//! was "built on top of an SSA-based value number graph" (§4.1); this crate
//! is that substrate.
//!
//! The distinctive feature is the [`build::KillOracle`]: call instructions
//! implicitly redefine by-reference actuals and globals, and the oracle
//! decides *which*. Plugging in a MOD-summary-backed oracle gives the
//! paper's "with MOD information" configurations; [`build::WorstCaseKills`]
//! gives the "without MOD" ones, where "the presence of any call in a
//! routine eliminated potential constants along paths leaving the call
//! site" (§4.2).
//!
//! ```
//! use ipcp_ssa::build::{build_ssa, WorstCaseKills};
//!
//! let program = ipcp_ir::compile_to_ir("main\nx = 1\nprint(x)\nend\n").unwrap();
//! let main = program.proc(program.main);
//! let ssa = build_ssa(&program, main, &WorstCaseKills);
//! ipcp_ssa::verify::verify(main, &ssa).unwrap();
//! assert_eq!(ssa.rpo_blocks().count(), 1);
//! ```

pub mod build;
pub mod cfg;
pub mod dom;
pub mod ssa;
pub mod verify;

pub use build::{build_ssa, KillOracle, NoKills, WorstCaseKills};
pub use cfg::Cfg;
pub use dom::{DomTree, DominanceFrontiers};
pub use ssa::{
    DefInfo, DefSite, Phi, SsaBlock, SsaCallArg, SsaInstr, SsaKill, SsaName, SsaOperand, SsaProc,
    SsaTerminator,
};
