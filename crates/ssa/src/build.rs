//! SSA construction (Cytron et al.): minimal phi placement via iterated
//! dominance frontiers, then renaming over the dominator tree.
//!
//! Call instructions may implicitly redefine caller variables (by-reference
//! actuals and globals). A [`KillOracle`] supplies those kill sets; the
//! paper's "with MOD information" configurations plug in a summary-based
//! oracle, while [`WorstCaseKills`] reproduces the "no MOD information"
//! configuration in which every call kills every by-ref actual and every
//! global visible in the caller.

use crate::cfg::Cfg;
use crate::dom::{DomTree, DominanceFrontiers};
use crate::ssa::*;
use ipcp_ir::{BlockId, CallArg, Instr, Operand, ProcId, Procedure, Program, Terminator, VarId};
use std::collections::HashMap;

/// Supplies the caller-side variables a call may redefine.
///
/// `Sync` is a supertrait so oracles can be shared by reference with the
/// per-procedure fan-out workers of the parallel analysis engine.
pub trait KillOracle: Sync {
    /// Variables of `caller` that the call `callee(args)` may redefine.
    /// Implementations must only return scalar variables (arrays have no
    /// scalar SSA names) and must not depend on the call's program point.
    fn kills(&self, caller: &Procedure, callee: ProcId, args: &[CallArg]) -> Vec<VarId>;
}

/// Worst-case oracle: every call kills every by-reference scalar actual and
/// every (scalar) global in the caller's variable table.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorstCaseKills;

impl KillOracle for WorstCaseKills {
    fn kills(&self, caller: &Procedure, _callee: ProcId, args: &[CallArg]) -> Vec<VarId> {
        let mut kills = Vec::new();
        for arg in args {
            if arg.by_ref {
                if let Some(v) = arg.value.as_var() {
                    if caller.var(v).ty.is_scalar() {
                        kills.push(v);
                    }
                }
            }
        }
        for v in caller.var_ids() {
            let decl = caller.var(v);
            if decl.kind.is_global() && decl.ty.is_scalar() && !kills.contains(&v) {
                kills.push(v);
            }
        }
        kills
    }
}

/// Optimistic oracle that kills nothing. Unsound for real programs with
/// side effects — intended for unit tests isolating the renaming logic.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoKills;

impl KillOracle for NoKills {
    fn kills(&self, _caller: &Procedure, _callee: ProcId, _args: &[CallArg]) -> Vec<VarId> {
        Vec::new()
    }
}

/// Builds SSA form for `proc` (a member of `program`).
pub fn build_ssa(program: &Program, proc: &Procedure, kills: &dyn KillOracle) -> SsaProc {
    let _ = program; // call validity was established by `ipcp_ir::validate`
    let cfg = Cfg::new(proc);
    let dom = DomTree::new(proc, &cfg);
    let df = DominanceFrontiers::new(proc, &cfg, &dom);

    // ---- collect definition sites and cache per-call kill lists ---------
    let nvars = proc.vars.len();
    let mut def_blocks: Vec<Vec<BlockId>> = vec![Vec::new(); nvars];
    let mut call_kills: HashMap<(BlockId, usize), Vec<VarId>> = HashMap::new();
    for &b in &cfg.rpo {
        for (i, instr) in proc.block(b).instrs.iter().enumerate() {
            if let Some(d) = instr.def() {
                def_blocks[d.index()].push(b);
            }
            if let Instr::Call { callee, args, dst } = instr {
                let mut ks = kills.kills(proc, *callee, args);
                ks.retain(|v| Some(*v) != *dst);
                ks.dedup();
                for &k in &ks {
                    debug_assert!(proc.var(k).ty.is_scalar(), "kill oracle returned an array");
                    def_blocks[k.index()].push(b);
                }
                call_kills.insert((b, i), ks);
            }
        }
    }

    // ---- phi placement (minimal SSA) -------------------------------------
    // phi_vars[block] = variables needing a phi there, in insertion order.
    let mut phi_vars: Vec<Vec<VarId>> = vec![Vec::new(); proc.blocks.len()];
    for v in proc.var_ids() {
        if def_blocks[v.index()].is_empty() || proc.var(v).ty.is_array() {
            continue;
        }
        let mut work: Vec<BlockId> = def_blocks[v.index()].clone();
        work.sort_unstable();
        work.dedup();
        let mut has_phi = vec![false; proc.blocks.len()];
        while let Some(b) = work.pop() {
            for &f in df.of(b) {
                if !has_phi[f.index()] {
                    has_phi[f.index()] = true;
                    phi_vars[f.index()].push(v);
                    work.push(f);
                }
            }
        }
    }

    // ---- create skeleton blocks with phi defs ---------------------------
    let mut defs: Vec<DefInfo> = Vec::new();
    let new_name = |var: VarId, site: DefSite, defs: &mut Vec<DefInfo>| -> SsaName {
        let n = SsaName(defs.len() as u32);
        defs.push(DefInfo { var, site });
        n
    };

    let mut blocks: Vec<Option<SsaBlock>> = vec![None; proc.blocks.len()];
    // phi name per (block, position) to push during renaming.
    for &b in &cfg.rpo {
        let phis: Vec<Phi> = phi_vars[b.index()]
            .iter()
            .map(|&v| Phi {
                dst: new_name(v, DefSite::Phi { block: b }, &mut defs),
                var: v,
                args: Vec::new(),
            })
            .collect();
        blocks[b.index()] = Some(SsaBlock {
            phis,
            instrs: Vec::new(),
            // Placeholder; overwritten during renaming.
            term: SsaTerminator::Return {
                value: None,
                exit: Vec::new(),
            },
        });
    }

    // ---- renaming --------------------------------------------------------
    let mut renamer = Renamer {
        proc,
        cfg: &cfg,
        dom: &dom,
        call_kills: &call_kills,
        blocks: &mut blocks,
        defs: &mut defs,
        stacks: vec![Vec::new(); nvars],
        entry_names: HashMap::new(),
        anomalies: Vec::new(),
    };
    renamer.visit(proc.entry());
    let entry_names = renamer.entry_names;
    let anomalies = renamer.anomalies;

    SsaProc {
        blocks,
        defs,
        entry_names,
        cfg,
        dom,
        anomalies,
    }
}

struct Renamer<'a> {
    proc: &'a Procedure,
    cfg: &'a Cfg,
    dom: &'a DomTree,
    call_kills: &'a HashMap<(BlockId, usize), Vec<VarId>>,
    blocks: &'a mut Vec<Option<SsaBlock>>,
    defs: &'a mut Vec<DefInfo>,
    stacks: Vec<Vec<SsaName>>,
    entry_names: HashMap<VarId, SsaName>,
    anomalies: Vec<String>,
}

impl Renamer<'_> {
    fn new_name(&mut self, var: VarId, site: DefSite) -> SsaName {
        let n = SsaName(self.defs.len() as u32);
        self.defs.push(DefInfo { var, site });
        n
    }

    /// Current name of `var`, creating its entry name on first
    /// before-any-def use.
    fn current(&mut self, var: VarId) -> SsaName {
        if let Some(&n) = self.stacks[var.index()].last() {
            return n;
        }
        if let Some(&n) = self.entry_names.get(&var) {
            return n;
        }
        let n = self.new_name(var, DefSite::Entry);
        self.entry_names.insert(var, n);
        n
    }

    fn rename_operand(&mut self, op: Operand) -> SsaOperand {
        match op {
            Operand::Const(c) => SsaOperand::Const(c),
            Operand::RealConst(c) => SsaOperand::RealConst(c),
            Operand::Var(v) => SsaOperand::Name(self.current(v)),
        }
    }

    fn visit(&mut self, b: BlockId) {
        let mut pushed: Vec<VarId> = Vec::new();

        // Phi definitions first. A missing skeleton means the dominator
        // tree reached a block the reachability pass did not — recoverable
        // malformed IR: record it and leave the block out of the SSA view.
        let Some(skeleton) = self.blocks[b.index()].as_ref() else {
            self.anomalies.push(format!(
                "ssa: dominator tree visited unbuilt block b{b}",
                b = b.index()
            ));
            return;
        };
        let phi_defs: Vec<(VarId, SsaName)> =
            skeleton.phis.iter().map(|p| (p.var, p.dst)).collect();
        for (v, n) in phi_defs {
            self.stacks[v.index()].push(n);
            pushed.push(v);
        }

        // Instructions.
        let instr_count = self.proc.block(b).instrs.len();
        let mut ssa_instrs = Vec::with_capacity(instr_count);
        for i in 0..instr_count {
            let instr = self.proc.block(b).instrs[i].clone();
            let ssa = self.rename_instr(b, i, &instr, &mut pushed);
            ssa_instrs.push(ssa);
        }

        // Terminator.
        let term = match self.proc.block(b).term.clone() {
            Terminator::Jump(t) => SsaTerminator::Jump(t),
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => SsaTerminator::Branch {
                cond: self.rename_operand(cond),
                then_bb,
                else_bb,
            },
            Terminator::Return(v) => {
                let value = v.map(|op| self.rename_operand(op));
                let exit_vars: Vec<VarId> = self
                    .proc
                    .var_ids()
                    .filter(|&v| {
                        let d = self.proc.var(v);
                        d.ty.is_scalar() && (d.kind.is_formal() || d.kind.is_global())
                    })
                    .collect();
                let exit = exit_vars
                    .into_iter()
                    .map(|v| (v, self.current(v)))
                    .collect();
                SsaTerminator::Return { value, exit }
            }
            Terminator::Trap(k) => SsaTerminator::Trap(k),
        };

        if let Some(blk) = self.blocks[b.index()].as_mut() {
            blk.instrs = ssa_instrs;
            blk.term = term;
        }

        // Fill successor phi arguments.
        for s in self.proc.block(b).term.successors() {
            if !self.cfg.is_reachable(s) {
                continue;
            }
            let Some(succ) = self.blocks[s.index()].as_ref() else {
                self.anomalies.push(format!(
                    "ssa: reachable successor b{s} has no skeleton",
                    s = s.index()
                ));
                continue;
            };
            let phi_vars: Vec<VarId> = succ.phis.iter().map(|p| p.var).collect();
            for (k, v) in phi_vars.into_iter().enumerate() {
                let name = self.current(v);
                if let Some(blk) = self.blocks[s.index()].as_mut() {
                    // A block can reach the same successor through both branch
                    // edges (`branch c ? x : x`); record one argument per edge.
                    blk.phis[k].args.push((b, name));
                }
            }
        }

        // Recurse over dominator-tree children.
        let children: Vec<BlockId> = self.dom.children(b).to_vec();
        for c in children {
            self.visit(c);
        }

        // Pop this block's definitions.
        for v in pushed {
            self.stacks[v.index()].pop();
        }
    }

    fn rename_instr(
        &mut self,
        b: BlockId,
        i: usize,
        instr: &Instr,
        pushed: &mut Vec<VarId>,
    ) -> SsaInstr {
        let mut def = |this: &mut Self, var: VarId, site: DefSite| -> SsaName {
            let n = this.new_name(var, site);
            this.stacks[var.index()].push(n);
            pushed.push(var);
            n
        };
        let site = DefSite::Instr { block: b, index: i };
        match instr {
            Instr::Copy { dst, src } => {
                let src = self.rename_operand(*src);
                SsaInstr::Copy {
                    dst: def(self, *dst, site),
                    src,
                }
            }
            Instr::Unary { dst, op, src } => {
                let src = self.rename_operand(*src);
                SsaInstr::Unary {
                    dst: def(self, *dst, site),
                    op: *op,
                    src,
                }
            }
            Instr::Binary { dst, op, lhs, rhs } => {
                let lhs = self.rename_operand(*lhs);
                let rhs = self.rename_operand(*rhs);
                SsaInstr::Binary {
                    dst: def(self, *dst, site),
                    op: *op,
                    lhs,
                    rhs,
                }
            }
            Instr::IntToReal { dst, src } => {
                let src = self.rename_operand(*src);
                SsaInstr::IntToReal {
                    dst: def(self, *dst, site),
                    src,
                }
            }
            Instr::Load { dst, arr, index } => {
                let index = self.rename_operand(*index);
                SsaInstr::Load {
                    dst: def(self, *dst, site),
                    arr: *arr,
                    index,
                }
            }
            Instr::Store { arr, index, value } => SsaInstr::Store {
                arr: *arr,
                index: self.rename_operand(*index),
                value: self.rename_operand(*value),
            },
            Instr::Read { dst } => SsaInstr::Read {
                dst: def(self, *dst, site),
            },
            Instr::Print { value } => SsaInstr::Print {
                value: self.rename_operand(*value),
            },
            Instr::Call { callee, args, dst } => {
                // Uses first: values flowing into the callee.
                let mut ssa_args: Vec<SsaCallArg> = Vec::with_capacity(args.len());
                for a in args {
                    if a.by_ref {
                        let Some(v) = a.value.as_var() else {
                            // Validation guarantees by-ref actuals are bare
                            // variables; a constant here is recoverable
                            // malformed IR. Degrade to by-value so the call
                            // still gets an SSA form.
                            self.anomalies
                                .push("ssa: by-ref actual is not a variable".to_string());
                            ssa_args.push(SsaCallArg {
                                value: Some(self.rename_operand(a.value)),
                                by_ref_var: None,
                            });
                            continue;
                        };
                        if self.proc.var(v).ty.is_array() {
                            ssa_args.push(SsaCallArg {
                                value: None,
                                by_ref_var: Some(v),
                            });
                        } else {
                            ssa_args.push(SsaCallArg {
                                value: Some(SsaOperand::Name(self.current(v))),
                                by_ref_var: Some(v),
                            });
                        }
                    } else {
                        ssa_args.push(SsaCallArg {
                            value: Some(self.rename_operand(a.value)),
                            by_ref_var: None,
                        });
                    }
                }
                // Snapshot the reaching names of scalar globals (implicit
                // actual parameters), before any kill.
                let global_vars: Vec<VarId> = self
                    .proc
                    .var_ids()
                    .filter(|&v| {
                        let d = self.proc.var(v);
                        d.ty.is_scalar() && d.kind.is_global()
                    })
                    .collect();
                let globals_in: Vec<(VarId, SsaName)> = global_vars
                    .into_iter()
                    .map(|v| (v, self.current(v)))
                    .collect();
                // Kills: fresh names after the call.
                let kill_site = DefSite::CallImplicit { block: b, index: i };
                let kill_vars = self.call_kills.get(&(b, i)).cloned().unwrap_or_default();
                let kills: Vec<SsaKill> = kill_vars
                    .into_iter()
                    .map(|v| SsaKill {
                        var: v,
                        name: def(self, v, kill_site),
                    })
                    .collect();
                // Function result last (post-call value).
                let dst = dst.map(|d| def(self, d, site));
                SsaInstr::Call {
                    callee: *callee,
                    args: ssa_args,
                    dst,
                    kills,
                    globals_in,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcp_ir::compile_to_ir;

    fn ssa_of(src: &str, proc_name: &str, kills: &dyn KillOracle) -> (Program, SsaProc) {
        let program = compile_to_ir(src).expect("compiles");
        let pid = program.proc_by_name(proc_name).expect("proc exists");
        let ssa = build_ssa(&program, program.proc(pid), kills);
        (program, ssa)
    }

    fn phi_count(ssa: &SsaProc) -> usize {
        ssa.rpo_blocks().map(|(_, b)| b.phis.len()).sum()
    }

    #[test]
    fn straight_line_has_no_phis() {
        let (_, ssa) = ssa_of("main\nx = 1\ny = x + 2\nend\n", "main", &WorstCaseKills);
        assert_eq!(phi_count(&ssa), 0);
        // Two defs: x and y.
        assert_eq!(
            ssa.defs.iter().filter(|d| d.site != DefSite::Entry).count(),
            2
        );
    }

    #[test]
    fn diamond_join_gets_phi() {
        let (program, ssa) = ssa_of(
            "main\nif c then\ny = 1\nelse\ny = 2\nend\nz = y\nend\n",
            "main",
            &WorstCaseKills,
        );
        let main = program.proc(program.main);
        let join = BlockId(3);
        let blk = ssa.block(join).expect("reachable");
        assert_eq!(blk.phis.len(), 1);
        let phi = &blk.phis[0];
        assert_eq!(main.var(phi.var).name, "y");
        assert_eq!(phi.args.len(), 2);
        // The two incoming names differ.
        assert_ne!(phi.args[0].1, phi.args[1].1);
    }

    #[test]
    fn one_sided_if_merges_entry_value() {
        let (_, ssa) = ssa_of(
            "main\nread(y)\nif c then\ny = 1\nend\nprint(y)\nend\n",
            "main",
            &WorstCaseKills,
        );
        assert_eq!(phi_count(&ssa), 1);
    }

    #[test]
    fn loop_variable_gets_header_phi() {
        let (program, ssa) = ssa_of(
            "main\ni = 0\nwhile i < 3 do\ni = i + 1\nend\nprint(i)\nend\n",
            "main",
            &WorstCaseKills,
        );
        let main = program.proc(program.main);
        let header = BlockId(1);
        let blk = ssa.block(header).expect("reachable");
        let phi_i = blk.phis.iter().find(|p| main.var(p.var).name == "i");
        assert!(phi_i.is_some(), "loop counter needs a phi at the header");
        assert_eq!(phi_i.unwrap().args.len(), 2);
    }

    #[test]
    fn unmodified_variable_has_single_entry_name() {
        // `n` flows through the loop unmodified: every use sees the entry name.
        let (program, ssa) = ssa_of(
            "proc f(n)\ns = 0\nwhile s < n do\ns = s + n\nend\nend\nmain\ncall f(x)\nend\n",
            "f",
            &WorstCaseKills,
        );
        let f = program.proc(program.proc_by_name("f").unwrap());
        let n_var = f.var_ids().find(|&v| f.var(v).name == "n").unwrap();
        let entry = ssa.entry_name(n_var).expect("entry value observed");
        // No phi merges `n`.
        for (_, blk) in ssa.rpo_blocks() {
            for phi in &blk.phis {
                assert_ne!(phi.var, n_var, "n must not need a phi");
            }
        }
        // All name defs of n: just the entry.
        let n_defs = ssa.defs.iter().filter(|d| d.var == n_var).count();
        assert_eq!(n_defs, 1);
        assert_eq!(ssa.def(entry).site, DefSite::Entry);
    }

    #[test]
    fn worst_case_call_kills_globals_and_byref_args() {
        let src = "global g\nproc callee(a)\nend\nproc f(x)\ny = g\ncall callee(x)\nz = g + x\nend\nmain\ncall f(q)\nend\n";
        let (program, ssa) = ssa_of(src, "f", &WorstCaseKills);
        let f = program.proc(program.proc_by_name("f").unwrap());
        // Find the call's kills.
        let mut kill_vars = vec![];
        for (_, blk) in ssa.rpo_blocks() {
            for instr in &blk.instrs {
                if let SsaInstr::Call { kills, .. } = instr {
                    for k in kills {
                        kill_vars.push(f.var(k.var).name.clone());
                    }
                }
            }
        }
        assert!(kill_vars.contains(&"x".to_string()), "{kill_vars:?}");
        assert!(kill_vars.contains(&"g".to_string()), "{kill_vars:?}");
        // Uses of g and x after the call see the killed (CallImplicit) names.
        let mut post_g = None;
        for (_, blk) in ssa.rpo_blocks() {
            for instr in &blk.instrs {
                if let SsaInstr::Binary { lhs, .. } = instr {
                    post_g = lhs.as_name();
                }
            }
        }
        let post_g = post_g.expect("found g + x");
        assert!(matches!(ssa.def(post_g).site, DefSite::CallImplicit { .. }));
    }

    #[test]
    fn no_kills_oracle_preserves_values_across_calls() {
        let src = "global g\nproc callee()\nend\nproc f()\nx = 5\ncall callee()\nprint(x + g)\nend\nmain\ncall f()\nend\n";
        let (_, ssa) = ssa_of(src, "f", &NoKills);
        for (_, blk) in ssa.rpo_blocks() {
            for instr in &blk.instrs {
                if let SsaInstr::Call { kills, .. } = instr {
                    assert!(kills.is_empty());
                }
            }
        }
    }

    #[test]
    fn function_result_is_fresh_def_after_kills() {
        let src = "global g\nfunc f(x)\ng = x\nreturn x + 1\nend\nmain\ng = 1\ny = f(2)\nprint(y + g)\nend\n";
        let (_, ssa) = ssa_of(src, "main", &WorstCaseKills);
        for (_, blk) in ssa.rpo_blocks() {
            for instr in &blk.instrs {
                if let SsaInstr::Call { dst, kills, .. } = instr {
                    let d = dst.expect("function call");
                    for k in kills {
                        assert!(d.0 > k.name.0, "dst defined after kills");
                    }
                }
            }
        }
    }

    #[test]
    fn by_ref_array_args_have_no_scalar_value() {
        let src = "proc f(v())\nv(1) = 2\nend\nmain\ninteger a(3)\ncall f(a)\nend\n";
        let (_, ssa) = ssa_of(src, "main", &WorstCaseKills);
        for (_, blk) in ssa.rpo_blocks() {
            for instr in &blk.instrs {
                if let SsaInstr::Call { args, .. } = instr {
                    assert_eq!(args.len(), 1);
                    assert!(args[0].value.is_none());
                    assert!(args[0].by_ref_var.is_some());
                }
            }
        }
    }

    #[test]
    fn local_use_before_def_gets_entry_name() {
        let (_, ssa) = ssa_of(
            "main\nprint(x)\nx = 1\nprint(x)\nend\n",
            "main",
            &WorstCaseKills,
        );
        let blk = ssa.block(BlockId(0)).unwrap();
        let first = match &blk.instrs[0] {
            SsaInstr::Print { value } => value.as_name().unwrap(),
            other => panic!("{other:?}"),
        };
        assert_eq!(ssa.def(first).site, DefSite::Entry);
        let last = match &blk.instrs[2] {
            SsaInstr::Print { value } => value.as_name().unwrap(),
            other => panic!("{other:?}"),
        };
        assert!(matches!(ssa.def(last).site, DefSite::Instr { .. }));
    }

    #[test]
    fn well_formed_programs_have_no_anomalies() {
        let (_, ssa) = ssa_of(
            "proc f(n)\nn = n + 1\nend\nmain\nx = 1\ncall f(x)\nprint(x)\nend\n",
            "main",
            &WorstCaseKills,
        );
        assert!(ssa.anomalies.is_empty(), "{:?}", ssa.anomalies);
    }

    #[test]
    fn malformed_by_ref_actual_degrades_instead_of_panicking() {
        let src = "proc f(n)\nn = n + 1\nend\nmain\nx = 1\ncall f(x)\nprint(x)\nend\n";
        let mut program = compile_to_ir(src).expect("compiles");
        // Corrupt the call: a by-ref actual that is a constant, which
        // `ipcp_ir::validate` would reject. SSA construction must recover.
        let main = program.main;
        for block in &mut program.proc_mut(main).blocks {
            for instr in &mut block.instrs {
                if let Instr::Call { args, .. } = instr {
                    args[0].value = ipcp_ir::Operand::Const(1);
                    assert!(args[0].by_ref);
                }
            }
        }
        let pid = program.main;
        let ssa = build_ssa(&program, program.proc(pid), &WorstCaseKills);
        assert_eq!(ssa.anomalies.len(), 1, "{:?}", ssa.anomalies);
        assert!(ssa.anomalies[0].contains("by-ref"), "{:?}", ssa.anomalies);
        // The call survives with the argument degraded to by-value.
        let mut saw_call = false;
        for (_, blk) in ssa.rpo_blocks() {
            for instr in &blk.instrs {
                if let SsaInstr::Call { args, .. } = instr {
                    saw_call = true;
                    assert!(args[0].by_ref_var.is_none());
                    assert!(args[0].value.is_some());
                }
            }
        }
        assert!(saw_call);
    }

    #[test]
    fn do_loop_ssa_shape() {
        let (program, ssa) = ssa_of(
            "main\ns = 0\ndo i = 1, 10\ns = s + i\nend\nprint(s)\nend\n",
            "main",
            &WorstCaseKills,
        );
        let main = program.proc(program.main);
        // The header merges both s and i (minimal SSA may add dead phis for
        // header-defined temporaries on top).
        let mut merged: Vec<String> = vec![];
        for (_, blk) in ssa.rpo_blocks() {
            for phi in &blk.phis {
                merged.push(main.var(phi.var).name.clone());
            }
        }
        assert!(merged.contains(&"s".to_string()), "{merged:?}");
        assert!(merged.contains(&"i".to_string()), "{merged:?}");
    }
}
