//! Dominator tree and dominance frontiers.
//!
//! Uses the iterative algorithm of Cooper, Harvey & Kennedy ("A Simple,
//! Fast Dominance Algorithm"), which is near-linear on reducible CFGs like
//! the ones structured Minifor lowering produces.

use crate::cfg::Cfg;
use ipcp_ir::{BlockId, Procedure};

/// Dominator tree over the reachable blocks of one procedure.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator of each block; the entry maps to itself, and
    /// unreachable blocks map to `None`.
    idom: Vec<Option<BlockId>>,
    /// Children in the dominator tree.
    children: Vec<Vec<BlockId>>,
    /// Preorder interval [in, out) for O(1) dominance queries.
    pre_in: Vec<u32>,
    pre_out: Vec<u32>,
    entry: BlockId,
}

impl DomTree {
    /// Builds the dominator tree for `proc` given its CFG facts.
    pub fn new(proc: &Procedure, cfg: &Cfg) -> Self {
        let n = proc.blocks.len();
        let entry = proc.entry();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[entry.index()] = Some(entry);

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            while a != b {
                while cfg.rpo_index[a.index()] > cfg.rpo_index[b.index()] {
                    a = idom[a.index()].expect("processed block has idom");
                }
                while cfg.rpo_index[b.index()] > cfg.rpo_index[a.index()] {
                    b = idom[b.index()].expect("processed block has idom");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &cfg.preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                let new_idom = new_idom.expect("reachable block has a processed predecessor");
                if idom[b.index()] != Some(new_idom) {
                    idom[b.index()] = Some(new_idom);
                    changed = true;
                }
            }
        }

        let mut children = vec![Vec::new(); n];
        for &b in &cfg.rpo {
            if b != entry {
                let parent = idom[b.index()].expect("reachable");
                children[parent.index()].push(b);
            }
        }

        // Preorder intervals via iterative DFS.
        let mut pre_in = vec![0u32; n];
        let mut pre_out = vec![0u32; n];
        let mut clock = 0u32;
        let mut stack: Vec<(BlockId, usize)> = vec![(entry, 0)];
        pre_in[entry.index()] = clock;
        clock += 1;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            if *next < children[b.index()].len() {
                let c = children[b.index()][*next];
                *next += 1;
                pre_in[c.index()] = clock;
                clock += 1;
                stack.push((c, 0));
            } else {
                pre_out[b.index()] = clock;
                stack.pop();
            }
        }

        DomTree {
            idom,
            children,
            pre_in,
            pre_out,
            entry,
        }
    }

    /// Immediate dominator of `b` (`None` for the entry and unreachable
    /// blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        if b == self.entry {
            None
        } else {
            self.idom[b.index()]
        }
    }

    /// Dominator-tree children of `b`.
    pub fn children(&self, b: BlockId) -> &[BlockId] {
        &self.children[b.index()]
    }

    /// Whether `a` dominates `b` (reflexively). False if either block is
    /// unreachable.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.idom[a.index()].is_none() && a != self.entry {
            return false;
        }
        if self.idom[b.index()].is_none() && b != self.entry {
            return false;
        }
        self.pre_in[a.index()] <= self.pre_in[b.index()]
            && self.pre_out[b.index()] <= self.pre_out[a.index()]
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }
}

/// Dominance frontiers of every block.
#[derive(Debug, Clone)]
pub struct DominanceFrontiers {
    /// `df[b]` — blocks on the dominance frontier of `b`.
    df: Vec<Vec<BlockId>>,
}

impl DominanceFrontiers {
    /// Computes dominance frontiers from the CFG and dominator tree.
    pub fn new(proc: &Procedure, cfg: &Cfg, dom: &DomTree) -> Self {
        let n = proc.blocks.len();
        let mut df: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for &b in &cfg.rpo {
            let preds = &cfg.preds[b.index()];
            if preds.len() < 2 {
                continue;
            }
            let idom_b = dom.idom(b).expect("join block has idom");
            for &p in preds {
                let mut runner = p;
                while runner != idom_b {
                    if !df[runner.index()].contains(&b) {
                        df[runner.index()].push(b);
                    }
                    runner = dom.idom(runner).unwrap_or(idom_b);
                    if runner == dom.entry() && idom_b != dom.entry() && runner != idom_b {
                        // Safety valve: entry reached without meeting
                        // idom(b); cannot happen on valid input.
                        break;
                    }
                }
            }
        }
        DominanceFrontiers { df }
    }

    /// The dominance frontier of `b`.
    pub fn of(&self, b: BlockId) -> &[BlockId] {
        &self.df[b.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcp_ir::compile_to_ir;

    fn analyze(src: &str) -> (ipcp_ir::Program, Cfg, DomTree, DominanceFrontiers) {
        let program = compile_to_ir(src).expect("compiles");
        let main = program.proc(program.main);
        let cfg = Cfg::new(main);
        let dom = DomTree::new(main, &cfg);
        let df = DominanceFrontiers::new(main, &cfg, &dom);
        (program, cfg, dom, df)
    }

    #[test]
    fn entry_has_no_idom() {
        let (program, _, dom, _) = analyze("main\nx = 1\nend\n");
        assert_eq!(dom.idom(program.proc(program.main).entry()), None);
        assert!(dom.dominates(BlockId(0), BlockId(0)));
    }

    #[test]
    fn diamond_dominators() {
        // entry(0) -> then(1), else(2); both -> join(3).
        let (_, _, dom, df) = analyze("main\nif x then\ny = 1\nelse\ny = 2\nend\nz = y\nend\n");
        assert_eq!(dom.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(2)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(3)), Some(BlockId(0)));
        assert!(dom.dominates(BlockId(0), BlockId(3)));
        assert!(!dom.dominates(BlockId(1), BlockId(3)));
        // DF(then) = DF(else) = {join}; DF(entry) = {} .
        assert_eq!(df.of(BlockId(1)), &[BlockId(3)]);
        assert_eq!(df.of(BlockId(2)), &[BlockId(3)]);
        assert!(df.of(BlockId(0)).is_empty());
    }

    #[test]
    fn loop_dominators() {
        // entry(0) -> header(1); header -> body(2) | exit(3); body -> header.
        let (_, _, dom, df) = analyze("main\nwhile x < 3 do\nx = x + 1\nend\nend\n");
        assert_eq!(dom.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(2)), Some(BlockId(1)));
        assert_eq!(dom.idom(BlockId(3)), Some(BlockId(1)));
        assert!(dom.dominates(BlockId(1), BlockId(2)));
        assert!(dom.dominates(BlockId(1), BlockId(3)));
        // The body's frontier contains the header (back edge target).
        assert!(df.of(BlockId(2)).contains(&BlockId(1)));
        // The header's own frontier contains itself (it does not dominate
        // its predecessor via the back edge... it does dominate body; DF of
        // header is header itself since body->header and header dominates
        // body but not strictly itself).
        assert!(df.of(BlockId(1)).contains(&BlockId(1)));
    }

    #[test]
    fn nested_ifs() {
        let src = "main\nif a then\nif b then\nx = 1\nend\nend\ny = x\nend\n";
        let (_, cfg, dom, _) = analyze(src);
        // Every reachable block is dominated by the entry.
        for &b in &cfg.rpo {
            assert!(dom.dominates(BlockId(0), b));
        }
        // idom chain is consistent: idom precedes in RPO.
        for &b in cfg.rpo.iter().skip(1) {
            let i = dom.idom(b).unwrap();
            assert!(cfg.rpo_index[i.index()] < cfg.rpo_index[b.index()]);
        }
    }

    #[test]
    fn dominates_is_partial_order_on_samples() {
        let src =
            "main\nwhile a do\nif b then\nx = x + 1\nelse\nx = x - 1\nend\nend\nprint(x)\nend\n";
        let (_, cfg, dom, _) = analyze(src);
        for &a in &cfg.rpo {
            assert!(dom.dominates(a, a), "reflexive");
            for &b in &cfg.rpo {
                for &c in &cfg.rpo {
                    if dom.dominates(a, b) && dom.dominates(b, c) {
                        assert!(dom.dominates(a, c), "transitive");
                    }
                }
                if a != b && dom.dominates(a, b) && dom.dominates(b, a) {
                    panic!("antisymmetry violated");
                }
            }
        }
    }

    #[test]
    fn unreachable_blocks_never_dominate() {
        let program = compile_to_ir("proc f()\nreturn\nx = 1\nend\nmain\ncall f()\nend\n").unwrap();
        let f = program.proc(program.proc_by_name("f").unwrap());
        let cfg = Cfg::new(f);
        let dom = DomTree::new(f, &cfg);
        let dead = f.block_ids().find(|&b| !cfg.is_reachable(b)).unwrap();
        assert!(!dom.dominates(dead, f.entry()));
        assert!(!dom.dominates(f.entry(), dead));
        assert_eq!(dom.idom(dead), None);
    }
}
