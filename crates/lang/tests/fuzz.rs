//! Robustness: the front end must never panic, whatever bytes it is fed —
//! it either produces a program or diagnostics.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn lexer_never_panics(src in ".{0,200}") {
        let _ = ipcp_lang::lexer::lex(&src);
    }

    #[test]
    fn parser_never_panics(src in ".{0,200}") {
        let _ = ipcp_lang::parser::parse(&src);
    }

    #[test]
    fn compile_never_panics_on_token_soup(
        words in proptest::collection::vec(
            proptest::sample::select(vec![
                "main", "end", "proc", "func", "global", "if", "then", "else", "while",
                "do", "call", "return", "read", "print", "integer", "real", "x", "y",
                "f", "(", ")", ",", "=", "+", "-", "*", "/", "%", "==", "<", "1", "2.5",
                "\n",
            ]),
            0..60,
        )
    ) {
        let src: String = words.join(" ");
        let _ = ipcp_lang::compile(&src);
    }

    #[test]
    fn diagnostics_always_render(src in ".{0,200}") {
        if let Err(diags) = ipcp_lang::compile(&src) {
            // Rendering must stay in bounds for any span.
            let rendered = diags.render(&src);
            prop_assert!(!rendered.is_empty());
        }
    }
}
