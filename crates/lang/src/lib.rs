//! # ipcp-lang — the Minifor front end
//!
//! Minifor is a small FORTRAN-77-flavoured imperative language built as the
//! substrate for reproducing *"Interprocedural Constant Propagation: A Study
//! of Jump Function Implementations"* (Grove & Torczon, PLDI 1993). It keeps
//! exactly the features that matter to the paper's analysis — by-reference
//! parameters, `COMMON`-style globals, integer and real scalars and arrays,
//! structured control flow, and I/O — and nothing else.
//!
//! The crate provides:
//!
//! * [`lexer`] / [`parser`] — source text → [`ast::Program`],
//! * [`typeck`] — name resolution, implicit FORTRAN-style integer locals,
//!   and type checking, producing a [`typeck::CheckedProgram`],
//! * [`pretty`] — AST → parseable source text,
//! * [`interp`] — a reference interpreter defining observable semantics,
//! * [`diag`] / [`span`] — diagnostics with line/column rendering.
//!
//! ## Quick start
//!
//! ```
//! use ipcp_lang::{compile, interp};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let source = "
//! func double(x)
//!   return x * 2
//! end
//! main
//!   print(double(21))
//! end
//! ";
//! let checked = compile(source)?;
//! let out = interp::run(&checked, &interp::InterpConfig::default())?;
//! assert_eq!(out.output, vec![interp::Value::Int(42)]);
//! # Ok(())
//! # }
//! ```
//!
//! ## Aliasing restriction
//!
//! Like FORTRAN 77, Minifor programs must not create aliases between
//! by-reference formals, or between a formal and a global: do not pass the
//! same variable twice to one call, and do not pass a global to a procedure
//! that also accesses that global directly. The analyses in the sibling
//! crates assume this (standard FORTRAN) restriction; the
//! `ipcp-analysis` crate offers a conservative alias lint for checking it.

pub mod ast;
pub mod diag;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod token;
pub mod typeck;

pub use ast::Program;
pub use diag::{Diagnostic, Diagnostics};
pub use span::Span;
pub use typeck::CheckedProgram;

/// Parses and type-checks Minifor source in one step.
///
/// # Errors
///
/// Returns lexical, parse, or semantic diagnostics.
pub fn compile(source: &str) -> Result<CheckedProgram, Diagnostics> {
    typeck::check(parser::parse(source)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_pipeline() {
        let checked = compile("main\nx = 1\nend\n").expect("compiles");
        assert_eq!(checked.program.procs.len(), 1);
    }

    #[test]
    fn compile_reports_parse_errors() {
        assert!(compile("main\n").is_err());
    }

    #[test]
    fn compile_reports_check_errors() {
        assert!(compile("main\ncall missing()\nend\n").is_err());
    }
}
