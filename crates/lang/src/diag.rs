//! Diagnostics for the Minifor front end.

use crate::span::{LineMap, Span};
use std::error::Error as StdError;
use std::fmt;

/// Which front-end phase produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Lexical analysis.
    Lex,
    /// Parsing.
    Parse,
    /// Type checking / name resolution.
    Check,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Check => "check",
        };
        f.write_str(s)
    }
}

/// A single front-end diagnostic with a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Producing phase.
    pub phase: Phase,
    /// Location in the source buffer.
    pub span: Span,
    /// Human-readable message (lowercase, no trailing punctuation).
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic.
    pub fn new(phase: Phase, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            phase,
            span,
            message: message.into(),
        }
    }

    /// Renders the diagnostic with `line:col` resolved against `source`.
    pub fn render(&self, source: &str) -> String {
        let map = LineMap::new(source);
        let (line, col) = map.line_col(self.span.start);
        format!("{}:{}: {} error: {}", line, col, self.phase, self.message)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error at {}: {}", self.phase, self.span, self.message)
    }
}

impl StdError for Diagnostic {}

/// A non-empty collection of diagnostics, returned by fallible front-end phases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostics(Vec<Diagnostic>);

impl Diagnostics {
    /// Wraps a non-empty list of diagnostics.
    ///
    /// # Panics
    ///
    /// Panics if `diags` is empty.
    pub fn new(diags: Vec<Diagnostic>) -> Self {
        assert!(
            !diags.is_empty(),
            "diagnostics collection must be non-empty"
        );
        Diagnostics(diags)
    }

    /// Wraps a single diagnostic.
    pub fn single(diag: Diagnostic) -> Self {
        Diagnostics(vec![diag])
    }

    /// The diagnostics, in source order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.0.iter()
    }

    /// Number of diagnostics.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Always false: the collection is non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The first diagnostic.
    pub fn first(&self) -> &Diagnostic {
        &self.0[0]
    }

    /// Renders all diagnostics against `source`, one per line.
    pub fn render(&self, source: &str) -> String {
        let mut out = String::new();
        for d in &self.0 {
            out.push_str(&d.render(source));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl StdError for Diagnostics {}

impl From<Diagnostic> for Diagnostics {
    fn from(d: Diagnostic) -> Self {
        Diagnostics::single(d)
    }
}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_resolves_line_col() {
        let src = "a\nbad token here";
        let d = Diagnostic::new(Phase::Lex, Span::new(2, 5), "unexpected character");
        assert_eq!(d.render(src), "2:1: lex error: unexpected character");
    }

    #[test]
    fn display_is_nonempty() {
        let d = Diagnostic::new(Phase::Parse, Span::new(0, 1), "expected `end`");
        assert!(!format!("{d}").is_empty());
        assert!(!format!("{d:?}").is_empty());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_diagnostics_panics() {
        let _ = Diagnostics::new(vec![]);
    }

    #[test]
    fn diagnostics_roundtrip() {
        let d = Diagnostic::new(Phase::Check, Span::new(1, 2), "unknown procedure");
        let ds = Diagnostics::single(d.clone());
        assert_eq!(ds.len(), 1);
        assert_eq!(ds.first(), &d);
        assert!(!ds.is_empty());
        let collected: Vec<_> = ds.into_iter().collect();
        assert_eq!(collected, vec![d]);
    }
}
