//! A reference interpreter for checked Minifor programs.
//!
//! The interpreter defines the language's observable semantics; the IR
//! interpreter in `ipcp-ir` and the constant-substitution pass are tested
//! against it. Semantics highlights (see [`crate::ast`] for the full list):
//!
//! * All scalars and array elements are zero-initialized.
//! * Integer arithmetic wraps (two's complement, like the IR and the
//!   analyzer's constant folding). Division and remainder by zero are
//!   runtime errors.
//! * Only bare variable names are passed by reference; every other actual
//!   is copied into a fresh temporary.
//! * `read(x)` pops the next value from the input queue (converted to real
//!   for real targets); exhausting the input is a runtime error.

use crate::ast::*;
use crate::typeck::{CheckedProgram, ProcInfo, VarOrigin};
use std::fmt;

/// Interpreter limits and input.
#[derive(Debug, Clone)]
pub struct InterpConfig {
    /// Maximum number of executed statements (including loop iterations).
    pub max_steps: u64,
    /// Maximum call depth.
    pub max_depth: u32,
    /// Values consumed by `read`.
    pub input: Vec<i64>,
}

impl Default for InterpConfig {
    fn default() -> Self {
        InterpConfig {
            max_steps: 10_000_000,
            max_depth: 256,
            input: Vec::new(),
        }
    }
}

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Integer value.
    Int(i64),
    /// Real value.
    Real(f64),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Real(v) => write!(f, "{v:?}"),
        }
    }
}

/// Result of a successful run.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// Values printed, in order.
    pub output: Vec<Value>,
    /// Statements executed.
    pub steps: u64,
}

/// Runtime failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// Integer division or remainder by zero.
    DivByZero,
    /// `do` loop step evaluated to zero.
    ZeroStep,
    /// Array index outside `1..=len`.
    OutOfBounds {
        /// Array name.
        name: String,
        /// Offending index.
        index: i64,
        /// Array length.
        len: usize,
    },
    /// `read` executed with no input left.
    InputExhausted,
    /// Statement budget exceeded (probable infinite loop).
    StepLimit,
    /// Call depth budget exceeded (probable infinite recursion).
    DepthLimit,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::DivByZero => f.write_str("integer division by zero"),
            InterpError::ZeroStep => f.write_str("`do` loop step is zero"),
            InterpError::OutOfBounds { name, index, len } => {
                write!(
                    f,
                    "index {index} out of bounds for `{name}` of length {len}"
                )
            }
            InterpError::InputExhausted => f.write_str("`read` with no input remaining"),
            InterpError::StepLimit => f.write_str("step limit exceeded"),
            InterpError::DepthLimit => f.write_str("call depth limit exceeded"),
        }
    }
}

impl std::error::Error for InterpError {}

/// Runs `main` of a checked program.
///
/// # Errors
///
/// Returns the first [`InterpError`] encountered.
pub fn run(checked: &CheckedProgram, config: &InterpConfig) -> Result<Outcome, InterpError> {
    let mut interp = Interp {
        checked,
        config,
        slots: Vec::new(),
        globals: Vec::new(),
        output: Vec::new(),
        steps: 0,
        input_pos: 0,
    };
    interp.alloc_globals();
    let main_idx = checked
        .program
        .procs
        .iter()
        .position(|p| p.kind == ProcKind::Main)
        .expect("checked program has main");
    interp.call(main_idx, Vec::new(), 0)?;
    Ok(Outcome {
        output: interp.output,
        steps: interp.steps,
    })
}

/// A storage cell: a scalar or a whole array.
#[derive(Debug, Clone)]
enum Slot {
    Int(i64),
    Real(f64),
    IntArray(Vec<i64>),
    RealArray(Vec<f64>),
}

impl Slot {
    fn zero_of(ty: Ty) -> Slot {
        match (ty.base, ty.shape) {
            (Base::Int, Shape::Scalar) => Slot::Int(0),
            (Base::Real, Shape::Scalar) => Slot::Real(0.0),
            (Base::Int, Shape::Array(n)) => Slot::IntArray(vec![0; n.unwrap_or(0) as usize]),
            (Base::Real, Shape::Array(n)) => Slot::RealArray(vec![0.0; n.unwrap_or(0) as usize]),
        }
    }
}

/// Control flow result of executing statements.
enum Flow {
    Normal,
    Return(Option<Value>),
}

struct Interp<'a> {
    checked: &'a CheckedProgram,
    config: &'a InterpConfig,
    /// All storage; indices are stable (no GC — programs are short-lived).
    slots: Vec<Slot>,
    /// Global id → slot id.
    globals: Vec<usize>,
    output: Vec<Value>,
    steps: u64,
    input_pos: usize,
}

/// Per-call frame: variable index (into `ProcInfo::vars`) → slot id.
struct Frame {
    proc_idx: usize,
    slot_of_var: Vec<usize>,
}

impl<'a> Interp<'a> {
    fn alloc_globals(&mut self) {
        for g in &self.checked.program.globals {
            let mut slot = Slot::zero_of(g.ty);
            if let (Some(v), Slot::Int(dst)) = (g.init, &mut slot) {
                *dst = v;
            }
            let id = self.slots.len();
            self.slots.push(slot);
            self.globals.push(id);
        }
    }

    fn alloc(&mut self, slot: Slot) -> usize {
        let id = self.slots.len();
        self.slots.push(slot);
        id
    }

    /// Calls procedure `proc_idx` with argument slots bound positionally.
    fn call(
        &mut self,
        proc_idx: usize,
        arg_slots: Vec<usize>,
        depth: u32,
    ) -> Result<Option<Value>, InterpError> {
        if depth >= self.config.max_depth {
            return Err(InterpError::DepthLimit);
        }
        let info = &self.checked.proc_info[proc_idx];
        let mut slot_of_var = Vec::with_capacity(info.vars.len());
        for var in &info.vars {
            let slot = match var.origin {
                VarOrigin::Param(i) => arg_slots[i as usize],
                VarOrigin::Global(g) => self.globals[g as usize],
                VarOrigin::Local => self.alloc(Slot::zero_of(var.ty)),
            };
            slot_of_var.push(slot);
        }
        let frame = Frame {
            proc_idx,
            slot_of_var,
        };
        let body = &self.checked.program.procs[proc_idx].body;
        match self.exec_block(body, &frame, depth)? {
            Flow::Return(v) => Ok(v),
            Flow::Normal => Ok(None),
        }
    }

    fn info(&self, frame: &Frame) -> &'a ProcInfo {
        &self.checked.proc_info[frame.proc_idx]
    }

    fn var_slot(&self, frame: &Frame, name: &str) -> usize {
        let info = self.info(frame);
        let idx = *info
            .by_name
            .get(name)
            .unwrap_or_else(|| panic!("unresolved variable `{name}`"));
        frame.slot_of_var[idx]
    }

    fn tick(&mut self) -> Result<(), InterpError> {
        self.steps += 1;
        if self.steps > self.config.max_steps {
            Err(InterpError::StepLimit)
        } else {
            Ok(())
        }
    }

    fn exec_block(
        &mut self,
        block: &Block,
        frame: &Frame,
        depth: u32,
    ) -> Result<Flow, InterpError> {
        for stmt in block {
            match self.exec_stmt(stmt, frame, depth)? {
                Flow::Normal => {}
                flow @ Flow::Return(_) => return Ok(flow),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, stmt: &Stmt, frame: &Frame, depth: u32) -> Result<Flow, InterpError> {
        self.tick()?;
        match &stmt.kind {
            StmtKind::Assign { target, value } => {
                let v = self.eval(value, frame, depth)?;
                self.store(target, v, frame, depth)?;
                Ok(Flow::Normal)
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let c = self.eval_int(cond, frame, depth)?;
                if c != 0 {
                    self.exec_block(then_blk, frame, depth)
                } else {
                    self.exec_block(else_blk, frame, depth)
                }
            }
            StmtKind::While { cond, body } => loop {
                self.tick()?;
                let c = self.eval_int(cond, frame, depth)?;
                if c == 0 {
                    return Ok(Flow::Normal);
                }
                match self.exec_block(body, frame, depth)? {
                    Flow::Normal => {}
                    flow @ Flow::Return(_) => return Ok(flow),
                }
            },
            StmtKind::Do {
                var,
                from,
                to,
                step,
                body,
            } => {
                let from = self.eval_int(from, frame, depth)?;
                let to = self.eval_int(to, frame, depth)?;
                let step = match step {
                    Some(e) => self.eval_int(e, frame, depth)?,
                    None => 1,
                };
                if step == 0 {
                    return Err(InterpError::ZeroStep);
                }
                let var_slot = self.var_slot(frame, var);
                let mut i = from;
                loop {
                    self.tick()?;
                    let done = if step > 0 { i > to } else { i < to };
                    self.slots[var_slot] = Slot::Int(i);
                    if done {
                        return Ok(Flow::Normal);
                    }
                    match self.exec_block(body, frame, depth)? {
                        Flow::Normal => {}
                        flow @ Flow::Return(_) => return Ok(flow),
                    }
                    // The loop variable may have been modified by the body
                    // (or by a callee, by reference); continue from its
                    // current value like a `while` loop would.
                    i = match self.slots[var_slot] {
                        Slot::Int(v) => v.wrapping_add(step),
                        _ => unreachable!("do variable is integer"),
                    };
                }
            }
            StmtKind::Call { name, args } => {
                let callee = self.checked.proc_index(name).expect("resolved callee");
                let arg_slots = self.bind_args(callee, args, frame, depth)?;
                self.call(callee, arg_slots, depth + 1)?;
                Ok(Flow::Normal)
            }
            StmtKind::Return { value } => {
                let v = match value {
                    Some(e) => Some(self.eval(e, frame, depth)?),
                    None => None,
                };
                Ok(Flow::Return(v))
            }
            StmtKind::Read { target } => {
                let raw = *self
                    .config
                    .input
                    .get(self.input_pos)
                    .ok_or(InterpError::InputExhausted)?;
                self.input_pos += 1;
                // `store` converts to real if the target is real.
                self.store(target, Value::Int(raw), frame, depth)?;
                Ok(Flow::Normal)
            }
            StmtKind::Print { value } => {
                let v = self.eval(value, frame, depth)?;
                self.output.push(v);
                Ok(Flow::Normal)
            }
        }
    }

    /// Binds actual arguments to slots: bare names pass their slot (by
    /// reference, when types agree); everything else is copied.
    fn bind_args(
        &mut self,
        callee: usize,
        args: &[Expr],
        frame: &Frame,
        depth: u32,
    ) -> Result<Vec<usize>, InterpError> {
        let params: Vec<Ty> = self.checked.program.procs[callee]
            .params
            .iter()
            .map(|p| p.ty)
            .collect();
        let mut arg_slots = Vec::with_capacity(args.len());
        for (arg, formal) in args.iter().zip(params.iter()) {
            let slot = if let ExprKind::Name(name) = &arg.kind {
                let info = self.info(frame);
                let vidx = info.by_name[name.as_str()];
                let actual_ty = info.vars[vidx].ty;
                if actual_ty.base == formal.base {
                    // True by-reference binding.
                    frame.slot_of_var[vidx]
                } else {
                    // Conversion (int actual, real formal): copy by value.
                    debug_assert!(formal.is_scalar());
                    let v = self.eval(arg, frame, depth)?;
                    self.alloc(match v {
                        Value::Int(i) => Slot::Real(i as f64),
                        Value::Real(r) => Slot::Real(r),
                    })
                }
            } else {
                let v = self.eval(arg, frame, depth)?;
                let slot = match (formal.base, v) {
                    (Base::Int, Value::Int(i)) => Slot::Int(i),
                    (Base::Real, Value::Int(i)) => Slot::Real(i as f64),
                    (Base::Real, Value::Real(r)) => Slot::Real(r),
                    (Base::Int, Value::Real(_)) => unreachable!("rejected by typeck"),
                };
                self.alloc(slot)
            };
            arg_slots.push(slot);
        }
        Ok(arg_slots)
    }

    fn store(
        &mut self,
        target: &LValue,
        value: Value,
        frame: &Frame,
        depth: u32,
    ) -> Result<(), InterpError> {
        match &target.kind {
            LValueKind::Scalar(name) => {
                let slot = self.var_slot(frame, name);
                match (&mut self.slots[slot], value) {
                    (Slot::Int(dst), Value::Int(v)) => *dst = v,
                    (Slot::Real(dst), Value::Int(v)) => *dst = v as f64,
                    (Slot::Real(dst), Value::Real(v)) => *dst = v,
                    _ => unreachable!("rejected by typeck"),
                }
                Ok(())
            }
            LValueKind::Element(name, idx) => {
                let i = self.eval_int(idx, frame, depth)?;
                let slot = self.var_slot(frame, name);
                let len = match &self.slots[slot] {
                    Slot::IntArray(v) => v.len(),
                    Slot::RealArray(v) => v.len(),
                    _ => unreachable!("indexed variable is an array"),
                };
                if i < 1 || i as u128 > len as u128 {
                    return Err(InterpError::OutOfBounds {
                        name: name.clone(),
                        index: i,
                        len,
                    });
                }
                match (&mut self.slots[slot], value) {
                    (Slot::IntArray(v), Value::Int(x)) => v[(i - 1) as usize] = x,
                    (Slot::RealArray(v), Value::Int(x)) => v[(i - 1) as usize] = x as f64,
                    (Slot::RealArray(v), Value::Real(x)) => v[(i - 1) as usize] = x,
                    _ => unreachable!("rejected by typeck"),
                }
                Ok(())
            }
        }
    }

    fn eval_int(&mut self, expr: &Expr, frame: &Frame, depth: u32) -> Result<i64, InterpError> {
        match self.eval(expr, frame, depth)? {
            Value::Int(v) => Ok(v),
            Value::Real(_) => unreachable!("integer context checked by typeck"),
        }
    }

    fn eval(&mut self, expr: &Expr, frame: &Frame, depth: u32) -> Result<Value, InterpError> {
        match &expr.kind {
            ExprKind::IntLit(v) => Ok(Value::Int(*v)),
            ExprKind::RealLit(v) => Ok(Value::Real(*v)),
            ExprKind::Name(name) => {
                let slot = self.var_slot(frame, name);
                match &self.slots[slot] {
                    Slot::Int(v) => Ok(Value::Int(*v)),
                    Slot::Real(v) => Ok(Value::Real(*v)),
                    _ => unreachable!("bare array names appear only as call arguments"),
                }
            }
            ExprKind::Index(name, idx) => {
                let i = self.eval_int(idx, frame, depth)?;
                let slot = self.var_slot(frame, name);
                match &self.slots[slot] {
                    Slot::IntArray(v) => {
                        if i < 1 || i as usize > v.len() {
                            Err(InterpError::OutOfBounds {
                                name: name.clone(),
                                index: i,
                                len: v.len(),
                            })
                        } else {
                            Ok(Value::Int(v[(i - 1) as usize]))
                        }
                    }
                    Slot::RealArray(v) => {
                        if i < 1 || i as usize > v.len() {
                            Err(InterpError::OutOfBounds {
                                name: name.clone(),
                                index: i,
                                len: v.len(),
                            })
                        } else {
                            Ok(Value::Real(v[(i - 1) as usize]))
                        }
                    }
                    _ => unreachable!("indexed variable is an array"),
                }
            }
            ExprKind::CallFn(name, args) => {
                let callee = self.checked.proc_index(name).expect("resolved callee");
                let arg_slots = self.bind_args(callee, args, frame, depth)?;
                let ret = self.call(callee, arg_slots, depth + 1)?;
                // A function that falls off the end returns 0.
                Ok(ret.unwrap_or(Value::Int(0)))
            }
            ExprKind::NameArgs(..) => unreachable!("checked AST has no NameArgs"),
            ExprKind::Unary(op, operand) => {
                let v = self.eval(operand, frame, depth)?;
                Ok(match (op, v) {
                    (UnOp::Neg, Value::Int(x)) => Value::Int(x.wrapping_neg()),
                    (UnOp::Neg, Value::Real(x)) => Value::Real(-x),
                    (UnOp::Not, Value::Int(x)) => Value::Int(i64::from(x == 0)),
                    (UnOp::Not, Value::Real(_)) => unreachable!("rejected by typeck"),
                })
            }
            ExprKind::Binary(op, lhs, rhs) => {
                let l = self.eval(lhs, frame, depth)?;
                let r = self.eval(rhs, frame, depth)?;
                eval_binop(*op, l, r)
            }
        }
    }
}

/// Evaluates a binary operation on runtime values.
///
/// Also used by constant-folding tests to keep the analyzer's folding in
/// lock-step with runtime semantics.
///
/// # Errors
///
/// Returns [`InterpError::DivByZero`] for integer `/ 0` or `% 0`.
pub fn eval_binop(op: BinOp, l: Value, r: Value) -> Result<Value, InterpError> {
    use Value::*;
    // Promote to real if either side is real (typeck guarantees this only
    // happens for arithmetic and comparisons).
    match (l, r) {
        (Int(a), Int(b)) => eval_binop_int(op, a, b).map(Int),
        (a, b) => {
            let x = match a {
                Int(v) => v as f64,
                Real(v) => v,
            };
            let y = match b {
                Int(v) => v as f64,
                Real(v) => v,
            };
            Ok(match op {
                BinOp::Add => Real(x + y),
                BinOp::Sub => Real(x - y),
                BinOp::Mul => Real(x * y),
                BinOp::Div => Real(x / y),
                BinOp::Eq => Int(i64::from(x == y)),
                BinOp::Ne => Int(i64::from(x != y)),
                BinOp::Lt => Int(i64::from(x < y)),
                BinOp::Le => Int(i64::from(x <= y)),
                BinOp::Gt => Int(i64::from(x > y)),
                BinOp::Ge => Int(i64::from(x >= y)),
                BinOp::Rem | BinOp::And | BinOp::Or => unreachable!("rejected by typeck"),
            })
        }
    }
}

/// Integer binary operation with wrapping semantics.
///
/// # Errors
///
/// Returns [`InterpError::DivByZero`] for `/ 0` or `% 0`.
pub fn eval_binop_int(op: BinOp, a: i64, b: i64) -> Result<i64, InterpError> {
    Ok(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return Err(InterpError::DivByZero);
            }
            a.wrapping_div(b)
        }
        BinOp::Rem => {
            if b == 0 {
                return Err(InterpError::DivByZero);
            }
            a.wrapping_rem(b)
        }
        BinOp::Eq => i64::from(a == b),
        BinOp::Ne => i64::from(a != b),
        BinOp::Lt => i64::from(a < b),
        BinOp::Le => i64::from(a <= b),
        BinOp::Gt => i64::from(a > b),
        BinOp::Ge => i64::from(a >= b),
        BinOp::And => i64::from(a != 0 && b != 0),
        BinOp::Or => i64::from(a != 0 || b != 0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::typeck::check;

    fn run_src(src: &str, input: Vec<i64>) -> Result<Vec<Value>, InterpError> {
        let checked = check(parse(src).expect("parse")).unwrap_or_else(|e| {
            panic!("check failed:\n{}", e.render(src));
        });
        let config = InterpConfig {
            input,
            ..InterpConfig::default()
        };
        run(&checked, &config).map(|o| o.output)
    }

    fn ints(vs: &[i64]) -> Vec<Value> {
        vs.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn hello_arithmetic() {
        assert_eq!(
            run_src("main\nprint(1 + 2 * 3)\nend\n", vec![]),
            Ok(ints(&[7]))
        );
    }

    #[test]
    fn zero_initialized() {
        assert_eq!(
            run_src("main\ninteger a(3)\nprint(x)\nprint(a(2))\nend\n", vec![]),
            Ok(ints(&[0, 0]))
        );
    }

    #[test]
    fn global_initializers() {
        assert_eq!(
            run_src(
                "global n = 7\nglobal m\nmain\nprint(n)\nprint(m)\nend\n",
                vec![]
            ),
            Ok(ints(&[7, 0]))
        );
    }

    #[test]
    fn if_else() {
        let src = "main\nx = 3\nif x > 2 then\nprint(1)\nelse\nprint(2)\nend\nend\n";
        assert_eq!(run_src(src, vec![]), Ok(ints(&[1])));
    }

    #[test]
    fn while_loop() {
        let src = "main\ni = 0\ns = 0\nwhile i < 5 do\ni = i + 1\ns = s + i\nend\nprint(s)\nend\n";
        assert_eq!(run_src(src, vec![]), Ok(ints(&[15])));
    }

    #[test]
    fn do_loop_sum() {
        let src = "main\ns = 0\ndo i = 1, 10\ns = s + i\nend\nprint(s)\nprint(i)\nend\n";
        // After the loop the variable holds the first value past the bound.
        assert_eq!(run_src(src, vec![]), Ok(ints(&[55, 11])));
    }

    #[test]
    fn do_loop_negative_step() {
        let src = "main\ns = 0\ndo i = 10, 1, -3\ns = s + i\nend\nprint(s)\nend\n";
        assert_eq!(run_src(src, vec![]), Ok(ints(&[10 + 7 + 4 + 1])));
    }

    #[test]
    fn do_loop_zero_trips() {
        let src = "main\ns = 42\ndo i = 5, 1\ns = 0\nend\nprint(s)\nprint(i)\nend\n";
        assert_eq!(run_src(src, vec![]), Ok(ints(&[42, 5])));
    }

    #[test]
    fn do_loop_zero_step_errors() {
        let src = "main\ndo i = 1, 5, 0\nend\nend\n";
        assert_eq!(run_src(src, vec![]), Err(InterpError::ZeroStep));
    }

    #[test]
    fn by_reference_scalars() {
        let src = "proc inc(x)\nx = x + 1\nend\nmain\ny = 10\ncall inc(y)\nprint(y)\nend\n";
        assert_eq!(run_src(src, vec![]), Ok(ints(&[11])));
    }

    #[test]
    fn expressions_pass_by_value() {
        let src =
            "proc clobber(x)\nx = 99\nend\nmain\ny = 10\ncall clobber(y + 0)\nprint(y)\nend\n";
        assert_eq!(run_src(src, vec![]), Ok(ints(&[10])));
    }

    #[test]
    fn array_elements_pass_by_value() {
        let src = "proc clobber(x)\nx = 99\nend\nmain\ninteger a(3)\na(1) = 5\ncall clobber(a(1))\nprint(a(1))\nend\n";
        assert_eq!(run_src(src, vec![]), Ok(ints(&[5])));
    }

    #[test]
    fn arrays_by_reference() {
        let src = "proc setfirst(v())\nv(1) = 77\nend\nmain\ninteger a(4)\ncall setfirst(a)\nprint(a(1))\nend\n";
        assert_eq!(run_src(src, vec![]), Ok(ints(&[77])));
    }

    #[test]
    fn globals_shared() {
        let src = "global g\nproc setg()\ng = 13\nend\nmain\ncall setg()\nprint(g)\nend\n";
        assert_eq!(run_src(src, vec![]), Ok(ints(&[13])));
    }

    #[test]
    fn param_shadows_global_at_runtime() {
        let src = "global g = 1\nproc f(g)\ng = 50\nend\nmain\nx = 2\ncall f(x)\nprint(g)\nprint(x)\nend\n";
        assert_eq!(run_src(src, vec![]), Ok(ints(&[1, 50])));
    }

    #[test]
    fn function_return() {
        let src = "func sq(x)\nreturn x * x\nend\nmain\nprint(sq(6))\nend\n";
        assert_eq!(run_src(src, vec![]), Ok(ints(&[36])));
    }

    #[test]
    fn function_fallthrough_returns_zero() {
        let src =
            "func f(x)\nif x > 0 then\nreturn 1\nend\nend\nmain\nprint(f(0))\nprint(f(5))\nend\n";
        assert_eq!(run_src(src, vec![]), Ok(ints(&[0, 1])));
    }

    #[test]
    fn recursion() {
        let src = "func fact(n)\nif n <= 1 then\nreturn 1\nend\nreturn n * fact(n - 1)\nend\nmain\nprint(fact(6))\nend\n";
        assert_eq!(run_src(src, vec![]), Ok(ints(&[720])));
    }

    #[test]
    fn read_and_print() {
        let src = "main\nread(x)\nread(y)\nprint(x + y)\nend\n";
        assert_eq!(run_src(src, vec![20, 22]), Ok(ints(&[42])));
    }

    #[test]
    fn read_exhausted() {
        assert_eq!(
            run_src("main\nread(x)\nend\n", vec![]),
            Err(InterpError::InputExhausted)
        );
    }

    #[test]
    fn division_semantics() {
        let src = "main\nprint(7 / 2)\nprint(0 - 7 / 2)\nprint(7 % 3)\nprint((0 - 7) % 3)\nend\n";
        assert_eq!(run_src(src, vec![]), Ok(ints(&[3, -3, 1, -1])));
    }

    #[test]
    fn div_by_zero() {
        assert_eq!(
            run_src("main\nx = 0\nprint(1 / x)\nend\n", vec![]),
            Err(InterpError::DivByZero)
        );
        assert_eq!(
            run_src("main\nx = 0\nprint(1 % x)\nend\n", vec![]),
            Err(InterpError::DivByZero)
        );
    }

    #[test]
    fn wrapping_arithmetic() {
        let src = "main\nx = 9223372036854775807\nprint(x + 1)\nend\n";
        assert_eq!(run_src(src, vec![]), Ok(ints(&[i64::MIN])));
    }

    #[test]
    fn logical_ops() {
        let src = "main\nprint(1 and 2)\nprint(1 and 0)\nprint(0 or 3)\nprint(0 or 0)\nprint(not 0)\nprint(not 9)\nend\n";
        assert_eq!(run_src(src, vec![]), Ok(ints(&[1, 0, 1, 0, 1, 0])));
    }

    #[test]
    fn real_arithmetic() {
        let src = "main\nreal r\nr = 1.5\nr = r * 2.0 + 1\nprint(r)\nprint(r > 3.5)\nend\n";
        assert_eq!(
            run_src(src, vec![]),
            Ok(vec![Value::Real(4.0), Value::Int(1)])
        );
    }

    #[test]
    fn int_to_real_param_conversion() {
        let src = "proc show(real x)\nprint(x)\nend\nmain\ncall show(3)\nend\n";
        assert_eq!(run_src(src, vec![]), Ok(vec![Value::Real(3.0)]));
    }

    #[test]
    fn read_into_real() {
        let src = "main\nreal r\nread(r)\nprint(r)\nend\n";
        assert_eq!(run_src(src, vec![5]), Ok(vec![Value::Real(5.0)]));
    }

    #[test]
    fn out_of_bounds() {
        let src = "main\ninteger a(3)\nx = a(4)\nend\n";
        assert!(matches!(
            run_src(src, vec![]),
            Err(InterpError::OutOfBounds { .. })
        ));
        let src = "main\ninteger a(3)\na(0) = 1\nend\n";
        assert!(matches!(
            run_src(src, vec![]),
            Err(InterpError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn step_limit_triggers() {
        let src = "main\nwhile 1 do\nend\nend\n";
        let checked = check(parse(src).unwrap()).unwrap();
        let config = InterpConfig {
            max_steps: 1000,
            ..InterpConfig::default()
        };
        assert_eq!(run(&checked, &config), Err(InterpError::StepLimit));
    }

    #[test]
    fn depth_limit_triggers() {
        let src = "proc f()\ncall f()\nend\nmain\ncall f()\nend\n";
        assert_eq!(run_src(src, vec![]), Err(InterpError::DepthLimit));
    }

    #[test]
    fn do_var_modified_by_body() {
        // Documented while-style semantics: body modifications affect
        // iteration.
        let src = "main\ns = 0\ndo i = 1, 10\ns = s + 1\ni = i + 1\nend\nprint(s)\nend\n";
        assert_eq!(run_src(src, vec![]), Ok(ints(&[5])));
    }

    #[test]
    fn call_in_expression_with_side_effects() {
        let src = "global c\nfunc bump()\nc = c + 1\nreturn c\nend\nmain\nx = bump() + bump()\nprint(x)\nprint(c)\nend\n";
        assert_eq!(run_src(src, vec![]), Ok(ints(&[3, 2])));
    }

    #[test]
    fn errors_display() {
        for e in [
            InterpError::DivByZero,
            InterpError::ZeroStep,
            InterpError::OutOfBounds {
                name: "a".into(),
                index: 9,
                len: 3,
            },
            InterpError::InputExhausted,
            InterpError::StepLimit,
            InterpError::DepthLimit,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
