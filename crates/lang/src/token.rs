//! Tokens of the Minifor language.

use crate::span::Span;
use std::fmt;

/// The kind of a lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier such as `matmul`.
    Ident(String),
    /// An integer literal. Stored as `i64`; the lexer rejects overflow.
    Int(i64),
    /// The integer literal `9223372036854775808` (2^63). Its magnitude
    /// overflows `i64`, but `-9223372036854775808` is `i64::MIN`, so the
    /// lexer emits this marker and the parser accepts it only directly
    /// under a unary minus (the classic negate-after-parse corner).
    IntMinMagnitude,
    /// A real (floating-point) literal such as `1.5`.
    Real(f64),

    // Keywords.
    /// `global`
    KwGlobal,
    /// `proc`
    KwProc,
    /// `func`
    KwFunc,
    /// `main`
    KwMain,
    /// `end`
    KwEnd,
    /// `integer`
    KwInteger,
    /// `real`
    KwReal,
    /// `if`
    KwIf,
    /// `then`
    KwThen,
    /// `else`
    KwElse,
    /// `while`
    KwWhile,
    /// `do`
    KwDo,
    /// `call`
    KwCall,
    /// `return`
    KwReturn,
    /// `read`
    KwRead,
    /// `print`
    KwPrint,
    /// `and`
    KwAnd,
    /// `or`
    KwOr,
    /// `not`
    KwNot,

    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,

    /// End of statement: a newline or `;` (consecutive separators collapse).
    Newline,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Returns the keyword token for `word`, if it is a keyword.
    pub fn keyword(word: &str) -> Option<TokenKind> {
        use TokenKind::*;
        Some(match word {
            "global" => KwGlobal,
            "proc" => KwProc,
            "func" => KwFunc,
            "main" => KwMain,
            "end" => KwEnd,
            "integer" => KwInteger,
            "real" => KwReal,
            "if" => KwIf,
            "then" => KwThen,
            "else" => KwElse,
            "while" => KwWhile,
            "do" => KwDo,
            "call" => KwCall,
            "return" => KwReturn,
            "read" => KwRead,
            "print" => KwPrint,
            "and" => KwAnd,
            "or" => KwOr,
            "not" => KwNot,
            _ => return None,
        })
    }

    /// A short human-readable description used in parse errors.
    pub fn describe(&self) -> String {
        use TokenKind::*;
        match self {
            Ident(name) => format!("identifier `{name}`"),
            Int(v) => format!("integer literal `{v}`"),
            IntMinMagnitude => "integer literal `9223372036854775808` (only valid \
                                immediately after a unary `-`)"
                .into(),
            Real(v) => format!("real literal `{v}`"),
            KwGlobal => "`global`".into(),
            KwProc => "`proc`".into(),
            KwFunc => "`func`".into(),
            KwMain => "`main`".into(),
            KwEnd => "`end`".into(),
            KwInteger => "`integer`".into(),
            KwReal => "`real`".into(),
            KwIf => "`if`".into(),
            KwThen => "`then`".into(),
            KwElse => "`else`".into(),
            KwWhile => "`while`".into(),
            KwDo => "`do`".into(),
            KwCall => "`call`".into(),
            KwReturn => "`return`".into(),
            KwRead => "`read`".into(),
            KwPrint => "`print`".into(),
            KwAnd => "`and`".into(),
            KwOr => "`or`".into(),
            KwNot => "`not`".into(),
            LParen => "`(`".into(),
            RParen => "`)`".into(),
            Comma => "`,`".into(),
            Assign => "`=`".into(),
            Plus => "`+`".into(),
            Minus => "`-`".into(),
            Star => "`*`".into(),
            Slash => "`/`".into(),
            Percent => "`%`".into(),
            EqEq => "`==`".into(),
            NotEq => "`!=`".into(),
            Lt => "`<`".into(),
            Le => "`<=`".into(),
            Gt => "`>`".into(),
            Ge => "`>=`".into(),
            Newline => "end of line".into(),
            Eof => "end of input".into(),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// A token together with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token's kind and payload.
    pub kind: TokenKind,
    /// Where the token appears in the source.
    pub span: Span,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_resolve() {
        assert_eq!(TokenKind::keyword("proc"), Some(TokenKind::KwProc));
        assert_eq!(TokenKind::keyword("do"), Some(TokenKind::KwDo));
        assert_eq!(TokenKind::keyword("xyz"), None);
        // Keywords are case-sensitive (lowercase only).
        assert_eq!(TokenKind::keyword("PROC"), None);
    }

    #[test]
    fn describe_is_nonempty_for_all_fixed_tokens() {
        use TokenKind::*;
        let all = [
            KwGlobal, KwProc, KwFunc, KwMain, KwEnd, KwInteger, KwReal, KwIf, KwThen, KwElse,
            KwWhile, KwDo, KwCall, KwReturn, KwRead, KwPrint, KwAnd, KwOr, KwNot, LParen, RParen,
            Comma, Assign, Plus, Minus, Star, Slash, Percent, EqEq, NotEq, Lt, Le, Gt, Ge, Newline,
            Eof,
        ];
        for t in all {
            assert!(!t.describe().is_empty(), "{t:?}");
        }
    }
}
