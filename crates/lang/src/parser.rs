//! Recursive-descent parser for Minifor.
//!
//! Grammar (uppercase = token, `SEP` = newline/`;`):
//!
//! ```text
//! program   := item*
//! item      := global | procedure
//! global    := "global" ["real"] IDENT ["(" INT ")"] ["=" ["-"] INT] SEP
//! procedure := ("proc" | "func") IDENT "(" params? ")" SEP decls body "end" SEP
//!            | "main" SEP decls body "end" SEP
//! params    := param ("," param)*
//! param     := ["real"] IDENT ["(" ")"]
//! decls     := (("integer" | "real") item ("," item)* SEP)*   item := IDENT ["(" INT ")"]
//! body      := stmt*
//! stmt      := IDENT ["(" expr ")"] "=" expr SEP
//!            | "if" expr "then" SEP body ["else" SEP body] "end" SEP
//!            | "while" expr "do" SEP body "end" SEP
//!            | "do" IDENT "=" expr "," expr ["," expr] SEP body "end" SEP
//!            | "call" IDENT "(" args? ")" SEP
//!            | "return" [expr] SEP
//!            | "read" "(" lvalue ")" SEP
//!            | "print" "(" expr ")" SEP
//! expr      := or;  or := and ("or" and)*;  and := not ("and" not)*
//! not       := "not" not | cmp;  cmp := add (CMPOP add)?
//! add       := mul (("+"|"-") mul)*;  mul := unary (("*"|"/"|"%") unary)*
//! unary     := "-" unary | primary
//! primary   := INT | REAL | IDENT ["(" args ")"] | "(" expr ")"
//! ```
//!
//! `IDENT "(" args ")"` in an expression is ambiguous between an array
//! element and a function call; the parser emits [`ExprKind::NameArgs`] and
//! the type checker resolves it.

use crate::ast::*;
use crate::diag::{Diagnostic, Diagnostics, Phase};
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Parses Minifor source into an unresolved [`Program`].
///
/// # Errors
///
/// Returns lexical errors, or the first parse error encountered.
pub fn parse(source: &str) -> Result<Program, Diagnostics> {
    let tokens = lex(source)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    parser.program().map_err(Diagnostics::single)
}

/// Maximum statement/expression nesting the recursive-descent parser
/// accepts. Beyond this a pathological input (say, ten thousand nested
/// parentheses) would overflow the parser's own call stack — an abort no
/// `Result` can catch — so it is rejected with a regular diagnostic
/// instead. Each nesting level costs around ten parser frames (the
/// precedence chain), so the bound is sized for the smallest stack the
/// parser must survive on: a 2 MiB test thread in a debug build. It is
/// still far above anything a human-written program reaches, and it
/// covers the later recursive passes (type checking, lowering,
/// interpretation) with room to spare.
const MAX_NESTING_DEPTH: u32 = 64;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Current combined statement + expression nesting depth.
    depth: u32,
}

type PResult<T> = Result<T, Diagnostic>;

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let tok = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        tok
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind, ctx: &str) -> PResult<Token> {
        if self.at(kind) {
            Ok(self.bump())
        } else {
            Err(self.error(format!(
                "expected {} {}, found {}",
                kind.describe(),
                ctx,
                self.peek().describe()
            )))
        }
    }

    fn expect_sep(&mut self, ctx: &str) -> PResult<()> {
        if self.at(&TokenKind::Newline) {
            self.bump();
            Ok(())
        } else if self.at(&TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.error(format!(
                "expected end of line {}, found {}",
                ctx,
                self.peek().describe()
            )))
        }
    }

    fn skip_seps(&mut self) {
        while self.at(&TokenKind::Newline) {
            self.bump();
        }
    }

    fn error(&self, msg: impl Into<String>) -> Diagnostic {
        Diagnostic::new(Phase::Parse, self.peek_span(), msg)
    }

    fn ident(&mut self, ctx: &str) -> PResult<(String, Span)> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let span = self.peek_span();
                self.bump();
                Ok((name, span))
            }
            other => Err(self.error(format!(
                "expected identifier {}, found {}",
                ctx,
                other.describe()
            ))),
        }
    }

    // ---- top level ----------------------------------------------------

    fn program(&mut self) -> PResult<Program> {
        let mut program = Program::default();
        self.skip_seps();
        while !self.at(&TokenKind::Eof) {
            match self.peek() {
                TokenKind::KwGlobal => program.globals.push(self.global()?),
                TokenKind::KwProc => program.procs.push(self.procedure(ProcKind::Subroutine)?),
                TokenKind::KwFunc => program.procs.push(self.procedure(ProcKind::Function)?),
                TokenKind::KwMain => program.procs.push(self.main_proc()?),
                other => {
                    return Err(self.error(format!(
                        "expected `global`, `proc`, `func` or `main`, found {}",
                        other.describe()
                    )))
                }
            }
            self.skip_seps();
        }
        Ok(program)
    }

    fn global(&mut self) -> PResult<GlobalDecl> {
        let start = self.peek_span();
        self.bump(); // `global`
        let base = if self.eat(&TokenKind::KwReal) {
            Base::Real
        } else {
            Base::Int
        };
        let (name, _) = self.ident("after `global`")?;
        let mut ty = Ty {
            base,
            shape: Shape::Scalar,
        };
        if self.eat(&TokenKind::LParen) {
            let len = self.array_len()?;
            self.expect(&TokenKind::RParen, "after array length")?;
            ty.shape = Shape::Array(Some(len));
        }
        let mut init = None;
        if self.eat(&TokenKind::Assign) {
            if ty != Ty::INT {
                return Err(self.error("only integer scalar globals may have initializers"));
            }
            let neg = self.eat(&TokenKind::Minus);
            match self.peek().clone() {
                TokenKind::Int(v) => {
                    self.bump();
                    init = Some(if neg { v.wrapping_neg() } else { v });
                }
                TokenKind::IntMinMagnitude if neg => {
                    self.bump();
                    init = Some(i64::MIN);
                }
                other => {
                    return Err(self.error(format!(
                        "global initializer must be an integer literal, found {}",
                        other.describe()
                    )))
                }
            }
        }
        let span = start.merge(self.peek_span());
        self.expect_sep("after global declaration")?;
        Ok(GlobalDecl {
            name,
            ty,
            init,
            span,
        })
    }

    fn array_len(&mut self) -> PResult<u32> {
        match self.peek().clone() {
            TokenKind::Int(v) if v > 0 && v <= u32::MAX as i64 => {
                self.bump();
                Ok(v as u32)
            }
            other => Err(self.error(format!(
                "array length must be a positive integer literal, found {}",
                other.describe()
            ))),
        }
    }

    fn procedure(&mut self, kind: ProcKind) -> PResult<Proc> {
        let start = self.peek_span();
        self.bump(); // `proc` or `func`
        let (name, _) = self.ident("as procedure name")?;
        self.expect(&TokenKind::LParen, "after procedure name")?;
        let mut params = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                params.push(self.param()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen, "after parameter list")?;
        let span = start.merge(self.peek_span());
        self.expect_sep("after procedure header")?;
        let (decls, body) = self.proc_body()?;
        Ok(Proc {
            name,
            kind,
            params,
            decls,
            body,
            span,
        })
    }

    fn main_proc(&mut self) -> PResult<Proc> {
        let span = self.peek_span();
        self.bump(); // `main`
        self.expect_sep("after `main`")?;
        let (decls, body) = self.proc_body()?;
        Ok(Proc {
            name: "main".into(),
            kind: ProcKind::Main,
            params: vec![],
            decls,
            body,
            span,
        })
    }

    fn param(&mut self) -> PResult<Param> {
        let base = if self.eat(&TokenKind::KwReal) {
            Base::Real
        } else {
            Base::Int
        };
        let (name, span) = self.ident("as parameter name")?;
        let ty = if self.eat(&TokenKind::LParen) {
            self.expect(&TokenKind::RParen, "in assumed-size array parameter")?;
            Ty::assumed_array(base)
        } else {
            Ty {
                base,
                shape: Shape::Scalar,
            }
        };
        Ok(Param { name, ty, span })
    }

    fn proc_body(&mut self) -> PResult<(Vec<LocalDecl>, Block)> {
        self.skip_seps();
        let mut decls = Vec::new();
        while matches!(self.peek(), TokenKind::KwInteger | TokenKind::KwReal) {
            self.local_decl_line(&mut decls)?;
            self.skip_seps();
        }
        let body = self.block()?;
        self.expect(&TokenKind::KwEnd, "to close procedure")?;
        self.expect_sep("after `end`")?;
        Ok((decls, body))
    }

    fn local_decl_line(&mut self, decls: &mut Vec<LocalDecl>) -> PResult<()> {
        let base = if self.eat(&TokenKind::KwReal) {
            Base::Real
        } else {
            self.bump(); // `integer`
            Base::Int
        };
        loop {
            let (name, span) = self.ident("in declaration")?;
            let ty = if self.eat(&TokenKind::LParen) {
                let len = self.array_len()?;
                self.expect(&TokenKind::RParen, "after array length")?;
                Ty::array(base, len)
            } else {
                Ty {
                    base,
                    shape: Shape::Scalar,
                }
            };
            decls.push(LocalDecl { name, ty, span });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect_sep("after declaration")
    }

    // ---- statements ---------------------------------------------------

    /// Parses statements until `end` or `else` (not consumed).
    fn block(&mut self) -> PResult<Block> {
        let mut stmts = Vec::new();
        loop {
            self.skip_seps();
            match self.peek() {
                TokenKind::KwEnd | TokenKind::KwElse | TokenKind::Eof => break,
                TokenKind::KwInteger | TokenKind::KwReal => {
                    return Err(self.error(
                        "declarations must appear before the first statement of a procedure",
                    ))
                }
                _ => stmts.push(self.stmt()?),
            }
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> PResult<Stmt> {
        self.depth += 1;
        if self.depth > MAX_NESTING_DEPTH {
            self.depth -= 1;
            return Err(self.error(format!(
                "statement nesting exceeds the supported depth of {MAX_NESTING_DEPTH}"
            )));
        }
        let result = self.stmt_inner();
        self.depth -= 1;
        result
    }

    fn stmt_inner(&mut self) -> PResult<Stmt> {
        let start = self.peek_span();
        match self.peek().clone() {
            TokenKind::Ident(_) => self.assign_stmt(),
            TokenKind::KwIf => {
                self.bump();
                let cond = self.expr()?;
                self.expect(&TokenKind::KwThen, "after `if` condition")?;
                self.expect_sep("after `then`")?;
                let then_blk = self.block()?;
                let else_blk = if self.eat(&TokenKind::KwElse) {
                    self.expect_sep("after `else`")?;
                    self.block()?
                } else {
                    Vec::new()
                };
                let end_tok = self.expect(&TokenKind::KwEnd, "to close `if`")?;
                let span = start.merge(end_tok.span);
                self.expect_sep("after `end`")?;
                Ok(Stmt {
                    kind: StmtKind::If {
                        cond,
                        then_blk,
                        else_blk,
                    },
                    span,
                })
            }
            TokenKind::KwWhile => {
                self.bump();
                let cond = self.expr()?;
                self.expect(&TokenKind::KwDo, "after `while` condition")?;
                self.expect_sep("after `do`")?;
                let body = self.block()?;
                let end_tok = self.expect(&TokenKind::KwEnd, "to close `while`")?;
                let span = start.merge(end_tok.span);
                self.expect_sep("after `end`")?;
                Ok(Stmt {
                    kind: StmtKind::While { cond, body },
                    span,
                })
            }
            TokenKind::KwDo => {
                self.bump();
                let (var, _) = self.ident("as `do` loop variable")?;
                self.expect(&TokenKind::Assign, "after loop variable")?;
                let from = self.expr()?;
                self.expect(&TokenKind::Comma, "after `do` initial value")?;
                let to = self.expr()?;
                let step = if self.eat(&TokenKind::Comma) {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect_sep("after `do` header")?;
                let body = self.block()?;
                let end_tok = self.expect(&TokenKind::KwEnd, "to close `do`")?;
                let span = start.merge(end_tok.span);
                self.expect_sep("after `end`")?;
                Ok(Stmt {
                    kind: StmtKind::Do {
                        var,
                        from,
                        to,
                        step,
                        body,
                    },
                    span,
                })
            }
            TokenKind::KwCall => {
                self.bump();
                let (name, _) = self.ident("as callee name")?;
                self.expect(&TokenKind::LParen, "after callee name")?;
                let args = self.args()?;
                let rp = self.expect(&TokenKind::RParen, "after arguments")?;
                let span = start.merge(rp.span);
                self.expect_sep("after `call`")?;
                Ok(Stmt {
                    kind: StmtKind::Call { name, args },
                    span,
                })
            }
            TokenKind::KwReturn => {
                self.bump();
                let value = if self.at(&TokenKind::Newline) || self.at(&TokenKind::Eof) {
                    None
                } else {
                    Some(self.expr()?)
                };
                let span = start.merge(self.peek_span());
                self.expect_sep("after `return`")?;
                Ok(Stmt {
                    kind: StmtKind::Return { value },
                    span,
                })
            }
            TokenKind::KwRead => {
                self.bump();
                self.expect(&TokenKind::LParen, "after `read`")?;
                let target = self.lvalue()?;
                let rp = self.expect(&TokenKind::RParen, "after `read` target")?;
                let span = start.merge(rp.span);
                self.expect_sep("after `read`")?;
                Ok(Stmt {
                    kind: StmtKind::Read { target },
                    span,
                })
            }
            TokenKind::KwPrint => {
                self.bump();
                self.expect(&TokenKind::LParen, "after `print`")?;
                let value = self.expr()?;
                let rp = self.expect(&TokenKind::RParen, "after `print` value")?;
                let span = start.merge(rp.span);
                self.expect_sep("after `print`")?;
                Ok(Stmt {
                    kind: StmtKind::Print { value },
                    span,
                })
            }
            other => Err(self.error(format!("expected a statement, found {}", other.describe()))),
        }
    }

    fn assign_stmt(&mut self) -> PResult<Stmt> {
        let target = self.lvalue()?;
        let start = target.span;
        self.expect(&TokenKind::Assign, "in assignment")?;
        let value = self.expr()?;
        let span = start.merge(value.span);
        self.expect_sep("after assignment")?;
        Ok(Stmt {
            kind: StmtKind::Assign { target, value },
            span,
        })
    }

    fn lvalue(&mut self) -> PResult<LValue> {
        let (name, span) = self.ident("as assignment target")?;
        if self.eat(&TokenKind::LParen) {
            let idx = self.expr()?;
            let rp = self.expect(&TokenKind::RParen, "after array index")?;
            Ok(LValue {
                kind: LValueKind::Element(name, Box::new(idx)),
                span: span.merge(rp.span),
            })
        } else {
            Ok(LValue {
                kind: LValueKind::Scalar(name),
                span,
            })
        }
    }

    fn args(&mut self) -> PResult<Vec<Expr>> {
        let mut args = Vec::new();
        if self.at(&TokenKind::RParen) {
            return Ok(args);
        }
        loop {
            args.push(self.expr()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(args)
    }

    // ---- expressions --------------------------------------------------

    fn expr(&mut self) -> PResult<Expr> {
        self.depth += 1;
        if self.depth > MAX_NESTING_DEPTH {
            self.depth -= 1;
            return Err(self.error(format!(
                "expression nesting exceeds the supported depth of {MAX_NESTING_DEPTH}"
            )));
        }
        let result = self.or_expr();
        self.depth -= 1;
        result
    }

    fn or_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat(&TokenKind::KwOr) {
            let rhs = self.and_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr {
                kind: ExprKind::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs)),
                span,
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.not_expr()?;
        while self.eat(&TokenKind::KwAnd) {
            let rhs = self.not_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr {
                kind: ExprKind::Binary(BinOp::And, Box::new(lhs), Box::new(rhs)),
                span,
            };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> PResult<Expr> {
        if self.at(&TokenKind::KwNot) {
            self.depth += 1;
            if self.depth > MAX_NESTING_DEPTH {
                self.depth -= 1;
                return Err(self.error(format!(
                    "expression nesting exceeds the supported depth of {MAX_NESTING_DEPTH}"
                )));
            }
            let start = self.peek_span();
            self.bump();
            let operand = self.not_expr();
            self.depth -= 1;
            let operand = operand?;
            let span = start.merge(operand.span);
            Ok(Expr {
                kind: ExprKind::Unary(UnOp::Not, Box::new(operand)),
                span,
            })
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> PResult<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            TokenKind::EqEq => BinOp::Eq,
            TokenKind::NotEq => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        let span = lhs.span.merge(rhs.span);
        Ok(Expr {
            kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
            span,
        })
    }

    fn add_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr {
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
                span,
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr {
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
                span,
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> PResult<Expr> {
        if self.at(&TokenKind::Minus) {
            let start = self.peek_span();
            self.bump();
            // `-9223372036854775808` is the one literal whose magnitude
            // does not fit in i64; the lexer hands it over as a marker
            // token and the negation lands exactly on `i64::MIN`.
            if self.at(&TokenKind::IntMinMagnitude) {
                let end = self.peek_span();
                self.bump();
                return Ok(Expr {
                    kind: ExprKind::IntLit(i64::MIN),
                    span: start.merge(end),
                });
            }
            let operand = self.unary_expr()?;
            let span = start.merge(operand.span);
            // Fold a negated literal immediately so `-5` is a literal (the
            // literal jump function depends on this).
            if let ExprKind::IntLit(v) = operand.kind {
                return Ok(Expr {
                    kind: ExprKind::IntLit(v.wrapping_neg()),
                    span,
                });
            }
            if let ExprKind::RealLit(v) = operand.kind {
                return Ok(Expr {
                    kind: ExprKind::RealLit(-v),
                    span,
                });
            }
            Ok(Expr {
                kind: ExprKind::Unary(UnOp::Neg, Box::new(operand)),
                span,
            })
        } else {
            self.primary_expr()
        }
    }

    fn primary_expr(&mut self) -> PResult<Expr> {
        let span = self.peek_span();
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::IntLit(v),
                    span,
                })
            }
            TokenKind::Real(v) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::RealLit(v),
                    span,
                })
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.expr()?;
                let rp = self.expect(&TokenKind::RParen, "to close parenthesized expression")?;
                Ok(Expr {
                    kind: inner.kind,
                    span: span.merge(rp.span),
                })
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.eat(&TokenKind::LParen) {
                    let args = self.args()?;
                    let rp = self.expect(&TokenKind::RParen, "after arguments")?;
                    Ok(Expr {
                        kind: ExprKind::NameArgs(name, args),
                        span: span.merge(rp.span),
                    })
                } else {
                    Ok(Expr {
                        kind: ExprKind::Name(name),
                        span,
                    })
                }
            }
            other => Err(self.error(format!(
                "expected an expression, found {}",
                other.describe()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Program {
        match parse(src) {
            Ok(p) => p,
            Err(e) => panic!("parse failed:\n{}", e.render(src)),
        }
    }

    fn parse_err(src: &str) -> String {
        parse(src).unwrap_err().first().message.clone()
    }

    #[test]
    fn empty_program() {
        let p = parse_ok("");
        assert!(p.globals.is_empty());
        assert!(p.procs.is_empty());
    }

    #[test]
    fn minimal_main() {
        let p = parse_ok("main\nend\n");
        assert_eq!(p.procs.len(), 1);
        assert_eq!(p.procs[0].kind, ProcKind::Main);
        assert!(p.procs[0].body.is_empty());
    }

    #[test]
    fn globals() {
        let p = parse_ok("global n = 5\nglobal m\nglobal a(10)\nglobal real x\nglobal real b(4)\n");
        assert_eq!(p.globals.len(), 5);
        assert_eq!(p.globals[0].init, Some(5));
        assert_eq!(p.globals[0].ty, Ty::INT);
        assert_eq!(p.globals[1].init, None);
        assert_eq!(p.globals[2].ty, Ty::array(Base::Int, 10));
        assert_eq!(p.globals[3].ty, Ty::REAL);
        assert_eq!(p.globals[4].ty, Ty::array(Base::Real, 4));
    }

    #[test]
    fn negative_global_init() {
        let p = parse_ok("global n = -7\n");
        assert_eq!(p.globals[0].init, Some(-7));
        let p = parse_ok("global n = -9223372036854775808\n");
        assert_eq!(p.globals[0].init, Some(i64::MIN));
        // The magnitude without the minus still does not fit.
        let msg = parse_err("global n = 9223372036854775808\n");
        assert!(msg.contains("integer literal"), "{msg}");
    }

    #[test]
    fn real_global_init_rejected() {
        let msg = parse_err("global real x = 3\n");
        assert!(msg.contains("integer scalar"), "{msg}");
    }

    #[test]
    fn proc_with_params() {
        let p = parse_ok("proc f(x, real y, a(), real b())\nend\n");
        let f = &p.procs[0];
        assert_eq!(f.kind, ProcKind::Subroutine);
        assert_eq!(f.params.len(), 4);
        assert_eq!(f.params[0].ty, Ty::INT);
        assert_eq!(f.params[1].ty, Ty::REAL);
        assert_eq!(f.params[2].ty, Ty::assumed_array(Base::Int));
        assert_eq!(f.params[3].ty, Ty::assumed_array(Base::Real));
    }

    #[test]
    fn local_decls() {
        let p = parse_ok("proc f()\ninteger i, a(5)\nreal t\ni = 1\nend\n");
        let f = &p.procs[0];
        assert_eq!(f.decls.len(), 3);
        assert_eq!(f.decls[1].ty, Ty::array(Base::Int, 5));
        assert_eq!(f.decls[2].ty, Ty::REAL);
        assert_eq!(f.body.len(), 1);
    }

    #[test]
    fn decl_after_stmt_rejected() {
        let msg = parse_err("proc f()\nx = 1\ninteger y\nend\n");
        assert!(msg.contains("before the first statement"), "{msg}");
    }

    #[test]
    fn if_else() {
        let p = parse_ok("main\nif x > 0 then\ny = 1\nelse\ny = 2\nend\nend\n");
        match &p.procs[0].body[0].kind {
            StmtKind::If {
                then_blk, else_blk, ..
            } => {
                assert_eq!(then_blk.len(), 1);
                assert_eq!(else_blk.len(), 1);
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn nested_if() {
        let p = parse_ok("main\nif a then\nif b then\nx = 1\nend\nend\nend\n");
        match &p.procs[0].body[0].kind {
            StmtKind::If {
                then_blk, else_blk, ..
            } => {
                assert_eq!(then_blk.len(), 1);
                assert!(else_blk.is_empty());
                assert!(matches!(then_blk[0].kind, StmtKind::If { .. }));
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn while_loop() {
        let p = parse_ok("main\nwhile i < 10 do\ni = i + 1\nend\nend\n");
        assert!(matches!(p.procs[0].body[0].kind, StmtKind::While { .. }));
    }

    #[test]
    fn do_loop_with_and_without_step() {
        let p =
            parse_ok("main\ndo i = 1, 10\ns = s + i\nend\ndo j = 10, 1, -2\ns = s - j\nend\nend\n");
        match &p.procs[0].body[0].kind {
            StmtKind::Do { var, step, .. } => {
                assert_eq!(var, "i");
                assert!(step.is_none());
            }
            other => panic!("expected do, got {other:?}"),
        }
        match &p.procs[0].body[1].kind {
            StmtKind::Do { var, step, .. } => {
                assert_eq!(var, "j");
                assert!(step.is_some());
            }
            other => panic!("expected do, got {other:?}"),
        }
    }

    #[test]
    fn call_and_return() {
        let p = parse_ok("proc f(x)\ncall g(x, 1)\nreturn\nend\nfunc g(a, b)\nreturn a + b\nend\n");
        assert!(matches!(p.procs[0].body[0].kind, StmtKind::Call { .. }));
        match &p.procs[0].body[1].kind {
            StmtKind::Return { value } => assert!(value.is_none()),
            other => panic!("{other:?}"),
        }
        match &p.procs[1].body[0].kind {
            StmtKind::Return { value } => assert!(value.is_some()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn read_print() {
        let p = parse_ok("main\nread(x)\nread(a(3))\nprint(x * 2)\nend\n");
        assert!(matches!(p.procs[0].body[0].kind, StmtKind::Read { .. }));
        match &p.procs[0].body[1].kind {
            StmtKind::Read { target } => {
                assert!(matches!(target.kind, LValueKind::Element(..)));
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(p.procs[0].body[2].kind, StmtKind::Print { .. }));
    }

    #[test]
    fn precedence() {
        let p = parse_ok("main\nx = 1 + 2 * 3\nend\n");
        match &p.procs[0].body[0].kind {
            StmtKind::Assign { value, .. } => match &value.kind {
                ExprKind::Binary(BinOp::Add, lhs, rhs) => {
                    assert_eq!(lhs.as_int_lit(), Some(1));
                    assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::Mul, ..)));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parens_override_precedence() {
        let p = parse_ok("main\nx = (1 + 2) * 3\nend\n");
        match &p.procs[0].body[0].kind {
            StmtKind::Assign { value, .. } => {
                assert!(matches!(value.kind, ExprKind::Binary(BinOp::Mul, ..)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn logical_precedence() {
        // `a or b and not c < d` == `a or (b and (not (c < d)))`
        let p = parse_ok("main\nx = a or b and not c < d\nend\n");
        match &p.procs[0].body[0].kind {
            StmtKind::Assign { value, .. } => match &value.kind {
                ExprKind::Binary(BinOp::Or, _, rhs) => match &rhs.kind {
                    ExprKind::Binary(BinOp::And, _, rhs2) => {
                        assert!(matches!(rhs2.kind, ExprKind::Unary(UnOp::Not, _)));
                    }
                    other => panic!("{other:?}"),
                },
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn negative_literal_folds() {
        let p = parse_ok("main\nx = -5\ny = -(a)\nend\n");
        match &p.procs[0].body[0].kind {
            StmtKind::Assign { value, .. } => assert_eq!(value.as_int_lit(), Some(-5)),
            other => panic!("{other:?}"),
        }
        match &p.procs[0].body[1].kind {
            StmtKind::Assign { value, .. } => {
                assert!(matches!(value.kind, ExprKind::Unary(UnOp::Neg, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn i64_min_literal_parses_only_under_unary_minus() {
        let p = parse_ok("main\nx = -9223372036854775808\ny = 1 - -9223372036854775808\nend\n");
        match &p.procs[0].body[0].kind {
            StmtKind::Assign { value, .. } => assert_eq!(value.as_int_lit(), Some(i64::MIN)),
            other => panic!("{other:?}"),
        }
        match &p.procs[0].body[1].kind {
            StmtKind::Assign { value, .. } => match &value.kind {
                ExprKind::Binary(BinOp::Sub, _, rhs) => {
                    assert_eq!(rhs.as_int_lit(), Some(i64::MIN));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
        // Without the minus the magnitude is rejected at parse time.
        let msg = parse_err("main\nx = 9223372036854775808\nend\n");
        assert!(msg.contains("9223372036854775808"), "{msg}");
    }

    #[test]
    fn name_args_is_ambiguous_node() {
        let p = parse_ok("main\nx = f(1) + a(i)\nend\n");
        match &p.procs[0].body[0].kind {
            StmtKind::Assign { value, .. } => match &value.kind {
                ExprKind::Binary(BinOp::Add, lhs, rhs) => {
                    assert!(matches!(lhs.kind, ExprKind::NameArgs(..)));
                    assert!(matches!(rhs.kind, ExprKind::NameArgs(..)));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn element_assignment() {
        let p = parse_ok("main\na(i + 1) = 3\nend\n");
        match &p.procs[0].body[0].kind {
            StmtKind::Assign { target, .. } => {
                assert!(matches!(target.kind, LValueKind::Element(..)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn missing_end_is_error() {
        let msg = parse_err("main\nx = 1\n");
        assert!(msg.contains("`end`"), "{msg}");
    }

    #[test]
    fn chained_comparison_is_error() {
        let msg = parse_err("main\nx = 1 < 2 < 3\nend\n");
        assert!(msg.contains("end of line"), "{msg}");
    }

    #[test]
    fn garbage_toplevel_is_error() {
        let msg = parse_err("banana\n");
        assert!(msg.contains("expected `global`"), "{msg}");
    }

    #[test]
    fn empty_call_args() {
        let p = parse_ok("main\ncall init()\nend\nproc init()\nend\n");
        match &p.procs[0].body[0].kind {
            StmtKind::Call { args, .. } => assert!(args.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn semicolons_separate_statements() {
        let p = parse_ok("main; x = 1; y = 2; end");
        assert_eq!(p.procs[0].body.len(), 2);
    }

    #[test]
    fn pathological_paren_nesting_is_a_diagnostic_not_an_abort() {
        // Deep enough to overflow the parser's call stack without the
        // depth guard; must come back as an ordinary parse error.
        let deep = format!(
            "main\nx = {}1{}\nend\n",
            "(".repeat(50_000),
            ")".repeat(50_000)
        );
        let msg = parse_err(&deep);
        assert!(msg.contains("nesting exceeds"), "{msg}");
    }

    #[test]
    fn pathological_not_nesting_is_a_diagnostic_not_an_abort() {
        let deep = format!("main\nif {}1 then\nend\nend\n", "not ".repeat(50_000));
        let msg = parse_err(&deep);
        assert!(msg.contains("nesting exceeds"), "{msg}");
    }

    #[test]
    fn pathological_if_nesting_is_a_diagnostic_not_an_abort() {
        let deep = format!(
            "main\n{}x = 1\n{}end\n",
            "if 1 then\n".repeat(50_000),
            "end\n".repeat(50_000)
        );
        let msg = parse_err(&deep);
        assert!(msg.contains("nesting exceeds"), "{msg}");
    }

    #[test]
    fn reasonable_nesting_still_parses() {
        let depth = 48;
        let src = format!(
            "main\nx = {}1{}\nend\n",
            "(".repeat(depth),
            ")".repeat(depth)
        );
        parse_ok(&src);
    }

    #[test]
    fn adversarial_inputs_never_panic() {
        // Truncations, overflows, stray bytes: every one must come back
        // as a Diagnostics value, not a panic.
        for src in [
            "",
            "main",
            "main\nx = ",
            "main\nx = 99999999999999999999999\nend\n",
            "main\nx = 1.\nend\n",
            "proc f(",
            "main\n\u{0}\u{1}\nend\n",
            "main\nπ = 1\nend\n",
            "main\nx = (((\nend\n",
            "do do do",
            "main\ncall\nend\n",
        ] {
            let _ = parse(src);
        }
    }
}
