//! Source locations and spans.

use std::fmt;

/// A half-open byte range into a source buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Creates a span covering `start..end`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: u32, end: u32) -> Self {
        assert!(start <= end, "span start must not exceed end");
        Span { start, end }
    }

    /// A zero-width span at `pos`.
    pub fn point(pos: u32) -> Self {
        Span {
            start: pos,
            end: pos,
        }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Length of the span in bytes.
    pub fn len(self) -> u32 {
        self.end - self.start
    }

    /// Whether the span covers zero bytes.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Maps byte offsets to 1-based line/column pairs for diagnostics.
#[derive(Debug, Clone)]
pub struct LineMap {
    /// Byte offset at which each line starts; `line_starts[0] == 0`.
    line_starts: Vec<u32>,
}

impl LineMap {
    /// Builds a line map for `source`.
    pub fn new(source: &str) -> Self {
        let mut line_starts = vec![0u32];
        for (i, b) in source.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        LineMap { line_starts }
    }

    /// Returns the 1-based `(line, column)` of byte offset `pos`.
    pub fn line_col(&self, pos: u32) -> (u32, u32) {
        let line = match self.line_starts.binary_search(&pos) {
            Ok(idx) => idx,
            Err(idx) => idx - 1,
        };
        let col = pos - self.line_starts[line];
        (line as u32 + 1, col + 1)
    }

    /// Number of lines in the mapped source.
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
        assert_eq!(b.merge(a), Span::new(3, 12));
    }

    #[test]
    fn point_is_empty() {
        assert!(Span::point(4).is_empty());
        assert_eq!(Span::point(4).len(), 0);
    }

    #[test]
    #[should_panic(expected = "span start")]
    fn inverted_span_panics() {
        let _ = Span::new(5, 2);
    }

    #[test]
    fn line_col_basic() {
        let map = LineMap::new("ab\ncd\n\nxyz");
        assert_eq!(map.line_col(0), (1, 1));
        assert_eq!(map.line_col(1), (1, 2));
        assert_eq!(map.line_col(3), (2, 1));
        assert_eq!(map.line_col(6), (3, 1));
        assert_eq!(map.line_col(7), (4, 1));
        assert_eq!(map.line_col(9), (4, 3));
        assert_eq!(map.line_count(), 4);
    }

    #[test]
    fn line_col_empty_source() {
        let map = LineMap::new("");
        assert_eq!(map.line_col(0), (1, 1));
    }
}
