//! Abstract syntax for Minifor.
//!
//! Minifor deliberately mirrors the FORTRAN 77 features interprocedural
//! constant propagation cares about: every parameter is passed **by
//! reference** (expression actuals are passed through an invisible
//! temporary, so callee stores do not escape), globals model `COMMON`
//! variables, only integer values are ever propagated, and arrays are
//! opaque to the analysis.
//!
//! Semantic notes (shared by the interpreter and the IR lowering):
//!
//! * Scalars and array elements are zero-initialized.
//! * `and`/`or` evaluate both operands (no short-circuiting), treating zero
//!   as false and any non-zero integer as true; comparisons yield 0 or 1.
//! * Integer division truncates toward zero; division or remainder by zero
//!   is a runtime error.
//! * `do v = from, to [, step]` evaluates `from`, `to` and `step` once, then
//!   iterates while `v <= to` (positive step) or `v >= to` (negative step),
//!   adding `step` after each iteration. A zero step is a runtime error.
//! * A `func` that falls off the end returns 0.

use crate::span::Span;
use std::fmt;

/// Base (element) type of a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Base {
    /// 64-bit signed integer — the only type the analysis propagates.
    Int,
    /// 64-bit float; always treated as non-constant by the analysis.
    Real,
}

impl fmt::Display for Base {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Base::Int => f.write_str("integer"),
            Base::Real => f.write_str("real"),
        }
    }
}

/// Scalar-versus-array shape of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Shape {
    /// A single value.
    Scalar,
    /// A 1-based array. `Some(n)` is a declared length; `None` is an
    /// assumed-size array formal (`name()` in a parameter list).
    Array(Option<u32>),
}

/// The type of a variable: base type plus shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ty {
    /// Element type.
    pub base: Base,
    /// Scalar or array.
    pub shape: Shape,
}

impl Ty {
    /// The integer scalar type.
    pub const INT: Ty = Ty {
        base: Base::Int,
        shape: Shape::Scalar,
    };
    /// The real scalar type.
    pub const REAL: Ty = Ty {
        base: Base::Real,
        shape: Shape::Scalar,
    };

    /// An array type with the given base and declared length.
    pub fn array(base: Base, len: u32) -> Ty {
        Ty {
            base,
            shape: Shape::Array(Some(len)),
        }
    }

    /// An assumed-size array formal.
    pub fn assumed_array(base: Base) -> Ty {
        Ty {
            base,
            shape: Shape::Array(None),
        }
    }

    /// Whether this is a scalar type.
    pub fn is_scalar(self) -> bool {
        self.shape == Shape::Scalar
    }

    /// Whether this is an array type.
    pub fn is_array(self) -> bool {
        !self.is_scalar()
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.shape {
            Shape::Scalar => write!(f, "{}", self.base),
            Shape::Array(Some(n)) => write!(f, "{}({n})", self.base),
            Shape::Array(None) => write!(f, "{}()", self.base),
        }
    }
}

/// A top-level global variable declaration (models FORTRAN `COMMON`).
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDecl {
    /// Variable name; unique among globals.
    pub name: String,
    /// Declared type.
    pub ty: Ty,
    /// Optional compile-time initializer (integer scalars only).
    pub init: Option<i64>,
    /// Source location.
    pub span: Span,
}

/// Procedure flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcKind {
    /// `proc` — invoked with `call`, no return value.
    Subroutine,
    /// `func` — integer-valued, invoked inside expressions.
    Function,
    /// `main` — the unique entry point; no parameters.
    Main,
}

impl fmt::Display for ProcKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcKind::Subroutine => f.write_str("proc"),
            ProcKind::Function => f.write_str("func"),
            ProcKind::Main => f.write_str("main"),
        }
    }
}

/// A formal parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name; unique within the procedure.
    pub name: String,
    /// Declared type (`integer` scalar by default).
    pub ty: Ty,
    /// Source location.
    pub span: Span,
}

/// An explicit local declaration (`integer x, y(10)` / `real z`).
#[derive(Debug, Clone, PartialEq)]
pub struct LocalDecl {
    /// Local name.
    pub name: String,
    /// Declared type.
    pub ty: Ty,
    /// Source location.
    pub span: Span,
}

/// A procedure: subroutine, function, or main.
#[derive(Debug, Clone, PartialEq)]
pub struct Proc {
    /// Procedure name; unique program-wide (`main` has the name `main`).
    pub name: String,
    /// Subroutine / function / main.
    pub kind: ProcKind,
    /// Formal parameters (empty for `main`).
    pub params: Vec<Param>,
    /// Explicit local declarations, which must precede the first statement.
    pub decls: Vec<LocalDecl>,
    /// Statement list.
    pub body: Block,
    /// Source location of the header.
    pub span: Span,
}

/// A statement sequence.
pub type Block = Vec<Stmt>;

/// A statement with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// What the statement does.
    pub kind: StmtKind,
    /// Source location.
    pub span: Span,
}

/// Statement forms.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `target = value`
    Assign {
        /// Destination scalar or array element.
        target: LValue,
        /// Assigned expression.
        value: Expr,
    },
    /// `if cond then ... [else ...] end`
    If {
        /// Condition (integer; non-zero is true).
        cond: Expr,
        /// Then branch.
        then_blk: Block,
        /// Else branch (possibly empty).
        else_blk: Block,
    },
    /// `while cond do ... end`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// `do var = from, to [, step] ... end`
    Do {
        /// Loop variable (an integer scalar).
        var: String,
        /// Initial value.
        from: Expr,
        /// Inclusive bound.
        to: Expr,
        /// Step; defaults to 1.
        step: Option<Expr>,
        /// Loop body.
        body: Block,
    },
    /// `call name(args)`
    Call {
        /// Callee subroutine name.
        name: String,
        /// Actual arguments.
        args: Vec<Expr>,
    },
    /// `return [expr]`
    Return {
        /// Returned value (functions only).
        value: Option<Expr>,
    },
    /// `read(target)` — consumes one input value.
    Read {
        /// Destination of the read.
        target: LValue,
    },
    /// `print(expr)` — appends one output value.
    Print {
        /// Printed expression.
        value: Expr,
    },
}

/// An assignable location.
#[derive(Debug, Clone, PartialEq)]
pub struct LValue {
    /// Scalar or element.
    pub kind: LValueKind,
    /// Source location.
    pub span: Span,
}

/// Assignable location forms.
#[derive(Debug, Clone, PartialEq)]
pub enum LValueKind {
    /// A scalar variable.
    Scalar(String),
    /// An array element `name(index)`.
    Element(String, Box<Expr>),
}

impl LValue {
    /// The variable name being assigned (the array name for elements).
    pub fn name(&self) -> &str {
        match &self.kind {
            LValueKind::Scalar(n) => n,
            LValueKind::Element(n, _) => n,
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical negation: `not e` is 1 if `e == 0`, else 0 (integers only).
    Not,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnOp::Neg => f.write_str("-"),
            UnOp::Not => f.write_str("not "),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (integer division truncates toward zero)
    Div,
    /// `%` (remainder; integers only)
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and` (non-short-circuit, integers only)
    And,
    /// `or` (non-short-circuit, integers only)
    Or,
}

impl BinOp {
    /// Whether the operator is a comparison (result is always integer 0/1).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// Whether the operator is `and`/`or`.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// Whether the operator is arithmetic (`+ - * / %`).
    pub fn is_arithmetic(self) -> bool {
        !self.is_comparison() && !self.is_logical()
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
        };
        f.write_str(s)
    }
}

/// An expression with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression form.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

/// Expression forms.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Real literal.
    RealLit(f64),
    /// A scalar variable reference, or a whole-array reference in an
    /// argument position.
    Name(String),
    /// `name(args)` before name resolution: either an array element
    /// reference or a function call. The type checker rewrites every
    /// occurrence into [`ExprKind::Index`] or [`ExprKind::CallFn`]; later
    /// phases reject this variant.
    NameArgs(String, Vec<Expr>),
    /// An array element reference (post-resolution).
    Index(String, Box<Expr>),
    /// A function call (post-resolution).
    CallFn(String, Vec<Expr>),
    /// A unary operation.
    Unary(UnOp, Box<Expr>),
    /// A binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Creates an integer literal expression.
    pub fn int(value: i64, span: Span) -> Expr {
        Expr {
            kind: ExprKind::IntLit(value),
            span,
        }
    }

    /// Creates a name reference expression.
    pub fn name(name: impl Into<String>, span: Span) -> Expr {
        Expr {
            kind: ExprKind::Name(name.into()),
            span,
        }
    }

    /// Returns the literal value if this is an integer literal.
    pub fn as_int_lit(&self) -> Option<i64> {
        match self.kind {
            ExprKind::IntLit(v) => Some(v),
            _ => None,
        }
    }
}

/// A whole Minifor program (compilation unit).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Global variables, in declaration order.
    pub globals: Vec<GlobalDecl>,
    /// All procedures including `main`.
    pub procs: Vec<Proc>,
}

impl Program {
    /// Finds a procedure by name.
    pub fn proc(&self, name: &str) -> Option<&Proc> {
        self.procs.iter().find(|p| p.name == name)
    }

    /// The `main` procedure, if present.
    pub fn main(&self) -> Option<&Proc> {
        self.procs.iter().find(|p| p.kind == ProcKind::Main)
    }

    /// Finds a global by name.
    pub fn global(&self, name: &str) -> Option<&GlobalDecl> {
        self.globals.iter().find(|g| g.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ty_display() {
        assert_eq!(Ty::INT.to_string(), "integer");
        assert_eq!(Ty::REAL.to_string(), "real");
        assert_eq!(Ty::array(Base::Int, 10).to_string(), "integer(10)");
        assert_eq!(Ty::assumed_array(Base::Real).to_string(), "real()");
    }

    #[test]
    fn ty_predicates() {
        assert!(Ty::INT.is_scalar());
        assert!(!Ty::INT.is_array());
        assert!(Ty::array(Base::Real, 3).is_array());
        assert!(Ty::assumed_array(Base::Int).is_array());
    }

    #[test]
    fn binop_classes_partition() {
        use BinOp::*;
        for op in [Add, Sub, Mul, Div, Rem, Eq, Ne, Lt, Le, Gt, Ge, And, Or] {
            let classes = [op.is_comparison(), op.is_logical(), op.is_arithmetic()]
                .iter()
                .filter(|&&b| b)
                .count();
            assert_eq!(classes, 1, "{op:?} must be in exactly one class");
        }
    }

    #[test]
    fn lvalue_name() {
        let lv = LValue {
            kind: LValueKind::Element("a".into(), Box::new(Expr::int(1, Span::default()))),
            span: Span::default(),
        };
        assert_eq!(lv.name(), "a");
    }

    #[test]
    fn program_lookup() {
        let mut p = Program::default();
        assert!(p.main().is_none());
        p.procs.push(Proc {
            name: "main".into(),
            kind: ProcKind::Main,
            params: vec![],
            decls: vec![],
            body: vec![],
            span: Span::default(),
        });
        assert!(p.main().is_some());
        assert!(p.proc("main").is_some());
        assert!(p.proc("other").is_none());
        assert!(p.global("g").is_none());
    }
}
