//! Type checking and name resolution for Minifor.
//!
//! Checking produces a [`CheckedProgram`] in which every ambiguous
//! [`ExprKind::NameArgs`] node has been rewritten into an array element
//! reference or a function call, and each procedure carries a variable
//! table describing every name it touches (parameters, declared locals,
//! implicit integer locals, and referenced globals).
//!
//! Minifor follows FORTRAN's implicit-declaration convention: an undeclared
//! scalar name becomes an integer local on first use. Variables may not
//! share a name with any procedure.

use crate::ast::*;
use crate::diag::{Diagnostic, Diagnostics, Phase};
use crate::span::Span;
use std::collections::HashMap;

/// How a variable came to exist in a procedure's scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarOrigin {
    /// The `i`-th formal parameter (0-based).
    Param(u32),
    /// A declared or implicit local.
    Local,
    /// The `i`-th global declaration (0-based index into `Program::globals`).
    Global(u32),
}

impl VarOrigin {
    /// Whether the variable is a formal parameter.
    pub fn is_param(self) -> bool {
        matches!(self, VarOrigin::Param(_))
    }

    /// Whether the variable is a global.
    pub fn is_global(self) -> bool {
        matches!(self, VarOrigin::Global(_))
    }
}

/// A variable visible inside one procedure.
#[derive(Debug, Clone, PartialEq)]
pub struct VarInfo {
    /// Source name.
    pub name: String,
    /// Resolved type.
    pub ty: Ty,
    /// Parameter / local / global.
    pub origin: VarOrigin,
}

/// Per-procedure symbol information produced by checking.
#[derive(Debug, Clone, Default)]
pub struct ProcInfo {
    /// Every variable the procedure can touch: parameters first (in
    /// declaration order), then declared locals, then globals and implicit
    /// locals in order of first reference.
    pub vars: Vec<VarInfo>,
    /// Name → index into [`ProcInfo::vars`].
    pub by_name: HashMap<String, usize>,
}

impl ProcInfo {
    /// Looks up a variable by name.
    pub fn var(&self, name: &str) -> Option<&VarInfo> {
        self.by_name.get(name).map(|&i| &self.vars[i])
    }
}

/// A checked, fully resolved program.
#[derive(Debug, Clone)]
pub struct CheckedProgram {
    /// The resolved AST (no [`ExprKind::NameArgs`] nodes remain).
    pub program: Program,
    /// Symbol tables parallel to `program.procs`.
    pub proc_info: Vec<ProcInfo>,
}

impl CheckedProgram {
    /// Index of the procedure named `name`.
    pub fn proc_index(&self, name: &str) -> Option<usize> {
        self.program.procs.iter().position(|p| p.name == name)
    }
}

/// Type checks `program`, resolving names and ambiguous references.
///
/// # Errors
///
/// Returns every semantic error found: duplicate or conflicting
/// declarations, unknown or mis-used names, arity and type mismatches,
/// a missing `main`, and misuse of `return`.
pub fn check(program: Program) -> Result<CheckedProgram, Diagnostics> {
    let mut checker = Checker::new(&program);
    checker.check_toplevel(&program);

    let mut program = program;
    let mut proc_info = Vec::with_capacity(program.procs.len());
    for proc in &mut program.procs {
        let info = checker.check_proc(proc);
        proc_info.push(info);
    }

    if checker.errors.is_empty() {
        Ok(CheckedProgram { program, proc_info })
    } else {
        checker.errors.sort_by_key(|d| (d.span.start, d.span.end));
        Err(Diagnostics::new(checker.errors))
    }
}

/// Signature of a procedure as seen by its callers.
#[derive(Debug, Clone)]
struct Sig {
    kind: ProcKind,
    params: Vec<Ty>,
}

struct Checker {
    sigs: HashMap<String, Sig>,
    globals: HashMap<String, (u32, Ty)>,
    errors: Vec<Diagnostic>,
}

/// The type of a checked expression (arrays appear only as call arguments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExprTy {
    Scalar(Base),
    Array(Base),
    /// Error already reported; suppress cascading errors.
    Err,
}

impl Checker {
    fn new(program: &Program) -> Self {
        let mut sigs = HashMap::new();
        for p in &program.procs {
            sigs.entry(p.name.clone()).or_insert_with(|| Sig {
                kind: p.kind,
                params: p.params.iter().map(|q| q.ty).collect(),
            });
        }
        let mut globals = HashMap::new();
        for (i, g) in program.globals.iter().enumerate() {
            globals.entry(g.name.clone()).or_insert((i as u32, g.ty));
        }
        Checker {
            sigs,
            globals,
            errors: Vec::new(),
        }
    }

    fn error(&mut self, span: Span, msg: impl Into<String>) {
        self.errors.push(Diagnostic::new(Phase::Check, span, msg));
    }

    fn check_toplevel(&mut self, program: &Program) {
        let mut seen_globals: HashMap<&str, Span> = HashMap::new();
        for g in &program.globals {
            if seen_globals.insert(&g.name, g.span).is_some() {
                self.error(g.span, format!("duplicate global `{}`", g.name));
            }
            if self.sigs.contains_key(&g.name) {
                self.error(
                    g.span,
                    format!("global `{}` conflicts with a procedure name", g.name),
                );
            }
        }
        let mut seen_procs: HashMap<&str, Span> = HashMap::new();
        let mut mains = 0usize;
        for p in &program.procs {
            if seen_procs.insert(&p.name, p.span).is_some() {
                self.error(p.span, format!("duplicate procedure `{}`", p.name));
            }
            if p.kind == ProcKind::Main {
                mains += 1;
            }
        }
        if mains == 0 {
            self.error(Span::default(), "program has no `main`");
        }
    }

    fn check_proc(&mut self, proc: &mut Proc) -> ProcInfo {
        let mut scope = Scope::new();
        for (i, param) in proc.params.iter().enumerate() {
            if self.sigs.contains_key(&param.name) {
                self.error(
                    param.span,
                    format!("parameter `{}` conflicts with a procedure name", param.name),
                );
            }
            if scope
                .insert(param.name.clone(), param.ty, VarOrigin::Param(i as u32))
                .is_err()
            {
                self.error(param.span, format!("duplicate parameter `{}`", param.name));
            }
        }
        for decl in &proc.decls {
            if self.sigs.contains_key(&decl.name) {
                self.error(
                    decl.span,
                    format!("local `{}` conflicts with a procedure name", decl.name),
                );
            }
            if scope
                .insert(decl.name.clone(), decl.ty, VarOrigin::Local)
                .is_err()
            {
                self.error(
                    decl.span,
                    format!("`{}` is already declared in this procedure", decl.name),
                );
            }
        }

        let kind = proc.kind;
        let mut body = std::mem::take(&mut proc.body);
        for stmt in &mut body {
            self.check_stmt(stmt, kind, &mut scope);
        }
        proc.body = body;

        ProcInfo {
            by_name: scope.by_name,
            vars: scope.vars,
        }
    }

    /// Resolves `name` to a variable, creating an implicit integer local if
    /// it is entirely unknown. Returns `None` (after reporting) if the name
    /// is a procedure.
    fn resolve_var(&mut self, name: &str, span: Span, scope: &mut Scope) -> Option<usize> {
        if let Some(&idx) = scope.by_name.get(name) {
            return Some(idx);
        }
        if let Some(&(gidx, ty)) = self.globals.get(name) {
            let idx = scope
                .insert(name.to_string(), ty, VarOrigin::Global(gidx))
                .expect("global not yet in scope");
            return Some(idx);
        }
        if self.sigs.contains_key(name) {
            self.error(span, format!("`{name}` is a procedure, not a variable"));
            return None;
        }
        // Implicit integer scalar local, FORTRAN-style.
        Some(
            scope
                .insert(name.to_string(), Ty::INT, VarOrigin::Local)
                .expect("fresh implicit local"),
        )
    }

    fn check_stmt(&mut self, stmt: &mut Stmt, kind: ProcKind, scope: &mut Scope) {
        let span = stmt.span;
        match &mut stmt.kind {
            StmtKind::Assign { target, value } => {
                let vt = self.check_expr(value, scope, false);
                let tt = self.check_lvalue(target, scope);
                self.check_store(tt, vt, span);
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let ct = self.check_expr(cond, scope, false);
                self.require_int(ct, cond.span, "`if` condition");
                for s in then_blk.iter_mut().chain(else_blk.iter_mut()) {
                    self.check_stmt(s, kind, scope);
                }
            }
            StmtKind::While { cond, body } => {
                let ct = self.check_expr(cond, scope, false);
                self.require_int(ct, cond.span, "`while` condition");
                for s in body {
                    self.check_stmt(s, kind, scope);
                }
            }
            StmtKind::Do {
                var,
                from,
                to,
                step,
                body,
            } => {
                if let Some(idx) = self.resolve_var(var, span, scope) {
                    if scope.vars[idx].ty != Ty::INT {
                        self.error(
                            span,
                            format!("`do` variable `{var}` must be an integer scalar"),
                        );
                    }
                }
                for (e, what) in [
                    (Some(&mut *from), "initial value"),
                    (Some(&mut *to), "bound"),
                ]
                .into_iter()
                .chain(std::iter::once((step.as_mut(), "step")))
                {
                    if let Some(e) = e {
                        let t = self.check_expr(e, scope, false);
                        self.require_int(t, e.span, &format!("`do` {what}"));
                    }
                }
                for s in body {
                    self.check_stmt(s, kind, scope);
                }
            }
            StmtKind::Call { name, args } => {
                let name = name.clone();
                match self.sigs.get(&name).cloned() {
                    None => self.error(span, format!("unknown procedure `{name}`")),
                    Some(sig) => match sig.kind {
                        ProcKind::Function => {
                            self.error(
                                span,
                                format!("`{name}` is a function; call it inside an expression"),
                            );
                            // Still check args for secondary errors.
                            self.check_args(&name, &sig.params, args, span, scope);
                        }
                        ProcKind::Main => self.error(span, "`main` cannot be called"),
                        ProcKind::Subroutine => {
                            self.check_args(&name, &sig.params, args, span, scope);
                        }
                    },
                }
            }
            StmtKind::Return { value } => match (kind, value) {
                (ProcKind::Function, Some(e)) => {
                    let t = self.check_expr(e, scope, false);
                    self.require_int(t, e.span, "function return value");
                }
                (ProcKind::Function, None) => {
                    self.error(span, "function `return` requires a value");
                }
                (_, Some(_)) => {
                    self.error(span, "only functions may return a value");
                }
                (_, None) => {}
            },
            StmtKind::Read { target } => {
                let t = self.check_lvalue(target, scope);
                if matches!(t, ExprTy::Array(_)) {
                    self.error(span, "cannot `read` into a whole array");
                }
            }
            StmtKind::Print { value } => {
                let t = self.check_expr(value, scope, false);
                if matches!(t, ExprTy::Array(_)) {
                    self.error(span, "cannot `print` a whole array");
                }
            }
        }
    }

    fn check_store(&mut self, target: ExprTy, value: ExprTy, span: Span) {
        match (target, value) {
            (ExprTy::Err, _) | (_, ExprTy::Err) => {}
            (ExprTy::Scalar(Base::Int), ExprTy::Scalar(Base::Int)) => {}
            (ExprTy::Scalar(Base::Real), ExprTy::Scalar(_)) => {}
            (ExprTy::Scalar(Base::Int), ExprTy::Scalar(Base::Real)) => {
                self.error(span, "cannot assign a real value to an integer location");
            }
            (ExprTy::Array(_), _) | (_, ExprTy::Array(_)) => {
                self.error(span, "whole arrays cannot be assigned");
            }
        }
    }

    fn check_lvalue(&mut self, lv: &mut LValue, scope: &mut Scope) -> ExprTy {
        let span = lv.span;
        match &mut lv.kind {
            LValueKind::Scalar(name) => {
                let name = name.clone();
                match self.resolve_var(&name, span, scope) {
                    None => ExprTy::Err,
                    Some(idx) => {
                        let ty = scope.vars[idx].ty;
                        if ty.is_array() {
                            self.error(span, format!("array `{name}` needs an index here"));
                            ExprTy::Err
                        } else {
                            ExprTy::Scalar(ty.base)
                        }
                    }
                }
            }
            LValueKind::Element(name, idx_expr) => {
                let it = self.check_expr(idx_expr, scope, false);
                self.require_int(it, idx_expr.span, "array index");
                let name = name.clone();
                match self.resolve_var(&name, span, scope) {
                    None => ExprTy::Err,
                    Some(idx) => {
                        let ty = scope.vars[idx].ty;
                        if ty.is_scalar() {
                            self.error(span, format!("`{name}` is a scalar and cannot be indexed"));
                            ExprTy::Err
                        } else {
                            ExprTy::Scalar(ty.base)
                        }
                    }
                }
            }
        }
    }

    fn check_args(
        &mut self,
        callee: &str,
        formals: &[Ty],
        args: &mut [Expr],
        call_span: Span,
        scope: &mut Scope,
    ) {
        if formals.len() != args.len() {
            self.error(
                call_span,
                format!(
                    "`{callee}` expects {} argument(s), found {}",
                    formals.len(),
                    args.len()
                ),
            );
        }
        for (arg, &formal) in args.iter_mut().zip(formals.iter()) {
            let at = self.check_expr(arg, scope, formal.is_array());
            match (formal.shape, at) {
                (_, ExprTy::Err) => {}
                (Shape::Scalar, ExprTy::Scalar(b)) => {
                    if formal.base == Base::Int && b == Base::Real {
                        self.error(
                            arg.span,
                            "cannot pass a real value for an integer parameter",
                        );
                    }
                }
                (Shape::Scalar, ExprTy::Array(_)) => {
                    self.error(arg.span, "cannot pass a whole array for a scalar parameter");
                }
                (Shape::Array(_), ExprTy::Array(b)) => {
                    if b != formal.base {
                        self.error(arg.span, "array argument element type mismatch");
                    }
                }
                (Shape::Array(_), ExprTy::Scalar(_)) => {
                    self.error(
                        arg.span,
                        "expected a whole array argument (bare array name)",
                    );
                }
            }
        }
    }

    /// Checks an expression; `allow_array` permits a bare array name (used
    /// for whole-array actual arguments).
    fn check_expr(&mut self, expr: &mut Expr, scope: &mut Scope, allow_array: bool) -> ExprTy {
        let span = expr.span;
        match &mut expr.kind {
            ExprKind::IntLit(_) => ExprTy::Scalar(Base::Int),
            ExprKind::RealLit(_) => ExprTy::Scalar(Base::Real),
            ExprKind::Name(name) => {
                let name = name.clone();
                match self.resolve_var(&name, span, scope) {
                    None => ExprTy::Err,
                    Some(idx) => {
                        let ty = scope.vars[idx].ty;
                        if ty.is_array() {
                            if allow_array {
                                ExprTy::Array(ty.base)
                            } else {
                                self.error(span, format!("array `{name}` needs an index here"));
                                ExprTy::Err
                            }
                        } else {
                            ExprTy::Scalar(ty.base)
                        }
                    }
                }
            }
            ExprKind::NameArgs(name, args) => {
                let name = name.clone();
                // A visible variable (or global) wins over a function: this
                // is an array element reference.
                let is_var = scope.by_name.contains_key(&name) || self.globals.contains_key(&name);
                if is_var {
                    let idx = self
                        .resolve_var(&name, span, scope)
                        .expect("variable exists");
                    let ty = scope.vars[idx].ty;
                    if args.len() != 1 {
                        self.error(span, format!("array `{name}` takes exactly one index"));
                        return ExprTy::Err;
                    }
                    if ty.is_scalar() {
                        self.error(span, format!("`{name}` is a scalar and cannot be indexed"));
                        return ExprTy::Err;
                    }
                    let mut idx_expr = args.pop().expect("one index");
                    let it = self.check_expr(&mut idx_expr, scope, false);
                    self.require_int(it, idx_expr.span, "array index");
                    expr.kind = ExprKind::Index(name, Box::new(idx_expr));
                    ExprTy::Scalar(ty.base)
                } else {
                    match self.sigs.get(&name).cloned() {
                        Some(sig) if sig.kind == ProcKind::Function => {
                            let mut args_taken = std::mem::take(args);
                            self.check_args(&name, &sig.params, &mut args_taken, span, scope);
                            expr.kind = ExprKind::CallFn(name, args_taken);
                            ExprTy::Scalar(Base::Int)
                        }
                        Some(_) => {
                            self.error(
                                span,
                                format!("`{name}` is a subroutine; use `call {name}(...)`"),
                            );
                            ExprTy::Err
                        }
                        None => {
                            self.error(span, format!("unknown array or function `{name}`"));
                            ExprTy::Err
                        }
                    }
                }
            }
            ExprKind::Index(..) | ExprKind::CallFn(..) => {
                unreachable!("parser never produces resolved nodes")
            }
            ExprKind::Unary(op, operand) => {
                let op = *op;
                let t = self.check_expr(operand, scope, false);
                match (op, t) {
                    (_, ExprTy::Err) => ExprTy::Err,
                    (UnOp::Neg, ExprTy::Scalar(b)) => ExprTy::Scalar(b),
                    (UnOp::Not, ExprTy::Scalar(Base::Int)) => ExprTy::Scalar(Base::Int),
                    (UnOp::Not, ExprTy::Scalar(Base::Real)) => {
                        self.error(span, "`not` requires an integer operand");
                        ExprTy::Err
                    }
                    (_, ExprTy::Array(_)) => {
                        self.error(span, "cannot operate on a whole array");
                        ExprTy::Err
                    }
                }
            }
            ExprKind::Binary(op, lhs, rhs) => {
                let op = *op;
                let lt = self.check_expr(lhs, scope, false);
                let rt = self.check_expr(rhs, scope, false);
                match (lt, rt) {
                    (ExprTy::Err, _) | (_, ExprTy::Err) => ExprTy::Err,
                    (ExprTy::Array(_), _) | (_, ExprTy::Array(_)) => {
                        self.error(span, "cannot operate on a whole array");
                        ExprTy::Err
                    }
                    (ExprTy::Scalar(lb), ExprTy::Scalar(rb)) => {
                        let any_real = lb == Base::Real || rb == Base::Real;
                        if (op.is_logical() || op == BinOp::Rem) && any_real {
                            self.error(span, format!("`{op}` requires integer operands"));
                            return ExprTy::Err;
                        }
                        if op.is_comparison() {
                            ExprTy::Scalar(Base::Int)
                        } else if any_real {
                            ExprTy::Scalar(Base::Real)
                        } else {
                            ExprTy::Scalar(Base::Int)
                        }
                    }
                }
            }
        }
    }

    fn require_int(&mut self, t: ExprTy, span: Span, what: &str) {
        match t {
            ExprTy::Scalar(Base::Int) | ExprTy::Err => {}
            ExprTy::Scalar(Base::Real) => self.error(span, format!("{what} must be an integer")),
            ExprTy::Array(_) => self.error(span, format!("{what} cannot be a whole array")),
        }
    }
}

struct Scope {
    vars: Vec<VarInfo>,
    by_name: HashMap<String, usize>,
}

impl Scope {
    fn new() -> Self {
        Scope {
            vars: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    fn insert(&mut self, name: String, ty: Ty, origin: VarOrigin) -> Result<usize, ()> {
        if self.by_name.contains_key(&name) {
            return Err(());
        }
        let idx = self.vars.len();
        self.by_name.insert(name.clone(), idx);
        self.vars.push(VarInfo { name, ty, origin });
        Ok(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check_ok(src: &str) -> CheckedProgram {
        let ast = parse(src).expect("parse");
        match check(ast) {
            Ok(c) => c,
            Err(e) => panic!("check failed:\n{}", e.render(src)),
        }
    }

    fn check_err(src: &str) -> Vec<String> {
        let ast = parse(src).expect("parse");
        check(ast)
            .unwrap_err()
            .into_iter()
            .map(|d| d.message)
            .collect()
    }

    #[test]
    fn minimal_program() {
        let c = check_ok("main\nend\n");
        assert_eq!(c.proc_info.len(), 1);
    }

    #[test]
    fn missing_main_rejected() {
        let msgs = check_err("proc f()\nend\n");
        assert!(msgs.iter().any(|m| m.contains("no `main`")), "{msgs:?}");
    }

    #[test]
    fn implicit_locals_are_int() {
        let c = check_ok("main\nx = 1\ny = x + 2\nend\n");
        let info = &c.proc_info[0];
        assert_eq!(info.var("x").unwrap().ty, Ty::INT);
        assert_eq!(info.var("x").unwrap().origin, VarOrigin::Local);
        assert_eq!(info.var("y").unwrap().ty, Ty::INT);
    }

    #[test]
    fn params_resolve() {
        let c = check_ok("proc f(a, real b)\nx = a\nend\nmain\nend\n");
        let info = &c.proc_info[0];
        assert_eq!(info.var("a").unwrap().origin, VarOrigin::Param(0));
        assert_eq!(info.var("b").unwrap().origin, VarOrigin::Param(1));
        assert_eq!(info.var("b").unwrap().ty, Ty::REAL);
    }

    #[test]
    fn globals_resolve() {
        let c = check_ok("global g = 3\nmain\nx = g\nend\n");
        let info = &c.proc_info[0];
        assert_eq!(info.var("g").unwrap().origin, VarOrigin::Global(0));
    }

    #[test]
    fn param_shadows_global() {
        let c = check_ok("global g\nproc f(g)\nx = g\nend\nmain\nend\n");
        let info = &c.proc_info[0];
        assert_eq!(info.var("g").unwrap().origin, VarOrigin::Param(0));
    }

    #[test]
    fn name_args_resolves_to_index() {
        let c = check_ok("main\ninteger a(10)\nx = a(3)\nend\n");
        match &c.program.procs[0].body[0].kind {
            StmtKind::Assign { value, .. } => {
                assert!(
                    matches!(value.kind, ExprKind::Index(..)),
                    "{:?}",
                    value.kind
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn name_args_resolves_to_call() {
        let c = check_ok("func f(x)\nreturn x + 1\nend\nmain\ny = f(3)\nend\n");
        let main_idx = c.proc_index("main").unwrap();
        match &c.program.procs[main_idx].body[0].kind {
            StmtKind::Assign { value, .. } => {
                assert!(
                    matches!(value.kind, ExprKind::CallFn(..)),
                    "{:?}",
                    value.kind
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn global_array_element() {
        let c = check_ok("global a(5)\nmain\na(1) = 2\nx = a(1)\nend\n");
        let info = &c.proc_info[0];
        assert_eq!(info.var("a").unwrap().origin, VarOrigin::Global(0));
        assert!(info.var("a").unwrap().ty.is_array());
    }

    #[test]
    fn unknown_callee_rejected() {
        let msgs = check_err("main\ncall nope(1)\nend\n");
        assert!(
            msgs.iter().any(|m| m.contains("unknown procedure")),
            "{msgs:?}"
        );
    }

    #[test]
    fn arity_mismatch_rejected() {
        let msgs = check_err("proc f(a, b)\nend\nmain\ncall f(1)\nend\n");
        assert!(
            msgs.iter().any(|m| m.contains("expects 2 argument")),
            "{msgs:?}"
        );
    }

    #[test]
    fn calling_function_with_call_rejected() {
        let msgs = check_err("func f(x)\nreturn x\nend\nmain\ncall f(1)\nend\n");
        assert!(msgs.iter().any(|m| m.contains("is a function")), "{msgs:?}");
    }

    #[test]
    fn subroutine_in_expression_rejected() {
        let msgs = check_err("proc f(x)\nend\nmain\ny = f(1)\nend\n");
        assert!(
            msgs.iter().any(|m| m.contains("is a subroutine")),
            "{msgs:?}"
        );
    }

    #[test]
    fn calling_main_rejected() {
        // `main` is a keyword, so `call main()` never even parses.
        assert!(crate::parser::parse("main\ncall main()\nend\n").is_err());
    }

    #[test]
    fn indexing_scalar_rejected() {
        let msgs = check_err("main\nx = 1\ny = x(2)\nend\n");
        assert!(
            msgs.iter().any(|m| m.contains("cannot be indexed")),
            "{msgs:?}"
        );
    }

    #[test]
    fn bare_array_in_arithmetic_rejected() {
        let msgs = check_err("main\ninteger a(5)\nx = a + 1\nend\n");
        assert!(
            msgs.iter().any(|m| m.contains("needs an index")),
            "{msgs:?}"
        );
    }

    #[test]
    fn whole_array_argument_ok() {
        check_ok("proc f(v())\nv(1) = 2\nend\nmain\ninteger a(10)\ncall f(a)\nend\n");
    }

    #[test]
    fn array_argument_base_mismatch_rejected() {
        let msgs = check_err("proc f(v())\nend\nmain\nreal a(10)\ncall f(a)\nend\n");
        assert!(
            msgs.iter().any(|m| m.contains("element type mismatch")),
            "{msgs:?}"
        );
    }

    #[test]
    fn scalar_for_array_param_rejected() {
        let msgs = check_err("proc f(v())\nend\nmain\ncall f(3)\nend\n");
        assert!(
            msgs.iter().any(|m| m.contains("whole array argument")),
            "{msgs:?}"
        );
    }

    #[test]
    fn real_to_int_assignment_rejected() {
        let msgs = check_err("main\nreal r\nx = r\nend\n");
        assert!(
            msgs.iter().any(|m| m.contains("real value to an integer")),
            "{msgs:?}"
        );
    }

    #[test]
    fn int_to_real_assignment_ok() {
        check_ok("main\nreal r\nr = 3\nend\n");
    }

    #[test]
    fn real_to_int_param_rejected() {
        let msgs = check_err("proc f(x)\nend\nmain\nreal r\ncall f(r)\nend\n");
        assert!(
            msgs.iter().any(|m| m.contains("real value for an integer")),
            "{msgs:?}"
        );
    }

    #[test]
    fn int_to_real_param_ok() {
        check_ok("proc f(real x)\nend\nmain\ncall f(3)\nend\n");
    }

    #[test]
    fn rem_on_real_rejected() {
        let msgs = check_err("main\nreal r\nreal s\nr = s % 2.0\nend\n");
        assert!(
            msgs.iter().any(|m| m.contains("integer operands")),
            "{msgs:?}"
        );
    }

    #[test]
    fn do_var_must_be_int() {
        let msgs = check_err("main\nreal r\ndo r = 1, 3\nend\nend\n");
        assert!(
            msgs.iter().any(|m| m.contains("integer scalar")),
            "{msgs:?}"
        );
    }

    #[test]
    fn return_value_outside_function_rejected() {
        let msgs = check_err("proc f()\nreturn 3\nend\nmain\nend\n");
        assert!(
            msgs.iter().any(|m| m.contains("only functions")),
            "{msgs:?}"
        );
    }

    #[test]
    fn bare_return_in_function_rejected() {
        let msgs = check_err("func f(x)\nreturn\nend\nmain\ny = f(1)\nend\n");
        assert!(
            msgs.iter().any(|m| m.contains("requires a value")),
            "{msgs:?}"
        );
    }

    #[test]
    fn duplicate_declarations_rejected() {
        let msgs = check_err("global g\nglobal g\nmain\nend\n");
        assert!(
            msgs.iter().any(|m| m.contains("duplicate global")),
            "{msgs:?}"
        );
        let msgs = check_err("proc f(a, a)\nend\nmain\nend\n");
        assert!(
            msgs.iter().any(|m| m.contains("duplicate parameter")),
            "{msgs:?}"
        );
        let msgs = check_err("proc f()\ninteger x\ninteger x\nend\nmain\nend\n");
        assert!(
            msgs.iter().any(|m| m.contains("already declared")),
            "{msgs:?}"
        );
        let msgs = check_err("proc f()\nend\nproc f()\nend\nmain\nend\n");
        assert!(
            msgs.iter().any(|m| m.contains("duplicate procedure")),
            "{msgs:?}"
        );
    }

    #[test]
    fn variable_shadowing_procedure_rejected() {
        let msgs = check_err("proc f()\nend\nmain\nf = 3\nend\n");
        assert!(
            msgs.iter().any(|m| m.contains("is a procedure")),
            "{msgs:?}"
        );
    }

    #[test]
    fn recursion_allowed() {
        check_ok("func fact(n)\nif n <= 1 then\nreturn 1\nend\nreturn n * fact(n - 1)\nend\nmain\nx = fact(5)\nend\n");
    }

    #[test]
    fn read_whole_array_rejected() {
        let msgs = check_err("main\ninteger a(5)\nread(a)\nend\n");
        assert!(
            msgs.iter().any(|m| m.contains("needs an index")),
            "{msgs:?}"
        );
    }

    #[test]
    fn multiple_errors_collected() {
        let msgs = check_err("main\ncall nope(1)\ncall alsonope(2)\nend\n");
        assert_eq!(msgs.len(), 2);
    }
}
