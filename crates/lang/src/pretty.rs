//! Pretty printer: renders an AST back to parseable Minifor source.
//!
//! `parse(pretty(p))` produces an AST equal to `p` up to spans, which the
//! round-trip tests exploit. Resolved nodes ([`ExprKind::Index`] /
//! [`ExprKind::CallFn`]) print identically to their unresolved
//! [`ExprKind::NameArgs`] form, so checked programs also round-trip.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a whole program as Minifor source.
pub fn program_to_string(program: &Program) -> String {
    let mut out = String::new();
    for g in &program.globals {
        write_global(&mut out, g);
    }
    if !program.globals.is_empty() {
        out.push('\n');
    }
    for (i, p) in program.procs.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        write_proc(&mut out, p);
    }
    out
}

/// Renders a single expression as source text.
pub fn expr_to_string(expr: &Expr) -> String {
    let mut out = String::new();
    write_expr(&mut out, expr, 0);
    out
}

/// Renders a single statement (with trailing newline) at indent level 0.
pub fn stmt_to_string(stmt: &Stmt) -> String {
    let mut out = String::new();
    write_stmt(&mut out, stmt, 0);
    out
}

fn write_global(out: &mut String, g: &GlobalDecl) {
    out.push_str("global ");
    write_ty_prefix(out, g.ty);
    out.push_str(&g.name);
    write_ty_suffix(out, g.ty);
    if let Some(v) = g.init {
        let _ = write!(out, " = {v}");
    }
    out.push('\n');
}

fn write_ty_prefix(out: &mut String, ty: Ty) {
    if ty.base == Base::Real {
        out.push_str("real ");
    }
}

fn write_ty_suffix(out: &mut String, ty: Ty) {
    match ty.shape {
        Shape::Scalar => {}
        Shape::Array(Some(n)) => {
            let _ = write!(out, "({n})");
        }
        Shape::Array(None) => out.push_str("()"),
    }
}

fn write_proc(out: &mut String, p: &Proc) {
    match p.kind {
        ProcKind::Main => out.push_str("main\n"),
        kind => {
            let _ = write!(out, "{kind} {}(", p.name);
            for (i, param) in p.params.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_ty_prefix(out, param.ty);
                out.push_str(&param.name);
                write_ty_suffix(out, param.ty);
            }
            out.push_str(")\n");
        }
    }
    for d in &p.decls {
        out.push_str("  ");
        out.push_str(match d.ty.base {
            Base::Int => "integer ",
            Base::Real => "real ",
        });
        out.push_str(&d.name);
        write_ty_suffix(out, d.ty);
        out.push('\n');
    }
    for s in &p.body {
        write_stmt(out, s, 1);
    }
    out.push_str("end\n");
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_stmt(out: &mut String, stmt: &Stmt, level: usize) {
    indent(out, level);
    match &stmt.kind {
        StmtKind::Assign { target, value } => {
            write_lvalue(out, target);
            out.push_str(" = ");
            write_expr(out, value, 0);
            out.push('\n');
        }
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            out.push_str("if ");
            write_expr(out, cond, 0);
            out.push_str(" then\n");
            for s in then_blk {
                write_stmt(out, s, level + 1);
            }
            if !else_blk.is_empty() {
                indent(out, level);
                out.push_str("else\n");
                for s in else_blk {
                    write_stmt(out, s, level + 1);
                }
            }
            indent(out, level);
            out.push_str("end\n");
        }
        StmtKind::While { cond, body } => {
            out.push_str("while ");
            write_expr(out, cond, 0);
            out.push_str(" do\n");
            for s in body {
                write_stmt(out, s, level + 1);
            }
            indent(out, level);
            out.push_str("end\n");
        }
        StmtKind::Do {
            var,
            from,
            to,
            step,
            body,
        } => {
            let _ = write!(out, "do {var} = ");
            write_expr(out, from, 0);
            out.push_str(", ");
            write_expr(out, to, 0);
            if let Some(step) = step {
                out.push_str(", ");
                write_expr(out, step, 0);
            }
            out.push('\n');
            for s in body {
                write_stmt(out, s, level + 1);
            }
            indent(out, level);
            out.push_str("end\n");
        }
        StmtKind::Call { name, args } => {
            let _ = write!(out, "call {name}(");
            write_args(out, args);
            out.push_str(")\n");
        }
        StmtKind::Return { value } => {
            out.push_str("return");
            if let Some(v) = value {
                out.push(' ');
                write_expr(out, v, 0);
            }
            out.push('\n');
        }
        StmtKind::Read { target } => {
            out.push_str("read(");
            write_lvalue(out, target);
            out.push_str(")\n");
        }
        StmtKind::Print { value } => {
            out.push_str("print(");
            write_expr(out, value, 0);
            out.push_str(")\n");
        }
    }
}

fn write_lvalue(out: &mut String, lv: &LValue) {
    match &lv.kind {
        LValueKind::Scalar(name) => out.push_str(name),
        LValueKind::Element(name, idx) => {
            out.push_str(name);
            out.push('(');
            write_expr(out, idx, 0);
            out.push(')');
        }
    }
}

fn write_args(out: &mut String, args: &[Expr]) {
    for (i, a) in args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_expr(out, a, 0);
    }
}

/// Binding strength for parenthesization: higher binds tighter.
fn precedence(kind: &ExprKind) -> u8 {
    match kind {
        ExprKind::Binary(op, ..) => match op {
            BinOp::Or => 1,
            BinOp::And => 2,
            op if op.is_comparison() => 4,
            BinOp::Add | BinOp::Sub => 5,
            _ => 6,
        },
        ExprKind::Unary(UnOp::Not, _) => 3,
        ExprKind::Unary(UnOp::Neg, _) => 7,
        _ => 10,
    }
}

fn write_expr(out: &mut String, expr: &Expr, min_prec: u8) {
    let prec = precedence(&expr.kind);
    let parens = prec < min_prec;
    if parens {
        out.push('(');
    }
    match &expr.kind {
        ExprKind::IntLit(v) => {
            // Negative literals print as `-5`; the parser re-folds the
            // unary minus into a literal (including `-9223372036854775808`,
            // whose magnitude the lexer special-cases), so this
            // round-trips for every i64.
            let _ = write!(out, "{v}");
        }
        ExprKind::RealLit(v) => {
            if v.fract() == 0.0 && v.is_finite() && *v >= 0.0 {
                let _ = write!(out, "{v:.1}");
            } else if *v < 0.0 {
                let _ = write!(out, "(0.0 - {:?})", -v);
            } else {
                let _ = write!(out, "{v:?}");
            }
        }
        ExprKind::Name(name) => out.push_str(name),
        ExprKind::NameArgs(name, args) | ExprKind::CallFn(name, args) => {
            out.push_str(name);
            out.push('(');
            write_args(out, args);
            out.push(')');
        }
        ExprKind::Index(name, idx) => {
            out.push_str(name);
            out.push('(');
            write_expr(out, idx, 0);
            out.push(')');
        }
        ExprKind::Unary(op, operand) => {
            let _ = write!(out, "{op}");
            write_expr(out, operand, prec + 1);
        }
        ExprKind::Binary(op, lhs, rhs) => {
            // Comparisons are non-associative: a comparison operand at the
            // same precedence level must be parenthesized on either side.
            let lhs_prec = if op.is_comparison() { prec + 1 } else { prec };
            write_expr(out, lhs, lhs_prec);
            let _ = write!(out, " {op} ");
            // The right operand needs strictly higher precedence: all our
            // binary operators are left-associative.
            write_expr(out, rhs, prec + 1);
        }
    }
    if parens {
        out.push(')');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn roundtrip(src: &str) {
        let ast1 = parse(src).expect("first parse");
        let printed = program_to_string(&ast1);
        let ast2 = parse(&printed).unwrap_or_else(|e| {
            panic!(
                "reparse failed:\n{}\nsource:\n{printed}",
                e.render(&printed)
            )
        });
        let printed2 = program_to_string(&ast2);
        assert_eq!(printed, printed2, "pretty-print not a fixpoint");
    }

    #[test]
    fn roundtrip_small() {
        roundtrip("main\nx = 1\nend\n");
    }

    #[test]
    fn roundtrip_full_feature() {
        roundtrip(
            "global n = 5\nglobal real w\nglobal a(10)\n\
             proc f(x, real y, v())\ninteger t, b(3)\nreal r\n\
             t = x * 2 + b(1)\nv(t) = t - 1\nif t > 0 and x != 2 then\nr = y / 2.0\nelse\nt = not t\nend\n\
             while t < 10 do\nt = t + 1\nend\n\
             do i = 1, 10, 2\nt = t + i\nend\n\
             call f(t, r, v)\nreturn\nend\n\
             func g(q)\nreturn q % 3\nend\n\
             main\nread(z)\nx = g(z) - -3\nprint(x)\nend\n",
        );
    }

    #[test]
    fn negative_literal_prints_parseable() {
        let ast = parse("main\nx = -5\ny = 1 - -5\nz = -5 * 3\nend\n").unwrap();
        let printed = program_to_string(&ast);
        let ast2 = parse(&printed).expect("reparse");
        assert_eq!(program_to_string(&ast2), printed);
        assert!(printed.contains("x = -5"), "{printed}");
        assert!(printed.contains("1 - -5"), "{printed}");
    }

    #[test]
    fn i64_min_literal_roundtrips() {
        // The source literal parses straight to `i64::MIN` …
        let ast = parse("main\nx = -9223372036854775808\nend\n").unwrap();
        let printed = program_to_string(&ast);
        assert!(printed.contains("x = -9223372036854775808"), "{printed}");
        // … and printing is a fixpoint from the first render.
        let printed2 = program_to_string(&parse(&printed).expect("reparse"));
        assert_eq!(printed, printed2);

        // Same for a synthesized literal (e.g. produced by constant
        // substitution) in an arithmetic context.
        let mut ast = parse("main\nx = 0 - 1 * 2\nend\n").unwrap();
        ast.procs[0].body[0].kind = crate::ast::StmtKind::Assign {
            target: crate::ast::LValue {
                kind: crate::ast::LValueKind::Scalar("x".into()),
                span: crate::span::Span::default(),
            },
            value: Expr::int(i64::MIN, crate::span::Span::default()),
        };
        let printed = program_to_string(&ast);
        let reparsed = parse(&printed).expect("reparse");
        assert_eq!(program_to_string(&reparsed), printed);
        // The reparsed value is exactly i64::MIN again.
        let crate::ast::StmtKind::Assign { value, .. } = &reparsed.procs[0].body[0].kind else {
            panic!("assign expected");
        };
        assert!(matches!(value.kind, ExprKind::IntLit(i64::MIN)));
    }

    #[test]
    fn precedence_preserved() {
        let src =
            "main\nx = (1 + 2) * 3\ny = 1 + 2 * 3\nz = (a or b) and c\nw = a - (b - c)\nend\n";
        let ast = parse(src).unwrap();
        let printed = program_to_string(&ast);
        let ast2 = parse(&printed).unwrap();
        assert_eq!(
            program_to_string(&ast2),
            printed,
            "precedence-sensitive expressions must round-trip"
        );
        assert!(printed.contains("(1 + 2) * 3"), "{printed}");
        assert!(printed.contains("1 + 2 * 3"), "{printed}");
        assert!(printed.contains("(a or b) and c"), "{printed}");
        assert!(printed.contains("a - (b - c)"), "{printed}");
    }

    #[test]
    fn expr_to_string_simple() {
        let ast = parse("main\nx = a + b(2) * f(3, 4)\nend\n").unwrap();
        match &ast.procs[0].body[0].kind {
            crate::ast::StmtKind::Assign { value, .. } => {
                assert_eq!(expr_to_string(value), "a + b(2) * f(3, 4)");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn real_literal_formats() {
        roundtrip("main\nreal r\nr = 2.0\nr = 2.5\nr = 0.125\nend\n");
    }

    #[test]
    fn stmt_to_string_has_newline() {
        let ast = parse("main\nprint(3)\nend\n").unwrap();
        assert_eq!(stmt_to_string(&ast.procs[0].body[0]), "print(3)\n");
    }
}
