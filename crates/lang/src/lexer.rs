//! The Minifor lexer.
//!
//! Minifor is line-oriented: statements end at a newline or `;`. The lexer
//! collapses runs of separators into a single [`TokenKind::Newline`] token and
//! strips `#`-to-end-of-line comments.

use crate::diag::{Diagnostic, Diagnostics, Phase};
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Tokenizes `source` into a vector ending with a single [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns every lexical error found (unknown characters, malformed or
/// overflowing numeric literals).
pub fn lex(source: &str) -> Result<Vec<Token>, Diagnostics> {
    let mut lexer = Lexer {
        src: source.as_bytes(),
        pos: 0,
        tokens: Vec::new(),
        errors: Vec::new(),
    };
    lexer.run();
    if lexer.errors.is_empty() {
        Ok(lexer.tokens)
    } else {
        Err(Diagnostics::new(lexer.errors))
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    tokens: Vec<Token>,
    errors: Vec<Diagnostic>,
}

impl Lexer<'_> {
    fn run(&mut self) {
        while self.pos < self.src.len() {
            let start = self.pos;
            let c = self.src[self.pos];
            match c {
                b' ' | b'\t' | b'\r' => {
                    self.pos += 1;
                }
                b'#' => {
                    while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                b'\n' | b';' => {
                    self.pos += 1;
                    self.push_newline(start);
                }
                b'(' => self.single(TokenKind::LParen),
                b')' => self.single(TokenKind::RParen),
                b',' => self.single(TokenKind::Comma),
                b'+' => self.single(TokenKind::Plus),
                b'-' => self.single(TokenKind::Minus),
                b'*' => self.single(TokenKind::Star),
                b'/' => self.single(TokenKind::Slash),
                b'%' => self.single(TokenKind::Percent),
                b'=' => {
                    if self.peek_at(1) == Some(b'=') {
                        self.double(TokenKind::EqEq);
                    } else {
                        self.single(TokenKind::Assign);
                    }
                }
                b'!' => {
                    if self.peek_at(1) == Some(b'=') {
                        self.double(TokenKind::NotEq);
                    } else {
                        self.pos += 1;
                        self.error(start, "unexpected character `!` (did you mean `!=`?)");
                    }
                }
                b'<' => {
                    if self.peek_at(1) == Some(b'=') {
                        self.double(TokenKind::Le);
                    } else {
                        self.single(TokenKind::Lt);
                    }
                }
                b'>' => {
                    if self.peek_at(1) == Some(b'=') {
                        self.double(TokenKind::Ge);
                    } else {
                        self.single(TokenKind::Gt);
                    }
                }
                b'0'..=b'9' => self.number(),
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.word(),
                other => {
                    self.pos += 1;
                    self.error(start, format!("unexpected character `{}`", other as char));
                }
            }
        }
        // Terminate a trailing statement that lacks a newline.
        self.push_newline(self.pos);
        let end = self.pos as u32;
        self.tokens
            .push(Token::new(TokenKind::Eof, Span::point(end)));
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn single(&mut self, kind: TokenKind) {
        let start = self.pos as u32;
        self.pos += 1;
        self.tokens
            .push(Token::new(kind, Span::new(start, self.pos as u32)));
    }

    fn double(&mut self, kind: TokenKind) {
        let start = self.pos as u32;
        self.pos += 2;
        self.tokens
            .push(Token::new(kind, Span::new(start, self.pos as u32)));
    }

    fn push_newline(&mut self, start: usize) {
        // Collapse consecutive separators: emit Newline only if the previous
        // real token is not already a Newline (and at least one token exists).
        match self.tokens.last() {
            Some(tok) if tok.kind != TokenKind::Newline => {
                self.tokens.push(Token::new(
                    TokenKind::Newline,
                    Span::new(start as u32, self.pos as u32),
                ));
            }
            _ => {}
        }
    }

    fn error(&mut self, start: usize, msg: impl Into<String>) {
        self.errors.push(Diagnostic::new(
            Phase::Lex,
            Span::new(start as u32, self.pos as u32),
            msg,
        ));
    }

    fn number(&mut self) {
        let start = self.pos;
        while matches!(self.peek_at(0), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        // A real literal requires a digit after the dot; `1.` is an error and
        // `a.b` never arises (no `.` operator exists).
        let is_real = self.peek_at(0) == Some(b'.');
        if is_real {
            self.pos += 1;
            if !matches!(self.peek_at(0), Some(b'0'..=b'9')) {
                self.error(start, "real literal requires digits after `.`");
                return;
            }
            while matches!(self.peek_at(0), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii digits");
        let span = Span::new(start as u32, self.pos as u32);
        if is_real {
            match text.parse::<f64>() {
                Ok(v) => self.tokens.push(Token::new(TokenKind::Real(v), span)),
                Err(_) => self.error(start, format!("malformed real literal `{text}`")),
            }
        } else {
            match text.parse::<i64>() {
                Ok(v) => self.tokens.push(Token::new(TokenKind::Int(v), span)),
                // `9223372036854775808` overflows i64 on its own, but is
                // exactly `-i64::MIN`: emit a marker the parser accepts
                // only directly under a unary minus.
                Err(_) if text.parse::<u64>() == Ok(1u64 << 63) => self
                    .tokens
                    .push(Token::new(TokenKind::IntMinMagnitude, span)),
                Err(_) => self.error(start, format!("integer literal `{text}` overflows i64")),
            }
        }
    }

    fn word(&mut self) {
        let start = self.pos;
        while matches!(
            self.peek_at(0),
            Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii word");
        let span = Span::new(start as u32, self.pos as u32);
        let kind = TokenKind::keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_string()));
        self.tokens.push(Token::new(kind, span));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn empty_input_is_just_eof() {
        assert_eq!(kinds(""), vec![Eof]);
    }

    #[test]
    fn whitespace_only_is_just_eof() {
        assert_eq!(kinds("   \t  "), vec![Eof]);
    }

    #[test]
    fn newlines_collapse() {
        assert_eq!(
            kinds("a\n\n\nb"),
            vec![Ident("a".into()), Newline, Ident("b".into()), Newline, Eof]
        );
    }

    #[test]
    fn leading_newlines_are_dropped() {
        assert_eq!(kinds("\n\n a"), vec![Ident("a".into()), Newline, Eof]);
    }

    #[test]
    fn semicolon_is_newline() {
        assert_eq!(
            kinds("a; b"),
            vec![Ident("a".into()), Newline, Ident("b".into()), Newline, Eof]
        );
    }

    #[test]
    fn comments_stripped() {
        assert_eq!(
            kinds("x = 1 # set x\ny"),
            vec![
                Ident("x".into()),
                Assign,
                Int(1),
                Newline,
                Ident("y".into()),
                Newline,
                Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("+ - * / % == != < <= > >= = ( ) ,"),
            vec![
                Plus, Minus, Star, Slash, Percent, EqEq, NotEq, Lt, Le, Gt, Ge, Assign, LParen,
                RParen, Comma, Newline, Eof
            ]
        );
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            kinds("proc procx do done"),
            vec![
                KwProc,
                Ident("procx".into()),
                KwDo,
                Ident("done".into()),
                Newline,
                Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("0 42 12.5"),
            vec![Int(0), Int(42), Real(12.5), Newline, Eof]
        );
    }

    #[test]
    fn int_overflow_is_error() {
        let err = lex("99999999999999999999").unwrap_err();
        assert!(err.first().message.contains("overflows"));
        // One past the magnitude of i64::MIN overflows again.
        let err = lex("9223372036854775809").unwrap_err();
        assert!(err.first().message.contains("overflows"));
    }

    #[test]
    fn i64_min_magnitude_lexes_as_marker() {
        assert_eq!(
            kinds("-9223372036854775808"),
            vec![Minus, IntMinMagnitude, Newline, Eof]
        );
        // i64::MAX still lexes as an ordinary literal.
        assert_eq!(
            kinds("9223372036854775807"),
            vec![Int(i64::MAX), Newline, Eof]
        );
    }

    #[test]
    fn bad_real_is_error() {
        let err = lex("1.").unwrap_err();
        assert!(err.first().message.contains("digits after"));
    }

    #[test]
    fn unknown_char_is_error() {
        let err = lex("a @ b").unwrap_err();
        assert!(err.first().message.contains("unexpected character"));
    }

    #[test]
    fn bang_without_eq_is_error() {
        let err = lex("a ! b").unwrap_err();
        assert!(err.first().message.contains("!="));
    }

    #[test]
    fn multiple_errors_collected() {
        let err = lex("@ $\n&").unwrap_err();
        assert_eq!(err.len(), 3);
    }

    #[test]
    fn spans_are_correct() {
        let toks = lex("ab = 12").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 4));
        assert_eq!(toks[2].span, Span::new(5, 7));
    }

    #[test]
    fn trailing_statement_gets_newline() {
        assert_eq!(
            kinds("x = 1"),
            vec![Ident("x".into()), Assign, Int(1), Newline, Eof]
        );
    }
}
