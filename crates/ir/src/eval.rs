//! An evaluator for IR programs.
//!
//! Observationally equivalent to the AST interpreter in
//! [`ipcp_lang::interp`]; the integration tests run both on the same
//! programs and require identical output. It reuses that module's
//! [`Value`] and [`InterpError`] types so results compare directly.
//!
//! The step limit here counts executed instructions and terminators
//! (the AST interpreter counts statements), so the two limits are not
//! numerically comparable — only termination behaviour matters.

use crate::ids::{BlockId, ProcId, VarId};
use crate::instr::{Instr, Operand, Terminator, TrapKind};
use crate::procedure::{Procedure, VarKind};
use crate::program::Program;
use ipcp_lang::ast::{Base, Shape, Ty, UnOp};
use ipcp_lang::interp::{eval_binop, InterpConfig, InterpError, Outcome, Value};

/// Runs an IR program's `main`.
///
/// # Errors
///
/// Returns the first [`InterpError`] encountered (traps surface as
/// [`InterpError::ZeroStep`]).
pub fn run(program: &Program, config: &InterpConfig) -> Result<Outcome, InterpError> {
    let mut interp = Evaluator {
        program,
        config,
        slots: Vec::new(),
        globals: Vec::new(),
        output: Vec::new(),
        steps: 0,
        input_pos: 0,
    };
    interp.alloc_globals();
    interp.call(program.main, Vec::new(), 0)?;
    Ok(Outcome {
        output: interp.output,
        steps: interp.steps,
    })
}

#[derive(Debug, Clone)]
enum Slot {
    Int(i64),
    Real(f64),
    IntArray(Vec<i64>),
    RealArray(Vec<f64>),
}

impl Slot {
    fn zero_of(ty: Ty) -> Slot {
        match (ty.base, ty.shape) {
            (Base::Int, Shape::Scalar) => Slot::Int(0),
            (Base::Real, Shape::Scalar) => Slot::Real(0.0),
            (Base::Int, Shape::Array(n)) => Slot::IntArray(vec![0; n.unwrap_or(0) as usize]),
            (Base::Real, Shape::Array(n)) => Slot::RealArray(vec![0.0; n.unwrap_or(0) as usize]),
        }
    }
}

struct Evaluator<'a> {
    program: &'a Program,
    config: &'a InterpConfig,
    slots: Vec<Slot>,
    globals: Vec<usize>,
    output: Vec<Value>,
    steps: u64,
    input_pos: usize,
}

impl Evaluator<'_> {
    fn alloc_globals(&mut self) {
        for g in &self.program.globals {
            let mut slot = Slot::zero_of(g.ty);
            if let (Some(v), Slot::Int(dst)) = (g.init, &mut slot) {
                *dst = v;
            }
            let id = self.slots.len();
            self.slots.push(slot);
            self.globals.push(id);
        }
    }

    fn alloc(&mut self, slot: Slot) -> usize {
        let id = self.slots.len();
        self.slots.push(slot);
        id
    }

    fn tick(&mut self) -> Result<(), InterpError> {
        self.steps += 1;
        if self.steps > self.config.max_steps {
            Err(InterpError::StepLimit)
        } else {
            Ok(())
        }
    }

    fn call(
        &mut self,
        pid: ProcId,
        arg_slots: Vec<usize>,
        depth: u32,
    ) -> Result<Option<Value>, InterpError> {
        if depth >= self.config.max_depth {
            return Err(InterpError::DepthLimit);
        }
        let proc = self.program.proc(pid);
        let mut slot_of_var = Vec::with_capacity(proc.vars.len());
        for var in &proc.vars {
            let slot = match var.kind {
                VarKind::Formal(i) => arg_slots[i as usize],
                VarKind::Global(g) => self.globals[g.index()],
                VarKind::Local | VarKind::Temp => self.alloc(Slot::zero_of(var.ty)),
            };
            slot_of_var.push(slot);
        }

        let mut block = proc.entry();
        loop {
            let b = proc.block(block);
            for instr in &b.instrs {
                self.tick()?;
                self.exec_instr(proc, instr, &slot_of_var, depth)?;
            }
            self.tick()?;
            match &b.term {
                Terminator::Jump(next) => block = *next,
                Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let c = self.eval_int(*cond, &slot_of_var);
                    block = if c != 0 { *then_bb } else { *else_bb };
                }
                Terminator::Return(val) => {
                    return Ok(val.map(|v| self.eval_operand(v, &slot_of_var)));
                }
                Terminator::Trap(TrapKind::ZeroStep) => return Err(InterpError::ZeroStep),
                Terminator::Trap(TrapKind::Unreachable) => {
                    unreachable!("executed a block DCE proved unreachable")
                }
            }
            debug_assert!(block.index() < proc.blocks.len());
            let _: BlockId = block;
        }
    }

    fn eval_operand(&self, op: Operand, slot_of_var: &[usize]) -> Value {
        match op {
            Operand::Const(c) => Value::Int(c),
            Operand::RealConst(c) => Value::Real(c),
            Operand::Var(v) => match &self.slots[slot_of_var[v.index()]] {
                Slot::Int(x) => Value::Int(*x),
                Slot::Real(x) => Value::Real(*x),
                _ => unreachable!("array used as scalar operand"),
            },
        }
    }

    fn eval_int(&self, op: Operand, slot_of_var: &[usize]) -> i64 {
        match self.eval_operand(op, slot_of_var) {
            Value::Int(v) => v,
            Value::Real(_) => unreachable!("validated IR keeps bases separate"),
        }
    }

    fn store_scalar(&mut self, v: VarId, value: Value, slot_of_var: &[usize]) {
        match (&mut self.slots[slot_of_var[v.index()]], value) {
            (Slot::Int(dst), Value::Int(x)) => *dst = x,
            (Slot::Real(dst), Value::Real(x)) => *dst = x,
            (Slot::Real(dst), Value::Int(x)) => *dst = x as f64,
            _ => unreachable!("validated IR keeps bases separate"),
        }
    }

    fn array_len(&self, v: VarId, slot_of_var: &[usize]) -> usize {
        match &self.slots[slot_of_var[v.index()]] {
            Slot::IntArray(a) => a.len(),
            Slot::RealArray(a) => a.len(),
            _ => unreachable!("scalar used as array"),
        }
    }

    fn exec_instr(
        &mut self,
        proc: &Procedure,
        instr: &Instr,
        slot_of_var: &[usize],
        depth: u32,
    ) -> Result<(), InterpError> {
        match instr {
            Instr::Copy { dst, src } => {
                let v = self.eval_operand(*src, slot_of_var);
                self.store_scalar(*dst, v, slot_of_var);
            }
            Instr::Unary { dst, op, src } => {
                let v = self.eval_operand(*src, slot_of_var);
                let r = match (op, v) {
                    (UnOp::Neg, Value::Int(x)) => Value::Int(x.wrapping_neg()),
                    (UnOp::Neg, Value::Real(x)) => Value::Real(-x),
                    (UnOp::Not, Value::Int(x)) => Value::Int(i64::from(x == 0)),
                    (UnOp::Not, Value::Real(_)) => unreachable!("validated"),
                };
                self.store_scalar(*dst, r, slot_of_var);
            }
            Instr::Binary { dst, op, lhs, rhs } => {
                let l = self.eval_operand(*lhs, slot_of_var);
                let r = self.eval_operand(*rhs, slot_of_var);
                let v = eval_binop(*op, l, r)?;
                self.store_scalar(*dst, v, slot_of_var);
            }
            Instr::IntToReal { dst, src } => {
                let v = match self.eval_operand(*src, slot_of_var) {
                    Value::Int(x) => Value::Real(x as f64),
                    Value::Real(_) => unreachable!("validated"),
                };
                self.store_scalar(*dst, v, slot_of_var);
            }
            Instr::Load { dst, arr, index } => {
                let i = self.eval_int(*index, slot_of_var);
                let len = self.array_len(*arr, slot_of_var);
                if i < 1 || i as u128 > len as u128 {
                    return Err(InterpError::OutOfBounds {
                        name: proc.var(*arr).name.clone(),
                        index: i,
                        len,
                    });
                }
                let v = match &self.slots[slot_of_var[arr.index()]] {
                    Slot::IntArray(a) => Value::Int(a[(i - 1) as usize]),
                    Slot::RealArray(a) => Value::Real(a[(i - 1) as usize]),
                    _ => unreachable!("validated"),
                };
                self.store_scalar(*dst, v, slot_of_var);
            }
            Instr::Store { arr, index, value } => {
                let i = self.eval_int(*index, slot_of_var);
                let v = self.eval_operand(*value, slot_of_var);
                let len = self.array_len(*arr, slot_of_var);
                if i < 1 || i as u128 > len as u128 {
                    return Err(InterpError::OutOfBounds {
                        name: proc.var(*arr).name.clone(),
                        index: i,
                        len,
                    });
                }
                match (&mut self.slots[slot_of_var[arr.index()]], v) {
                    (Slot::IntArray(a), Value::Int(x)) => a[(i - 1) as usize] = x,
                    (Slot::RealArray(a), Value::Real(x)) => a[(i - 1) as usize] = x,
                    (Slot::RealArray(a), Value::Int(x)) => a[(i - 1) as usize] = x as f64,
                    _ => unreachable!("validated"),
                }
            }
            Instr::Call { callee, args, dst } => {
                let target = self.program.proc(*callee);
                let mut arg_slots = Vec::with_capacity(args.len());
                for (k, arg) in args.iter().enumerate() {
                    if arg.by_ref {
                        let v = arg.value.as_var().expect("validated by-ref var");
                        arg_slots.push(slot_of_var[v.index()]);
                    } else {
                        let v = self.eval_operand(arg.value, slot_of_var);
                        let formal_base = target.vars[k].ty.base;
                        let slot = match (formal_base, v) {
                            (Base::Int, Value::Int(x)) => Slot::Int(x),
                            (Base::Real, Value::Real(x)) => Slot::Real(x),
                            (Base::Real, Value::Int(x)) => Slot::Real(x as f64),
                            (Base::Int, Value::Real(_)) => unreachable!("validated"),
                        };
                        arg_slots.push(self.alloc(slot));
                    }
                }
                let ret = self.call(*callee, arg_slots, depth + 1)?;
                if let Some(d) = dst {
                    self.store_scalar(*d, ret.unwrap_or(Value::Int(0)), slot_of_var);
                }
            }
            Instr::Read { dst } => {
                let raw = *self
                    .config
                    .input
                    .get(self.input_pos)
                    .ok_or(InterpError::InputExhausted)?;
                self.input_pos += 1;
                self.store_scalar(*dst, Value::Int(raw), slot_of_var);
            }
            Instr::Print { value } => {
                let v = self.eval_operand(*value, slot_of_var);
                self.output.push(v);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use ipcp_lang::compile;
    use ipcp_lang::interp as ast_interp;

    /// Runs source through both interpreters; asserts identical output.
    fn both(src: &str, input: Vec<i64>) -> Result<Vec<Value>, InterpError> {
        let checked = compile(src).expect("compiles");
        let config = InterpConfig {
            input,
            ..InterpConfig::default()
        };
        let ast_out = ast_interp::run(&checked, &config).map(|o| o.output);
        let program = lower(&checked);
        crate::validate::validate(&program).expect("lowered IR validates");
        let ir_out = run(&program, &config).map(|o| o.output);
        assert_eq!(ast_out, ir_out, "AST and IR semantics diverge for:\n{src}");
        ir_out
    }

    fn ints(vs: &[i64]) -> Vec<Value> {
        vs.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn arithmetic_and_control_flow() {
        assert_eq!(
            both("main\nprint(2 + 3 * 4)\nend\n", vec![]),
            Ok(ints(&[14]))
        );
        assert_eq!(
            both(
                "main\nx = 5\nif x > 3 then\nprint(1)\nelse\nprint(0)\nend\nend\n",
                vec![]
            ),
            Ok(ints(&[1]))
        );
    }

    #[test]
    fn loops_match() {
        let src = "main\ns = 0\ndo i = 1, 10\ns = s + i\nend\nprint(s)\nprint(i)\nend\n";
        assert_eq!(both(src, vec![]), Ok(ints(&[55, 11])));
        let src = "main\ns = 0\ndo i = 10, 1, -3\ns = s + i\nend\nprint(s)\nend\n";
        assert_eq!(both(src, vec![]), Ok(ints(&[22])));
        let src = "main\ns = 7\ndo i = 5, 1\ns = 0\nend\nprint(s)\nprint(i)\nend\n";
        assert_eq!(both(src, vec![]), Ok(ints(&[7, 5])));
    }

    #[test]
    fn runtime_step_traps_match() {
        let src = "main\nread(k)\ndo i = 1, 3, k\nprint(i)\nend\nend\n";
        assert_eq!(both(src, vec![0]), Err(InterpError::ZeroStep));
        assert_eq!(both(src, vec![2]), Ok(ints(&[1, 3])));
    }

    #[test]
    fn by_reference_effects_match() {
        let src = "proc swap(a, b)\nt = a\na = b\nb = t\nend\nmain\nx = 1\ny = 2\ncall swap(x, y)\nprint(x)\nprint(y)\nend\n";
        assert_eq!(both(src, vec![]), Ok(ints(&[2, 1])));
    }

    #[test]
    fn globals_and_functions_match() {
        let src = "global c\nfunc bump()\nc = c + 1\nreturn c\nend\nmain\nx = bump() + bump() * 10\nprint(x)\nprint(c)\nend\n";
        assert_eq!(both(src, vec![]), Ok(ints(&[21, 2])));
    }

    #[test]
    fn arrays_match() {
        let src = "proc fill(v(), n)\ndo i = 1, n\nv(i) = i * i\nend\nend\n\
                   main\ninteger a(6)\ncall fill(a, 6)\nprint(a(5))\nend\n";
        assert_eq!(both(src, vec![]), Ok(ints(&[25])));
    }

    #[test]
    fn bounds_errors_match() {
        let src = "main\ninteger a(3)\nread(i)\na(i) = 1\nend\n";
        assert!(matches!(
            both(src, vec![7]),
            Err(InterpError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn div_by_zero_matches() {
        let src = "main\nread(d)\nprint(10 / d)\nend\n";
        assert_eq!(both(src, vec![0]), Err(InterpError::DivByZero));
        assert_eq!(both(src, vec![3]), Ok(ints(&[3])));
    }

    #[test]
    fn real_arithmetic_matches() {
        let src = "main\nreal r\nread(x)\nr = x / 2 + 0.25\nprint(r)\nprint(r >= 2.0)\nend\n";
        assert_eq!(
            both(src, vec![4]),
            Ok(vec![Value::Real(2.25), Value::Int(1)])
        );
    }

    #[test]
    fn input_exhaustion_matches() {
        assert_eq!(
            both("main\nread(x)\nread(y)\nend\n", vec![1]),
            Err(InterpError::InputExhausted)
        );
    }

    #[test]
    fn recursion_matches() {
        let src = "func fib(n)\nif n < 2 then\nreturn n\nend\nreturn fib(n - 1) + fib(n - 2)\nend\nmain\nprint(fib(12))\nend\n";
        assert_eq!(both(src, vec![]), Ok(ints(&[144])));
    }

    #[test]
    fn expression_actuals_do_not_alias() {
        let src = "proc zap(p)\np = 0\nend\nmain\nx = 9\ncall zap(x * 1)\nprint(x)\nend\n";
        assert_eq!(both(src, vec![]), Ok(ints(&[9])));
    }

    #[test]
    fn step_limit_applies() {
        let src = "main\nwhile 1 do\nend\nend\n";
        let checked = compile(src).unwrap();
        let program = lower(&checked);
        let config = InterpConfig {
            max_steps: 100,
            ..InterpConfig::default()
        };
        assert_eq!(run(&program, &config).unwrap_err(), InterpError::StepLimit);
    }

    #[test]
    fn depth_limit_applies() {
        let src = "proc f()\ncall f()\nend\nmain\ncall f()\nend\n";
        let checked = compile(src).unwrap();
        let program = lower(&checked);
        let config = InterpConfig::default();
        assert_eq!(run(&program, &config).unwrap_err(), InterpError::DepthLimit);
    }
}
