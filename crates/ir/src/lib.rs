//! # ipcp-ir — mid-level IR for Minifor
//!
//! This crate lowers checked Minifor ASTs (from [`ipcp_lang`]) into a
//! conventional control-flow-graph IR of three-address instructions, the
//! substrate on which the SSA construction (`ipcp-ssa`), the data-flow
//! analyses (`ipcp-analysis`), and the interprocedural constant
//! propagation itself (`ipcp-core`) operate.
//!
//! * [`lower::lower`] — AST → [`Program`],
//! * [`validate::validate`] — structural invariants,
//! * [`eval::run`] — an evaluator observationally equivalent to the AST
//!   interpreter (used heavily by the equivalence test suites),
//! * [`mod@print`] — textual rendering.
//!
//! ```
//! # fn main() {
//! use ipcp_ir::{eval, lower, validate};
//! use ipcp_lang::interp::{InterpConfig, Value};
//!
//! let checked = ipcp_lang::compile("main\nprint(6 * 7)\nend\n").unwrap();
//! let program = lower::lower(&checked);
//! validate::validate(&program).unwrap();
//! let out = eval::run(&program, &InterpConfig::default()).unwrap();
//! assert_eq!(out.output, vec![Value::Int(42)]);
//! # }
//! ```

pub mod codec;
pub mod eval;
pub mod fingerprint;
pub mod ids;
pub mod instr;
pub mod lower;
pub mod print;
pub mod procedure;
pub mod program;
pub mod validate;

pub use ids::{BlockId, GlobalId, ProcId, VarId, ENTRY_BLOCK};
pub use instr::{CallArg, Instr, Operand, Terminator, TrapKind};
pub use procedure::{Block, Procedure, VarDecl, VarKind};
pub use program::{GlobalVar, Program};

/// Compiles Minifor source all the way to validated IR.
///
/// # Errors
///
/// Returns front-end diagnostics; lowering itself cannot fail on checked
/// input (the result always validates — a debug assertion enforces it).
pub fn compile_to_ir(source: &str) -> Result<Program, ipcp_lang::Diagnostics> {
    let checked = ipcp_lang::compile(source)?;
    let program = lower::lower(&checked);
    debug_assert!(
        validate::validate(&program).is_ok(),
        "lowering produced invalid IR"
    );
    Ok(program)
}
