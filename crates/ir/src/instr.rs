//! IR instructions, operands, and terminators.
//!
//! The IR is a conventional three-address code over a per-procedure
//! variable table. Scalars are either integers or reals (operand base
//! types never mix inside one instruction — lowering inserts
//! [`Instr::IntToReal`] conversions); arrays are accessed only through
//! [`Instr::Load`] / [`Instr::Store`] and are opaque to the constant
//! analyses, as in the paper.

use crate::ids::{BlockId, ProcId, VarId};
pub use ipcp_lang::ast::{BinOp, UnOp};
use std::fmt;

/// An instruction operand: a literal or a scalar variable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// Integer literal.
    Const(i64),
    /// Real literal.
    RealConst(f64),
    /// A scalar variable.
    Var(VarId),
}

impl Operand {
    /// Returns the variable if this operand is one.
    pub fn as_var(self) -> Option<VarId> {
        match self {
            Operand::Var(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the integer literal if this operand is one.
    pub fn as_const(self) -> Option<i64> {
        match self {
            Operand::Const(c) => Some(c),
            _ => None,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Const(c) => write!(f, "{c}"),
            Operand::RealConst(c) => write!(f, "{c:?}"),
            Operand::Var(v) => write!(f, "{v}"),
        }
    }
}

impl From<VarId> for Operand {
    fn from(v: VarId) -> Self {
        Operand::Var(v)
    }
}

/// An actual argument at a call site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CallArg {
    /// The passed value. For `by_ref` arguments this is always
    /// [`Operand::Var`].
    pub value: Operand,
    /// True when the argument is bound by reference (a bare variable whose
    /// type matches the formal exactly; whole arrays are always by
    /// reference). By-value arguments are copied into a fresh callee
    /// temporary, so callee stores do not escape.
    pub by_ref: bool,
}

impl CallArg {
    /// A by-reference argument.
    pub fn by_ref(var: VarId) -> Self {
        CallArg {
            value: Operand::Var(var),
            by_ref: true,
        }
    }

    /// A by-value argument.
    pub fn by_value(value: Operand) -> Self {
        CallArg {
            value,
            by_ref: false,
        }
    }
}

/// A three-address instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `dst = src`
    Copy {
        /// Destination scalar.
        dst: VarId,
        /// Source operand (same base type as `dst`).
        src: Operand,
    },
    /// `dst = op src`
    Unary {
        /// Destination scalar.
        dst: VarId,
        /// The operator.
        op: UnOp,
        /// Operand.
        src: Operand,
    },
    /// `dst = lhs op rhs`
    Binary {
        /// Destination scalar.
        dst: VarId,
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = (real) src` — integer to real conversion.
    IntToReal {
        /// Destination (real scalar).
        dst: VarId,
        /// Source (integer operand).
        src: Operand,
    },
    /// `dst = arr(index)` — 1-based, bounds-checked at runtime.
    Load {
        /// Destination scalar.
        dst: VarId,
        /// Source array variable.
        arr: VarId,
        /// Integer index operand.
        index: Operand,
    },
    /// `arr(index) = value`
    Store {
        /// Destination array variable.
        arr: VarId,
        /// Integer index operand.
        index: Operand,
        /// Stored value (same base type as the array).
        value: Operand,
    },
    /// `dst = call callee(args)` / `call callee(args)`
    Call {
        /// The callee.
        callee: ProcId,
        /// Actual arguments, positionally matching the callee's formals.
        args: Vec<CallArg>,
        /// Result variable for function calls.
        dst: Option<VarId>,
    },
    /// `dst = read()` — consumes one input value (converted for real
    /// destinations).
    Read {
        /// Destination scalar.
        dst: VarId,
    },
    /// `print(value)`
    Print {
        /// Printed operand.
        value: Operand,
    },
}

impl Instr {
    /// The scalar variable this instruction defines, if any.
    ///
    /// Note that a [`Instr::Call`] additionally *may* define by-reference
    /// arguments and globals; those implicit definitions are computed by
    /// the side-effect analysis, not here.
    pub fn def(&self) -> Option<VarId> {
        match self {
            Instr::Copy { dst, .. }
            | Instr::Unary { dst, .. }
            | Instr::Binary { dst, .. }
            | Instr::IntToReal { dst, .. }
            | Instr::Load { dst, .. }
            | Instr::Read { dst } => Some(*dst),
            Instr::Call { dst, .. } => *dst,
            Instr::Store { .. } | Instr::Print { .. } => None,
        }
    }

    /// Invokes `f` for every operand read by this instruction (array
    /// variables in `Load`/`Store` and by-ref call arguments included, as
    /// `Operand::Var`).
    pub fn for_each_use(&self, mut f: impl FnMut(Operand)) {
        match self {
            Instr::Copy { src, .. } | Instr::Unary { src, .. } | Instr::IntToReal { src, .. } => {
                f(*src)
            }
            Instr::Binary { lhs, rhs, .. } => {
                f(*lhs);
                f(*rhs);
            }
            Instr::Load { arr, index, .. } => {
                f(Operand::Var(*arr));
                f(*index);
            }
            Instr::Store { arr, index, value } => {
                f(Operand::Var(*arr));
                f(*index);
                f(*value);
            }
            Instr::Call { args, .. } => {
                for a in args {
                    f(a.value);
                }
            }
            Instr::Print { value } => f(*value),
            Instr::Read { .. } => {}
        }
    }
}

/// Why a [`Terminator::Trap`] fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrapKind {
    /// A `do` loop step evaluated to zero.
    ZeroStep,
    /// Marks a block proven unreachable by dead-code elimination; executing
    /// it would be a compiler bug.
    Unreachable,
}

impl fmt::Display for TrapKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrapKind::ZeroStep => f.write_str("zero do-step"),
            TrapKind::Unreachable => f.write_str("unreachable"),
        }
    }
}

/// A basic block terminator.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on an integer condition (non-zero → `then_bb`).
    Branch {
        /// Condition operand.
        cond: Operand,
        /// Successor when the condition is non-zero.
        then_bb: BlockId,
        /// Successor when the condition is zero.
        else_bb: BlockId,
    },
    /// Return from the procedure, with a value for functions.
    Return(Option<Operand>),
    /// Abort execution with a runtime error.
    Trap(TrapKind),
}

impl Terminator {
    /// Successor blocks, in branch order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Return(_) | Terminator::Trap(_) => vec![],
        }
    }

    /// Invokes `f` on each operand read by the terminator.
    pub fn for_each_use(&self, mut f: impl FnMut(Operand)) {
        match self {
            Terminator::Branch { cond, .. } => f(*cond),
            Terminator::Return(Some(v)) => f(*v),
            Terminator::Return(None) | Terminator::Jump(_) | Terminator::Trap(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_accessors() {
        assert_eq!(Operand::Const(3).as_const(), Some(3));
        assert_eq!(Operand::Const(3).as_var(), None);
        assert_eq!(Operand::Var(VarId(2)).as_var(), Some(VarId(2)));
        assert_eq!(Operand::from(VarId(1)), Operand::Var(VarId(1)));
    }

    #[test]
    fn instr_def() {
        let i = Instr::Binary {
            dst: VarId(1),
            op: BinOp::Add,
            lhs: Operand::Const(1),
            rhs: Operand::Var(VarId(0)),
        };
        assert_eq!(i.def(), Some(VarId(1)));
        let s = Instr::Store {
            arr: VarId(0),
            index: Operand::Const(1),
            value: Operand::Const(2),
        };
        assert_eq!(s.def(), None);
        let c = Instr::Call {
            callee: ProcId(0),
            args: vec![],
            dst: None,
        };
        assert_eq!(c.def(), None);
    }

    #[test]
    fn uses_enumerated() {
        let s = Instr::Store {
            arr: VarId(0),
            index: Operand::Var(VarId(1)),
            value: Operand::Var(VarId(2)),
        };
        let mut uses = vec![];
        s.for_each_use(|o| uses.push(o));
        assert_eq!(uses.len(), 3);
    }

    #[test]
    fn successors() {
        assert_eq!(Terminator::Jump(BlockId(3)).successors(), vec![BlockId(3)]);
        assert_eq!(
            Terminator::Branch {
                cond: Operand::Const(1),
                then_bb: BlockId(1),
                else_bb: BlockId(2)
            }
            .successors(),
            vec![BlockId(1), BlockId(2)]
        );
        assert!(Terminator::Return(None).successors().is_empty());
        assert!(Terminator::Trap(TrapKind::ZeroStep).successors().is_empty());
    }

    #[test]
    fn call_args() {
        let a = CallArg::by_ref(VarId(4));
        assert!(a.by_ref);
        assert_eq!(a.value.as_var(), Some(VarId(4)));
        let b = CallArg::by_value(Operand::Const(9));
        assert!(!b.by_ref);
    }
}
