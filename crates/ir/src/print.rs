//! Textual rendering of IR programs for debugging and golden tests.

use crate::instr::{Instr, Operand, Terminator};
use crate::procedure::{Procedure, VarKind};
use crate::program::Program;
use std::fmt::Write as _;

/// Renders a whole program.
pub fn program_to_string(program: &Program) -> String {
    let mut out = String::new();
    for (i, g) in program.globals.iter().enumerate() {
        let _ = write!(out, "global g{i} {}: {}", g.name, g.ty);
        if let Some(v) = g.init {
            let _ = write!(out, " = {v}");
        }
        out.push('\n');
    }
    for (i, p) in program.procs.iter().enumerate() {
        if i > 0 || !program.globals.is_empty() {
            out.push('\n');
        }
        let marker = if crate::ids::ProcId::from_index(i) == program.main {
            " (entry)"
        } else {
            ""
        };
        let _ = writeln!(out, "{} p{i} {}{marker}:", p.kind, p.name);
        out.push_str(&proc_to_string(p, program));
    }
    out
}

/// Renders a single procedure body.
pub fn proc_to_string(proc: &Procedure, program: &Program) -> String {
    let mut out = String::new();
    for (i, v) in proc.vars.iter().enumerate() {
        let kind = match v.kind {
            VarKind::Formal(k) => format!("formal {k}"),
            VarKind::Global(g) => format!("global {g}"),
            VarKind::Local => "local".to_string(),
            VarKind::Temp => "temp".to_string(),
        };
        let _ = writeln!(out, "  v{i} {}: {} ({kind})", v.name, v.ty);
    }
    for b in proc.block_ids() {
        let _ = writeln!(out, "  {b}:");
        let block = proc.block(b);
        for instr in &block.instrs {
            let _ = writeln!(out, "    {}", instr_to_string(instr, program));
        }
        let _ = writeln!(out, "    {}", term_to_string(&block.term));
    }
    out
}

/// Renders one instruction.
pub fn instr_to_string(instr: &Instr, program: &Program) -> String {
    match instr {
        Instr::Copy { dst, src } => format!("{dst} = {src}"),
        Instr::Unary { dst, op, src } => format!("{dst} = {op}{src}"),
        Instr::Binary { dst, op, lhs, rhs } => format!("{dst} = {lhs} {op} {rhs}"),
        Instr::IntToReal { dst, src } => format!("{dst} = real({src})"),
        Instr::Load { dst, arr, index } => format!("{dst} = {arr}[{index}]"),
        Instr::Store { arr, index, value } => format!("{arr}[{index}] = {value}"),
        Instr::Call { callee, args, dst } => {
            let mut s = String::new();
            if let Some(d) = dst {
                let _ = write!(s, "{d} = ");
            }
            let name = &program.proc(*callee).name;
            let _ = write!(s, "call {name}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                if a.by_ref {
                    s.push('&');
                }
                let _ = write!(s, "{}", a.value);
            }
            s.push(')');
            s
        }
        Instr::Read { dst } => format!("{dst} = read()"),
        Instr::Print { value } => format!("print({value})"),
    }
}

/// Renders one terminator.
pub fn term_to_string(term: &Terminator) -> String {
    match term {
        Terminator::Jump(b) => format!("jump {b}"),
        Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        } => {
            format!("branch {cond} ? {then_bb} : {else_bb}")
        }
        Terminator::Return(None) => "return".to_string(),
        Terminator::Return(Some(v)) => format!("return {v}"),
        Terminator::Trap(k) => format!("trap ({k})"),
    }
}

/// Renders an operand (shared with test helpers).
pub fn operand_to_string(op: Operand) -> String {
    op.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use ipcp_lang::compile;

    #[test]
    fn renders_whole_program() {
        let p = lower(
            &compile("global n = 2\nfunc f(x)\nreturn x * n\nend\nmain\nprint(f(3))\nend\n")
                .unwrap(),
        );
        let s = program_to_string(&p);
        assert!(s.contains("global g0 n: integer = 2"), "{s}");
        assert!(s.contains("func p0 f:"), "{s}");
        assert!(s.contains("main p1 main (entry):"), "{s}");
        assert!(s.contains("call f("), "{s}");
        assert!(s.contains("return"), "{s}");
    }

    #[test]
    fn renders_branches_and_traps() {
        let p = lower(&compile("main\nread(k)\ndo i = 1, 3, k\nend\nend\n").unwrap());
        let s = program_to_string(&p);
        assert!(s.contains("branch"), "{s}");
        assert!(s.contains("trap (zero do-step)"), "{s}");
        assert!(s.contains("read()"), "{s}");
    }

    #[test]
    fn renders_by_ref_args() {
        let p = lower(&compile("proc f(a)\na = 1\nend\nmain\ncall f(x)\nend\n").unwrap());
        let s = program_to_string(&p);
        assert!(s.contains("call f(&v"), "{s}");
    }

    #[test]
    fn renders_array_ops() {
        let p = lower(&compile("main\ninteger a(5)\na(1) = 2\nx = a(1)\nend\n").unwrap());
        let s = program_to_string(&p);
        assert!(s.contains("[1] = 2"), "{s}");
        assert!(s.contains("= v"), "{s}");
    }

    #[test]
    fn operand_rendering() {
        assert_eq!(operand_to_string(Operand::Const(-3)), "-3");
        assert_eq!(operand_to_string(Operand::RealConst(1.5)), "1.5");
        assert_eq!(operand_to_string(Operand::Var(crate::ids::VarId(2))), "v2");
    }
}
