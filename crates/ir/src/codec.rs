//! Stable binary serialization for fingerprinted artifacts.
//!
//! The persistent artifact cache (`ipcp-core::diskcache`) stores
//! analysis results across process lifetimes, so their encoding must be
//! *stable*: independent of pointer width, hash-map iteration order, and
//! allocation layout. This module provides a small hand-rolled codec —
//! the workspace carries no serde — built from two pieces:
//!
//! * [`ByteWriter`] / [`ByteReader`] — append-only little-endian byte
//!   streams with bounds-checked reads,
//! * the [`Wire`] trait — `encode`/`decode` implementations for the
//!   primitives, the standard containers the analyses use (`Vec`,
//!   `Option`, `BTreeMap`, `String`), and every IR type that appears in
//!   an [`crate::Program`].
//!
//! Decoding is *total*: any byte sequence either decodes to a value or
//! returns a [`WireError`]; no input panics. The cache layers a
//! checksum over the payload, so decode errors only arise from format
//! or version skew — both of which quarantine the entry rather than
//! crash the analysis.

use crate::ids::{BlockId, GlobalId, ProcId, VarId};
use crate::instr::{CallArg, Instr, Operand, Terminator, TrapKind};
use crate::procedure::{Block, Procedure, VarDecl, VarKind};
use crate::program::{GlobalVar, Program};
use ipcp_lang::ast::{Base, BinOp, ProcKind, Shape, Ty, UnOp};
use std::collections::BTreeMap;
use std::fmt;

/// Why a decode failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value did.
    Truncated,
    /// An enum tag byte held no known variant.
    BadTag {
        /// Which type was being decoded.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A length prefix exceeds the remaining input — a corrupt or
    /// hostile stream; failing early bounds allocation.
    BadLength,
    /// A string's bytes were not valid UTF-8.
    BadUtf8,
    /// Bytes remained after the top-level value was decoded.
    TrailingBytes,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => f.write_str("input truncated"),
            WireError::BadTag { what, tag } => write!(f, "bad tag {tag:#04x} for {what}"),
            WireError::BadLength => f.write_str("length prefix exceeds input"),
            WireError::BadUtf8 => f.write_str("invalid UTF-8 in string"),
            WireError::TrailingBytes => f.write_str("trailing bytes after value"),
        }
    }
}

impl std::error::Error for WireError {}

/// An append-only little-endian byte sink.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far, borrowed.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
}

/// A bounds-checked little-endian byte source.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { buf: bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consumes `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] when fewer than `n` bytes remain.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Consumes one byte.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of input.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.bytes(1)?[0])
    }

    /// Consumes a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] when fewer than 4 bytes remain.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Consumes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] when fewer than 8 bytes remain.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Consumes a length prefix, rejecting values that could not
    /// possibly fit in the remaining input (every element needs at least
    /// one byte), so corrupt streams fail before allocating.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] / [`WireError::BadLength`].
    pub fn length_prefix(&mut self) -> Result<usize, WireError> {
        let n = self.u64()?;
        if n > self.remaining() as u64 {
            return Err(WireError::BadLength);
        }
        Ok(n as usize)
    }
}

/// Stable binary encode/decode for one type.
pub trait Wire: Sized {
    /// Appends this value's encoding to `w`.
    fn encode(&self, w: &mut ByteWriter);

    /// Decodes one value from `r`.
    ///
    /// # Errors
    ///
    /// A [`WireError`] describing the first malformation found.
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError>;
}

/// Encodes a value into a fresh byte vector.
pub fn encode_to_vec<T: Wire>(value: &T) -> Vec<u8> {
    let mut w = ByteWriter::new();
    value.encode(&mut w);
    w.into_bytes()
}

/// Decodes exactly one value spanning all of `bytes`.
///
/// # Errors
///
/// A [`WireError`]; [`WireError::TrailingBytes`] when input remains
/// after the value.
pub fn decode_from_slice<T: Wire>(bytes: &[u8]) -> Result<T, WireError> {
    let mut r = ByteReader::new(bytes);
    let value = T::decode(&mut r)?;
    if r.remaining() != 0 {
        return Err(WireError::TrailingBytes);
    }
    Ok(value)
}

// ---- primitives ---------------------------------------------------------

impl Wire for u8 {
    fn encode(&self, w: &mut ByteWriter) {
        w.u8(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        r.u8()
    }
}

impl Wire for u32 {
    fn encode(&self, w: &mut ByteWriter) {
        w.u32(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        r.u32()
    }
}

impl Wire for u64 {
    fn encode(&self, w: &mut ByteWriter) {
        w.u64(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        r.u64()
    }
}

impl Wire for i64 {
    fn encode(&self, w: &mut ByteWriter) {
        w.u64(*self as u64);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(r.u64()? as i64)
    }
}

impl Wire for f64 {
    fn encode(&self, w: &mut ByteWriter) {
        w.u64(self.to_bits());
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(f64::from_bits(r.u64()?))
    }
}

// `usize` travels as `u64` so 32- and 64-bit builds interoperate.
impl Wire for usize {
    fn encode(&self, w: &mut ByteWriter) {
        w.u64(*self as u64);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        usize::try_from(r.u64()?).map_err(|_| WireError::BadLength)
    }
}

impl Wire for bool {
    fn encode(&self, w: &mut ByteWriter) {
        w.u8(u8::from(*self));
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag { what: "bool", tag }),
        }
    }
}

impl Wire for String {
    fn encode(&self, w: &mut ByteWriter) {
        w.u64(self.len() as u64);
        w.bytes(self.as_bytes());
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        let n = r.length_prefix()?;
        let bytes = r.bytes(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, w: &mut ByteWriter) {
        w.u64(self.len() as u64);
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        let n = r.length_prefix()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            None => w.u8(0),
            Some(v) => {
                w.u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(WireError::BadTag {
                what: "Option",
                tag,
            }),
        }
    }
}

impl<K: Wire + Ord, V: Wire> Wire for BTreeMap<K, V> {
    fn encode(&self, w: &mut ByteWriter) {
        w.u64(self.len() as u64);
        for (k, v) in self {
            k.encode(w);
            v.encode(w);
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        let n = r.length_prefix()?;
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, w: &mut ByteWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

// ---- id newtypes --------------------------------------------------------

macro_rules! wire_id {
    ($($name:ident),*) => {
        $(impl Wire for $name {
            fn encode(&self, w: &mut ByteWriter) {
                w.u32(self.0);
            }
            fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
                Ok($name(r.u32()?))
            }
        })*
    };
}

wire_id!(ProcId, BlockId, VarId, GlobalId);

// ---- fieldless enums ----------------------------------------------------

macro_rules! wire_enum {
    ($name:ident { $($variant:ident = $tag:literal),* $(,)? }) => {
        impl Wire for $name {
            fn encode(&self, w: &mut ByteWriter) {
                w.u8(match self {
                    $($name::$variant => $tag,)*
                });
            }
            fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
                match r.u8()? {
                    $($tag => Ok($name::$variant),)*
                    tag => Err(WireError::BadTag {
                        what: stringify!($name),
                        tag,
                    }),
                }
            }
        }
    };
}

wire_enum!(Base {
    Int = 0,
    Real = 1,
});
wire_enum!(ProcKind {
    Subroutine = 0,
    Function = 1,
    Main = 2,
});
wire_enum!(UnOp {
    Neg = 0,
    Not = 1,
});
wire_enum!(BinOp {
    Add = 0,
    Sub = 1,
    Mul = 2,
    Div = 3,
    Rem = 4,
    Eq = 5,
    Ne = 6,
    Lt = 7,
    Le = 8,
    Gt = 9,
    Ge = 10,
    And = 11,
    Or = 12,
});
wire_enum!(TrapKind {
    ZeroStep = 0,
    Unreachable = 1,
});

// ---- language / IR structs ----------------------------------------------

impl Wire for Shape {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            Shape::Scalar => w.u8(0),
            Shape::Array(len) => {
                w.u8(1);
                len.encode(w);
            }
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(Shape::Scalar),
            1 => Ok(Shape::Array(Option::<u32>::decode(r)?)),
            tag => Err(WireError::BadTag { what: "Shape", tag }),
        }
    }
}

impl Wire for Ty {
    fn encode(&self, w: &mut ByteWriter) {
        self.base.encode(w);
        self.shape.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(Ty {
            base: Base::decode(r)?,
            shape: Shape::decode(r)?,
        })
    }
}

impl Wire for VarKind {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            VarKind::Formal(i) => {
                w.u8(0);
                w.u32(*i);
            }
            VarKind::Global(g) => {
                w.u8(1);
                g.encode(w);
            }
            VarKind::Local => w.u8(2),
            VarKind::Temp => w.u8(3),
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(VarKind::Formal(r.u32()?)),
            1 => Ok(VarKind::Global(GlobalId::decode(r)?)),
            2 => Ok(VarKind::Local),
            3 => Ok(VarKind::Temp),
            tag => Err(WireError::BadTag {
                what: "VarKind",
                tag,
            }),
        }
    }
}

impl Wire for VarDecl {
    fn encode(&self, w: &mut ByteWriter) {
        self.name.encode(w);
        self.ty.encode(w);
        self.kind.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(VarDecl {
            name: String::decode(r)?,
            ty: Ty::decode(r)?,
            kind: VarKind::decode(r)?,
        })
    }
}

impl Wire for Operand {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            Operand::Const(c) => {
                w.u8(0);
                c.encode(w);
            }
            Operand::RealConst(c) => {
                w.u8(1);
                c.encode(w);
            }
            Operand::Var(v) => {
                w.u8(2);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(Operand::Const(i64::decode(r)?)),
            1 => Ok(Operand::RealConst(f64::decode(r)?)),
            2 => Ok(Operand::Var(VarId::decode(r)?)),
            tag => Err(WireError::BadTag {
                what: "Operand",
                tag,
            }),
        }
    }
}

impl Wire for CallArg {
    fn encode(&self, w: &mut ByteWriter) {
        self.value.encode(w);
        self.by_ref.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(CallArg {
            value: Operand::decode(r)?,
            by_ref: bool::decode(r)?,
        })
    }
}

impl Wire for Instr {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            Instr::Copy { dst, src } => {
                w.u8(0);
                dst.encode(w);
                src.encode(w);
            }
            Instr::Unary { dst, op, src } => {
                w.u8(1);
                dst.encode(w);
                op.encode(w);
                src.encode(w);
            }
            Instr::Binary { dst, op, lhs, rhs } => {
                w.u8(2);
                dst.encode(w);
                op.encode(w);
                lhs.encode(w);
                rhs.encode(w);
            }
            Instr::IntToReal { dst, src } => {
                w.u8(3);
                dst.encode(w);
                src.encode(w);
            }
            Instr::Load { dst, arr, index } => {
                w.u8(4);
                dst.encode(w);
                arr.encode(w);
                index.encode(w);
            }
            Instr::Store { arr, index, value } => {
                w.u8(5);
                arr.encode(w);
                index.encode(w);
                value.encode(w);
            }
            Instr::Call { callee, args, dst } => {
                w.u8(6);
                callee.encode(w);
                args.encode(w);
                dst.encode(w);
            }
            Instr::Read { dst } => {
                w.u8(7);
                dst.encode(w);
            }
            Instr::Print { value } => {
                w.u8(8);
                value.encode(w);
            }
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => Instr::Copy {
                dst: VarId::decode(r)?,
                src: Operand::decode(r)?,
            },
            1 => Instr::Unary {
                dst: VarId::decode(r)?,
                op: UnOp::decode(r)?,
                src: Operand::decode(r)?,
            },
            2 => Instr::Binary {
                dst: VarId::decode(r)?,
                op: BinOp::decode(r)?,
                lhs: Operand::decode(r)?,
                rhs: Operand::decode(r)?,
            },
            3 => Instr::IntToReal {
                dst: VarId::decode(r)?,
                src: Operand::decode(r)?,
            },
            4 => Instr::Load {
                dst: VarId::decode(r)?,
                arr: VarId::decode(r)?,
                index: Operand::decode(r)?,
            },
            5 => Instr::Store {
                arr: VarId::decode(r)?,
                index: Operand::decode(r)?,
                value: Operand::decode(r)?,
            },
            6 => Instr::Call {
                callee: ProcId::decode(r)?,
                args: Vec::<CallArg>::decode(r)?,
                dst: Option::<VarId>::decode(r)?,
            },
            7 => Instr::Read {
                dst: VarId::decode(r)?,
            },
            8 => Instr::Print {
                value: Operand::decode(r)?,
            },
            tag => return Err(WireError::BadTag { what: "Instr", tag }),
        })
    }
}

impl Wire for Terminator {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            Terminator::Jump(b) => {
                w.u8(0);
                b.encode(w);
            }
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                w.u8(1);
                cond.encode(w);
                then_bb.encode(w);
                else_bb.encode(w);
            }
            Terminator::Return(v) => {
                w.u8(2);
                v.encode(w);
            }
            Terminator::Trap(k) => {
                w.u8(3);
                k.encode(w);
            }
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => Terminator::Jump(BlockId::decode(r)?),
            1 => Terminator::Branch {
                cond: Operand::decode(r)?,
                then_bb: BlockId::decode(r)?,
                else_bb: BlockId::decode(r)?,
            },
            2 => Terminator::Return(Option::<Operand>::decode(r)?),
            3 => Terminator::Trap(TrapKind::decode(r)?),
            tag => {
                return Err(WireError::BadTag {
                    what: "Terminator",
                    tag,
                })
            }
        })
    }
}

impl Wire for Block {
    fn encode(&self, w: &mut ByteWriter) {
        self.instrs.encode(w);
        self.term.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(Block {
            instrs: Vec::<Instr>::decode(r)?,
            term: Terminator::decode(r)?,
        })
    }
}

impl Wire for Procedure {
    fn encode(&self, w: &mut ByteWriter) {
        self.name.encode(w);
        self.kind.encode(w);
        self.vars.encode(w);
        self.num_formals.encode(w);
        self.blocks.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(Procedure {
            name: String::decode(r)?,
            kind: ProcKind::decode(r)?,
            vars: Vec::<VarDecl>::decode(r)?,
            num_formals: r.u32()?,
            blocks: Vec::<Block>::decode(r)?,
        })
    }
}

impl Wire for GlobalVar {
    fn encode(&self, w: &mut ByteWriter) {
        self.name.encode(w);
        self.ty.encode(w);
        self.init.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(GlobalVar {
            name: String::decode(r)?,
            ty: Ty::decode(r)?,
            init: Option::<i64>::decode(r)?,
        })
    }
}

impl Wire for Program {
    fn encode(&self, w: &mut ByteWriter) {
        self.globals.encode(w);
        self.procs.encode(w);
        self.main.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(Program {
            globals: Vec::<GlobalVar>::decode(r)?,
            procs: Vec::<Procedure>::decode(r)?,
            main: ProcId::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + fmt::Debug>(value: T) {
        let bytes = encode_to_vec(&value);
        let back: T = decode_from_slice(&bytes).expect("roundtrip decodes");
        assert_eq!(back, value);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(-1i64);
        roundtrip(i64::MIN);
        roundtrip(3.5f64);
        roundtrip(f64::NEG_INFINITY);
        roundtrip(true);
        roundtrip(String::from("héllo\nworld"));
        roundtrip(Vec::<u64>::new());
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Option::<i64>::None);
        roundtrip(Some(42i64));
        roundtrip(BTreeMap::from([(1u32, String::from("a"))]));
        roundtrip((String::from("x"), 7u64));
    }

    #[test]
    fn nan_payload_is_preserved() {
        let bits = 0x7ff8_0000_dead_beefu64;
        let bytes = encode_to_vec(&f64::from_bits(bits));
        let back: f64 = decode_from_slice(&bytes).unwrap();
        assert_eq!(back.to_bits(), bits);
    }

    #[test]
    fn program_roundtrips_and_is_stable() {
        let src = "\
global n = 4\n\
proc f(a)\n  x = a * 2\n  print(x + n)\nend\n\
main\n  do i = 1, 3\n    call f(i)\n  end\n  print(1.5)\nend\n";
        let program = crate::compile_to_ir(src).expect("compiles");
        let bytes = encode_to_vec(&program);
        let back: Program = decode_from_slice(&bytes).expect("decodes");
        assert_eq!(back, program);
        // Stability: encoding the same value twice is byte-identical.
        assert_eq!(bytes, encode_to_vec(&back));
    }

    #[test]
    fn truncation_is_an_error_never_a_panic() {
        let program = crate::compile_to_ir("main\nprint(1)\nend\n").unwrap();
        let bytes = encode_to_vec(&program);
        for n in 0..bytes.len() {
            let r = decode_from_slice::<Program>(&bytes[..n]);
            assert!(r.is_err(), "prefix of {n} bytes decoded");
        }
    }

    #[test]
    fn bad_tags_and_lengths_are_rejected() {
        assert_eq!(
            decode_from_slice::<bool>(&[9]),
            Err(WireError::BadTag {
                what: "bool",
                tag: 9
            })
        );
        // Length prefix far beyond the input fails before allocating.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            decode_from_slice::<Vec<u64>>(&bytes),
            Err(WireError::BadLength)
        );
        // Trailing garbage after a whole value is detected.
        let mut bytes = encode_to_vec(&7u64);
        bytes.push(0);
        assert_eq!(
            decode_from_slice::<u64>(&bytes),
            Err(WireError::TrailingBytes)
        );
        // Non-UTF-8 string bytes are rejected.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&2u64.to_le_bytes());
        bytes.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(decode_from_slice::<String>(&bytes), Err(WireError::BadUtf8));
    }

    #[test]
    fn every_instr_variant_roundtrips() {
        let instrs = vec![
            Instr::Copy {
                dst: VarId(0),
                src: Operand::Const(1),
            },
            Instr::Unary {
                dst: VarId(1),
                op: UnOp::Not,
                src: Operand::Var(VarId(0)),
            },
            Instr::Binary {
                dst: VarId(2),
                op: BinOp::Rem,
                lhs: Operand::Const(7),
                rhs: Operand::Var(VarId(1)),
            },
            Instr::IntToReal {
                dst: VarId(3),
                src: Operand::Const(2),
            },
            Instr::Load {
                dst: VarId(4),
                arr: VarId(5),
                index: Operand::Const(1),
            },
            Instr::Store {
                arr: VarId(5),
                index: Operand::Const(2),
                value: Operand::RealConst(0.5),
            },
            Instr::Call {
                callee: ProcId(1),
                args: vec![
                    CallArg::by_ref(VarId(0)),
                    CallArg::by_value(Operand::Const(3)),
                ],
                dst: Some(VarId(6)),
            },
            Instr::Read { dst: VarId(7) },
            Instr::Print {
                value: Operand::Var(VarId(7)),
            },
        ];
        roundtrip(instrs);
        let terms = vec![
            Terminator::Jump(BlockId(1)),
            Terminator::Branch {
                cond: Operand::Var(VarId(0)),
                then_bb: BlockId(1),
                else_bb: BlockId(2),
            },
            Terminator::Return(Some(Operand::Const(0))),
            Terminator::Return(None),
            Terminator::Trap(TrapKind::ZeroStep),
            Terminator::Trap(TrapKind::Unreachable),
        ];
        roundtrip(terms);
    }
}
