//! Structural validation of IR programs.
//!
//! The validator enforces every invariant later phases rely on; lowering
//! output must always validate, and tests feed it hand-built IR to pin the
//! rules down.

use crate::ids::{ProcId, VarId};
use crate::instr::{Instr, Operand, Terminator};
use crate::procedure::{Procedure, VarKind};
use crate::program::Program;
use ipcp_lang::ast::{Base, BinOp, ProcKind, UnOp};

/// A validation failure, as a human-readable message with its location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError {
    /// Procedure where the problem was found (`None` for program-level
    /// problems).
    pub proc: Option<ProcId>,
    /// Description of the violated invariant.
    pub message: String,
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.proc {
            Some(p) => write!(f, "in {p}: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for ValidateError {}

/// Validates `program`, returning all violations found.
///
/// # Errors
///
/// Returns a non-empty list of violations if the program is malformed.
pub fn validate(program: &Program) -> Result<(), Vec<ValidateError>> {
    let mut v = Validator {
        program,
        proc: None,
        errors: Vec::new(),
    };
    v.run();
    if v.errors.is_empty() {
        Ok(())
    } else {
        Err(v.errors)
    }
}

struct Validator<'a> {
    program: &'a Program,
    proc: Option<ProcId>,
    errors: Vec<ValidateError>,
}

impl Validator<'_> {
    fn error(&mut self, message: impl Into<String>) {
        self.errors.push(ValidateError {
            proc: self.proc,
            message: message.into(),
        });
    }

    fn run(&mut self) {
        // Dense-id bounds: analyses index `Vec` tables by `ProcId` /
        // `GlobalId` (and build them with `from_index`), so both id
        // spaces must stay within the 32-bit newtypes.
        if self.program.procs.len() > u32::MAX as usize {
            self.error("procedure table exceeds the dense 32-bit ProcId space");
            return;
        }
        if self.program.globals.len() > u32::MAX as usize {
            self.error("global table exceeds the dense 32-bit GlobalId space");
            return;
        }
        if self.program.main.index() >= self.program.procs.len() {
            self.error("main procedure id out of range");
            return;
        }
        if self.program.proc(self.program.main).kind != ProcKind::Main {
            self.error("main procedure id does not refer to a `main`");
        }
        for pid in self.program.proc_ids() {
            self.proc = Some(pid);
            self.check_proc(self.program.proc(pid));
        }
    }

    fn check_proc(&mut self, proc: &Procedure) {
        if proc.blocks.is_empty() {
            self.error("procedure has no blocks");
            return;
        }
        if proc.num_formals as usize > proc.vars.len() {
            self.error("num_formals exceeds variable count");
            return;
        }
        if proc.kind == ProcKind::Main && proc.num_formals != 0 {
            self.error("main must have no formals");
        }
        // One binding per global: slot-keyed tables (`Slot::Global(g)`)
        // assume a procedure's global vars map to *distinct* dense ids —
        // a duplicate binding would alias two variables onto one slot.
        let mut global_seen = vec![false; self.program.globals.len()];
        for (i, var) in proc.vars.iter().enumerate() {
            match var.kind {
                VarKind::Formal(k) => {
                    if i >= proc.num_formals as usize || k as usize != i {
                        self.error(format!("formal `{}` misplaced at slot {i}", var.name));
                    }
                }
                VarKind::Global(g) => {
                    if g.index() >= self.program.globals.len() {
                        self.error(format!("global id {g} out of range for `{}`", var.name));
                    } else if self.program.global(g).ty != var.ty {
                        self.error(format!("global `{}` type mismatch", var.name));
                    } else if std::mem::replace(&mut global_seen[g.index()], true) {
                        self.error(format!(
                            "global id {g} bound twice (again by `{}`)",
                            var.name
                        ));
                    }
                }
                VarKind::Local | VarKind::Temp => {
                    if i < proc.num_formals as usize {
                        self.error(format!("non-formal `{}` in formal slots", var.name));
                    }
                }
            }
        }

        for b in proc.block_ids() {
            let block = proc.block(b);
            for instr in &block.instrs {
                self.check_instr(proc, instr);
            }
            self.check_term(proc, &block.term);
        }
    }

    fn operand_base(&mut self, proc: &Procedure, op: Operand) -> Option<Base> {
        match op {
            Operand::Const(_) => Some(Base::Int),
            Operand::RealConst(_) => Some(Base::Real),
            Operand::Var(v) => {
                if v.index() >= proc.vars.len() {
                    self.error(format!("variable {v} out of range"));
                    return None;
                }
                let ty = proc.var(v).ty;
                if ty.is_array() {
                    self.error(format!(
                        "array `{}` used as a scalar operand",
                        proc.var(v).name
                    ));
                    return None;
                }
                Some(ty.base)
            }
        }
    }

    fn scalar_var(&mut self, proc: &Procedure, v: VarId, what: &str) -> Option<Base> {
        if v.index() >= proc.vars.len() {
            self.error(format!("{what} variable {v} out of range"));
            return None;
        }
        let ty = proc.var(v).ty;
        if ty.is_array() {
            self.error(format!("{what} `{}` must be a scalar", proc.var(v).name));
            return None;
        }
        Some(ty.base)
    }

    fn array_var(&mut self, proc: &Procedure, v: VarId, what: &str) -> Option<Base> {
        if v.index() >= proc.vars.len() {
            self.error(format!("{what} variable {v} out of range"));
            return None;
        }
        let ty = proc.var(v).ty;
        if !ty.is_array() {
            self.error(format!("{what} `{}` must be an array", proc.var(v).name));
            return None;
        }
        Some(ty.base)
    }

    fn check_instr(&mut self, proc: &Procedure, instr: &Instr) {
        match instr {
            Instr::Copy { dst, src } => {
                let d = self.scalar_var(proc, *dst, "copy destination");
                let s = self.operand_base(proc, *src);
                if let (Some(d), Some(s)) = (d, s) {
                    if d != s {
                        self.error("copy between different base types");
                    }
                }
            }
            Instr::Unary { dst, op, src } => {
                let d = self.scalar_var(proc, *dst, "unary destination");
                let s = self.operand_base(proc, *src);
                if let (Some(d), Some(s)) = (d, s) {
                    match op {
                        UnOp::Neg => {
                            if d != s {
                                self.error("negation changes base type");
                            }
                        }
                        UnOp::Not => {
                            if d != Base::Int || s != Base::Int {
                                self.error("`not` requires integer operands");
                            }
                        }
                    }
                }
            }
            Instr::Binary { dst, op, lhs, rhs } => {
                let d = self.scalar_var(proc, *dst, "binary destination");
                let l = self.operand_base(proc, *lhs);
                let r = self.operand_base(proc, *rhs);
                if let (Some(d), Some(l), Some(r)) = (d, l, r) {
                    if l != r {
                        self.error(format!("`{op}` operands have different base types"));
                    }
                    if (op.is_logical() || *op == BinOp::Rem) && l != Base::Int {
                        self.error(format!("`{op}` requires integer operands"));
                    }
                    let expect = if op.is_arithmetic() { l } else { Base::Int };
                    if d != expect {
                        self.error(format!("`{op}` destination has wrong base type"));
                    }
                }
            }
            Instr::IntToReal { dst, src } => {
                let d = self.scalar_var(proc, *dst, "conversion destination");
                let s = self.operand_base(proc, *src);
                if d.is_some() && d != Some(Base::Real) {
                    self.error("int-to-real destination must be real");
                }
                if s.is_some() && s != Some(Base::Int) {
                    self.error("int-to-real source must be integer");
                }
            }
            Instr::Load { dst, arr, index } => {
                let d = self.scalar_var(proc, *dst, "load destination");
                let a = self.array_var(proc, *arr, "load source");
                let i = self.operand_base(proc, *index);
                if let (Some(d), Some(a)) = (d, a) {
                    if d != a {
                        self.error("load destination base type mismatch");
                    }
                }
                if i.is_some() && i != Some(Base::Int) {
                    self.error("array index must be integer");
                }
            }
            Instr::Store { arr, index, value } => {
                let a = self.array_var(proc, *arr, "store target");
                let i = self.operand_base(proc, *index);
                let v = self.operand_base(proc, *value);
                if i.is_some() && i != Some(Base::Int) {
                    self.error("array index must be integer");
                }
                if let (Some(a), Some(v)) = (a, v) {
                    if a != v {
                        self.error("store value base type mismatch");
                    }
                }
            }
            Instr::Call { callee, args, dst } => {
                if callee.index() >= self.program.procs.len() {
                    self.error(format!("callee {callee} out of range"));
                    return;
                }
                let target = self.program.proc(*callee);
                if target.kind == ProcKind::Main {
                    self.error("calls to main are not allowed");
                }
                if dst.is_some() && target.kind != ProcKind::Function {
                    self.error("non-function call has a result");
                }
                if args.len() != target.num_formals as usize {
                    self.error(format!(
                        "call to `{}` has {} args, expected {}",
                        target.name,
                        args.len(),
                        target.num_formals
                    ));
                    return;
                }
                if let Some(d) = dst {
                    let db = self.scalar_var(proc, *d, "call result");
                    if db.is_some() && db != Some(Base::Int) {
                        self.error("function results are integers");
                    }
                }
                for (k, arg) in args.iter().enumerate() {
                    let Some(formal) = target.vars.get(k) else {
                        self.error(format!("callee `{}` formal table too short", target.name));
                        break;
                    };
                    let formal_ty = formal.ty;
                    if arg.by_ref {
                        match arg.value {
                            Operand::Var(v) if v.index() < proc.vars.len() => {
                                let actual_ty = proc.var(v).ty;
                                if actual_ty.base != formal_ty.base
                                    || actual_ty.is_array() != formal_ty.is_array()
                                {
                                    self.error(format!(
                                        "by-ref argument {k} type mismatch calling `{}`",
                                        target.name
                                    ));
                                }
                            }
                            _ => self.error(format!("by-ref argument {k} must be a variable")),
                        }
                    } else {
                        if formal_ty.is_array() {
                            self.error(format!("array formal {k} requires a by-ref argument"));
                        }
                        let ab = self.operand_base(proc, arg.value);
                        if let Some(ab) = ab {
                            if ab != formal_ty.base {
                                self.error(format!(
                                    "by-value argument {k} base type mismatch calling `{}`",
                                    target.name
                                ));
                            }
                        }
                    }
                }
            }
            Instr::Read { dst } => {
                self.scalar_var(proc, *dst, "read destination");
            }
            Instr::Print { value } => {
                self.operand_base(proc, *value);
            }
        }
    }

    fn check_term(&mut self, proc: &Procedure, term: &Terminator) {
        match term {
            Terminator::Jump(b) => {
                if b.index() >= proc.blocks.len() {
                    self.error(format!("jump target {b} out of range"));
                }
            }
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                let c = self.operand_base(proc, *cond);
                if c.is_some() && c != Some(Base::Int) {
                    self.error("branch condition must be integer");
                }
                for b in [then_bb, else_bb] {
                    if b.index() >= proc.blocks.len() {
                        self.error(format!("branch target {b} out of range"));
                    }
                }
            }
            Terminator::Return(val) => match (proc.kind, val) {
                (ProcKind::Function, None) => self.error("function return without a value"),
                (ProcKind::Function, Some(op)) => {
                    let b = self.operand_base(proc, *op);
                    if b.is_some() && b != Some(Base::Int) {
                        self.error("function return value must be integer");
                    }
                }
                (_, Some(_)) => self.error("non-function return with a value"),
                (_, None) => {}
            },
            Terminator::Trap(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{BlockId, GlobalId};
    use crate::instr::CallArg;
    use crate::procedure::VarDecl;
    use ipcp_lang::ast::Ty;
    use ipcp_lang::compile;

    fn valid_main() -> Program {
        Program {
            globals: vec![],
            procs: vec![Procedure::new("main", ProcKind::Main)],
            main: ProcId(0),
        }
    }

    #[test]
    fn empty_main_validates() {
        assert!(validate(&valid_main()).is_ok());
    }

    #[test]
    fn lowered_programs_validate() {
        let srcs = [
            "main\nx = 1\nend\n",
            "global n = 3\nproc f(a, real b, v())\ninteger t\nt = a * 2\nv(t) = t\nend\n\
             main\ninteger arr(9)\nreal r\ncall f(n, r, arr)\nend\n",
            "func g(x)\nreturn x + 1\nend\nmain\ndo i = 1, 10, 2\ns = s + g(i)\nend\nprint(s)\nend\n",
            "main\nread(k)\ndo i = 1, 5, k\nwhile i > 0 do\ni = i - 1\nend\nend\nend\n",
        ];
        for src in srcs {
            let program = crate::lower::lower(&compile(src).unwrap());
            if let Err(errs) = validate(&program) {
                panic!("{src}\n{errs:?}");
            }
        }
    }

    #[test]
    fn bad_main_id() {
        let mut p = valid_main();
        p.main = ProcId(5);
        assert!(validate(&p).is_err());
    }

    #[test]
    fn main_with_formals_rejected() {
        let mut p = valid_main();
        p.procs[0].add_var(VarDecl {
            name: "x".into(),
            ty: Ty::INT,
            kind: VarKind::Formal(0),
        });
        p.procs[0].num_formals = 1;
        let errs = validate(&p).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("main must have no formals")));
    }

    #[test]
    fn out_of_range_jump_rejected() {
        let mut p = valid_main();
        p.procs[0].block_mut(BlockId(0)).term = Terminator::Jump(BlockId(9));
        let errs = validate(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("out of range")));
    }

    #[test]
    fn type_confusion_rejected() {
        let mut p = valid_main();
        let x = p.procs[0].add_var(VarDecl {
            name: "x".into(),
            ty: Ty::INT,
            kind: VarKind::Local,
        });
        let r = p.procs[0].add_var(VarDecl {
            name: "r".into(),
            ty: Ty::REAL,
            kind: VarKind::Local,
        });
        p.procs[0].block_mut(BlockId(0)).instrs.push(Instr::Copy {
            dst: x,
            src: Operand::Var(r),
        });
        let errs = validate(&p).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("different base types")));
    }

    #[test]
    fn mixed_binary_rejected() {
        let mut p = valid_main();
        let x = p.procs[0].add_var(VarDecl {
            name: "x".into(),
            ty: Ty::INT,
            kind: VarKind::Local,
        });
        p.procs[0].block_mut(BlockId(0)).instrs.push(Instr::Binary {
            dst: x,
            op: BinOp::Add,
            lhs: Operand::Const(1),
            rhs: Operand::RealConst(2.0),
        });
        let errs = validate(&p).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("different base types")));
    }

    #[test]
    fn duplicate_global_binding_rejected() {
        let mut p = valid_main();
        p.globals.push(crate::program::GlobalVar {
            name: "g".into(),
            ty: Ty::INT,
            init: None,
        });
        for name in ["g_a", "g_b"] {
            p.procs[0].add_var(VarDecl {
                name: name.into(),
                ty: Ty::INT,
                kind: VarKind::Global(GlobalId(0)),
            });
        }
        let errs = validate(&p).unwrap_err();
        assert!(
            errs.iter().any(|e| e.message.contains("bound twice")),
            "{errs:?}"
        );
    }

    #[test]
    fn bad_global_reference_rejected() {
        let mut p = valid_main();
        p.procs[0].add_var(VarDecl {
            name: "g".into(),
            ty: Ty::INT,
            kind: VarKind::Global(GlobalId(3)),
        });
        let errs = validate(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("out of range")));
    }

    #[test]
    fn call_arity_checked() {
        let mut p = valid_main();
        let mut f = Procedure::new("f", ProcKind::Subroutine);
        f.add_var(VarDecl {
            name: "a".into(),
            ty: Ty::INT,
            kind: VarKind::Formal(0),
        });
        f.num_formals = 1;
        p.procs.push(f);
        p.procs[0].block_mut(BlockId(0)).instrs.push(Instr::Call {
            callee: ProcId(1),
            args: vec![],
            dst: None,
        });
        let errs = validate(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("expected 1")));
    }

    #[test]
    fn by_ref_literal_rejected() {
        let mut p = valid_main();
        let mut f = Procedure::new("f", ProcKind::Subroutine);
        f.add_var(VarDecl {
            name: "a".into(),
            ty: Ty::INT,
            kind: VarKind::Formal(0),
        });
        f.num_formals = 1;
        p.procs.push(f);
        p.procs[0].block_mut(BlockId(0)).instrs.push(Instr::Call {
            callee: ProcId(1),
            args: vec![CallArg {
                value: Operand::Const(1),
                by_ref: true,
            }],
            dst: None,
        });
        let errs = validate(&p).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("must be a variable")));
    }

    #[test]
    fn function_bare_return_rejected() {
        let mut p = valid_main();
        let f = Procedure::new("f", ProcKind::Function);
        p.procs.push(f);
        let errs = validate(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("without a value")));
    }

    #[test]
    fn error_display() {
        let e = ValidateError {
            proc: Some(ProcId(1)),
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "in p1: boom");
        let e = ValidateError {
            proc: None,
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "boom");
    }
}
