//! Lowering from the checked AST to the IR.
//!
//! Key correspondences with the AST semantics (see `ipcp_lang::ast`):
//!
//! * `do` loops freeze their bound and step into temporaries (evaluated
//!   once, in source order `from`, `to`, `step`), then lower to a
//!   `while`-shaped CFG; a zero step reaches a [`Terminator::Trap`].
//!   When the step is a literal the direction test is lowered directly;
//!   otherwise a composite sign-dependent condition is built.
//! * Only bare variable names whose type matches the formal exactly are
//!   passed by reference; all other actuals are by value (with an
//!   [`Instr::IntToReal`] conversion when a real formal receives an
//!   integer).
//! * Statements after a `return` in the same block land in an unreachable
//!   block that still gets a valid terminator.

use crate::ids::{GlobalId, ProcId, VarId};
use crate::instr::{CallArg, Instr, Operand, Terminator, TrapKind};
use crate::procedure::{Block, Procedure, VarDecl, VarKind};
use crate::program::{GlobalVar, Program};
use ipcp_lang::ast::{
    self, Base, BinOp, Expr, ExprKind, LValueKind, ProcKind, Stmt, StmtKind, Ty, UnOp,
};
use ipcp_lang::typeck::{CheckedProgram, ProcInfo, VarOrigin};
use std::collections::HashMap;

/// Lowers a checked program to IR.
///
/// # Panics
///
/// Panics on malformed input that the type checker is guaranteed to
/// reject; feeding an unchecked AST through this function is a bug.
pub fn lower(checked: &CheckedProgram) -> Program {
    let globals: Vec<GlobalVar> = checked
        .program
        .globals
        .iter()
        .map(|g| GlobalVar {
            name: g.name.clone(),
            ty: g.ty,
            init: g.init,
        })
        .collect();

    let proc_ids: HashMap<&str, ProcId> = checked
        .program
        .procs
        .iter()
        .enumerate()
        .map(|(i, p)| (p.name.as_str(), ProcId::from_index(i)))
        .collect();

    let mut procs = Vec::with_capacity(checked.program.procs.len());
    for (idx, ast_proc) in checked.program.procs.iter().enumerate() {
        let info = &checked.proc_info[idx];
        procs.push(lower_proc(checked, ast_proc, info, &proc_ids));
    }

    let main = checked
        .program
        .procs
        .iter()
        .position(|p| p.kind == ProcKind::Main)
        .map(ProcId::from_index)
        .expect("checked program has main");

    Program {
        globals,
        procs,
        main,
    }
}

fn lower_proc(
    checked: &CheckedProgram,
    ast_proc: &ast::Proc,
    info: &ProcInfo,
    proc_ids: &HashMap<&str, ProcId>,
) -> Procedure {
    let mut proc = Procedure::new(ast_proc.name.clone(), ast_proc.kind);
    proc.num_formals = ast_proc.params.len() as u32;
    for var in &info.vars {
        let kind = match var.origin {
            VarOrigin::Param(i) => VarKind::Formal(i),
            VarOrigin::Global(g) => VarKind::Global(GlobalId(g)),
            VarOrigin::Local => VarKind::Local,
        };
        proc.add_var(VarDecl {
            name: var.name.clone(),
            ty: var.ty,
            kind,
        });
    }

    let mut lowerer = Lowerer {
        checked,
        info,
        proc_ids,
        proc,
        current: crate::ids::ENTRY_BLOCK,
    };
    lowerer.lower_body(&ast_proc.body);

    // Implicit return at the end of the body.
    let ret = match ast_proc.kind {
        ProcKind::Function => Terminator::Return(Some(Operand::Const(0))),
        _ => Terminator::Return(None),
    };
    lowerer.set_term(ret);
    lowerer.proc
}

struct Lowerer<'a> {
    checked: &'a CheckedProgram,
    info: &'a ProcInfo,
    proc_ids: &'a HashMap<&'a str, ProcId>,
    proc: Procedure,
    current: crate::ids::BlockId,
}

impl Lowerer<'_> {
    // ---- plumbing ------------------------------------------------------

    fn emit(&mut self, instr: Instr) {
        self.proc.block_mut(self.current).instrs.push(instr);
    }

    fn new_block(&mut self) -> crate::ids::BlockId {
        self.proc.add_block(Block::new(Terminator::Return(None)))
    }

    fn set_term(&mut self, term: Terminator) {
        self.proc.block_mut(self.current).term = term;
    }

    fn new_temp(&mut self, base: Base) -> VarId {
        let n = self.proc.vars.len();
        self.proc.add_var(VarDecl {
            name: format!("%t{n}"),
            ty: Ty {
                base,
                shape: ast::Shape::Scalar,
            },
            kind: VarKind::Temp,
        })
    }

    /// Variable id for a resolved name (same index as the checked symbol
    /// table).
    fn var_of(&self, name: &str) -> VarId {
        VarId::from_index(
            *self
                .info
                .by_name
                .get(name)
                .unwrap_or_else(|| panic!("unresolved variable `{name}`")),
        )
    }

    fn var_base(&self, v: VarId) -> Base {
        self.proc.var(v).ty.base
    }

    /// Converts an integer-typed operand to a real-typed one.
    fn coerce_real(&mut self, op: Operand) -> Operand {
        match op {
            Operand::Const(c) => Operand::RealConst(c as f64),
            Operand::RealConst(_) => op,
            Operand::Var(v) => {
                if self.var_base(v) == Base::Real {
                    op
                } else {
                    let t = self.new_temp(Base::Real);
                    self.emit(Instr::IntToReal { dst: t, src: op });
                    Operand::Var(t)
                }
            }
        }
    }

    fn operand_base(&self, op: Operand) -> Base {
        match op {
            Operand::Const(_) => Base::Int,
            Operand::RealConst(_) => Base::Real,
            Operand::Var(v) => self.var_base(v),
        }
    }

    // ---- statements ----------------------------------------------------

    fn lower_body(&mut self, body: &[Stmt]) {
        for stmt in body {
            self.lower_stmt(stmt);
        }
    }

    fn lower_stmt(&mut self, stmt: &Stmt) {
        match &stmt.kind {
            StmtKind::Assign { target, value } => match &target.kind {
                LValueKind::Scalar(name) => {
                    let dst = self.var_of(name);
                    self.lower_expr_into(dst, value);
                }
                LValueKind::Element(name, idx) => {
                    let arr = self.var_of(name);
                    let index = self.lower_expr(idx);
                    let mut v = self.lower_expr(value);
                    if self.var_base(arr) == Base::Real {
                        v = self.coerce_real(v);
                    }
                    self.emit(Instr::Store {
                        arr,
                        index,
                        value: v,
                    });
                }
            },
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let c = self.lower_expr(cond);
                let then_bb = self.new_block();
                let else_bb = self.new_block();
                let join = self.new_block();
                self.set_term(Terminator::Branch {
                    cond: c,
                    then_bb,
                    else_bb,
                });

                self.current = then_bb;
                self.lower_body(then_blk);
                self.set_term(Terminator::Jump(join));

                self.current = else_bb;
                self.lower_body(else_blk);
                self.set_term(Terminator::Jump(join));

                self.current = join;
            }
            StmtKind::While { cond, body } => {
                let header = self.new_block();
                self.set_term(Terminator::Jump(header));

                self.current = header;
                let c = self.lower_expr(cond);
                let body_bb = self.new_block();
                let exit = self.new_block();
                self.set_term(Terminator::Branch {
                    cond: c,
                    then_bb: body_bb,
                    else_bb: exit,
                });

                self.current = body_bb;
                self.lower_body(body);
                self.set_term(Terminator::Jump(header));

                self.current = exit;
            }
            StmtKind::Do {
                var,
                from,
                to,
                step,
                body,
            } => {
                self.lower_do(var, from, to, step.as_ref(), body);
            }
            StmtKind::Call { name, args } => {
                self.lower_call(name, args, None);
            }
            StmtKind::Return { value } => {
                let term = match value {
                    Some(e) => {
                        let op = self.lower_expr(e);
                        Terminator::Return(Some(op))
                    }
                    None => Terminator::Return(None),
                };
                self.set_term(term);
                // Anything following in this statement list is unreachable;
                // give it a fresh block so lowering can continue.
                self.current = self.new_block();
            }
            StmtKind::Read { target } => match &target.kind {
                LValueKind::Scalar(name) => {
                    let dst = self.var_of(name);
                    self.emit(Instr::Read { dst });
                }
                LValueKind::Element(name, idx) => {
                    let arr = self.var_of(name);
                    let index = self.lower_expr(idx);
                    let t = self.new_temp(self.var_base(arr));
                    self.emit(Instr::Read { dst: t });
                    self.emit(Instr::Store {
                        arr,
                        index,
                        value: Operand::Var(t),
                    });
                }
            },
            StmtKind::Print { value } => {
                let v = self.lower_expr(value);
                self.emit(Instr::Print { value: v });
            }
        }
    }

    /// Freezes an operand that may change during the loop into a
    /// temporary; constants and single-assignment temporaries pass through.
    fn freeze(&mut self, op: Operand) -> Operand {
        match op {
            Operand::Var(v) if self.proc.var(v).kind != VarKind::Temp => {
                let t = self.new_temp(self.var_base(v));
                self.emit(Instr::Copy { dst: t, src: op });
                Operand::Var(t)
            }
            _ => op,
        }
    }

    fn lower_do(&mut self, var: &str, from: &Expr, to: &Expr, step: Option<&Expr>, body: &[Stmt]) {
        let v = self.var_of(var);
        // Evaluate in source order, then initialize the loop variable.
        let from_op = {
            let op = self.lower_expr(from);
            self.freeze(op)
        };
        let to_op = {
            let op = self.lower_expr(to);
            self.freeze(op)
        };
        let step_op = match step {
            Some(e) => {
                let op = self.lower_expr(e);
                self.freeze(op)
            }
            None => Operand::Const(1),
        };
        self.emit(Instr::Copy {
            dst: v,
            src: from_op,
        });

        // Zero-step check.
        let const_step = step_op.as_const();
        if const_step == Some(0) {
            self.set_term(Terminator::Trap(TrapKind::ZeroStep));
            self.current = self.new_block();
            return;
        }
        if const_step.is_none() {
            let is_zero = self.new_temp(Base::Int);
            self.emit(Instr::Binary {
                dst: is_zero,
                op: BinOp::Eq,
                lhs: step_op,
                rhs: Operand::Const(0),
            });
            let trap_bb = self.new_block();
            let cont = self.new_block();
            self.set_term(Terminator::Branch {
                cond: Operand::Var(is_zero),
                then_bb: trap_bb,
                else_bb: cont,
            });
            self.proc.block_mut(trap_bb).term = Terminator::Trap(TrapKind::ZeroStep);
            self.current = cont;
        }

        let header = self.new_block();
        self.set_term(Terminator::Jump(header));
        self.current = header;

        // Continuation condition.
        let cond = match const_step {
            Some(c) if c > 0 => {
                let t = self.new_temp(Base::Int);
                self.emit(Instr::Binary {
                    dst: t,
                    op: BinOp::Le,
                    lhs: Operand::Var(v),
                    rhs: to_op,
                });
                Operand::Var(t)
            }
            Some(_) => {
                let t = self.new_temp(Base::Int);
                self.emit(Instr::Binary {
                    dst: t,
                    op: BinOp::Ge,
                    lhs: Operand::Var(v),
                    rhs: to_op,
                });
                Operand::Var(t)
            }
            None => {
                // (step > 0 and v <= to) or (step < 0 and v >= to)
                let pos = self.new_temp(Base::Int);
                self.emit(Instr::Binary {
                    dst: pos,
                    op: BinOp::Gt,
                    lhs: step_op,
                    rhs: Operand::Const(0),
                });
                let le = self.new_temp(Base::Int);
                self.emit(Instr::Binary {
                    dst: le,
                    op: BinOp::Le,
                    lhs: Operand::Var(v),
                    rhs: to_op,
                });
                let up = self.new_temp(Base::Int);
                self.emit(Instr::Binary {
                    dst: up,
                    op: BinOp::And,
                    lhs: Operand::Var(pos),
                    rhs: Operand::Var(le),
                });
                let neg = self.new_temp(Base::Int);
                self.emit(Instr::Binary {
                    dst: neg,
                    op: BinOp::Lt,
                    lhs: step_op,
                    rhs: Operand::Const(0),
                });
                let ge = self.new_temp(Base::Int);
                self.emit(Instr::Binary {
                    dst: ge,
                    op: BinOp::Ge,
                    lhs: Operand::Var(v),
                    rhs: to_op,
                });
                let down = self.new_temp(Base::Int);
                self.emit(Instr::Binary {
                    dst: down,
                    op: BinOp::And,
                    lhs: Operand::Var(neg),
                    rhs: Operand::Var(ge),
                });
                let cond = self.new_temp(Base::Int);
                self.emit(Instr::Binary {
                    dst: cond,
                    op: BinOp::Or,
                    lhs: Operand::Var(up),
                    rhs: Operand::Var(down),
                });
                Operand::Var(cond)
            }
        };

        let body_bb = self.new_block();
        let exit = self.new_block();
        self.set_term(Terminator::Branch {
            cond,
            then_bb: body_bb,
            else_bb: exit,
        });

        self.current = body_bb;
        self.lower_body(body);
        self.emit(Instr::Binary {
            dst: v,
            op: BinOp::Add,
            lhs: Operand::Var(v),
            rhs: step_op,
        });
        self.set_term(Terminator::Jump(header));

        self.current = exit;
    }

    // ---- calls ----------------------------------------------------------

    fn lower_call(&mut self, name: &str, args: &[Expr], dst: Option<VarId>) {
        let callee = *self.proc_ids.get(name).expect("resolved callee");
        let callee_ast = &self.checked.program.procs[callee.index()];
        let formal_tys: Vec<Ty> = callee_ast.params.iter().map(|p| p.ty).collect();
        let mut call_args = Vec::with_capacity(args.len());
        for (arg, &formal) in args.iter().zip(formal_tys.iter()) {
            call_args.push(self.lower_arg(arg, formal));
        }
        self.emit(Instr::Call {
            callee,
            args: call_args,
            dst,
        });
    }

    fn lower_arg(&mut self, arg: &Expr, formal: Ty) -> CallArg {
        if let ExprKind::Name(name) = &arg.kind {
            let v = self.var_of(name);
            let actual_ty = self.proc.var(v).ty;
            let compatible =
                actual_ty.base == formal.base && (actual_ty.is_array() == formal.is_array());
            if compatible {
                return CallArg::by_ref(v);
            }
        }
        let mut op = self.lower_expr(arg);
        if formal.base == Base::Real && self.operand_base(op) == Base::Int {
            op = self.coerce_real(op);
        }
        CallArg::by_value(op)
    }

    // ---- expressions ----------------------------------------------------

    /// Lowers `expr` directly into `dst` when possible, avoiding a
    /// temporary-plus-copy.
    fn lower_expr_into(&mut self, dst: VarId, expr: &Expr) {
        let dst_base = self.var_base(dst);
        match &expr.kind {
            ExprKind::Binary(op, lhs, rhs) => {
                let (l, r, result_base) = self.lower_binop_operands(*op, lhs, rhs);
                if result_base == dst_base {
                    self.emit(Instr::Binary {
                        dst,
                        op: *op,
                        lhs: l,
                        rhs: r,
                    });
                } else {
                    debug_assert_eq!(dst_base, Base::Real);
                    let t = self.new_temp(result_base);
                    self.emit(Instr::Binary {
                        dst: t,
                        op: *op,
                        lhs: l,
                        rhs: r,
                    });
                    self.emit(Instr::IntToReal {
                        dst,
                        src: Operand::Var(t),
                    });
                }
            }
            ExprKind::Unary(op, operand) => {
                let src = self.lower_expr(operand);
                let src_base = self.operand_base(src);
                if src_base == dst_base {
                    self.emit(Instr::Unary { dst, op: *op, src });
                } else {
                    debug_assert_eq!((dst_base, *op), (Base::Real, UnOp::Neg));
                    let t = self.new_temp(src_base);
                    self.emit(Instr::Unary {
                        dst: t,
                        op: *op,
                        src,
                    });
                    self.emit(Instr::IntToReal {
                        dst,
                        src: Operand::Var(t),
                    });
                }
            }
            ExprKind::Index(name, idx) => {
                let arr = self.var_of(name);
                let index = self.lower_expr(idx);
                if self.var_base(arr) == dst_base {
                    self.emit(Instr::Load { dst, arr, index });
                } else {
                    let t = self.new_temp(self.var_base(arr));
                    self.emit(Instr::Load { dst: t, arr, index });
                    self.emit(Instr::IntToReal {
                        dst,
                        src: Operand::Var(t),
                    });
                }
            }
            ExprKind::CallFn(name, args) => {
                if dst_base == Base::Int {
                    let args_vec: Vec<Expr> = args.clone();
                    self.lower_call(name, &args_vec, Some(dst));
                } else {
                    let t = self.new_temp(Base::Int);
                    let args_vec: Vec<Expr> = args.clone();
                    self.lower_call(name, &args_vec, Some(t));
                    self.emit(Instr::IntToReal {
                        dst,
                        src: Operand::Var(t),
                    });
                }
            }
            _ => {
                let op = self.lower_expr(expr);
                if self.operand_base(op) == dst_base {
                    self.emit(Instr::Copy { dst, src: op });
                } else {
                    debug_assert_eq!(dst_base, Base::Real);
                    let src = self.coerce_real(op);
                    self.emit(Instr::Copy { dst, src });
                }
            }
        }
    }

    /// Lowers both operands of a binary op, inserting promotions, and
    /// returns them plus the result base type.
    fn lower_binop_operands(
        &mut self,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
    ) -> (Operand, Operand, Base) {
        let mut l = self.lower_expr(lhs);
        let mut r = self.lower_expr(rhs);
        let any_real = self.operand_base(l) == Base::Real || self.operand_base(r) == Base::Real;
        if any_real {
            l = self.coerce_real(l);
            r = self.coerce_real(r);
        }
        let result_base = if any_real && op.is_arithmetic() {
            Base::Real
        } else {
            Base::Int
        };
        (l, r, result_base)
    }

    fn lower_expr(&mut self, expr: &Expr) -> Operand {
        match &expr.kind {
            ExprKind::IntLit(v) => Operand::Const(*v),
            ExprKind::RealLit(v) => Operand::RealConst(*v),
            ExprKind::Name(name) => Operand::Var(self.var_of(name)),
            ExprKind::Index(name, idx) => {
                let arr = self.var_of(name);
                let index = self.lower_expr(idx);
                let t = self.new_temp(self.var_base(arr));
                self.emit(Instr::Load { dst: t, arr, index });
                Operand::Var(t)
            }
            ExprKind::CallFn(name, args) => {
                let t = self.new_temp(Base::Int);
                let args_vec: Vec<Expr> = args.clone();
                self.lower_call(name, &args_vec, Some(t));
                Operand::Var(t)
            }
            ExprKind::Unary(op, operand) => {
                let src = self.lower_expr(operand);
                let base = self.operand_base(src);
                let t = self.new_temp(base);
                self.emit(Instr::Unary {
                    dst: t,
                    op: *op,
                    src,
                });
                Operand::Var(t)
            }
            ExprKind::Binary(op, lhs, rhs) => {
                let (l, r, result_base) = self.lower_binop_operands(*op, lhs, rhs);
                let t = self.new_temp(result_base);
                self.emit(Instr::Binary {
                    dst: t,
                    op: *op,
                    lhs: l,
                    rhs: r,
                });
                Operand::Var(t)
            }
            ExprKind::NameArgs(..) => unreachable!("checked AST has no NameArgs"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcp_lang::compile;

    fn lower_src(src: &str) -> Program {
        lower(&compile(src).expect("compiles"))
    }

    #[test]
    fn minimal_main() {
        let p = lower_src("main\nend\n");
        assert_eq!(p.procs.len(), 1);
        assert_eq!(p.main, ProcId(0));
        let main = p.proc(p.main);
        assert_eq!(main.blocks.len(), 1);
        assert_eq!(main.block(main.entry()).term, Terminator::Return(None));
    }

    #[test]
    fn assign_lowering_is_direct() {
        let p = lower_src("main\nx = y + 1\nend\n");
        let main = p.proc(p.main);
        // One Binary straight into x; no temp copy.
        assert_eq!(main.instr_count(), 1);
        match &main.block(main.entry()).instrs[0] {
            Instr::Binary { op: BinOp::Add, .. } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn if_creates_diamond() {
        let p = lower_src("main\nif x then\ny = 1\nelse\ny = 2\nend\nz = y\nend\n");
        let main = p.proc(p.main);
        assert_eq!(main.blocks.len(), 4); // entry, then, else, join
        assert!(matches!(
            main.block(main.entry()).term,
            Terminator::Branch { .. }
        ));
    }

    #[test]
    fn while_creates_loop() {
        let p = lower_src("main\nwhile x < 3 do\nx = x + 1\nend\nend\n");
        let main = p.proc(p.main);
        // entry, header, body, exit
        assert_eq!(main.blocks.len(), 4);
        let preds = main.predecessors();
        // Header has two predecessors: entry and body.
        let header = 1;
        assert_eq!(preds[header].len(), 2);
    }

    #[test]
    fn do_constant_step_has_simple_condition() {
        let p = lower_src("main\ndo i = 1, 10\ns = s + i\nend\nend\n");
        let main = p.proc(p.main);
        // No trap blocks for a literal non-zero step.
        assert!(main
            .blocks
            .iter()
            .all(|b| !matches!(b.term, Terminator::Trap(_))));
        // Header condition is a single Le.
        let le_count = main
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i, Instr::Binary { op: BinOp::Le, .. }))
            .count();
        assert_eq!(le_count, 1);
    }

    #[test]
    fn do_negative_literal_step_uses_ge() {
        let p = lower_src("main\ndo i = 10, 1, -2\ns = s + i\nend\nend\n");
        let main = p.proc(p.main);
        let ge_count = main
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i, Instr::Binary { op: BinOp::Ge, .. }))
            .count();
        assert_eq!(ge_count, 1);
    }

    #[test]
    fn do_variable_step_emits_trap_check() {
        let p = lower_src("main\nread(k)\ndo i = 1, 10, k\ns = s + i\nend\nend\n");
        let main = p.proc(p.main);
        assert!(main
            .blocks
            .iter()
            .any(|b| matches!(b.term, Terminator::Trap(TrapKind::ZeroStep))));
    }

    #[test]
    fn do_zero_literal_step_traps_immediately() {
        let p = lower_src("main\ndo i = 1, 10, 0\ns = s + i\nend\nend\n");
        let main = p.proc(p.main);
        assert!(matches!(
            main.block(main.entry()).term,
            Terminator::Trap(TrapKind::ZeroStep)
        ));
    }

    #[test]
    fn by_ref_vs_by_value_args() {
        let p = lower_src("proc f(a, b, real r, v())\nend\nmain\ninteger arr(5)\nx = 1\ncall f(x, x + 1, x, arr)\nend\n");
        let main = p.proc(p.main);
        let call = main
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .find_map(|i| match i {
                Instr::Call { args, .. } => Some(args.clone()),
                _ => None,
            })
            .expect("has call");
        assert!(call[0].by_ref, "bare matching scalar is by-ref");
        assert!(!call[1].by_ref, "expression is by-value");
        assert!(!call[2].by_ref, "int actual for real formal is by-value");
        assert!(call[3].by_ref, "whole array is by-ref");
    }

    #[test]
    fn global_vars_in_table() {
        let p = lower_src("global g = 2\nmain\nx = g\nend\n");
        assert_eq!(p.globals.len(), 1);
        assert_eq!(p.globals[0].init, Some(2));
        let main = p.proc(p.main);
        assert!(main
            .vars
            .iter()
            .any(|v| v.kind == VarKind::Global(GlobalId(0))));
    }

    #[test]
    fn function_implicit_return_zero() {
        let p = lower_src("func f(x)\nif x then\nreturn 1\nend\nend\nmain\ny = f(0)\nend\n");
        let f = p.proc(p.proc_by_name("f").unwrap());
        let returns: Vec<_> = f
            .blocks
            .iter()
            .filter_map(|b| match &b.term {
                Terminator::Return(v) => Some(*v),
                _ => None,
            })
            .collect();
        assert!(returns.contains(&Some(Operand::Const(1))));
        assert!(returns.contains(&Some(Operand::Const(0))));
    }

    #[test]
    fn statements_after_return_are_isolated() {
        let p = lower_src("proc f()\nreturn\nx = 1\nend\nmain\ncall f()\nend\n");
        let f = p.proc(p.proc_by_name("f").unwrap());
        // Entry returns; the dead statement lives in a separate block.
        assert_eq!(f.block(f.entry()).term, Terminator::Return(None));
        assert!(f.blocks.len() >= 2);
    }

    #[test]
    fn read_into_element_goes_through_temp() {
        let p = lower_src("main\ninteger a(4)\nread(a(2))\nend\n");
        let main = p.proc(p.main);
        let instrs = &main.block(main.entry()).instrs;
        assert!(matches!(instrs[0], Instr::Read { .. }));
        assert!(matches!(instrs[1], Instr::Store { .. }));
    }

    #[test]
    fn mixed_arithmetic_promotes() {
        let p = lower_src("main\nreal r\nr = r + 1\nend\n");
        let main = p.proc(p.main);
        // `1` becomes a RealConst, no conversion instruction needed.
        let has_real_const = main.blocks.iter().flat_map(|b| &b.instrs).any(|i| {
            matches!(
                i,
                Instr::Binary {
                    rhs: Operand::RealConst(_),
                    ..
                }
            )
        });
        assert!(has_real_const);
    }

    #[test]
    fn int_var_to_real_promotes_with_conversion() {
        let p = lower_src("main\nreal r\nx = 1\nr = x + 0.5\nend\n");
        let main = p.proc(p.main);
        assert!(main
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .any(|i| matches!(i, Instr::IntToReal { .. })));
    }

    #[test]
    fn do_bounds_frozen() {
        // `n` is modified inside the body, but the bound uses the frozen copy.
        let p = lower_src("main\nn = 3\ndo i = 1, n\nn = 100\nend\nend\n");
        let main = p.proc(p.main);
        // There must be a Copy freezing n into a temp before the loop.
        let freeze_count = main
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i, Instr::Copy { .. }))
            .count();
        assert!(freeze_count >= 2, "from-init plus frozen bound");
    }
}
