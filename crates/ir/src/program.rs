//! Whole-program IR container.

use crate::ids::{GlobalId, ProcId};
use crate::procedure::Procedure;
use ipcp_lang::ast::Ty;

/// A program-level global variable.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalVar {
    /// Source name.
    pub name: String,
    /// Variable type.
    pub ty: Ty,
    /// Compile-time initializer for integer scalars; `None` means
    /// zero-initialized at run time but *unknown* (⊥) to the analysis,
    /// matching FORTRAN's undefined initial values.
    pub init: Option<i64>,
}

/// A whole program in IR form.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Global variables, indexable by [`GlobalId`].
    pub globals: Vec<GlobalVar>,
    /// Procedures, indexable by [`ProcId`].
    pub procs: Vec<Procedure>,
    /// The entry procedure.
    pub main: ProcId,
}

impl Program {
    /// The procedure with id `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn proc(&self, p: ProcId) -> &Procedure {
        &self.procs[p.index()]
    }

    /// Mutable access to procedure `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn proc_mut(&mut self, p: ProcId) -> &mut Procedure {
        &mut self.procs[p.index()]
    }

    /// The global with id `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn global(&self, g: GlobalId) -> &GlobalVar {
        &self.globals[g.index()]
    }

    /// Iterator over all procedure ids.
    pub fn proc_ids(&self) -> impl Iterator<Item = ProcId> + '_ {
        (0..self.procs.len()).map(ProcId::from_index)
    }

    /// Iterator over all global ids.
    pub fn global_ids(&self) -> impl Iterator<Item = GlobalId> + '_ {
        (0..self.globals.len()).map(GlobalId::from_index)
    }

    /// Finds a procedure id by name.
    pub fn proc_by_name(&self, name: &str) -> Option<ProcId> {
        self.procs
            .iter()
            .position(|p| p.name == name)
            .map(ProcId::from_index)
    }

    /// Total instruction count across all procedures.
    pub fn instr_count(&self) -> usize {
        self.procs.iter().map(Procedure::instr_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcp_lang::ast::ProcKind;

    #[test]
    fn lookups() {
        let program = Program {
            globals: vec![GlobalVar {
                name: "n".into(),
                ty: Ty::INT,
                init: Some(4),
            }],
            procs: vec![Procedure::new("main", ProcKind::Main)],
            main: ProcId(0),
        };
        assert_eq!(program.proc(ProcId(0)).name, "main");
        assert_eq!(program.global(GlobalId(0)).init, Some(4));
        assert_eq!(program.proc_by_name("main"), Some(ProcId(0)));
        assert_eq!(program.proc_by_name("nope"), None);
        assert_eq!(program.proc_ids().count(), 1);
        assert_eq!(program.global_ids().count(), 1);
        assert_eq!(program.instr_count(), 0);
    }
}
