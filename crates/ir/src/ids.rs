//! Typed index newtypes for the IR.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// The underlying index.
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a `usize` index.
            ///
            /// # Panics
            ///
            /// Panics if `index` exceeds `u32::MAX`.
            pub fn from_index(index: usize) -> Self {
                assert!(index <= u32::MAX as usize, "id overflow");
                $name(index as u32)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a procedure within a [`crate::Program`].
    ProcId,
    "p"
);
id_type!(
    /// Identifies a basic block within a [`crate::Procedure`].
    BlockId,
    "b"
);
id_type!(
    /// Identifies a variable within a [`crate::Procedure`]'s variable table.
    VarId,
    "v"
);
id_type!(
    /// Identifies a global variable within a [`crate::Program`].
    GlobalId,
    "g"
);

/// The entry block of every procedure.
pub const ENTRY_BLOCK: BlockId = BlockId(0);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefixes() {
        assert_eq!(ProcId(3).to_string(), "p3");
        assert_eq!(BlockId(0).to_string(), "b0");
        assert_eq!(VarId(7).to_string(), "v7");
        assert_eq!(GlobalId(1).to_string(), "g1");
    }

    #[test]
    fn index_roundtrip() {
        assert_eq!(VarId::from_index(5).index(), 5);
        assert_eq!(BlockId::from_index(0), ENTRY_BLOCK);
    }

    #[test]
    #[should_panic(expected = "id overflow")]
    fn overflow_panics() {
        let _ = VarId::from_index(u32::MAX as usize + 1);
    }

    #[test]
    fn ordering() {
        assert!(VarId(1) < VarId(2));
    }
}
