//! Content fingerprints over IR values.
//!
//! The analysis session (`ipcp-core`) keys cached artifacts by *what the
//! phase actually read*: a procedure's own IR, the IR of its transitive
//! callees, and the handful of configuration facets the phase consults.
//! The IR side of those keys is a 64-bit FNV-1a hash of the value's
//! `Debug` rendering — deterministic within a process, allocation-free
//! (the hasher implements [`fmt::Write`] and consumes the formatter's
//! output directly), and sensitive to every structural detail the
//! derived `Debug` impls expose, which for this IR is the entire value.
//!
//! These fingerprints are *cache keys*, not cryptographic digests: a
//! collision costs a stale artifact, so the 64-bit space is only
//! acceptable because session stores hold at most thousands of entries.

use std::fmt::{self, Write};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a hasher usable as a [`fmt::Write`] sink.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(FNV_OFFSET)
    }
}

impl Fnv1a {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` (little-endian), e.g. another fingerprint.
    pub fn write_u64(&mut self, value: u64) {
        self.write_bytes(&value.to_le_bytes());
    }

    /// The digest accumulated so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Write for Fnv1a {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.write_bytes(s.as_bytes());
        Ok(())
    }
}

/// Fingerprints any `Debug` value by streaming its rendering through
/// FNV-1a, without materializing the string.
pub fn fingerprint_debug<T: fmt::Debug + ?Sized>(value: &T) -> u64 {
    let mut hasher = Fnv1a::new();
    // Writing into an FNV sink cannot fail.
    let _ = write!(hasher, "{value:?}");
    hasher.finish()
}

/// Folds already-computed fingerprints (order-sensitive) into one.
pub fn combine(parts: impl IntoIterator<Item = u64>) -> u64 {
    let mut hasher = Fnv1a::new();
    for part in parts {
        hasher.write_u64(part);
    }
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_input_sensitive() {
        assert_eq!(fingerprint_debug("abc"), fingerprint_debug("abc"));
        assert_ne!(fingerprint_debug("abc"), fingerprint_debug("abd"));
        assert_ne!(fingerprint_debug(&1u32), fingerprint_debug(&2u32));
    }

    #[test]
    fn streaming_matches_string_hash() {
        let value = vec![1u8, 2, 3];
        let rendered = format!("{value:?}");
        let mut h = Fnv1a::new();
        h.write_bytes(rendered.as_bytes());
        assert_eq!(fingerprint_debug(&value), h.finish());
    }

    #[test]
    fn combine_is_order_sensitive() {
        assert_eq!(combine([1, 2, 3]), combine([1, 2, 3]));
        assert_ne!(combine([1, 2, 3]), combine([3, 2, 1]));
        assert_ne!(combine([]), combine([0]));
    }

    #[test]
    fn program_fingerprints_track_edits() {
        let a = crate::compile_to_ir("main\nx = 1\nprint(x)\nend\n").unwrap();
        let b = crate::compile_to_ir("main\nx = 2\nprint(x)\nend\n").unwrap();
        assert_eq!(fingerprint_debug(&a), fingerprint_debug(&a.clone()));
        assert_ne!(fingerprint_debug(&a), fingerprint_debug(&b));
    }
}
