//! Per-procedure IR: variable tables and basic blocks.

use crate::ids::{BlockId, GlobalId, VarId, ENTRY_BLOCK};
use crate::instr::{Instr, Terminator};
pub use ipcp_lang::ast::{ProcKind, Ty};

/// How a variable entered the procedure's variable table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// The `i`-th formal parameter (0-based).
    Formal(u32),
    /// A reference to the program-level global `g`, routed through the
    /// procedure's table so the analyses treat it like an extra parameter
    /// (the paper's footnote 1).
    Global(GlobalId),
    /// A named local (declared or implicit).
    Local,
    /// A compiler-introduced temporary.
    Temp,
}

impl VarKind {
    /// True for formals.
    pub fn is_formal(self) -> bool {
        matches!(self, VarKind::Formal(_))
    }

    /// True for globals.
    pub fn is_global(self) -> bool {
        matches!(self, VarKind::Global(_))
    }
}

/// A variable table entry.
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// Source name (synthesized for temporaries).
    pub name: String,
    /// Variable type.
    pub ty: Ty,
    /// Formal / global / local / temp.
    pub kind: VarKind,
}

/// A basic block: straight-line instructions plus a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Instructions, in execution order.
    pub instrs: Vec<Instr>,
    /// Control transfer out of the block.
    pub term: Terminator,
}

impl Block {
    /// An empty block ending in `term`.
    pub fn new(term: Terminator) -> Self {
        Block {
            instrs: Vec::new(),
            term,
        }
    }
}

/// A procedure in IR form.
#[derive(Debug, Clone, PartialEq)]
pub struct Procedure {
    /// Source name.
    pub name: String,
    /// Subroutine / function / main.
    pub kind: ProcKind,
    /// Variable table; the first [`Procedure::num_formals`] entries are the
    /// formals, in declaration order.
    pub vars: Vec<VarDecl>,
    /// Number of formal parameters.
    pub num_formals: u32,
    /// Basic blocks; [`ENTRY_BLOCK`] is the entry.
    pub blocks: Vec<Block>,
}

impl Procedure {
    /// Creates an empty procedure with a lone `return` block.
    pub fn new(name: impl Into<String>, kind: ProcKind) -> Self {
        Procedure {
            name: name.into(),
            kind,
            vars: Vec::new(),
            num_formals: 0,
            blocks: vec![Block::new(Terminator::Return(None))],
        }
    }

    /// Adds a variable and returns its id.
    pub fn add_var(&mut self, decl: VarDecl) -> VarId {
        let id = VarId::from_index(self.vars.len());
        self.vars.push(decl);
        id
    }

    /// Adds a block and returns its id.
    pub fn add_block(&mut self, block: Block) -> BlockId {
        let id = BlockId::from_index(self.blocks.len());
        self.blocks.push(block);
        id
    }

    /// The block with id `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.index()]
    }

    /// Mutable access to block `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn block_mut(&mut self, b: BlockId) -> &mut Block {
        &mut self.blocks[b.index()]
    }

    /// The variable declaration for `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn var(&self, v: VarId) -> &VarDecl {
        &self.vars[v.index()]
    }

    /// Iterator over all block ids.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len()).map(BlockId::from_index)
    }

    /// Iterator over all variable ids.
    pub fn var_ids(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.vars.len()).map(VarId::from_index)
    }

    /// Ids of the formal parameters, in order.
    pub fn formal_ids(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.num_formals as usize).map(VarId::from_index)
    }

    /// Computes the predecessor lists of every block.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for b in self.block_ids() {
            for s in self.block(b).term.successors() {
                preds[s.index()].push(b);
            }
        }
        preds
    }

    /// Total number of instructions (excluding terminators).
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }

    /// The entry block id (always [`ENTRY_BLOCK`]).
    pub fn entry(&self) -> BlockId {
        ENTRY_BLOCK
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Operand;
    use ipcp_lang::ast::ProcKind;

    fn sample() -> Procedure {
        let mut p = Procedure::new("f", ProcKind::Subroutine);
        let x = p.add_var(VarDecl {
            name: "x".into(),
            ty: Ty::INT,
            kind: VarKind::Formal(0),
        });
        p.num_formals = 1;
        let b1 = p.add_block(Block::new(Terminator::Return(None)));
        let b2 = p.add_block(Block::new(Terminator::Jump(b1)));
        p.block_mut(ENTRY_BLOCK).term = Terminator::Branch {
            cond: Operand::Var(x),
            then_bb: b1,
            else_bb: b2,
        };
        p
    }

    #[test]
    fn predecessors_computed() {
        let p = sample();
        let preds = p.predecessors();
        assert_eq!(preds[0], vec![]);
        assert_eq!(preds[1], vec![BlockId(0), BlockId(2)]);
        assert_eq!(preds[2], vec![BlockId(0)]);
    }

    #[test]
    fn var_and_block_access() {
        let p = sample();
        assert_eq!(p.var(VarId(0)).name, "x");
        assert_eq!(p.block_ids().count(), 3);
        assert_eq!(p.var_ids().count(), 1);
        assert_eq!(p.formal_ids().collect::<Vec<_>>(), vec![VarId(0)]);
        assert_eq!(p.instr_count(), 0);
        assert_eq!(p.entry(), ENTRY_BLOCK);
    }

    #[test]
    fn kind_predicates() {
        assert!(VarKind::Formal(0).is_formal());
        assert!(!VarKind::Formal(0).is_global());
        assert!(VarKind::Global(GlobalId(1)).is_global());
        assert!(!VarKind::Local.is_formal());
    }
}
