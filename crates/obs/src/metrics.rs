//! Prometheus-style text exposition of a trace snapshot.
//!
//! Renders counters and per-phase self times in the [text exposition
//! format] (`# HELP`/`# TYPE` preambles, `snake_case` metric names,
//! `{label="value"}` selectors), so the output can be scraped or
//! diffed directly.
//!
//! [text exposition format]: https://prometheus.io/docs/instrumenting/exposition_formats/

use crate::trace::TraceSnapshot;
use std::fmt::Write as _;

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn escape_label(value: &str) -> String {
    value.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders the snapshot as Prometheus text exposition.
pub fn prometheus_text(snapshot: &TraceSnapshot) -> String {
    let mut out = String::new();

    out.push_str("# HELP ipcp_phase_self_time_microseconds Self time per span name (duration minus nested children).\n");
    out.push_str("# TYPE ipcp_phase_self_time_microseconds gauge\n");
    for (name, us) in snapshot.self_times_us() {
        let _ = writeln!(
            out,
            "ipcp_phase_self_time_microseconds{{phase=\"{}\"}} {us}",
            escape_label(&name)
        );
    }

    out.push_str("# HELP ipcp_spans_total Spans recorded.\n");
    out.push_str("# TYPE ipcp_spans_total counter\n");
    let _ = writeln!(out, "ipcp_spans_total {}", snapshot.spans.len());

    out.push_str(
        "# HELP ipcp_solver_transitions_total Lattice transitions recorded by the solver.\n",
    );
    out.push_str("# TYPE ipcp_solver_transitions_total counter\n");
    let _ = writeln!(
        out,
        "ipcp_solver_transitions_total {}",
        snapshot.transitions.len()
    );

    for (name, value) in &snapshot.counters {
        let metric = format!("ipcp_{}_total", sanitize(name));
        let _ = writeln!(out, "# HELP {metric} Analysis counter `{name}`.");
        let _ = writeln!(out, "# TYPE {metric} counter");
        let _ = writeln!(out, "{metric} {value}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::ObsSink;
    use crate::trace::TraceSink;

    #[test]
    fn exposition_contains_counters_and_self_times() {
        let sink = TraceSink::new();
        sink.span("solve", "phase", 0, 10_000);
        sink.count("jf.sites", 7);
        let text = prometheus_text(&sink.snapshot());
        assert!(text.contains("# TYPE ipcp_phase_self_time_microseconds gauge"));
        assert!(text.contains("ipcp_phase_self_time_microseconds{phase=\"solve\"} 10"));
        assert!(text.contains("ipcp_jf_sites_total 7"));
        assert!(text.contains("ipcp_spans_total 1"));
        // Every exposed line is either a comment or `name[{labels}] value`.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split_whitespace().count() == 2,
                "bad exposition line: {line}"
            );
        }
    }
}
