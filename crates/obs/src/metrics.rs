//! Prometheus-style text exposition of a trace snapshot.
//!
//! Renders counters, per-phase self times, and latency/value histograms
//! in the [text exposition format] (`# HELP`/`# TYPE` preambles,
//! `snake_case` metric names, `{label="value"}` selectors,
//! `_bucket`/`_sum`/`_count` histogram series), so the output can be
//! scraped or diffed directly. Output order is fully deterministic:
//! every family is emitted in name order, and sanitize collisions are
//! resolved with stable numeric suffixes instead of duplicate series.
//!
//! [text exposition format]: https://prometheus.io/docs/instrumenting/exposition_formats/

use crate::histogram::Histogram;
use crate::trace::TraceSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Escapes a label value: backslash, double quote, and newline are the
/// three characters the exposition format requires escaping.
fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Escapes free text in a `# HELP` line (backslash and newline).
fn escape_help(text: &str) -> String {
    text.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Maps raw names to unique sanitized metric stems: when two raw names
/// sanitize to the same stem, later names (in raw-name order) get `_2`,
/// `_3`, … suffixes, so the exposition never emits one metric family
/// twice.
fn unique_stems<'a>(raw: impl Iterator<Item = &'a String>) -> BTreeMap<&'a String, String> {
    let mut used: BTreeMap<String, u64> = BTreeMap::new();
    let mut out = BTreeMap::new();
    for name in raw {
        let base = sanitize(name);
        let n = used.entry(base.clone()).or_default();
        *n += 1;
        let stem = if *n == 1 { base } else { format!("{base}_{n}") };
        out.insert(name, stem);
    }
    out
}

/// Appends one histogram family (`_bucket`/`_sum`/`_count`) with an
/// optional extra label selector (e.g. `span="solve"`).
fn push_histogram(out: &mut String, metric: &str, selector: &str, hist: &Histogram) {
    let labels = |le: &str| {
        if selector.is_empty() {
            format!("{{le=\"{le}\"}}")
        } else {
            format!("{{{selector},le=\"{le}\"}}")
        }
    };
    for (le, cumulative) in hist.cumulative_buckets() {
        let _ = writeln!(
            out,
            "{metric}_bucket{} {cumulative}",
            labels(&le.to_string())
        );
    }
    let _ = writeln!(out, "{metric}_bucket{} {}", labels("+Inf"), hist.count());
    let tail = if selector.is_empty() {
        String::new()
    } else {
        format!("{{{selector}}}")
    };
    let _ = writeln!(out, "{metric}_sum{tail} {}", hist.sum());
    let _ = writeln!(out, "{metric}_count{tail} {}", hist.count());
}

/// Renders the snapshot as Prometheus text exposition.
pub fn prometheus_text(snapshot: &TraceSnapshot) -> String {
    let mut out = String::new();

    out.push_str("# HELP ipcp_phase_self_time_microseconds Self time per span name (duration minus nested children).\n");
    out.push_str("# TYPE ipcp_phase_self_time_microseconds gauge\n");
    for (name, us) in snapshot.self_times_us() {
        let _ = writeln!(
            out,
            "ipcp_phase_self_time_microseconds{{phase=\"{}\"}} {us}",
            escape_label(&name)
        );
    }

    out.push_str("# HELP ipcp_spans_total Spans recorded.\n");
    out.push_str("# TYPE ipcp_spans_total counter\n");
    let _ = writeln!(out, "ipcp_spans_total {}", snapshot.spans.len());

    out.push_str(
        "# HELP ipcp_solver_transitions_total Lattice transitions recorded by the solver.\n",
    );
    out.push_str("# TYPE ipcp_solver_transitions_total counter\n");
    let _ = writeln!(
        out,
        "ipcp_solver_transitions_total {}",
        snapshot.transitions.len()
    );

    let counter_stems = unique_stems(snapshot.counters.keys());
    for (name, value) in &snapshot.counters {
        let metric = format!("ipcp_{}_total", counter_stems[name]);
        let _ = writeln!(
            out,
            "# HELP {metric} Analysis counter `{}`.",
            escape_help(name)
        );
        let _ = writeln!(out, "# TYPE {metric} counter");
        let _ = writeln!(out, "{metric} {value}");
    }

    if !snapshot.duration_histograms.is_empty() {
        out.push_str(
            "# HELP ipcp_span_duration_nanoseconds Span duration distribution per span name (log-linear buckets, bounded relative error).\n",
        );
        out.push_str("# TYPE ipcp_span_duration_nanoseconds histogram\n");
        for (name, hist) in &snapshot.duration_histograms {
            let selector = format!("span=\"{}\"", escape_label(name));
            push_histogram(&mut out, "ipcp_span_duration_nanoseconds", &selector, hist);
        }
    }

    let value_stems = unique_stems(snapshot.value_histograms.keys());
    for (name, hist) in &snapshot.value_histograms {
        let metric = format!("ipcp_{}", value_stems[name]);
        let _ = writeln!(
            out,
            "# HELP {metric} Value distribution `{}` (log-linear buckets, bounded relative error).",
            escape_help(name)
        );
        let _ = writeln!(out, "# TYPE {metric} histogram");
        push_histogram(&mut out, &metric, "", hist);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::ObsSink;
    use crate::trace::TraceSink;

    #[test]
    fn exposition_contains_counters_and_self_times() {
        let sink = TraceSink::new();
        sink.span("solve", "phase", 0, 10_000);
        sink.count("jf.sites", 7);
        let text = prometheus_text(&sink.snapshot());
        assert!(text.contains("# TYPE ipcp_phase_self_time_microseconds gauge"));
        assert!(text.contains("ipcp_phase_self_time_microseconds{phase=\"solve\"} 10"));
        assert!(text.contains("ipcp_jf_sites_total 7"));
        assert!(text.contains("ipcp_spans_total 1"));
        // Every exposed line is either a comment or `name[{labels}] value`.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split_whitespace().count() == 2,
                "bad exposition line: {line}"
            );
        }
    }

    #[test]
    fn histograms_expose_bucket_sum_count_series() {
        let sink = TraceSink::new();
        sink.span("solve", "phase", 0, 10_000);
        sink.span("solve", "phase", 20_000, 20_000);
        sink.value("framework.context_slots", 3);
        sink.value("framework.context_slots", 0);
        let text = prometheus_text(&sink.snapshot());
        assert!(text.contains("# TYPE ipcp_span_duration_nanoseconds histogram"));
        assert!(
            text.contains("ipcp_span_duration_nanoseconds_bucket{span=\"solve\",le=\"+Inf\"} 2")
        );
        assert!(text.contains("ipcp_span_duration_nanoseconds_sum{span=\"solve\"} 30000"));
        assert!(text.contains("ipcp_span_duration_nanoseconds_count{span=\"solve\"} 2"));
        assert!(text.contains("# TYPE ipcp_framework_context_slots histogram"));
        assert!(text.contains("ipcp_framework_context_slots_bucket{le=\"0\"} 1"));
        assert!(text.contains("ipcp_framework_context_slots_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("ipcp_framework_context_slots_sum 3"));
        assert!(text.contains("ipcp_framework_context_slots_count 2"));
        // Bucket series are cumulative, hence monotone non-decreasing.
        let buckets: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("ipcp_span_duration_nanoseconds_bucket{span=\"solve\""))
            .map(|l| l.split_whitespace().last().unwrap().parse().unwrap())
            .collect();
        assert!(buckets.len() >= 3);
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn hostile_names_are_escaped_and_never_break_line_structure() {
        // The PR 6 hostile-name corpus: quotes, backslashes, control
        // characters, newlines, and non-ASCII text.
        let hostile = "fuzz \"iter\" \\7\\ §деадбиф\t{}[],:\u{1}";
        let sink = TraceSink::new();
        sink.span(hostile, "cat\"\\\n", 0, 10_000);
        sink.count("evil\ncounter\\\"", 1);
        sink.value("evil\nvalue", 9);
        let text = prometheus_text(&sink.snapshot());
        // No raw newline may leak out of a name: every line must be a
        // comment or start with a clean `ipcp_…` metric-name token and
        // end with a numeric value.
        for line in text.lines() {
            assert!(!line.is_empty(), "empty line in exposition");
            if line.starts_with('#') {
                continue;
            }
            let name_end = line.find([' ', '{']).expect("metric name token");
            assert!(
                line[..name_end]
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "bad metric name in line: {line}"
            );
            assert!(
                line.rsplit(' ').next().unwrap().parse::<f64>().is_ok(),
                "line does not end in a value: {line}"
            );
        }
        assert!(text.contains("\\\"iter\\\""), "quotes must be escaped");
        assert!(text.contains("\\\\7\\\\"), "backslashes must be escaped");
        assert!(!text.contains("evil\ncounter"), "raw newline leaked");
        assert!(text.contains("ipcp_evil_counter___total 1"));
        assert!(text.contains("ipcp_evil_value_count 1"));
    }

    #[test]
    fn sanitize_collisions_get_stable_distinct_names() {
        let sink = TraceSink::new();
        sink.count("jf.sites", 1);
        sink.count("jf/sites", 2);
        sink.count("jf sites", 3);
        let text = prometheus_text(&sink.snapshot());
        // Raw-name (BTreeMap) order: "jf sites" < "jf.sites" < "jf/sites".
        assert!(text.contains("ipcp_jf_sites_total 3"));
        assert!(text.contains("ipcp_jf_sites_2_total 1"));
        assert!(text.contains("ipcp_jf_sites_3_total 2"));
        // Rendering twice is byte-identical.
        assert_eq!(text, prometheus_text(&sink.snapshot()));
    }
}
