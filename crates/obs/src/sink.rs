//! The [`ObsSink`] trait — the single seam through which every analysis
//! phase reports structured events.
//!
//! The default methods are no-ops and `#[inline]`, so code instrumented
//! against `&dyn ObsSink` pays one virtual call on the `enabled()` guard
//! and nothing else when observability is off ([`NoopSink`]). All event
//! payloads are plain strings/integers: the obs crate sits below every
//! analysis crate and cannot name their types.

/// One solver lattice transition (⊤→c or c→⊥) with its justifying edge.
///
/// Recorded by the worklist solver at the exact point a slot's value
/// changes; all fields are pre-rendered by the caller so the event is
/// self-describing in exported traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransitionEvent {
    /// Procedure whose slot changed.
    pub callee: String,
    /// The slot (formal/global/result) that changed, caller-readable.
    pub slot: String,
    /// Procedure the justifying call edge originates from.
    pub caller: String,
    /// Call-site label inside the caller (block and instruction index).
    pub site: String,
    /// Rendered jump function of the justifying edge.
    pub jump_fn: String,
    /// Lattice value before the meet.
    pub from: String,
    /// Lattice value after the meet.
    pub to: String,
}

/// Structured-event consumer. Implementations must be cheap and
/// thread-safe: spans are reported from worker threads of the parallel
/// engine.
pub trait ObsSink: Sync {
    /// Whether events are recorded at all. Instrumented code guards
    /// event *construction* (string rendering, counter math) behind
    /// this, so a disabled sink costs a single predictable branch.
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    /// Monotonic nanoseconds since the sink's epoch (0 when disabled).
    #[inline]
    fn now(&self) -> u64 {
        0
    }

    /// Records one completed span. The recording thread identifies the
    /// worker; callers do not pass worker ids.
    #[inline]
    fn span(&self, _name: &str, _category: &str, _start_ns: u64, _duration_ns: u64) {}

    /// Adds `delta` to the named counter.
    #[inline]
    fn count(&self, _name: &str, _delta: u64) {}

    /// Records one sample into the named value distribution (e.g. a
    /// per-procedure context count). Recording sinks aggregate these
    /// into bounded-relative-error histograms.
    #[inline]
    fn value(&self, _name: &str, _value: u64) {}

    /// Records one solver lattice transition.
    #[inline]
    fn transition(&self, _event: TransitionEvent) {}
}

/// The disabled sink: every method keeps its no-op default.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl ObsSink for NoopSink {}

/// RAII span guard: records a span from construction to drop.
///
/// When the sink is disabled the guard holds `start = 0` and drop does
/// nothing, so guards can be created unconditionally.
pub struct SpanGuard<'a> {
    sink: &'a dyn ObsSink,
    name: &'a str,
    category: &'a str,
    start: u64,
    live: bool,
}

impl<'a> SpanGuard<'a> {
    /// Opens a span on `sink` (no-op when disabled).
    pub fn enter(sink: &'a dyn ObsSink, name: &'a str, category: &'a str) -> Self {
        let live = sink.enabled();
        SpanGuard {
            sink,
            name,
            category,
            start: if live { sink.now() } else { 0 },
            live,
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if self.live {
            let end = self.sink.now();
            self.sink.span(
                self.name,
                self.category,
                self.start,
                end.saturating_sub(self.start),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_is_disabled_and_inert() {
        let sink = NoopSink;
        assert!(!sink.enabled());
        assert_eq!(sink.now(), 0);
        sink.span("x", "y", 0, 1);
        sink.count("c", 3);
        sink.value("v", 42);
        sink.transition(TransitionEvent {
            callee: "f".into(),
            slot: "arg0".into(),
            caller: "main".into(),
            site: "b0#0".into(),
            jump_fn: "4".into(),
            from: "⊤".into(),
            to: "4".into(),
        });
        let _guard = SpanGuard::enter(&sink, "phase", "test");
    }
}
