//! Mergeable log-linear histograms with bounded relative error.
//!
//! A [`Histogram`] buckets positive values geometrically: bucket `i`
//! covers `(γ^(i-1), γ^i]` with `γ = (1+α)/(1-α)`, so any quantile
//! estimate is within relative error `α` of the true sample quantile
//! (the DDSketch construction). Zero gets its own exact bucket. Buckets
//! are sparse (only non-empty indices are stored) and merging is a
//! bucket-wise sum — commutative and associative — so per-worker shards
//! can be merged in any order with a deterministic result, the same
//! discipline [`crate::TraceSink`] uses for spans.

use std::collections::BTreeMap;

/// Default relative-error bound for quantile estimates (1%).
pub const DEFAULT_RELATIVE_ERROR: f64 = 0.01;

/// A log-linear histogram over `u64` samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    alpha: f64,
    gamma: f64,
    ln_gamma: f64,
    zero: u64,
    buckets: BTreeMap<i64, u64>,
    sum: u128,
    count: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram with the default relative-error bound.
    pub fn new() -> Self {
        Self::with_relative_error(DEFAULT_RELATIVE_ERROR)
    }

    /// An empty histogram whose quantile estimates stay within
    /// `alpha` relative error. `alpha` must be in `(0, 1)`.
    pub fn with_relative_error(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "relative error must be in (0, 1), got {alpha}"
        );
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        Histogram {
            alpha,
            gamma,
            ln_gamma: gamma.ln(),
            zero: 0,
            buckets: BTreeMap::new(),
            sum: 0,
            count: 0,
        }
    }

    /// The configured relative-error bound.
    pub fn relative_error(&self) -> f64 {
        self.alpha
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Bucket index for a positive value: `ceil(ln v / ln γ)`.
    fn index_of(&self, value: u64) -> i64 {
        ((value as f64).ln() / self.ln_gamma).ceil() as i64
    }

    /// Upper bound `γ^i` of bucket `i`.
    fn upper_bound(&self, index: i64) -> f64 {
        self.gamma.powi(index as i32)
    }

    /// Midpoint estimate `2γ^i / (γ+1)` for bucket `i`; within `α`
    /// relative error of every value the bucket covers.
    fn estimate(&self, index: i64) -> f64 {
        2.0 * self.gamma.powi(index as i32) / (self.gamma + 1.0)
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` samples of the same value.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.count += n;
        self.sum += value as u128 * n as u128;
        if value == 0 {
            self.zero += n;
        } else {
            *self.buckets.entry(self.index_of(value)).or_default() += n;
        }
    }

    /// Folds `other` into `self` bucket-wise. Both histograms must use
    /// the same relative-error bound (same bucket boundaries).
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.alpha == other.alpha,
            "cannot merge histograms with different relative errors ({} vs {})",
            self.alpha,
            other.alpha
        );
        self.zero += other.zero;
        self.sum += other.sum;
        self.count += other.count;
        for (&i, &n) in &other.buckets {
            *self.buckets.entry(i).or_default() += n;
        }
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`), or `None` when empty.
    ///
    /// The estimate is within `relative_error()` of the exact sample
    /// quantile `sorted[⌊q·(count−1)⌋]`; the zero bucket is exact.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * (self.count - 1) as f64) as u64;
        let mut cumulative = self.zero;
        if cumulative > rank {
            return Some(0.0);
        }
        for (&i, &n) in &self.buckets {
            cumulative += n;
            if cumulative > rank {
                return Some(self.estimate(i));
            }
        }
        // Unreachable when counts are consistent; fall back to the top
        // bucket's estimate.
        self.buckets.keys().next_back().map(|&i| self.estimate(i))
    }

    /// Cumulative bucket boundaries for exposition: `(upper_bound,
    /// cumulative_count)` pairs in increasing bound order, starting with
    /// the zero bucket and covering every non-empty bucket. The caller
    /// appends the implicit `+Inf` bound (`= count()`).
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::with_capacity(self.buckets.len() + 1);
        let mut cumulative = self.zero;
        out.push((0.0, cumulative));
        for (&i, &n) in &self.buckets {
            cumulative += n;
            out.push((self.upper_bound(i), cumulative));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_track_exact_values_within_the_bound() {
        let mut h = Histogram::new();
        let mut samples: Vec<u64> = Vec::new();
        // Deterministic spread over five orders of magnitude.
        let mut x = 7u64;
        for _ in 0..5_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = x % 1_000_000;
            samples.push(v);
            h.record(v);
        }
        samples.sort_unstable();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let exact = samples[(q * (samples.len() - 1) as f64) as usize];
            let est = h.quantile(q).unwrap();
            if exact == 0 {
                assert_eq!(est, 0.0);
            } else {
                let err = (est - exact as f64).abs() / exact as f64;
                assert!(err <= h.relative_error() + 1e-9, "q={q}: {est} vs {exact}");
            }
        }
    }

    #[test]
    fn merge_is_order_independent_and_matches_single_recording() {
        let values: Vec<u64> = (0..200).map(|i| i * i % 977).collect();
        let mut single = Histogram::new();
        for &v in &values {
            single.record(v);
        }
        let mut shards: Vec<Histogram> = (0..4).map(|_| Histogram::new()).collect();
        for (i, &v) in values.iter().enumerate() {
            shards[i % 4].record(v);
        }
        let mut fwd = Histogram::new();
        for s in &shards {
            fwd.merge(s);
        }
        let mut rev = Histogram::new();
        for s in shards.iter().rev() {
            rev.merge(s);
        }
        assert_eq!(fwd, single);
        assert_eq!(rev, single);
        assert_eq!(single.count(), 200);
        assert_eq!(single.sum(), values.iter().map(|&v| v as u128).sum());
    }

    #[test]
    fn zero_and_empty_cases_are_exact() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        h.record_n(0, 10);
        assert_eq!(h.quantile(0.99), Some(0.0));
        assert_eq!(h.cumulative_buckets(), vec![(0.0, 10)]);
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_end_at_count() {
        let mut h = Histogram::new();
        for v in [0, 1, 1, 50, 5_000, 5_000, 5_001, u64::MAX / 3] {
            h.record(v);
        }
        let buckets = h.cumulative_buckets();
        for pair in buckets.windows(2) {
            assert!(pair[0].0 < pair[1].0);
            assert!(pair[0].1 <= pair[1].1);
        }
        assert_eq!(buckets.last().unwrap().1, h.count());
    }

    #[test]
    #[should_panic(expected = "different relative errors")]
    fn merging_mismatched_bounds_panics() {
        let mut a = Histogram::new();
        let b = Histogram::with_relative_error(0.05);
        a.merge(&b);
    }
}
