//! # ipcp-obs — structured observability for the analysis pipeline
//!
//! A zero-dependency event layer the analysis crates report into:
//!
//! * [`ObsSink`] — the trait every phase is instrumented against. Its
//!   methods default to inlined no-ops, and [`NoopSink`] keeps them, so
//!   an uninstrumented run pays one `enabled()` branch per event site
//!   and produces bit-identical results.
//! * [`TraceSink`] — the recording implementation: hierarchical spans
//!   and counters land in per-worker shards and merge in deterministic
//!   `(start, seq)` order; the solver's lattice [`TransitionEvent`]s
//!   are kept in record order. Span durations and [`ObsSink::value`]
//!   samples additionally aggregate into mergeable log-linear
//!   [`Histogram`]s with bounded-relative-error quantiles.
//! * Exporters — Chrome trace-event JSON ([`chrome_trace_json`],
//!   loadable in `chrome://tracing`/Perfetto, with a hand-rolled
//!   [`validate_chrome_trace`] used by tests and CI) and Prometheus
//!   text exposition ([`prometheus_text`]).
//!
//! The crate sits below `ipcp-analysis` and `ipcp-core` (which
//! re-exports it as `ipcp_core::obs`); it knows nothing about IR or
//! lattices — every payload is a pre-rendered string or integer.
#![deny(missing_docs)]

mod chrome;
mod histogram;
mod metrics;
mod rss;
mod sink;
mod trace;

pub use chrome::{
    chrome_trace_json, chrome_trace_json_multi, parse_json, validate_chrome_trace, Json, TraceStats,
};
pub use histogram::{Histogram, DEFAULT_RELATIVE_ERROR};
pub use metrics::prometheus_text;
pub use rss::peak_rss_bytes;
pub use sink::{NoopSink, ObsSink, SpanGuard, TransitionEvent};
pub use trace::{SpanRecord, TraceSink, TraceSnapshot};
