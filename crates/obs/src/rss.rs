//! Peak resident-set-size introspection.
//!
//! The scaling study reports memory alongside wall-clock. The workspace
//! is dependency-free, so the reading comes straight from the kernel's
//! `/proc/self/status` `VmHWM` line (the process's resident high-water
//! mark); on platforms without procfs the probe reports `None` and
//! consumers omit the figure.

/// The process's peak resident set size in bytes, when the platform
/// exposes it.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        parse_vm_hwm(&status)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Parses the `VmHWM:  <n> kB` line of a `/proc/<pid>/status` rendering.
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .trim_start_matches("VmHWM:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_status_rendering() {
        let status = "Name:\tipcp\nVmPeak:\t  123 kB\nVmHWM:\t   2048 kB\nThreads:\t1\n";
        assert_eq!(parse_vm_hwm(status), Some(2048 * 1024));
    }

    #[test]
    fn missing_or_malformed_lines_probe_as_none() {
        assert_eq!(parse_vm_hwm("Name:\tipcp\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tnot-a-number kB\n"), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn live_probe_reports_a_positive_figure() {
        let peak = peak_rss_bytes().expect("procfs available on linux");
        assert!(peak > 0);
    }
}
