//! Chrome trace-event JSON export and validation.
//!
//! The exporter emits the [Trace Event Format] subset Perfetto and
//! `chrome://tracing` load: duration events (`B`/`E` pairs) per worker
//! thread, instant events (`i`) for solver transitions, and metadata
//! (`M`) naming processes and threads. The validator re-parses the
//! produced JSON with a minimal hand-rolled parser (the workspace is
//! dependency-free) and checks the structural invariants CI enforces:
//! well-formed events, per-thread monotone timestamps, and matched
//! `B`/`E` pairs.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::trace::{SpanRecord, TraceSnapshot};
use std::fmt::Write as _;

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders one process's snapshot into `out` as trace events.
fn push_process(out: &mut String, pid: usize, name: &str, snapshot: &TraceSnapshot) {
    let mut first = out.ends_with('[');
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
    };
    sep(out);
    let _ = write!(
        out,
        "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"ts\":0,\"name\":\"process_name\",\
         \"args\":{{\"name\":\"{}\"}}}}",
        escape_json(name)
    );

    // Group spans per worker (= Chrome tid) and emit nested B/E pairs.
    // Worker slots come from a process-global counter, so their raw
    // values depend on thread start-up order; remap them to dense tids
    // by first appearance in the deterministic merged span order so the
    // exported document is byte-identical across runs.
    let mut tid_of: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
    let mut workers: Vec<usize> = Vec::new();
    for s in &snapshot.spans {
        if !tid_of.contains_key(&s.worker) {
            tid_of.insert(s.worker, tid_of.len() + 1);
            workers.push(s.worker);
        }
    }
    for worker in workers {
        let tid = tid_of[&worker];
        sep(out);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"ts\":0,\
             \"name\":\"thread_name\",\"args\":{{\"name\":\"worker-{tid}\"}}}}"
        );
        let mut spans: Vec<&SpanRecord> = snapshot
            .spans
            .iter()
            .filter(|s| s.worker == worker)
            .collect();
        // Parents (earlier start, longer duration) first.
        spans.sort_by(|a, b| {
            (a.start_ns, std::cmp::Reverse(a.duration_ns), a.seq).cmp(&(
                b.start_ns,
                std::cmp::Reverse(b.duration_ns),
                b.seq,
            ))
        });
        // Open-span stack of clamped end timestamps (ns).
        let mut open: Vec<u64> = Vec::new();
        for s in spans {
            let mut end = s.start_ns.saturating_add(s.duration_ns);
            while let Some(&top) = open.last() {
                if top > s.start_ns {
                    break;
                }
                open.pop();
                sep(out);
                let _ = write!(
                    out,
                    "{{\"ph\":\"E\",\"pid\":{pid},\"tid\":{tid},\"ts\":{}}}",
                    top / 1_000
                );
            }
            if let Some(&top) = open.last() {
                // A child may not outlive its parent in a B/E stack.
                end = end.min(top);
            }
            sep(out);
            let _ = write!(
                out,
                "{{\"ph\":\"B\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"name\":\"{}\",\
                 \"cat\":\"{}\"}}",
                s.start_ns / 1_000,
                escape_json(&s.name),
                escape_json(&s.category)
            );
            open.push(end);
        }
        while let Some(top) = open.pop() {
            sep(out);
            let _ = write!(
                out,
                "{{\"ph\":\"E\",\"pid\":{pid},\"tid\":{tid},\"ts\":{}}}",
                top / 1_000
            );
        }
    }

    // Solver transitions: instant events on a dedicated synthetic tid,
    // in record order (timestamps are already monotone per recording).
    if !snapshot.transitions.is_empty() {
        const TRANSITION_TID: usize = 999;
        sep(out);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{TRANSITION_TID},\"ts\":0,\
             \"name\":\"thread_name\",\"args\":{{\"name\":\"solver-transitions\"}}}}"
        );
        let mut last_ts = 0u64;
        for (ts_ns, _, t) in &snapshot.transitions {
            let ts = (ts_ns / 1_000).max(last_ts);
            last_ts = ts;
            sep(out);
            let _ = write!(
                out,
                "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{TRANSITION_TID},\"ts\":{ts},\"s\":\"t\",\
                 \"name\":\"{}\",\"args\":{{\"callee\":\"{}\",\"slot\":\"{}\",\"caller\":\"{}\",\
                 \"site\":\"{}\",\"jump_fn\":\"{}\"}}}}",
                escape_json(&format!("{}.{}: {} -> {}", t.callee, t.slot, t.from, t.to)),
                escape_json(&t.callee),
                escape_json(&t.slot),
                escape_json(&t.caller),
                escape_json(&t.site),
                escape_json(&t.jump_fn),
            );
        }
    }
}

/// Renders a single snapshot as a complete Chrome trace JSON document.
pub fn chrome_trace_json(snapshot: &TraceSnapshot) -> String {
    chrome_trace_json_multi(&[("ipcp", snapshot)])
}

/// Renders several snapshots as one trace, one Chrome *process* per
/// named part (used by the bench reporter: one process per suite
/// program).
pub fn chrome_trace_json_multi(parts: &[(&str, &TraceSnapshot)]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (pid, (name, snap)) in parts.iter().enumerate() {
        push_process(&mut out, pid + 1, name, snap);
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

// ---------------------------------------------------------------------
// Minimal JSON parser (validation only — the workspace has no serde).
// ---------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// Object, in source order.
    Object(Vec<(String, Json)>),
    /// Array.
    Array(Vec<Json>),
    /// String.
    String(String),
    /// Number (all numbers as f64; trace timestamps fit exactly).
    Number(f64),
    /// Boolean.
    Bool(bool),
    /// Null.
    Null,
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("JSON error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the longest run of unescaped bytes in one
                    // step. `"` and `\` are never UTF-8 continuation
                    // bytes, so a run always ends on a char boundary —
                    // and validating per run (not per char) keeps large
                    // embedded strings linear instead of quadratic.
                    let rest = &self.bytes[self.pos..];
                    let len = rest
                        .iter()
                        .position(|&b| b == b'"' || b == b'\\')
                        .unwrap_or(rest.len());
                    let s =
                        std::str::from_utf8(&rest[..len]).map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.err("bad number"))
    }
}

/// Parses a complete JSON document.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing input after document"));
    }
    Ok(v)
}

/// Summary statistics of a validated trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Total events, metadata included.
    pub events: usize,
    /// Matched `B`/`E` span pairs.
    pub spans: usize,
    /// Instant events.
    pub instants: usize,
    /// Distinct `(pid, tid)` threads carrying events.
    pub threads: usize,
}

/// Validates a Chrome trace document: parses it, then checks that every
/// event carries `ph`/`pid`/`tid`/`ts`, that timestamps are monotone
/// non-decreasing per `(pid, tid)` stream, and that `B`/`E` events
/// match up (no unmatched begin or end) per stream.
pub fn validate_chrome_trace(text: &str) -> Result<TraceStats, String> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or_else(|| "missing traceEvents array".to_string())?;
    use std::collections::BTreeMap;
    let mut last_ts: BTreeMap<(u64, u64), f64> = BTreeMap::new();
    let mut depth: BTreeMap<(u64, u64), usize> = BTreeMap::new();
    let mut spans = 0usize;
    let mut instants = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let pid = ev
            .get("pid")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i}: missing pid"))? as u64;
        let tid = ev
            .get("tid")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i}: missing tid"))? as u64;
        let ts = ev
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        if matches!(ph, "B" | "E" | "i") {
            let key = (pid, tid);
            if let Some(&prev) = last_ts.get(&key) {
                if ts < prev {
                    return Err(format!(
                        "event {i}: non-monotone ts {ts} < {prev} on pid {pid} tid {tid}"
                    ));
                }
            }
            last_ts.insert(key, ts);
            match ph {
                "B" => {
                    if ev.get("name").and_then(Json::as_str).is_none() {
                        return Err(format!("event {i}: B event without a name"));
                    }
                    *depth.entry(key).or_default() += 1;
                }
                "E" => {
                    let d = depth.entry(key).or_default();
                    if *d == 0 {
                        return Err(format!("event {i}: E without matching B on tid {tid}"));
                    }
                    *d -= 1;
                    spans += 1;
                }
                _ => instants += 1,
            }
        }
    }
    if let Some(((pid, tid), d)) = depth.iter().find(|(_, &d)| d != 0) {
        return Err(format!(
            "unmatched B events ({d}) left open on pid {pid} tid {tid}"
        ));
    }
    Ok(TraceStats {
        events: events.len(),
        spans,
        instants,
        threads: last_ts.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{ObsSink, TransitionEvent};
    use crate::trace::TraceSink;

    fn sample_snapshot() -> crate::trace::TraceSnapshot {
        let sink = TraceSink::new();
        sink.span("solve", "phase", 5_000, 20_000);
        sink.span("pipeline", "phase", 0, 50_000);
        sink.transition(TransitionEvent {
            callee: "kernel".into(),
            slot: "arg0".into(),
            caller: "main".into(),
            site: "b0#1".into(),
            jump_fn: "8".into(),
            from: "⊤".into(),
            to: "8".into(),
        });
        sink.snapshot()
    }

    #[test]
    fn export_round_trips_through_the_validator() {
        let json = chrome_trace_json(&sample_snapshot());
        let stats = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(stats.spans, 2);
        assert_eq!(stats.instants, 1);
        assert!(stats.events >= 5);
    }

    #[test]
    fn multi_process_export_validates() {
        let a = sample_snapshot();
        let b = sample_snapshot();
        let json = chrome_trace_json_multi(&[("adm", &a), ("ocean", &b)]);
        let stats = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(stats.spans, 4);
    }

    #[test]
    fn validator_rejects_unbalanced_and_nonmonotone_streams() {
        let unbalanced = r#"{"traceEvents":[{"ph":"B","pid":1,"tid":0,"ts":1,"name":"x"}]}"#;
        assert!(validate_chrome_trace(unbalanced).is_err());
        let nonmono = r#"{"traceEvents":[
            {"ph":"B","pid":1,"tid":0,"ts":5,"name":"x"},
            {"ph":"E","pid":1,"tid":0,"ts":3}]}"#;
        assert!(validate_chrome_trace(nonmono).is_err());
        let dangling_end = r#"{"traceEvents":[{"ph":"E","pid":1,"tid":0,"ts":3}]}"#;
        assert!(validate_chrome_trace(dangling_end).is_err());
    }

    #[test]
    fn hostile_span_names_survive_export_and_validation() {
        // The fuzz harness deliberately records span and category names
        // containing quotes, backslashes, control characters, and
        // non-ASCII text — the exporter must escape all of them into a
        // parseable document that round-trips the original strings.
        let hostile = "fuzz \"iter\" \\7\\ §деадбиф\t{}[],:\u{1}";
        let sink = TraceSink::new();
        sink.span(hostile, "cat\"\\\n", 0, 10_000);
        let json = chrome_trace_json(&sink.snapshot());
        let stats = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(stats.spans, 1);
        let doc = parse_json(&json).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        let begin = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("B"))
            .expect("a B event");
        assert_eq!(begin.get("name").and_then(Json::as_str), Some(hostile));
        assert_eq!(begin.get("cat").and_then(Json::as_str), Some("cat\"\\\n"));
    }

    #[test]
    fn hostile_transition_fields_survive_export() {
        let sink = TraceSink::new();
        sink.transition(TransitionEvent {
            callee: "callee\"x\"".into(),
            slot: "slot\\y".into(),
            caller: "главный".into(),
            site: "b0#1\n".into(),
            jump_fn: "λx. x".into(),
            from: "⊤".into(),
            to: "\"quoted\"".into(),
        });
        let json = chrome_trace_json(&sink.snapshot());
        let stats = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(stats.instants, 1);
        let doc = parse_json(&json).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        let inst = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("i"))
            .expect("an instant event");
        let args = inst.get("args").expect("args");
        assert_eq!(
            args.get("callee").and_then(Json::as_str),
            Some("callee\"x\"")
        );
        assert_eq!(args.get("slot").and_then(Json::as_str), Some("slot\\y"));
        assert_eq!(args.get("caller").and_then(Json::as_str), Some("главный"));
        assert_eq!(args.get("site").and_then(Json::as_str), Some("b0#1\n"));
    }

    #[test]
    fn escape_json_covers_every_special_class() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("q\"b\\"), "q\\\"b\\\\");
        assert_eq!(escape_json("a\nb\rc\td"), "a\\nb\\rc\\td");
        assert_eq!(escape_json("\u{1}\u{1f}"), "\\u0001\\u001f");
        // Non-ASCII passes through unescaped (JSON is UTF-8).
        assert_eq!(escape_json("§π√"), "§π√");
    }

    #[test]
    fn parser_handles_escapes_and_rejects_garbage() {
        let v = parse_json(r#"{"a\n":[1,-2.5,true,null,"A"]}"#).unwrap();
        let arr = v.get("a\n").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[4].as_str(), Some("A"));
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("42 garbage").is_err());
    }
}
