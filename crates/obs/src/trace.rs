//! [`TraceSink`]: the recording implementation of [`ObsSink`].
//!
//! Spans land in one of a fixed set of *shards*, selected by a
//! thread-local worker slot, so concurrent workers of the parallel
//! engine never contend on one lock (each shard's mutex is effectively
//! thread-private while a `par_map` runs). Export merges the per-worker
//! buffers in a deterministic order — by start time with a global
//! record sequence number as the tiebreak — the same "fan out freely,
//! merge in a fixed order" discipline `ipcp_analysis::par` uses for
//! analysis results.

use crate::histogram::Histogram;
use crate::sink::{ObsSink, TransitionEvent};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Number of per-worker span shards. More shards than any realistic
/// `--jobs` setting, so workers map to distinct shards in practice.
const SHARDS: usize = 32;

static NEXT_WORKER_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Stable per-thread worker slot, assigned on first use.
    static WORKER_SLOT: usize = NEXT_WORKER_SLOT.fetch_add(1, Ordering::Relaxed);
}

fn worker_slot() -> usize {
    WORKER_SLOT.with(|w| *w)
}

/// One recorded span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (phase or per-item label).
    pub name: String,
    /// Category (e.g. `phase`, `par`).
    pub category: String,
    /// Start, nanoseconds since the sink epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub duration_ns: u64,
    /// Worker slot of the recording thread.
    pub worker: usize,
    /// Global record sequence number (deterministic merge tiebreak).
    pub seq: u64,
}

/// An immutable snapshot of everything a [`TraceSink`] recorded.
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// All spans, merged across worker shards and sorted by
    /// `(start_ns, seq)`.
    pub spans: Vec<SpanRecord>,
    /// Counter totals in name order.
    pub counters: BTreeMap<String, u64>,
    /// Solver transitions with their record timestamps, in record order.
    pub transitions: Vec<(u64, usize, TransitionEvent)>,
    /// Per-span-name duration histograms (nanoseconds), merged across
    /// worker shards (bucket-wise, so merge order cannot matter).
    pub duration_histograms: BTreeMap<String, Histogram>,
    /// Named value histograms fed through [`ObsSink::value`], merged
    /// across worker shards.
    pub value_histograms: BTreeMap<String, Histogram>,
}

impl TraceSnapshot {
    /// Per-span-name *self* time (duration minus same-worker nested
    /// child spans), microseconds. Nesting is reconstructed per worker
    /// by interval containment.
    pub fn self_times_us(&self) -> BTreeMap<String, u64> {
        let mut by_worker: BTreeMap<usize, Vec<&SpanRecord>> = BTreeMap::new();
        for s in &self.spans {
            by_worker.entry(s.worker).or_default().push(s);
        }
        let mut self_ns: BTreeMap<String, u64> = BTreeMap::new();
        for (_, mut spans) in by_worker {
            // Parents first: earlier start, then longer duration.
            spans.sort_by(|a, b| {
                (a.start_ns, std::cmp::Reverse(a.duration_ns), a.seq).cmp(&(
                    b.start_ns,
                    std::cmp::Reverse(b.duration_ns),
                    b.seq,
                ))
            });
            // Direct-child time per span, by interval containment.
            let mut child_ns: Vec<u64> = vec![0; spans.len()];
            let mut open: Vec<usize> = Vec::new();
            for (i, s) in spans.iter().enumerate() {
                while let Some(&j) = open.last() {
                    let end_j = spans[j].start_ns.saturating_add(spans[j].duration_ns);
                    if end_j > s.start_ns {
                        break;
                    }
                    open.pop();
                }
                if let Some(&j) = open.last() {
                    // Clamp the child's contribution to the parent span.
                    let end_j = spans[j].start_ns.saturating_add(spans[j].duration_ns);
                    let end_i = spans[i].start_ns.saturating_add(spans[i].duration_ns);
                    let clamped = end_i.min(end_j).saturating_sub(s.start_ns);
                    child_ns[j] = child_ns[j].saturating_add(clamped);
                }
                open.push(i);
            }
            for (s, child) in spans.iter().zip(child_ns) {
                *self_ns.entry(s.name.clone()).or_default() += s.duration_ns.saturating_sub(child);
            }
        }
        self_ns
            .into_iter()
            .map(|(name, ns)| (name, ns / 1_000))
            .collect()
    }
}

#[derive(Default)]
struct Shard {
    spans: Vec<SpanRecord>,
    durations: BTreeMap<String, Histogram>,
    values: BTreeMap<String, Histogram>,
}

fn merge_histograms(into: &mut BTreeMap<String, Histogram>, from: &BTreeMap<String, Histogram>) {
    for (name, hist) in from {
        into.entry(name.clone()).or_default().merge(hist);
    }
}

/// The recording sink.
pub struct TraceSink {
    epoch: Instant,
    seq: AtomicU64,
    shards: Vec<Mutex<Shard>>,
    counters: Mutex<BTreeMap<String, u64>>,
    transitions: Mutex<Vec<(u64, usize, TransitionEvent)>>,
}

impl Default for TraceSink {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink {
    /// Creates an empty sink with its epoch at "now".
    pub fn new() -> Self {
        TraceSink {
            epoch: Instant::now(),
            seq: AtomicU64::new(0),
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            counters: Mutex::new(BTreeMap::new()),
            transitions: Mutex::new(Vec::new()),
        }
    }

    /// Snapshots everything recorded so far, merging the per-worker
    /// shards in deterministic `(start, seq)` order.
    pub fn snapshot(&self) -> TraceSnapshot {
        let mut spans: Vec<SpanRecord> = Vec::new();
        let mut duration_histograms = BTreeMap::new();
        let mut value_histograms = BTreeMap::new();
        for shard in &self.shards {
            let shard = shard.lock().unwrap();
            spans.extend(shard.spans.iter().cloned());
            merge_histograms(&mut duration_histograms, &shard.durations);
            merge_histograms(&mut value_histograms, &shard.values);
        }
        spans.sort_by_key(|s| (s.start_ns, s.seq));
        TraceSnapshot {
            spans,
            counters: self.counters.lock().unwrap().clone(),
            transitions: self.transitions.lock().unwrap().clone(),
            duration_histograms,
            value_histograms,
        }
    }
}

impl ObsSink for TraceSink {
    fn enabled(&self) -> bool {
        true
    }

    fn now(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn span(&self, name: &str, category: &str, start_ns: u64, duration_ns: u64) {
        let worker = worker_slot();
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let record = SpanRecord {
            name: name.to_string(),
            category: category.to_string(),
            start_ns,
            duration_ns,
            worker,
            seq,
        };
        let mut shard = self.shards[worker % SHARDS].lock().unwrap();
        shard
            .durations
            .entry(name.to_string())
            .or_default()
            .record(duration_ns);
        shard.spans.push(record);
    }

    fn value(&self, name: &str, value: u64) {
        self.shards[worker_slot() % SHARDS]
            .lock()
            .unwrap()
            .values
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    fn count(&self, name: &str, delta: u64) {
        *self
            .counters
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_default() += delta;
    }

    fn transition(&self, event: TransitionEvent) {
        let ts = self.now();
        self.transitions
            .lock()
            .unwrap()
            .push((ts, worker_slot(), event));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots_in_deterministic_order() {
        let sink = TraceSink::new();
        sink.span("b", "phase", 10, 5);
        sink.span("a", "phase", 2, 20);
        sink.count("widgets", 2);
        sink.count("widgets", 3);
        let snap = sink.snapshot();
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.spans[0].name, "a");
        assert_eq!(snap.spans[1].name, "b");
        assert_eq!(snap.counters["widgets"], 5);
    }

    #[test]
    fn self_time_subtracts_nested_children() {
        // parent [0µs, 100µs), child [10µs, 40µs) on the same thread.
        let sink = TraceSink::new();
        sink.span("child", "phase", 10_000, 30_000);
        sink.span("parent", "phase", 0, 100_000);
        let st = sink.snapshot().self_times_us();
        assert_eq!(st["parent"], 70);
        assert_eq!(st["child"], 30);
    }

    #[test]
    fn histograms_aggregate_spans_and_values_across_shards() {
        let sink = TraceSink::new();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let sink = &sink;
                scope.spawn(move || {
                    for i in 0..50u64 {
                        sink.span("w", "par", t * 1000 + i, i + 1);
                        sink.value("ctx", i % 7);
                    }
                });
            }
        });
        let snap = sink.snapshot();
        let durations = &snap.duration_histograms["w"];
        assert_eq!(durations.count(), 400);
        // Shard-merged recording matches one histogram fed directly.
        let mut single = Histogram::new();
        for _ in 0..8 {
            for i in 0..50u64 {
                single.record(i + 1);
            }
        }
        assert_eq!(*durations, single);
        assert_eq!(snap.value_histograms["ctx"].count(), 400);
        assert_eq!(
            snap.value_histograms["ctx"].sum(),
            8 * (0..50u64).map(|i| (i % 7) as u128).sum::<u128>()
        );
    }

    #[test]
    fn concurrent_spans_survive_sharding() {
        let sink = TraceSink::new();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let sink = &sink;
                scope.spawn(move || {
                    for i in 0..50 {
                        sink.span("w", "par", (t * 1000 + i) as u64, 1);
                    }
                });
            }
        });
        assert_eq!(sink.snapshot().spans.len(), 400);
    }
}
