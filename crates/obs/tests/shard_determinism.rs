//! Cross-shard merge determinism when the worker count exceeds the
//! fixed shard count (32): exported Chrome trace JSON and Prometheus
//! text must be byte-identical across runs even though thread start-up
//! order — and therefore raw worker-slot assignment and shard packing —
//! differs every time.

use ipcp_obs::{chrome_trace_json, prometheus_text, validate_chrome_trace, ObsSink, TraceSink};

/// Records a fixed workload from `jobs` concurrent threads: every span
/// has a globally unique deterministic start time, so the merged
/// `(start_ns, seq)` order is independent of recording interleaving.
fn record(jobs: usize) -> (String, String) {
    let sink = TraceSink::new();
    std::thread::scope(|scope| {
        for t in 0..jobs {
            let sink = &sink;
            scope.spawn(move || {
                for i in 0..20u64 {
                    let start = (t as u64) * 100_000 + i * 100;
                    sink.span(&format!("item-{t}-{i}"), "par", start, 40 + i);
                    sink.value("work.units", i % 11);
                }
                sink.count("items", 20);
            });
        }
    });
    let snap = sink.snapshot();
    (chrome_trace_json(&snap), prometheus_text(&snap))
}

#[test]
fn exports_are_byte_identical_across_runs_at_every_worker_count() {
    // 31 (under), 32 (exactly the shard count), 33 and 64 (over: several
    // workers share a shard and merge order inside a shard is racy).
    for jobs in [31usize, 32, 33, 64] {
        let (chrome_a, prom_a) = record(jobs);
        let (chrome_b, prom_b) = record(jobs);
        assert_eq!(chrome_a, chrome_b, "chrome trace diverged at jobs={jobs}");
        assert_eq!(prom_a, prom_b, "prometheus text diverged at jobs={jobs}");
        let stats = validate_chrome_trace(&chrome_a).expect("valid trace");
        assert_eq!(stats.spans, jobs * 20);
        assert!(prom_a.contains(&format!("ipcp_work_units_count {}", jobs * 20)));
    }
}
