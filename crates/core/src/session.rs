//! Analysis sessions: a memoized, phase-split pass manager.
//!
//! The paper's study is inherently multi-configuration — Tables 2 and 3
//! analyze the *same* programs under 8+ jump-function/MOD/solver
//! configurations — yet the single-shot driver rebuilds the call graph,
//! MOD/REF summaries, and per-procedure SSA from scratch on every
//! `analyze()` call. An [`AnalysisSession`] wraps one program and splits
//! the pipeline into individually cacheable phases:
//!
//! ```text
//! call graph ─┬─► MOD/REF ─► (augment) ─► per-proc SSA ─┬─► return JFs ─┐
//!             │                                         ├─► sym values ─┤
//!             │                                         │               ▼
//!             └─────────────────────────────────────────┴─► forward JFs ─► solve ─► substitute ─► DCE
//! ```
//!
//! Each artifact is keyed by a content fingerprint of the IR it read —
//! the owning procedure plus its transitive callees and the globals
//! (per-procedure artifacts), or the whole program (solver-level
//! artifacts) — together with *only the configuration facets that phase
//! consults*: SSA construction depends on `mod_info` but not on
//! `jump_function`; symbolic values additionally depend on `gsa` and the
//! return-jump-function evaluation mode; the solver depends on the JF
//! kind and solver choice but not on how SSA was built. A Table-2/3
//! sweep therefore reuses SSA/MOD/RJF work across columns instead of
//! recomputing it, and *complete propagation* becomes incremental for
//! free: after a DCE round only the procedures whose IR fingerprint
//! changed — plus their call-graph dependents, whose closure
//! fingerprints change with them — miss the cache.
//!
//! ## Fuel semantics
//!
//! Budgets are threaded through unchanged. Memoization is only enabled
//! under an *unmetered* budget ([`Budget::is_unmetered`]): a cached
//! artifact records the fuel its computation consumed and **replays**
//! that amount on every hit, so `RobustnessReport::fuel_consumed` is
//! byte-identical to the single-shot pipeline. Metered budgets (finite
//! fuel, fault injectors) route to the preserved straight-line reference
//! pipeline ([`crate::driver::analyze_with_budget_reference`]), whose
//! degradation behaviour depends on exact fuel *ordering* and therefore
//! must not be interleaved with cache hits.
//!
//! ## Parallel execution
//!
//! With [`AnalysisConfig::jobs`] > 1, the per-procedure phases (SSA,
//! symbolic values, forward jump functions, DCE steps, substitution
//! counting) fan out over [`ipcp_analysis::par_map`]'s scoped worker
//! pool, bottom-up phases (MOD/REF, return jump functions) run SCC
//! condensation *waves* ([`ipcp_analysis::scc_waves`]) concurrently, and
//! results merge in deterministic `ProcId`/SCC order. Workers meter
//! their work on private scratch budgets; the coordinator *replays* each
//! item's fuel on the main budget in merge order, so consumption totals
//! — the only thing `RobustnessReport` exposes — are bit-identical to
//! the sequential path at any thread count. (Per-item fuel ordering is
//! unobservable under unmetered budgets: no checkpoint can fail, so no
//! degradation can fire.) The artifact store sits behind per-map
//! `RwLock`s and stats behind a `Mutex`, making [`AnalysisSession`]
//! `Sync`: a config sweep may call [`AnalysisSession::analyze`] from
//! several threads against one shared store. Artifact *values* are
//! deterministic, so a racing double-compute inserts the same bytes;
//! only hit/miss counters can differ under concurrent sweeps.

use crate::audit::{
    classify_disk_miss, diff_ledgers, outcome_facets_changed, render_facets, DiskOutcome,
    IncrementalAudit, Ledger, LedgerProc,
};
use crate::binding::solve_binding_budgeted;
use crate::driver::{
    analyze_with_budget_reference, AnalysisConfig, AnalysisOutcome, PhaseStats, ResourceExhausted,
    SolverKind,
};
use crate::forward::{kind_weight, proc_estimate, site_jfs_for_proc, ForwardJumpFns, SiteJumpFns};
use crate::jump::{JumpFn, JumpFunctionKind};
use crate::retjf::{build_rjf_for_proc, ReturnJumpFns, RjfComposer, RjfConstEval, RjfLattice};
use crate::solver::{entry_env_of, solve_traced, ValSets};
use crate::subst::{count_substitutions_with_ssa_jobs, SubstitutionCounts};
use ipcp_analysis::dce::dce_round_budgeted;
use ipcp_analysis::sccp::{bottom_entry, sccp_budgeted, SccpConfig};
use ipcp_analysis::symeval::{
    symbolic_eval_budgeted, CallSymbolics, NoCallSymbolics, SymEvalOptions, SymMap,
};
use ipcp_analysis::{
    augment_global_vars, compute_modref_obs, par_map, par_map_obs, scc_waves, wave_jobs, Budget,
    CallGraph, CallLattice, ExhaustionPolicy, ModKills, ModRefInfo, PessimisticCalls, Phase, Slot,
};
use ipcp_ir::fingerprint::{combine, fingerprint_debug};
use ipcp_ir::{ProcId, Procedure, Program};
use ipcp_lang::Diagnostics;
use ipcp_obs::{NoopSink, ObsSink, SpanGuard};
use ipcp_ssa::{build_ssa, KillOracle, SsaProc, WorstCaseKills};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// The session's observable phases — the cacheable pipeline stages plus
/// the `pipeline` fallback bucket used for metered (reference-path) runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SessionPhase {
    /// Content fingerprinting of the program and procedure closures.
    Fingerprint,
    /// Call graph construction.
    CallGraph,
    /// MOD/REF summary computation.
    ModRef,
    /// Per-procedure SSA construction.
    Ssa,
    /// Return jump function generation.
    ReturnJf,
    /// Per-procedure symbolic evaluation for forward generation.
    SymVals,
    /// Forward jump function construction.
    ForwardJf,
    /// Interprocedural propagation.
    Solve,
    /// Substitution counting.
    Subst,
    /// Complete-propagation SCCP + dead code elimination rounds.
    Dce,
    /// Whole uncached runs routed to the reference pipeline (metered
    /// budgets only).
    Pipeline,
    /// Persistent cross-run cache traffic (only when a
    /// [`DiskCache`](crate::diskcache::DiskCache) is attached).
    DiskCache,
}

impl SessionPhase {
    /// All phases, in pipeline order.
    pub const ALL: [SessionPhase; 12] = [
        SessionPhase::Fingerprint,
        SessionPhase::CallGraph,
        SessionPhase::ModRef,
        SessionPhase::Ssa,
        SessionPhase::ReturnJf,
        SessionPhase::SymVals,
        SessionPhase::ForwardJf,
        SessionPhase::Solve,
        SessionPhase::Subst,
        SessionPhase::Dce,
        SessionPhase::Pipeline,
        SessionPhase::DiskCache,
    ];

    /// Stable lowercase name, used in reports and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            SessionPhase::Fingerprint => "fingerprint",
            SessionPhase::CallGraph => "callgraph",
            SessionPhase::ModRef => "modref",
            SessionPhase::Ssa => "ssa",
            SessionPhase::ReturnJf => "retjf",
            SessionPhase::SymVals => "symvals",
            SessionPhase::ForwardJf => "forward-jf",
            SessionPhase::Solve => "solve",
            SessionPhase::Subst => "subst",
            SessionPhase::Dce => "dce",
            SessionPhase::Pipeline => "pipeline",
            SessionPhase::DiskCache => "diskcache",
        }
    }
}

impl fmt::Display for SessionPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Wall-clock and cache traffic of one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseCounter {
    /// Accumulated compute time spent in the phase, summed across worker
    /// threads (equals elapsed time when the phase ran sequentially).
    pub wall_nanos: u128,
    /// Coordinator-observed elapsed time of *parallel* fan-outs covering
    /// this phase (0 when it only ever ran sequentially). With workers
    /// active, `wall_nanos / span_nanos` approximates the parallel
    /// speedup.
    pub span_nanos: u128,
    /// Artifact-store hits.
    pub hits: u64,
    /// Artifact-store misses (artifact computed and inserted).
    pub misses: u64,
}

/// Per-phase observability: wall clock plus cache hit/miss counters,
/// accumulated over every analysis the session ran.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Analyses run through the session (cached or reference path).
    pub analyses: u64,
    /// Pipeline rounds executed (≥ 1 per cached analysis; complete
    /// propagation adds one per DCE iteration).
    pub rounds: u64,
    /// Recomputed-artifact totals by
    /// [`MissReason::label`](crate::audit::MissReason::label),
    /// accumulated from every run's incrementality audit.
    pub miss_reasons: BTreeMap<String, u64>,
    counters: BTreeMap<SessionPhase, PhaseCounter>,
}

impl SessionStats {
    /// The counter of one phase (zeros when the phase never ran).
    pub fn counter(&self, phase: SessionPhase) -> PhaseCounter {
        self.counters.get(&phase).copied().unwrap_or_default()
    }

    /// Total artifact-store hits across phases.
    pub fn total_hits(&self) -> u64 {
        self.counters.values().map(|c| c.hits).sum()
    }

    /// Total artifact-store misses across phases.
    pub fn total_misses(&self) -> u64 {
        self.counters.values().map(|c| c.misses).sum()
    }

    fn record_wall(&mut self, phase: SessionPhase, elapsed: Duration) {
        self.counters.entry(phase).or_default().wall_nanos += elapsed.as_nanos();
    }

    fn record_span(&mut self, phase: SessionPhase, elapsed: Duration) {
        self.counters.entry(phase).or_default().span_nanos += elapsed.as_nanos();
    }

    fn hit(&mut self, phase: SessionPhase) {
        self.counters.entry(phase).or_default().hits += 1;
    }

    fn miss(&mut self, phase: SessionPhase) {
        self.counters.entry(phase).or_default().misses += 1;
    }

    /// Renders the stats as a JSON object (hand-rolled; the workspace
    /// carries no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"analyses\":{},\"rounds\":{},\"phases\":{{",
            self.analyses, self.rounds
        ));
        let mut first = true;
        for phase in SessionPhase::ALL {
            let c = self.counter(phase);
            if c == PhaseCounter::default() {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\"{}\":{{\"wall_us\":{},\"hits\":{},\"misses\":{}",
                phase.name(),
                c.wall_nanos / 1_000,
                c.hits,
                c.misses
            ));
            if c.span_nanos > 0 {
                out.push_str(&format!(",\"span_us\":{}", c.span_nanos / 1_000));
            }
            out.push('}');
        }
        out.push('}');
        if !self.miss_reasons.is_empty() {
            out.push_str(",\"miss_reasons\":{");
            let mut first = true;
            for (label, n) in &self.miss_reasons {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!("\"{label}\":{n}"));
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

impl fmt::Display for SessionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "analyses: {}; rounds: {}", self.analyses, self.rounds)?;
        // Most expensive phases first: parallel span descending, then
        // accumulated wall time, then pipeline order as the stable tie.
        let mut ordered: Vec<(usize, SessionPhase, PhaseCounter)> = SessionPhase::ALL
            .iter()
            .enumerate()
            .map(|(i, &p)| (i, p, self.counter(p)))
            .filter(|(_, _, c)| *c != PhaseCounter::default())
            .collect();
        ordered.sort_by(|a, b| {
            b.2.span_nanos
                .cmp(&a.2.span_nanos)
                .then(b.2.wall_nanos.cmp(&a.2.wall_nanos))
                .then(a.0.cmp(&b.0))
        });
        let rows: Vec<[String; 6]> = ordered
            .into_iter()
            .map(|(_, phase, c)| {
                let (span, par) = if c.span_nanos > 0 {
                    (
                        (c.span_nanos / 1_000).to_string(),
                        format!("{:.1}x", c.wall_nanos as f64 / c.span_nanos as f64),
                    )
                } else {
                    ("-".to_string(), "-".to_string())
                };
                [
                    phase.name().to_string(),
                    (c.wall_nanos / 1_000).to_string(),
                    c.hits.to_string(),
                    c.misses.to_string(),
                    span,
                    par,
                ]
            })
            .collect();
        // Columns size to their widest cell (header included), so the
        // table never shifts when a value outgrows a fixed width.
        let headers = ["phase", "wall(µs)", "hits", "misses", "span(µs)", "par×"];
        let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
        for row in &rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.chars().count());
            }
        }
        write!(f, "{:<w$}", headers[0], w = widths[0])?;
        for (h, w) in headers.iter().zip(&widths).skip(1) {
            write!(f, " {h:>w$}")?;
        }
        writeln!(f)?;
        for row in &rows {
            write!(f, "{:<w$}", row[0], w = widths[0])?;
            for (cell, w) in row.iter().zip(&widths).skip(1) {
                write!(f, " {cell:>w$}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// How return jump functions feed the caller's symbolic evaluation — the
/// facet of the configuration that symbolic values and forward jump
/// functions actually read (`return_jump_functions`/`mod_info`/
/// `rjf_full_composition` collapse into this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CallSymMode {
    /// No recovery through calls (RJFs disabled *or* no MOD info).
    Pessimistic,
    /// The paper's constant-or-⊥ evaluation rule.
    ConstEval,
    /// The full-composition extension.
    Compose,
}

fn call_sym_mode(config: &AnalysisConfig) -> CallSymMode {
    if !(config.return_jump_functions && config.mod_info) {
        CallSymMode::Pessimistic
    } else if config.rjf_full_composition {
        CallSymMode::Compose
    } else {
        CallSymMode::ConstEval
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SsaKey {
    closure_fp: u64,
    mod_info: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct RjfKey {
    closure_fp: u64,
    mod_info: bool,
    gsa: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SymKey {
    closure_fp: u64,
    mod_info: bool,
    gsa: bool,
    mode: CallSymMode,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ForwardKey {
    closure_fp: u64,
    mod_info: bool,
    gsa: bool,
    mode: CallSymMode,
    kind: JumpFunctionKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SolveKey {
    state_fp: u64,
    mod_info: bool,
    gsa: bool,
    mode: CallSymMode,
    kind: JumpFunctionKind,
    solver: SolverKind,
    /// Conditional propagation (branch feasibility) changes the `VAL`
    /// sets the solve produces.
    cond: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SubstKey {
    state_fp: u64,
    mod_info: bool,
    gsa: bool,
    mode: CallSymMode,
    /// `(jump_function, solver, branch_feasibility)` when
    /// interprocedural propagation seeded the count; `None` for the
    /// intraprocedural baseline.
    forward: Option<(JumpFunctionKind, SolverKind, bool)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct DceKey {
    closure_fp: u64,
    mod_info: bool,
    gsa: bool,
    /// Whether call effects go through the RJF lattice.
    recovery: bool,
    /// Fingerprint of the procedure's entry `VAL` set (or of `None` for
    /// the unseeded baseline).
    env_fp: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CountingKey {
    /// Fingerprint of the pristine program the count runs over.
    orig_fp: u64,
    /// Fingerprint of the final (post-DCE) state whose solve produced
    /// the seeding `VAL` sets.
    final_fp: u64,
    mod_info: bool,
    /// The `VAL` sets seeding the count were solved under this facet,
    /// even though the counting pass itself always uses default
    /// symbolic-evaluation options.
    gsa: bool,
    mode: CallSymMode,
    rjf: bool,
    forward: Option<(JumpFunctionKind, SolverKind, bool)>,
}

/// A cached artifact plus the fuel its computation consumed, replayed on
/// every hit so budget accounting matches the uncached pipeline.
struct Cached<T> {
    value: Arc<T>,
    fuel: u64,
}

impl<T> Clone for Cached<T> {
    fn clone(&self) -> Self {
        Cached {
            value: Arc::clone(&self.value),
            fuel: self.fuel,
        }
    }
}

/// Result of one cached DCE step over a procedure.
struct DceStep {
    proc: Procedure,
    changed: bool,
}

/// The session-scoped artifact store. Every map is keyed by content
/// fingerprints plus the configuration facets its phase reads; see the
/// module docs for the key structure.
///
/// Each map sits behind its own `RwLock`, so concurrent cache *hits*
/// (the common case in a warm sweep) only take read locks and never
/// serialize; writes hold one map's lock for a single insert.
#[derive(Default)]
pub struct ArtifactStore {
    call_graphs: RwLock<HashMap<u64, Arc<CallGraph>>>,
    modrefs: RwLock<HashMap<u64, Cached<ModRefInfo>>>,
    /// Per-procedure closure fingerprints of the *augmented* program, by
    /// pre-augmentation state fingerprint (augmentation is deterministic,
    /// so the state fingerprint determines them).
    closures: RwLock<HashMap<u64, Arc<ClosureData>>>,
    ssas: RwLock<HashMap<SsaKey, Arc<SsaProc>>>,
    rjf_procs: RwLock<HashMap<RjfKey, Cached<BTreeMap<Slot, JumpFn>>>>,
    syms: RwLock<HashMap<SymKey, Cached<SymMap>>>,
    forward_procs: RwLock<HashMap<ForwardKey, Cached<Vec<SiteJumpFns>>>>,
    solves: RwLock<HashMap<SolveKey, Cached<ValSets>>>,
    substs: RwLock<HashMap<SubstKey, Arc<SubstitutionCounts>>>,
    dces: RwLock<HashMap<DceKey, Cached<DceStep>>>,
    countings: RwLock<HashMap<CountingKey, Cached<SubstitutionCounts>>>,
}

impl ArtifactStore {
    /// Total number of cached artifacts, across all phases.
    pub fn len(&self) -> usize {
        self.call_graphs.read().unwrap().len()
            + self.modrefs.read().unwrap().len()
            + self.closures.read().unwrap().len()
            + self.ssas.read().unwrap().len()
            + self.rjf_procs.read().unwrap().len()
            + self.syms.read().unwrap().len()
            + self.forward_procs.read().unwrap().len()
            + self.solves.read().unwrap().len()
            + self.substs.read().unwrap().len()
            + self.dces.read().unwrap().len()
            + self.countings.read().unwrap().len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The fingerprint components of one program state: per-procedure own
/// and closure fingerprints plus the global-table fingerprint. Cache
/// keys read the closures (via `Index`); the incrementality audit's
/// ledger records all three.
struct ClosureData {
    /// Closure fingerprints, indexed by `ProcId::index()`.
    closures: Vec<u64>,
    /// Own-IR fingerprints, indexed by `ProcId::index()`.
    own: Vec<u64>,
    /// Fingerprint of the global table and entry procedure.
    globals: u64,
}

impl std::ops::Index<usize> for ClosureData {
    type Output = u64;
    fn index(&self, i: usize) -> &u64 {
        &self.closures[i]
    }
}

/// Audit inputs threaded into the uncached pipeline: the previous
/// run's ledger and what the disk-cache consult (if any) observed.
struct AuditCtx {
    prev: Option<Ledger>,
    disk: Option<DiskOutcome>,
    /// The disk-cache outcome key this run will store under, remembered
    /// in the ledger so a later absence can be read as an eviction.
    outcome_key: Option<u64>,
}

/// Per-round derived context: the program-state fingerprint and the
/// per-procedure closure fingerprints all cache keys build on.
struct RoundCtx {
    state_fp: u64,
    closure_fps: Arc<ClosureData>,
    mod_info: bool,
    gsa: bool,
    mode: CallSymMode,
}

/// A memoized pass manager over one program. See the module docs.
pub struct AnalysisSession {
    base: Program,
    /// `fingerprint_debug(&base)`, computed once: every analysis starts
    /// from the pristine program, so round 0 never re-fingerprints it.
    base_fp: u64,
    store: ArtifactStore,
    stats: Mutex<SessionStats>,
    /// Optional persistent backing store; outcomes of unmetered runs are
    /// served from and written through to it.
    disk: Option<Arc<crate::diskcache::DiskCache>>,
    /// Label under which the incrementality-audit ledger persists next
    /// to the disk cache (typically the analyzed file's path). Without
    /// one — or without a disk cache — the ledger lives in memory only.
    audit_label: Option<String>,
    /// The previous run's ledger (in-memory fallback when no disk cache
    /// or label is set).
    prev_ledger: Mutex<Option<Ledger>>,
    /// The most recent run's incrementality audit (unmetered runs only).
    last_audit: Mutex<Option<Arc<IncrementalAudit>>>,
}

impl AnalysisSession {
    /// Opens a session over `program`.
    pub fn new(program: &Program) -> Self {
        AnalysisSession {
            base: program.clone(),
            base_fp: fingerprint_debug(program),
            store: ArtifactStore::default(),
            stats: Mutex::new(SessionStats::default()),
            disk: None,
            audit_label: None,
            prev_ledger: Mutex::new(None),
            last_audit: Mutex::new(None),
        }
    }

    /// Names this session's work for the incrementality audit. With a
    /// disk cache attached, the ledger persists under
    /// `audit/<label>.ledger` in the cache directory, so a later process
    /// analyzing under the same label can attribute its recomputation to
    /// the exact procedures and facets that changed. The analyzed file's
    /// path is the natural label.
    pub fn set_audit_label(&mut self, label: &str) {
        self.audit_label = Some(label.to_string());
    }

    /// The incrementality audit of the most recent unmetered analysis,
    /// if one has run.
    pub fn last_audit(&self) -> Option<Arc<IncrementalAudit>> {
        self.last_audit.lock().unwrap().clone()
    }

    /// The previous run's ledger: the persisted one under the audit
    /// label when a disk cache is attached, else the in-memory one from
    /// this session's last analysis.
    fn previous_ledger(&self) -> Option<Ledger> {
        if let (Some(disk), Some(label)) = (self.disk.as_deref(), self.audit_label.as_deref()) {
            return crate::audit::load_ledger(disk.dir(), label);
        }
        self.prev_ledger.lock().unwrap().clone()
    }

    /// Records one run's audit and advances the ledger (to disk when a
    /// cache and label are attached, and always in memory).
    fn commit_audit(&self, audit: IncrementalAudit, ledger: Ledger) {
        {
            let mut stats = self.stats.lock().unwrap();
            for (label, n) in audit.miss_reason_totals() {
                *stats.miss_reasons.entry(label).or_insert(0) += n;
            }
        }
        *self.last_audit.lock().unwrap() = Some(Arc::new(audit));
        if let (Some(disk), Some(label)) = (self.disk.as_deref(), self.audit_label.as_deref()) {
            crate::audit::store_ledger(disk.dir(), label, &ledger);
        }
        *self.prev_ledger.lock().unwrap() = Some(ledger);
    }

    /// Attaches a persistent [`DiskCache`](crate::diskcache::DiskCache):
    /// unmetered analyses first consult it (validated entries are
    /// returned verbatim, so warm results are bit-identical to cold) and
    /// write their outcomes through on a miss. Metered runs bypass it,
    /// exactly as they bypass the in-memory store.
    pub fn attach_disk_cache(&mut self, cache: Arc<crate::diskcache::DiskCache>) {
        self.disk = Some(cache);
    }

    /// The attached persistent cache, if any.
    pub fn disk_cache(&self) -> Option<&Arc<crate::diskcache::DiskCache>> {
        self.disk.as_ref()
    }

    /// Compiles Minifor source and opens a session over it.
    ///
    /// # Errors
    ///
    /// Returns front-end diagnostics if the source does not compile.
    pub fn from_source(source: &str) -> Result<Self, Diagnostics> {
        Ok(Self::new(&ipcp_ir::compile_to_ir(source)?))
    }

    /// The session's (pristine) program.
    pub fn program(&self) -> &Program {
        &self.base
    }

    /// The pristine program's fingerprint — the identity every cache key
    /// (in-memory and on-disk) builds on.
    pub fn base_fingerprint(&self) -> u64 {
        self.base_fp
    }

    /// A cheap order-of-magnitude estimate of the session's resident
    /// footprint: the base program plus the accumulated artifact store.
    /// Used by byte-budgeted session registries (the `serve` tenant
    /// cache) the same way entry sizes drive disk-cache eviction; it
    /// only needs to rank sessions and track growth, not be exact.
    pub fn approx_footprint_bytes(&self) -> u64 {
        let instrs: usize = self
            .base
            .procs
            .iter()
            .map(|p| p.blocks.iter().map(|b| b.instrs.len() + 1).sum::<usize>())
            .sum();
        // ~64 bytes per IR instruction, ~2 KiB per cached artifact
        // (outcomes dominate; per-proc artifacts are much smaller), plus
        // a fixed base for the session itself.
        instrs as u64 * 64 + self.store.len() as u64 * 2048 + 4096
    }

    /// A snapshot of the observability counters accumulated so far.
    pub fn stats(&self) -> SessionStats {
        self.stats.lock().unwrap().clone()
    }

    /// The artifact store (for introspection; tests and diagnostics).
    pub fn store(&self) -> &ArtifactStore {
        &self.store
    }

    fn phase_hit(&self, phase: SessionPhase) {
        self.stats.lock().unwrap().hit(phase);
    }

    fn phase_miss(&self, phase: SessionPhase) {
        self.stats.lock().unwrap().miss(phase);
    }

    fn phase_wall(&self, phase: SessionPhase, elapsed: Duration) {
        self.stats.lock().unwrap().record_wall(phase, elapsed);
    }

    fn phase_span(&self, phase: SessionPhase, elapsed: Duration) {
        self.stats.lock().unwrap().record_span(phase, elapsed);
    }

    /// Runs the configured analysis, reusing cached artifacts where the
    /// fingerprints and configuration facets allow.
    ///
    /// Takes `&self`: the store is internally synchronized, so a config
    /// sweep may fan analyses out over threads against one session.
    pub fn analyze(&self, config: &AnalysisConfig) -> AnalysisOutcome {
        self.analyze_with_budget(config, &Budget::for_limit(config.fuel))
    }

    /// [`Self::analyze`] honoring [`AnalysisConfig::on_exhausted`].
    ///
    /// # Errors
    ///
    /// Returns [`ResourceExhausted`] when the budget ran dry and the
    /// policy is [`ExhaustionPolicy::Error`].
    pub fn analyze_checked(
        &self,
        config: &AnalysisConfig,
    ) -> Result<AnalysisOutcome, ResourceExhausted> {
        let outcome = self.analyze(config);
        if config.on_exhausted == ExhaustionPolicy::Error && outcome.robustness.exhausted {
            return Err(ResourceExhausted {
                report: outcome.robustness,
            });
        }
        Ok(outcome)
    }

    /// Runs the analysis against a caller-supplied fuel source. Metered
    /// budgets take the straight-line reference pipeline (see the module
    /// docs on fuel semantics); unmetered budgets use the artifact store
    /// and, with `config.jobs > 1`, the parallel fan-outs.
    pub fn analyze_with_budget(&self, config: &AnalysisConfig, budget: &Budget) -> AnalysisOutcome {
        self.analyze_with_budget_obs(config, budget, &NoopSink)
    }

    /// [`Self::analyze_checked`] with structured-event tracing: every
    /// phase records a span, the solver records lattice transitions, and
    /// table shapes land in counters. With a [`NoopSink`] this is
    /// byte-for-byte the untraced analysis — every sink call inlines to
    /// nothing.
    ///
    /// # Errors
    ///
    /// Returns [`ResourceExhausted`] when the budget ran dry and the
    /// policy is [`ExhaustionPolicy::Error`].
    pub fn analyze_checked_obs(
        &self,
        config: &AnalysisConfig,
        sink: &dyn ObsSink,
    ) -> Result<AnalysisOutcome, ResourceExhausted> {
        let outcome = self.analyze_with_budget_obs(config, &Budget::for_limit(config.fuel), sink);
        if config.on_exhausted == ExhaustionPolicy::Error && outcome.robustness.exhausted {
            return Err(ResourceExhausted {
                report: outcome.robustness,
            });
        }
        Ok(outcome)
    }

    /// [`Self::analyze_with_budget`] with an observability sink threaded
    /// through every phase. Metered budgets still route to the reference
    /// pipeline (wrapped in a single `pipeline` span), so robustness
    /// accounting is untouched by tracing.
    pub fn analyze_with_budget_obs(
        &self,
        config: &AnalysisConfig,
        budget: &Budget,
        sink: &dyn ObsSink,
    ) -> AnalysisOutcome {
        self.stats.lock().unwrap().analyses += 1;
        if !budget.is_unmetered() {
            let start = Instant::now();
            let _span = SpanGuard::enter(sink, "pipeline", "phase");
            let outcome = analyze_with_budget_reference(&self.base, config, budget);
            self.phase_wall(SessionPhase::Pipeline, start.elapsed());
            return outcome;
        }
        let Some(disk) = self.disk.as_deref() else {
            let audit = AuditCtx {
                prev: self.previous_ledger(),
                disk: None,
                outcome_key: None,
            };
            return self.analyze_uncached_obs(config, budget, sink, audit);
        };

        // Persistent warm path: a validated entry is the cold outcome,
        // returned verbatim — bit-identity by construction.
        let key = crate::diskcache::outcome_key(self.base_fp, config);
        let prev_ledger = self.previous_ledger();
        let quarantined_before = disk.stats().quarantined;
        let start = Instant::now();
        let loaded = {
            let _span = SpanGuard::enter(sink, "diskcache", "phase");
            disk.load_classified(key).and_then(|payload| {
                match ipcp_ir::codec::decode_from_slice::<AnalysisOutcome>(&payload) {
                    Ok(outcome) => Ok(outcome),
                    Err(_) => {
                        // Framing validated but the payload didn't parse:
                        // codec skew within one format version.
                        disk.quarantine_key(key, "payload decode failed");
                        Err(crate::diskcache::LoadMiss::Invalid("payload decode failed"))
                    }
                }
            })
        };
        let quarantined = disk.stats().quarantined - quarantined_before;
        if quarantined > 0 {
            sink.count("diskcache.quarantine", quarantined);
        }
        let miss = match loaded {
            Ok(outcome) => {
                // Replay the recorded fuel and anomalies into the live
                // budget so callers inspecting it afterwards see the same
                // totals a cold run would have left behind.
                budget.checkpoint(Phase::SymEval, outcome.robustness.fuel_consumed);
                for (what, count) in &outcome.robustness.anomalies {
                    for _ in 0..*count {
                        budget.record_anomaly(what);
                    }
                }
                self.phase_hit(SessionPhase::DiskCache);
                self.phase_wall(SessionPhase::DiskCache, start.elapsed());
                sink.count("diskcache.hit", 1);
                // A served entry means nothing was recomputed: the audit
                // is all-up-to-date and the ledger advances not at all
                // (a later edit still diffs against the run that wrote
                // the entry).
                *self.last_audit.lock().unwrap() = Some(Arc::new(crate::audit::warm_hit_audit(
                    self.base.procs.len() as u64,
                )));
                return outcome;
            }
            Err(miss) => miss,
        };
        self.phase_miss(SessionPhase::DiskCache);
        self.phase_wall(SessionPhase::DiskCache, start.elapsed());
        sink.count("diskcache.miss", 1);

        let base_changed = prev_ledger
            .as_ref()
            .is_some_and(|p| p.base_fp != self.base_fp);
        let facets_changed = prev_ledger
            .as_ref()
            .map(|p| outcome_facets_changed(p, config))
            .unwrap_or_default();
        let reason = classify_disk_miss(
            prev_ledger.as_ref(),
            &miss,
            key,
            base_changed,
            &facets_changed,
        );
        let audit = AuditCtx {
            prev: prev_ledger,
            disk: Some(DiskOutcome::Miss(reason)),
            outcome_key: Some(key),
        };
        let outcome = self.analyze_uncached_obs(config, budget, sink, audit);

        let start = Instant::now();
        disk.store(key, &ipcp_ir::codec::encode_to_vec(&outcome));
        self.phase_wall(SessionPhase::DiskCache, start.elapsed());
        outcome
    }

    /// The in-memory (single-process) memoized pipeline behind
    /// [`Self::analyze_with_budget_obs`]; assumes an unmetered budget.
    fn analyze_uncached_obs(
        &self,
        config: &AnalysisConfig,
        budget: &Budget,
        sink: &dyn ObsSink,
        audit: AuditCtx,
    ) -> AnalysisOutcome {
        let jobs = crate::parallel::effective_jobs(config);
        let mut program = self.base.clone();
        let mut stats = PhaseStats::default();
        let mut first_round = true;
        let mut audit = Some(audit);

        loop {
            self.stats.lock().unwrap().rounds += 1;

            // Program-level artifacts: fingerprint, call graph, MOD/REF.
            // The call graph is built against the pre-augmentation
            // program, exactly like the single-shot pipeline (call edges
            // are unaffected by augmentation). Round 0 always runs over
            // the pristine program, whose fingerprint is precomputed.
            let start = Instant::now();
            let state_fp = if first_round {
                self.base_fp
            } else {
                fingerprint_debug(&program)
            };
            first_round = false;
            self.phase_wall(SessionPhase::Fingerprint, start.elapsed());

            let cg = {
                let _span = SpanGuard::enter(sink, "call_graph", "phase");
                self.cached_call_graph(&program, state_fp)
            };
            let modref = self.cached_modref(&program, &cg, state_fp, budget, jobs, sink);
            augment_global_vars(&mut program, &modref);

            let closure_fps = {
                let _span = SpanGuard::enter(sink, "closures", "phase");
                self.cached_closures(&program, &cg, state_fp, jobs)
            };

            let round = RoundCtx {
                state_fp,
                closure_fps,
                mod_info: config.mod_info,
                gsa: config.gsa,
                mode: call_sym_mode(config),
            };

            // Incrementality audit, round 0 only: the pristine program's
            // key components are the ones worth diffing (DCE rounds feed
            // on round-0 artifacts). Attribute every would-be
            // recomputation to the component that moved.
            if let Some(actx) = audit.take() {
                let start = Instant::now();
                let mut ledger = Ledger {
                    base_fp: self.base_fp,
                    globals_fp: round.closure_fps.globals,
                    procs: program
                        .procs
                        .iter()
                        .enumerate()
                        .map(|(i, p)| LedgerProc {
                            name: p.name.clone(),
                            own_fp: round.closure_fps.own[i],
                            closure_fp: round.closure_fps.closures[i],
                        })
                        .collect(),
                    facets: render_facets(config),
                    outcome_keys: actx
                        .prev
                        .as_ref()
                        .map(|p| p.outcome_keys.clone())
                        .unwrap_or_default(),
                };
                if let Some(key) = actx.outcome_key {
                    ledger.remember_outcome_key(key);
                }
                let report = diff_ledgers(actx.prev.as_ref(), &ledger, actx.disk);
                self.commit_audit(report, ledger);
                self.phase_wall(SessionPhase::Fingerprint, start.elapsed());
            }

            // Everything below borrows `program` immutably; DCE rewrites
            // are collected and applied after the borrows end.
            let (substitutions, vals, changed, new_procs) = {
                let program = &program;
                let mod_kills;
                let kills: &dyn KillOracle = if config.mod_info {
                    mod_kills = ModKills::new(program, &modref);
                    &mod_kills
                } else {
                    &WorstCaseKills
                };
                let sym_options = SymEvalOptions {
                    gated_phis: config.gsa,
                };

                let rjfs: ReturnJumpFns = if config.return_jump_functions {
                    let _span = SpanGuard::enter(sink, "return_jfs", "phase");
                    self.cached_return_jfs(
                        program,
                        &cg,
                        &round,
                        kills,
                        sym_options,
                        budget,
                        jobs,
                        sink,
                    )
                } else {
                    ReturnJumpFns::empty(program.procs.len())
                };
                rjfs.emit_counters(sink);
                stats.return_jfs = rjfs.useful_count();

                let rjf_lattice = RjfLattice { rjfs: &rjfs };
                let calls: &dyn CallLattice = if round.mode != CallSymMode::Pessimistic {
                    &rjf_lattice
                } else {
                    &PessimisticCalls
                };

                let vals: Option<Arc<ValSets>> = if config.interprocedural {
                    let jfs = {
                        let _span = SpanGuard::enter(sink, "forward_jfs", "phase");
                        self.cached_forward_jfs(
                            program,
                            &cg,
                            &modref,
                            config.jump_function,
                            &rjfs,
                            &round,
                            kills,
                            sym_options,
                            budget,
                            jobs,
                            sink,
                        )
                    };
                    jfs.emit_counters(sink);
                    stats.forward_jfs = jfs.count();
                    stats.useful_forward_jfs = jfs.useful_count();
                    let v = {
                        let _span = SpanGuard::enter(sink, "solve", "phase");
                        self.cached_solve(
                            program, &cg, &modref, &jfs, config, &round, kills, calls, budget, sink,
                        )
                    };
                    sink.count("solver.iterations", v.iterations() as u64);
                    stats.solver_iterations += v.iterations();
                    stats.pruned_call_edges += v.pruned_call_edges();
                    Some(v)
                } else {
                    None
                };

                let substitutions = {
                    let _span = SpanGuard::enter(sink, "substitute", "phase");
                    self.cached_subst(
                        program,
                        &cg,
                        calls,
                        vals.as_deref(),
                        config,
                        &round,
                        kills,
                        jobs,
                    )
                };
                sink.count("subst.total", substitutions.total as u64);

                let mut changed = false;
                let mut new_procs = Vec::new();
                if config.complete_propagation {
                    let _span = SpanGuard::enter(sink, "dce", "phase");
                    let start = Instant::now();
                    // Every procedure is rewritten (like the single-shot
                    // loop), not just the changed ones — the `changed`
                    // flag only decides whether another round runs.
                    let pids: Vec<ProcId> = program.proc_ids().collect();
                    let steps = par_map_obs(jobs, &pids, sink, "dce.proc", |_, &pid| {
                        self.dce_step_for_proc(program, pid, &round, kills, calls, vals.as_deref())
                    });
                    for (pid, (step, fuel)) in pids.into_iter().zip(steps) {
                        budget.checkpoint(Phase::Sccp, fuel);
                        changed |= step.changed;
                        new_procs.push((pid, step.proc));
                    }
                    if jobs > 1 {
                        self.phase_span(SessionPhase::Dce, start.elapsed());
                    }
                }
                (substitutions, vals, changed, new_procs)
            };

            for (pid, proc) in new_procs {
                *program.proc_mut(pid) = proc;
            }
            if changed {
                stats.dce_rounds += 1;
                continue;
            }

            let constants: Vec<BTreeMap<Slot, i64>> = match vals.as_deref() {
                Some(v) => program.proc_ids().map(|p| v.constants(p)).collect(),
                None => Vec::new(),
            };

            // Complete propagation substitutes into the *original*
            // source: recount against the pristine program with the
            // final (DCE-refined) CONSTANTS.
            let substitutions = if stats.dce_rounds > 0 {
                let _span = SpanGuard::enter(sink, "counting", "phase");
                let final_fp = fingerprint_debug(&program);
                self.cached_counting_pass(config, vals.as_deref(), final_fp, budget, jobs, sink)
            } else {
                substitutions
            };

            return AnalysisOutcome {
                program,
                constants,
                substitutions: (*substitutions).clone(),
                stats,
                robustness: budget.report(),
            };
        }
    }

    /// Closure fingerprints of the augmented program, cached by the
    /// pre-augmentation state fingerprint (augmentation is a pure
    /// function of that state, so the key is sound).
    fn cached_closures(
        &self,
        program: &Program,
        cg: &CallGraph,
        state_fp: u64,
        jobs: usize,
    ) -> Arc<ClosureData> {
        let start = Instant::now();
        let hit = self.store.closures.read().unwrap().get(&state_fp).cloned();
        let fps = match hit {
            Some(fps) => fps,
            None => {
                let fps = Arc::new(closure_fingerprints(program, cg, jobs));
                self.store
                    .closures
                    .write()
                    .unwrap()
                    .insert(state_fp, Arc::clone(&fps));
                fps
            }
        };
        self.phase_wall(SessionPhase::Fingerprint, start.elapsed());
        fps
    }

    fn cached_call_graph(&self, program: &Program, state_fp: u64) -> Arc<CallGraph> {
        let start = Instant::now();
        let hit = self
            .store
            .call_graphs
            .read()
            .unwrap()
            .get(&state_fp)
            .cloned();
        let cg = match hit {
            Some(cg) => {
                self.phase_hit(SessionPhase::CallGraph);
                cg
            }
            None => {
                self.phase_miss(SessionPhase::CallGraph);
                let cg = Arc::new(CallGraph::new(program));
                self.store
                    .call_graphs
                    .write()
                    .unwrap()
                    .insert(state_fp, Arc::clone(&cg));
                cg
            }
        };
        self.phase_wall(SessionPhase::CallGraph, start.elapsed());
        cg
    }

    #[allow(clippy::too_many_arguments)]
    fn cached_modref(
        &self,
        program: &Program,
        cg: &CallGraph,
        state_fp: u64,
        budget: &Budget,
        jobs: usize,
        sink: &dyn ObsSink,
    ) -> Arc<ModRefInfo> {
        let start = Instant::now();
        let hit = self.store.modrefs.read().unwrap().get(&state_fp).cloned();
        let modref = match hit {
            Some(cached) => {
                self.phase_hit(SessionPhase::ModRef);
                budget.checkpoint(Phase::ModRef, cached.fuel);
                cached.value
            }
            None => {
                self.phase_miss(SessionPhase::ModRef);
                let before = budget.fuel_consumed();
                // The wave-parallel fixpoint draws the same fuel as the
                // sequential pass (and delegates to it at jobs <= 1).
                let modref = Arc::new(compute_modref_obs(program, cg, budget, jobs, sink));
                let fuel = budget.fuel_consumed() - before;
                self.store.modrefs.write().unwrap().insert(
                    state_fp,
                    Cached {
                        value: Arc::clone(&modref),
                        fuel,
                    },
                );
                modref
            }
        };
        self.phase_wall(SessionPhase::ModRef, start.elapsed());
        modref
    }

    fn cached_ssa(
        &self,
        program: &Program,
        pid: ProcId,
        kills: &dyn KillOracle,
        round: &RoundCtx,
    ) -> Arc<SsaProc> {
        let key = SsaKey {
            closure_fp: round.closure_fps[pid.index()],
            mod_info: round.mod_info,
        };
        let start = Instant::now();
        let hit = self.store.ssas.read().unwrap().get(&key).cloned();
        let ssa = match hit {
            Some(ssa) => {
                self.phase_hit(SessionPhase::Ssa);
                ssa
            }
            None => {
                self.phase_miss(SessionPhase::Ssa);
                let ssa = Arc::new(build_ssa(program, program.proc(pid), kills));
                self.store
                    .ssas
                    .write()
                    .unwrap()
                    .insert(key, Arc::clone(&ssa));
                ssa
            }
        };
        self.phase_wall(SessionPhase::Ssa, start.elapsed());
        ssa
    }

    /// One procedure's return-jump-function table, cached, with the fuel
    /// to replay on the main budget. `rjfs` must already hold the final
    /// tables of every callee outside `pid`'s SCC (and the SCC-local
    /// partial tables when `pid` is recursive) — exactly what the
    /// bottom-up SCC order and the wave schedule both guarantee.
    ///
    /// Misses compute on a private scratch budget so parallel workers
    /// never touch the (thread-local) main budget; the caller replays
    /// the returned fuel in deterministic merge order. Only consumption
    /// *totals* are observable under unmetered budgets, so the reordering
    /// is invisible.
    fn rjf_for_proc(
        &self,
        program: &Program,
        pid: ProcId,
        rjfs: &dyn crate::retjf::RjfSource,
        round: &RoundCtx,
        kills: &dyn KillOracle,
        options: SymEvalOptions,
    ) -> (BTreeMap<Slot, JumpFn>, u64) {
        let key = RjfKey {
            closure_fp: round.closure_fps[pid.index()],
            mod_info: round.mod_info,
            gsa: options.gated_phis,
        };
        let hit = self.store.rjf_procs.read().unwrap().get(&key).cloned();
        if let Some(cached) = hit {
            self.phase_hit(SessionPhase::ReturnJf);
            return ((*cached.value).clone(), cached.fuel);
        }
        self.phase_miss(SessionPhase::ReturnJf);
        let scratch = Budget::unlimited();
        // Mirror the single-shot builder's per-procedure draw.
        scratch.checkpoint(Phase::ReturnJf, 1);
        let ssa = self.cached_ssa(program, pid, kills, round);
        let start = Instant::now();
        let map = build_rjf_for_proc(program, pid, rjfs, &ssa, options, &scratch);
        let fuel = scratch.fuel_consumed();
        self.store.rjf_procs.write().unwrap().insert(
            key,
            Cached {
                value: Arc::new(map.clone()),
                fuel,
            },
        );
        self.phase_wall(SessionPhase::ReturnJf, start.elapsed());
        (map, fuel)
    }

    /// Builds the full return-jump-function table bottom-up over the
    /// call-graph condensation, reusing cached per-procedure tables.
    ///
    /// Scheduling runs in SCC *waves*: every SCC of one wave only calls
    /// into strictly lower (already merged) waves, so all of a wave's
    /// SCCs build concurrently. Recursive SCCs layer a copy-free
    /// [`crate::retjf::SccOverlay`] over the shared table and run their
    /// members in bottom-up order, exactly like the sequential pass. Merging per wave in ascending SCC order
    /// keeps the result and the fuel replay deterministic.
    #[allow(clippy::too_many_arguments)]
    fn cached_return_jfs(
        &self,
        program: &Program,
        cg: &CallGraph,
        round: &RoundCtx,
        kills: &dyn KillOracle,
        options: SymEvalOptions,
        budget: &Budget,
        jobs: usize,
        sink: &dyn ObsSink,
    ) -> ReturnJumpFns {
        let mut rjfs = ReturnJumpFns::empty(program.procs.len());
        let sccs = cg.sccs();
        // Per-procedure work estimate (≈ instruction visits) for the
        // cost-based wave gate.
        let est: Vec<u64> = program
            .proc_ids()
            .map(|pid| {
                let proc = program.proc(pid);
                proc.block_ids()
                    .map(|b| proc.block(b).instrs.len() as u64 + 1)
                    .sum::<u64>()
                    .max(1)
            })
            .collect();
        let start = Instant::now();
        for wave in scc_waves(cg) {
            // Narrow or featherweight waves can't amortize a spawn; the
            // cost gate runs them inline and saves the fork/join for
            // levels with real work.
            let units: u64 = wave
                .iter()
                .flat_map(|&si| sccs[si].iter())
                .map(|&pid| est[pid.index()])
                .sum();
            let wave_jobs = wave_jobs(jobs, wave.len(), units);
            let built = par_map_obs(wave_jobs, &wave, sink, "return_jfs.proc", |_, &scc_idx| {
                let scc = &sccs[scc_idx];
                if let [pid] = scc[..] {
                    let (map, fuel) = self.rjf_for_proc(program, pid, &rjfs, round, kills, options);
                    vec![(pid, map, fuel)]
                } else {
                    // Recursive SCC: members read each other's partial
                    // tables, so give the SCC a copy-free overlay and run
                    // its members in the sequential bottom-up order.
                    let mut overlay = crate::retjf::SccOverlay::new(&rjfs);
                    let mut out = Vec::with_capacity(scc.len());
                    for &pid in scc {
                        let (map, fuel) =
                            self.rjf_for_proc(program, pid, &overlay, round, kills, options);
                        overlay.push(pid, map.clone());
                        out.push((pid, map, fuel));
                    }
                    out
                }
            });
            for (pid, map, fuel) in built.into_iter().flatten() {
                budget.checkpoint(Phase::ReturnJf, fuel);
                rjfs.set_proc(pid, map);
            }
        }
        if jobs > 1 {
            self.phase_span(SessionPhase::ReturnJf, start.elapsed());
        }
        rjfs
    }

    /// One procedure's symbolic values, cached, with the fuel to replay
    /// (misses meter on a private scratch budget; see [`Self::rjf_for_proc`]).
    fn sym_for_proc(
        &self,
        program: &Program,
        pid: ProcId,
        round: &RoundCtx,
        kills: &dyn KillOracle,
        call_sym: &dyn CallSymbolics,
        options: SymEvalOptions,
    ) -> (Arc<SymMap>, u64) {
        let key = SymKey {
            closure_fp: round.closure_fps[pid.index()],
            mod_info: round.mod_info,
            gsa: round.gsa,
            mode: round.mode,
        };
        let hit = self.store.syms.read().unwrap().get(&key).cloned();
        if let Some(cached) = hit {
            self.phase_hit(SessionPhase::SymVals);
            return (cached.value, cached.fuel);
        }
        self.phase_miss(SessionPhase::SymVals);
        let ssa = self.cached_ssa(program, pid, kills, round);
        let start = Instant::now();
        let scratch = Budget::unlimited();
        let sym = Arc::new(symbolic_eval_budgeted(
            program.proc(pid),
            &ssa,
            call_sym,
            options,
            &scratch,
        ));
        let fuel = scratch.fuel_consumed();
        self.store.syms.write().unwrap().insert(
            key,
            Cached {
                value: Arc::clone(&sym),
                fuel,
            },
        );
        self.phase_wall(SessionPhase::SymVals, start.elapsed());
        (sym, fuel)
    }

    /// One procedure's forward jump-function site vector, cached
    /// (fuel-free beyond the per-procedure construction checkpoint the
    /// caller replays).
    #[allow(clippy::too_many_arguments)]
    fn forward_sites_for_proc(
        &self,
        program: &Program,
        cg: &CallGraph,
        modref: &ModRefInfo,
        kind: JumpFunctionKind,
        pid: ProcId,
        round: &RoundCtx,
        kills: &dyn KillOracle,
        sym: &SymMap,
    ) -> Vec<SiteJumpFns> {
        let key = ForwardKey {
            closure_fp: round.closure_fps[pid.index()],
            mod_info: round.mod_info,
            gsa: round.gsa,
            mode: round.mode,
            kind,
        };
        let hit = self.store.forward_procs.read().unwrap().get(&key).cloned();
        if let Some(cached) = hit {
            self.phase_hit(SessionPhase::ForwardJf);
            return (*cached.value).clone();
        }
        self.phase_miss(SessionPhase::ForwardJf);
        let ssa = self.cached_ssa(program, pid, kills, round);
        let start = Instant::now();
        let sites = site_jfs_for_proc(program, cg, modref, kind, pid, &ssa, sym);
        self.store.forward_procs.write().unwrap().insert(
            key,
            Cached {
                value: Arc::new(sites.clone()),
                fuel: 0,
            },
        );
        self.phase_wall(SessionPhase::ForwardJf, start.elapsed());
        sites
    }

    /// Assembles the forward jump function table from cached
    /// per-procedure site vectors, fanning the per-procedure work
    /// (symbolic values + site construction) out over the worker pool
    /// and merging in `ProcId` order.
    #[allow(clippy::too_many_arguments)]
    fn cached_forward_jfs(
        &self,
        program: &Program,
        cg: &CallGraph,
        modref: &ModRefInfo,
        kind: JumpFunctionKind,
        rjfs: &ReturnJumpFns,
        round: &RoundCtx,
        kills: &dyn KillOracle,
        options: SymEvalOptions,
        budget: &Budget,
        jobs: usize,
        sink: &dyn ObsSink,
    ) -> ForwardJumpFns {
        let const_eval = RjfConstEval { rjfs };
        let composer = RjfComposer { rjfs };
        let call_sym: &dyn CallSymbolics = match round.mode {
            CallSymMode::Pessimistic => &NoCallSymbolics,
            CallSymMode::ConstEval => &const_eval,
            CallSymMode::Compose => &composer,
        };

        let pids: Vec<ProcId> = program.proc_ids().collect();
        let start = Instant::now();
        let built = par_map_obs(jobs, &pids, sink, "forward_jfs.proc", |_, &pid| {
            // Symbolic values are resolved (computed or fuel-replayed)
            // even when the site table hits, so consumption matches the
            // single-shot builder, which evaluates every procedure.
            let (sym, sym_fuel) = self.sym_for_proc(program, pid, round, kills, call_sym, options);
            let sites =
                self.forward_sites_for_proc(program, cg, modref, kind, pid, round, kills, &sym);
            (sym_fuel, sites)
        });
        if jobs > 1 {
            self.phase_span(SessionPhase::ForwardJf, start.elapsed());
        }
        let mut per_proc = Vec::with_capacity(pids.len());
        for (pid, (sym_fuel, sites)) in pids.into_iter().zip(built) {
            // The per-procedure construction checkpoint. Unmetered
            // budgets always afford the requested rung, so the precision
            // ladder of the single-shot builder never engages here.
            budget.checkpoint(
                Phase::ForwardJf,
                kind_weight(kind).saturating_mul(proc_estimate(program.proc(pid))),
            );
            budget.checkpoint(Phase::SymEval, sym_fuel);
            per_proc.push(sites);
        }
        ForwardJumpFns::from_parts(per_proc)
    }

    #[allow(clippy::too_many_arguments)]
    fn cached_solve(
        &self,
        program: &Program,
        cg: &CallGraph,
        modref: &ModRefInfo,
        jfs: &ForwardJumpFns,
        config: &AnalysisConfig,
        round: &RoundCtx,
        kills: &dyn KillOracle,
        calls: &dyn CallLattice,
        budget: &Budget,
        sink: &dyn ObsSink,
    ) -> Arc<ValSets> {
        let key = SolveKey {
            state_fp: round.state_fp,
            mod_info: round.mod_info,
            gsa: round.gsa,
            mode: round.mode,
            kind: config.jump_function,
            solver: config.solver,
            cond: config.branch_feasibility,
        };
        let start = Instant::now();
        let hit = self.store.solves.read().unwrap().get(&key).cloned();
        let vals = match hit {
            Some(cached) => {
                self.phase_hit(SessionPhase::Solve);
                budget.checkpoint(Phase::Solver, cached.fuel);
                cached.value
            }
            None => {
                self.phase_miss(SessionPhase::Solve);
                let before = budget.fuel_consumed();
                let v = if config.branch_feasibility {
                    crate::cond::solve_cond_traced(
                        program, cg, modref, jfs, kills, calls, budget, sink,
                    )
                } else {
                    match config.solver {
                        SolverKind::CallGraph => {
                            solve_traced(program, cg, modref, jfs, budget, sink)
                        }
                        SolverKind::BindingGraph => {
                            solve_binding_budgeted(program, cg, modref, jfs, budget)
                        }
                    }
                };
                let fuel = budget.fuel_consumed() - before;
                let v = Arc::new(v);
                self.store.solves.write().unwrap().insert(
                    key,
                    Cached {
                        value: Arc::clone(&v),
                        fuel,
                    },
                );
                v
            }
        };
        self.phase_wall(SessionPhase::Solve, start.elapsed());
        vals
    }

    #[allow(clippy::too_many_arguments)]
    fn cached_subst(
        &self,
        program: &Program,
        cg: &CallGraph,
        calls: &dyn CallLattice,
        vals: Option<&ValSets>,
        config: &AnalysisConfig,
        round: &RoundCtx,
        kills: &dyn KillOracle,
        jobs: usize,
    ) -> Arc<SubstitutionCounts> {
        let key = SubstKey {
            state_fp: round.state_fp,
            mod_info: round.mod_info,
            gsa: round.gsa,
            mode: round.mode,
            forward: config.interprocedural.then_some((
                config.jump_function,
                config.solver,
                config.branch_feasibility,
            )),
        };
        let hit = self.store.substs.read().unwrap().get(&key).cloned();
        if let Some(counts) = hit {
            self.phase_hit(SessionPhase::Subst);
            return counts;
        }
        self.phase_miss(SessionPhase::Subst);
        // Prefetch SSA through the cache (substitution counting itself
        // draws no fuel; SSA construction is fuel-free).
        let pids: Vec<ProcId> = program.proc_ids().collect();
        let ssa_start = Instant::now();
        let ssas: Vec<Arc<SsaProc>> = par_map(jobs, &pids, |_, &pid| {
            self.cached_ssa(program, pid, kills, round)
        });
        if jobs > 1 {
            self.phase_span(SessionPhase::Ssa, ssa_start.elapsed());
        }
        let start = Instant::now();
        let counts = Arc::new(count_substitutions_with_ssa_jobs(
            program,
            cg,
            calls,
            vals,
            &|pid| Arc::clone(&ssas[pid.index()]),
            jobs,
        ));
        self.store
            .substs
            .write()
            .unwrap()
            .insert(key, Arc::clone(&counts));
        self.phase_wall(SessionPhase::Subst, start.elapsed());
        if jobs > 1 {
            self.phase_span(SessionPhase::Subst, start.elapsed());
        }
        counts
    }

    /// One SCCP + DCE step over a procedure, cached by closure
    /// fingerprint and entry environment: after a DCE round, only
    /// procedures whose IR changed (or whose callees' IR changed, or
    /// whose entry `VAL` set moved) are re-processed. Returns the step
    /// and the fuel for the caller to replay in `ProcId` order.
    fn dce_step_for_proc(
        &self,
        program: &Program,
        pid: ProcId,
        round: &RoundCtx,
        kills: &dyn KillOracle,
        calls: &dyn CallLattice,
        vals: Option<&ValSets>,
    ) -> (DceStep, u64) {
        let env_fp = fingerprint_debug(&vals.map(|v| v.of(pid)));
        let key = DceKey {
            closure_fp: round.closure_fps[pid.index()],
            mod_info: round.mod_info,
            gsa: round.gsa,
            recovery: round.mode != CallSymMode::Pessimistic,
            env_fp,
        };
        let hit = self.store.dces.read().unwrap().get(&key).cloned();
        if let Some(cached) = hit {
            self.phase_hit(SessionPhase::Dce);
            return (
                DceStep {
                    proc: cached.value.proc.clone(),
                    changed: cached.value.changed,
                },
                cached.fuel,
            );
        }
        self.phase_miss(SessionPhase::Dce);
        let ssa = self.cached_ssa(program, pid, kills, round);
        let start = Instant::now();
        let scratch = Budget::unlimited();
        let proc_copy = program.proc(pid).clone();
        let result = match vals {
            Some(v) => {
                let env = entry_env_of(program, pid, v);
                sccp_budgeted(
                    &proc_copy,
                    &ssa,
                    &SccpConfig {
                        entry_env: &env,
                        calls,
                    },
                    &scratch,
                )
            }
            None => sccp_budgeted(
                &proc_copy,
                &ssa,
                &SccpConfig {
                    entry_env: &bottom_entry,
                    calls,
                },
                &scratch,
            ),
        };
        let mut proc = proc_copy;
        let changed = dce_round_budgeted(program, &mut proc, &ssa, &result, kills, &scratch);
        let fuel = scratch.fuel_consumed();
        self.store.dces.write().unwrap().insert(
            key,
            Cached {
                value: Arc::new(DceStep {
                    proc: proc.clone(),
                    changed,
                }),
                fuel,
            },
        );
        self.phase_wall(SessionPhase::Dce, start.elapsed());
        (DceStep { proc, changed }, fuel)
    }

    /// The complete-propagation recount over the pristine program,
    /// mirroring the single-shot `counting_pass` (which rebuilds its
    /// side tables with *default* symbolic-evaluation options).
    fn cached_counting_pass(
        &self,
        config: &AnalysisConfig,
        vals: Option<&ValSets>,
        final_fp: u64,
        budget: &Budget,
        jobs: usize,
        sink: &dyn ObsSink,
    ) -> Arc<SubstitutionCounts> {
        let mut orig = self.base.clone();
        let orig_fp = self.base_fp;
        let key = CountingKey {
            orig_fp,
            final_fp,
            mod_info: config.mod_info,
            gsa: config.gsa,
            mode: call_sym_mode(config),
            rjf: config.return_jump_functions,
            forward: config.interprocedural.then_some((
                config.jump_function,
                config.solver,
                config.branch_feasibility,
            )),
        };
        let hit = self.store.countings.read().unwrap().get(&key).cloned();
        if let Some(cached) = hit {
            self.phase_hit(SessionPhase::Subst);
            budget.checkpoint(Phase::ModRef, cached.fuel);
            return cached.value;
        }
        self.phase_miss(SessionPhase::Subst);
        let before = budget.fuel_consumed();

        let cg = self.cached_call_graph(&orig, orig_fp);
        let modref = self.cached_modref(&orig, &cg, orig_fp, budget, jobs, sink);
        augment_global_vars(&mut orig, &modref);
        let closure_fps = self.cached_closures(&orig, &cg, orig_fp, jobs);
        // The single-shot counting pass builds its return jump functions
        // with default symbolic-evaluation options — gsa facets pinned to
        // their defaults here for the same behaviour.
        let round = RoundCtx {
            state_fp: orig_fp,
            closure_fps,
            mod_info: config.mod_info,
            gsa: false,
            mode: call_sym_mode(config),
        };
        let counts = {
            let orig = &orig;
            let mod_kills;
            let kills: &dyn KillOracle = if config.mod_info {
                mod_kills = ModKills::new(orig, &modref);
                &mod_kills
            } else {
                &WorstCaseKills
            };
            let rjfs = if config.return_jump_functions {
                self.cached_return_jfs(
                    orig,
                    &cg,
                    &round,
                    kills,
                    SymEvalOptions::default(),
                    budget,
                    jobs,
                    sink,
                )
            } else {
                ReturnJumpFns::empty(orig.procs.len())
            };
            let rjf_lattice = RjfLattice { rjfs: &rjfs };
            let calls: &dyn CallLattice = if round.mode != CallSymMode::Pessimistic {
                &rjf_lattice
            } else {
                &PessimisticCalls
            };
            let pids: Vec<ProcId> = orig.proc_ids().collect();
            let ssas: Vec<Arc<SsaProc>> = par_map(jobs, &pids, |_, &pid| {
                self.cached_ssa(orig, pid, kills, &round)
            });
            let start = Instant::now();
            let counts = Arc::new(count_substitutions_with_ssa_jobs(
                orig,
                &cg,
                calls,
                vals,
                &|pid| Arc::clone(&ssas[pid.index()]),
                jobs,
            ));
            self.phase_wall(SessionPhase::Subst, start.elapsed());
            counts
        };
        let fuel = budget.fuel_consumed() - before;
        self.store.countings.write().unwrap().insert(
            key,
            Cached {
                value: Arc::clone(&counts),
                fuel,
            },
        );
        counts
    }
}

/// Per-procedure closure fingerprints: each procedure's own IR combined
/// with the IR of every transitively reachable callee plus the global
/// table. Any artifact derived from a procedure reads at most this set,
/// so the closure fingerprint is a sound cache key — and after a DCE
/// round it changes exactly for the procedures whose own IR changed plus
/// their call-graph dependents, which is what makes complete propagation
/// incremental.
fn closure_fingerprints(program: &Program, cg: &CallGraph, jobs: usize) -> ClosureData {
    let proc_fps: Vec<u64> = par_map(jobs, &program.procs, |_, p| fingerprint_debug(p));
    let globals_fp = fingerprint_debug(&(&program.globals, program.main));

    // Merkle hash over the SCC condensation instead of one reachability
    // DFS per procedure (which is O(procs × edges) — quadratic on the
    // deep call towers of 100k-procedure programs). `sccs()` is
    // bottom-up, so every callee SCC's closure hash is final before its
    // callers fold it in; a hash of child closure hashes changes exactly
    // when some transitively reachable procedure's IR changes, which is
    // all a cache key needs. Child SCCs are deduplicated with a stamp
    // array in first-occurrence order, keeping the digest deterministic.
    let sccs = cg.sccs();
    let mut scc_fp = vec![0u64; sccs.len()];
    let mut child_stamp = vec![usize::MAX; sccs.len()];
    for (i, scc) in sccs.iter().enumerate() {
        let mut parts = Vec::with_capacity(scc.len() * 2 + 2);
        parts.push(globals_fp);
        for &pid in scc {
            parts.push(pid.index() as u64);
            parts.push(proc_fps[pid.index()]);
        }
        for &pid in scc {
            for site in cg.sites(pid) {
                let c = cg.scc_of(site.callee);
                if c != i && child_stamp[c] != i {
                    child_stamp[c] = i;
                    parts.push(scc_fp[c]);
                }
            }
        }
        scc_fp[i] = combine(parts);
    }

    // Procedures of one SCC share a closure; their keys differ by the
    // procedure's own fingerprint, exactly as the DFS scheme's did.
    let closures = program
        .proc_ids()
        .map(|pid| combine([scc_fp[cg.scc_of(pid)], proc_fps[pid.index()]]))
        .collect();
    ClosureData {
        closures,
        own: proc_fps,
        globals: globals_fp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{analyze, analyze_with_budget_reference};

    const OCEAN_LIKE: &str = "\
global n\nglobal m\n\
proc init()\nn = 64\nm = 32\nend\n\
proc compute(k)\nx = n\ny = m\nz = k\nprint(x + y + z)\nend\n\
main\ncall init()\ncall compute(8)\nend\n";

    const DEAD_GUARD: &str = "\
proc f(debug)\n\
if debug then\n\
read(q)\nx = q\n\
else\n\
x = 3\n\
end\n\
print(x)\nend\n\
main\ncall f(0)\nend\n";

    fn assert_outcomes_equal(a: &AnalysisOutcome, b: &AnalysisOutcome, what: &str) {
        assert_eq!(a.program, b.program, "{what}: program");
        assert_eq!(a.constants, b.constants, "{what}: constants");
        assert_eq!(a.substitutions, b.substitutions, "{what}: substitutions");
        assert_eq!(a.stats, b.stats, "{what}: stats");
        assert_eq!(a.robustness, b.robustness, "{what}: robustness");
    }

    fn sweep_configs() -> Vec<AnalysisConfig> {
        let mut configs = Vec::new();
        for kind in JumpFunctionKind::ALL {
            for rjf in [true, false] {
                configs.push(AnalysisConfig {
                    jump_function: kind,
                    return_jump_functions: rjf,
                    ..AnalysisConfig::default()
                });
            }
        }
        configs.push(AnalysisConfig {
            mod_info: false,
            ..AnalysisConfig::default()
        });
        configs.push(AnalysisConfig {
            complete_propagation: true,
            ..AnalysisConfig::default()
        });
        configs.push(AnalysisConfig::intraprocedural_baseline());
        configs.push(AnalysisConfig {
            gsa: true,
            ..AnalysisConfig::default()
        });
        configs.push(AnalysisConfig {
            rjf_full_composition: true,
            ..AnalysisConfig::default()
        });
        configs.push(AnalysisConfig {
            solver: SolverKind::BindingGraph,
            ..AnalysisConfig::default()
        });
        configs.push(AnalysisConfig::conditional());
        configs
    }

    #[test]
    fn session_sweep_matches_reference_pipeline() {
        for src in [OCEAN_LIKE, DEAD_GUARD] {
            let program = ipcp_ir::compile_to_ir(src).unwrap();
            let session = AnalysisSession::new(&program);
            for (i, config) in sweep_configs().iter().enumerate() {
                let got = session.analyze(config);
                let want = analyze_with_budget_reference(
                    &program,
                    config,
                    &Budget::for_limit(config.fuel),
                );
                assert_outcomes_equal(&got, &want, &format!("config #{i}"));
            }
        }
    }

    #[test]
    fn repeated_analyses_hit_the_store() {
        let program = ipcp_ir::compile_to_ir(OCEAN_LIKE).unwrap();
        let session = AnalysisSession::new(&program);
        let first = session.analyze(&AnalysisConfig::default());
        let cold_misses = session.stats().total_misses();
        assert!(cold_misses > 0, "cold run computes artifacts");
        let second = session.analyze(&AnalysisConfig::default());
        assert_outcomes_equal(&first, &second, "warm rerun");
        assert_eq!(
            session.stats().total_misses(),
            cold_misses,
            "warm rerun computes nothing new"
        );
        assert!(session.stats().total_hits() > 5, "warm rerun hits");
        assert!(!session.store().is_empty());
    }

    #[test]
    fn config_sweep_reuses_config_independent_artifacts() {
        let program = ipcp_ir::compile_to_ir(OCEAN_LIKE).unwrap();
        let session = AnalysisSession::new(&program);
        session.analyze(&AnalysisConfig::default());
        let ssa_misses = session.stats().counter(SessionPhase::Ssa).misses;
        // A different jump-function kind shares SSA, MOD/REF, call graph,
        // symbolic values and return jump functions.
        session.analyze(&AnalysisConfig {
            jump_function: JumpFunctionKind::PassThrough,
            ..AnalysisConfig::default()
        });
        assert_eq!(
            session.stats().counter(SessionPhase::Ssa).misses,
            ssa_misses,
            "no new SSA for a JF-kind change"
        );
        assert_eq!(session.stats().counter(SessionPhase::SymVals).misses, 3);
        assert!(session.stats().counter(SessionPhase::ReturnJf).hits >= 3);
    }

    #[test]
    fn incremental_complete_propagation_reuses_unchanged_procs() {
        // DEAD_GUARD's DCE only rewrites `f`; `main` keeps its fingerprint,
        // but as a caller of `f` its closure changes — while `f`'s leaf
        // position means round 2 must still re-derive only what changed.
        let program = ipcp_ir::compile_to_ir(DEAD_GUARD).unwrap();
        let session = AnalysisSession::new(&program);
        let complete = AnalysisConfig {
            complete_propagation: true,
            ..AnalysisConfig::default()
        };
        let out = session.analyze(&complete);
        assert!(out.stats.dce_rounds >= 1);
        let want = analyze(&program, &complete);
        assert_outcomes_equal(&out, &want, "complete propagation");
        // Rerunning is a pure replay: every phase hits.
        let misses = session.stats().total_misses();
        session.analyze(&complete);
        assert_eq!(session.stats().total_misses(), misses);
    }

    #[test]
    fn metered_budgets_take_the_reference_path() {
        let program = ipcp_ir::compile_to_ir(OCEAN_LIKE).unwrap();
        let session = AnalysisSession::new(&program);
        let config = AnalysisConfig {
            fuel: Some(40),
            ..AnalysisConfig::default()
        };
        let got = session.analyze(&config);
        let want = analyze(&program, &config);
        assert_outcomes_equal(&got, &want, "fuel-limited");
        assert!(session.store().is_empty(), "metered runs never cache");
        assert!(session.stats().counter(SessionPhase::Pipeline).wall_nanos > 0);
    }

    #[test]
    fn checked_analysis_propagates_exhaustion_policy() {
        let session = AnalysisSession::from_source(OCEAN_LIKE).unwrap();
        let config = AnalysisConfig {
            fuel: Some(3),
            on_exhausted: ExhaustionPolicy::Error,
            ..AnalysisConfig::default()
        };
        assert!(session.analyze_checked(&config).is_err());
        assert!(session.analyze_checked(&AnalysisConfig::default()).is_ok());
    }

    #[test]
    fn stats_render_as_json_and_text() {
        let session = AnalysisSession::from_source(OCEAN_LIKE).unwrap();
        session.analyze(&AnalysisConfig::default());
        let json = session.stats().to_json();
        assert!(json.starts_with("{\"analyses\":1,\"rounds\":1,\"phases\":{"));
        assert!(json.contains("\"ssa\":{\"wall_us\":"));
        let text = session.stats().to_string();
        assert!(text.contains("phase"));
        assert!(text.contains("ssa"));
    }

    #[test]
    fn session_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AnalysisSession>();
        assert_send_sync::<ArtifactStore>();
    }

    #[test]
    fn jobs_levels_are_bit_identical() {
        // jobs = 0 (treated as 1), an in-between level, and far more
        // workers than procedures all reproduce the sequential outcome.
        let variants = [
            AnalysisConfig::default(),
            AnalysisConfig {
                complete_propagation: true,
                ..AnalysisConfig::default()
            },
            AnalysisConfig {
                gsa: true,
                rjf_full_composition: true,
                ..AnalysisConfig::default()
            },
            AnalysisConfig::conditional(),
        ];
        for src in [OCEAN_LIKE, DEAD_GUARD] {
            let program = ipcp_ir::compile_to_ir(src).unwrap();
            for base in &variants {
                let want =
                    analyze_with_budget_reference(&program, base, &Budget::for_limit(base.fuel));
                for jobs in [0usize, 2, 8, 64] {
                    let session = AnalysisSession::new(&program);
                    let config = AnalysisConfig { jobs, ..*base };
                    let got = session.analyze(&config);
                    assert_outcomes_equal(&got, &want, &format!("jobs={jobs}"));
                }
            }
        }
    }

    #[test]
    fn concurrent_sweep_shares_one_store() {
        let program = ipcp_ir::compile_to_ir(OCEAN_LIKE).unwrap();
        let session = AnalysisSession::new(&program);
        let configs = sweep_configs();
        let outs = par_map(4, &configs, |_, config| session.analyze(config));
        for (i, (config, got)) in configs.iter().zip(&outs).enumerate() {
            let want =
                analyze_with_budget_reference(&program, config, &Budget::for_limit(config.fuel));
            assert_outcomes_equal(got, &want, &format!("concurrent config #{i}"));
        }
        assert!(!session.store().is_empty());
    }
}
