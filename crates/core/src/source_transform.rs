//! Source-to-source constant substitution (paper §4.1, "Recording the
//! results": "the analyzer can produce a transformed version of the
//! original source in which the interprocedural constants are textually
//! substituted into the code").
//!
//! Textual substitution is position-independent, so a variable may only
//! be replaced by a literal when it holds that constant at *every* use in
//! the procedure. The analyzer computes, per procedure and variable, the
//! meet of every SSA version's lattice value under the seeded
//! interprocedural facts; a uniform constant licenses replacing every
//! (non-assigned, non-by-reference) occurrence in the AST.

use crate::driver::AnalysisConfig;
use crate::retjf::{build_return_jfs_with, ReturnJumpFns, RjfConstEval, RjfLattice};
use crate::solver::{entry_env_of, solve};
use ipcp_analysis::sccp::{sccp, CallLattice, PessimisticCalls, SccpConfig};
use ipcp_analysis::symeval::SymEvalOptions;
use ipcp_analysis::{augment_global_vars, compute_modref, CallGraph, LatticeVal, ModKills};
use ipcp_ir::VarKind;
use ipcp_lang::ast::{Expr, ExprKind, LValueKind, Proc, Stmt, StmtKind};
use ipcp_lang::{pretty, Diagnostics, Span};
use ipcp_ssa::{build_ssa, KillOracle, WorstCaseKills};
use std::collections::HashMap;

/// Result of a source-level transformation.
#[derive(Debug, Clone)]
pub struct TransformedSource {
    /// The transformed Minifor source text.
    pub source: String,
    /// Number of variable occurrences replaced by literals.
    pub substitutions: usize,
}

/// Produces a transformed version of `source` with every uniformly
/// constant variable occurrence replaced by its literal value.
///
/// # Errors
///
/// Returns front-end diagnostics when `source` does not compile.
pub fn transform_source(
    source: &str,
    config: &AnalysisConfig,
) -> Result<TransformedSource, Diagnostics> {
    let checked = ipcp_lang::compile(source)?;
    let mut program = ipcp_ir::lower::lower(&checked);

    // ---- analysis (mirrors the driver) -----------------------------------
    let cg = CallGraph::new(&program);
    let modref = compute_modref(&program, &cg);
    augment_global_vars(&mut program, &modref);
    let cg = CallGraph::new(&program);
    let sym_options = SymEvalOptions {
        gated_phis: config.gsa,
    };
    let mod_kills;
    let kills: &dyn KillOracle = if config.mod_info {
        mod_kills = ModKills::new(&program, &modref);
        &mod_kills
    } else {
        &WorstCaseKills
    };
    let rjfs = if config.return_jump_functions {
        build_return_jfs_with(&program, &cg, kills, sym_options)
    } else {
        ReturnJumpFns::empty(program.procs.len())
    };
    let rjf_recovery = config.return_jump_functions && config.mod_info;
    let const_eval = RjfConstEval { rjfs: &rjfs };
    let vals = if config.interprocedural {
        let call_sym: &dyn ipcp_analysis::symeval::CallSymbolics = if rjf_recovery {
            &const_eval
        } else {
            &ipcp_analysis::NoCallSymbolics
        };
        let jfs = crate::forward::build_forward_jfs_with(
            &program,
            &cg,
            &modref,
            config.jump_function,
            kills,
            call_sym,
            sym_options,
        );
        Some(solve(&program, &cg, &modref, &jfs))
    } else {
        None
    };
    let rjf_lattice = RjfLattice { rjfs: &rjfs };
    let calls: &dyn CallLattice = if rjf_recovery {
        &rjf_lattice
    } else {
        &PessimisticCalls
    };

    // ---- per-procedure uniform constants ----------------------------------
    // uniform[proc name][var name] = c when every SSA version of the
    // variable is the same constant (⊤ versions in unreached code ignored).
    let mut uniform: HashMap<String, HashMap<String, i64>> = HashMap::new();
    for pid in program.proc_ids() {
        if !cg.is_reachable(pid) {
            continue;
        }
        let proc = program.proc(pid);
        let ssa = build_ssa(&program, proc, kills);
        let bottom = ipcp_analysis::sccp::bottom_entry;
        let result = match vals.as_ref() {
            Some(v) => {
                let env = entry_env_of(&program, pid, v);
                sccp(
                    proc,
                    &ssa,
                    &SccpConfig {
                        entry_env: &env,
                        calls,
                    },
                )
            }
            None => sccp(
                proc,
                &ssa,
                &SccpConfig {
                    entry_env: &bottom,
                    calls,
                },
            ),
        };

        let mut per_var: HashMap<ipcp_ir::VarId, LatticeVal> = HashMap::new();
        for (i, def) in ssa.defs.iter().enumerate() {
            let decl = proc.var(def.var);
            if decl.kind == VarKind::Temp || decl.ty != ipcp_lang::ast::Ty::INT {
                continue;
            }
            let v = result.values[i];
            per_var
                .entry(def.var)
                .and_modify(|acc| *acc = acc.meet(v))
                .or_insert(v);
        }
        let map: HashMap<String, i64> = per_var
            .into_iter()
            .filter_map(|(var, v)| v.as_const().map(|c| (proc.var(var).name.clone(), c)))
            .collect();
        uniform.insert(proc.name.clone(), map);
    }

    // ---- AST rewrite -------------------------------------------------------
    let mut ast = checked.program.clone();
    let mut substitutions = 0usize;
    let empty = HashMap::new();
    for proc in &mut ast.procs {
        let consts = uniform.get(&proc.name).unwrap_or(&empty);
        rewrite_proc(proc, consts, &mut substitutions);
    }

    Ok(TransformedSource {
        source: pretty::program_to_string(&ast),
        substitutions,
    })
}

fn rewrite_proc(proc: &mut Proc, consts: &HashMap<String, i64>, count: &mut usize) {
    for stmt in &mut proc.body {
        rewrite_stmt(stmt, consts, count);
    }
}

fn rewrite_stmt(stmt: &mut Stmt, consts: &HashMap<String, i64>, count: &mut usize) {
    match &mut stmt.kind {
        StmtKind::Assign { target, value } => {
            if let LValueKind::Element(_, idx) = &mut target.kind {
                rewrite_expr(idx, consts, count);
            }
            rewrite_expr(value, consts, count);
        }
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            rewrite_expr(cond, consts, count);
            for s in then_blk.iter_mut().chain(else_blk.iter_mut()) {
                rewrite_stmt(s, consts, count);
            }
        }
        StmtKind::While { cond, body } => {
            rewrite_expr(cond, consts, count);
            for s in body {
                rewrite_stmt(s, consts, count);
            }
        }
        StmtKind::Do {
            from,
            to,
            step,
            body,
            ..
        } => {
            rewrite_expr(from, consts, count);
            rewrite_expr(to, consts, count);
            if let Some(step) = step {
                rewrite_expr(step, consts, count);
            }
            for s in body {
                rewrite_stmt(s, consts, count);
            }
        }
        StmtKind::Call { args, .. } => {
            for arg in args {
                rewrite_arg(arg, consts, count);
            }
        }
        StmtKind::Return { value } => {
            if let Some(v) = value {
                rewrite_expr(v, consts, count);
            }
        }
        StmtKind::Read { target } => {
            if let LValueKind::Element(_, idx) = &mut target.kind {
                rewrite_expr(idx, consts, count);
            }
        }
        StmtKind::Print { value } => rewrite_expr(value, consts, count),
    }
}

/// Call arguments: a bare name may be bound by reference, so it is left
/// alone; everything inside a larger expression is fair game.
fn rewrite_arg(arg: &mut Expr, consts: &HashMap<String, i64>, count: &mut usize) {
    if matches!(arg.kind, ExprKind::Name(_)) {
        return;
    }
    rewrite_expr(arg, consts, count);
}

fn rewrite_expr(expr: &mut Expr, consts: &HashMap<String, i64>, count: &mut usize) {
    match &mut expr.kind {
        ExprKind::Name(name) => {
            if let Some(&c) = consts.get(name.as_str()) {
                expr.kind = ExprKind::IntLit(c);
                expr.span = Span::default();
                *count += 1;
            }
        }
        ExprKind::Index(_, idx) => rewrite_expr(idx, consts, count),
        ExprKind::CallFn(_, args) => {
            for a in args {
                rewrite_arg(a, consts, count);
            }
        }
        ExprKind::NameArgs(_, args) => {
            for a in args {
                rewrite_arg(a, consts, count);
            }
        }
        ExprKind::Unary(_, inner) => rewrite_expr(inner, consts, count),
        ExprKind::Binary(_, lhs, rhs) => {
            rewrite_expr(lhs, consts, count);
            rewrite_expr(rhs, consts, count);
        }
        ExprKind::IntLit(_) | ExprKind::RealLit(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcp_lang::interp::{InterpConfig, Value};

    fn run_source(src: &str, input: Vec<i64>) -> Vec<Value> {
        let checked = ipcp_lang::compile(src).expect("compiles");
        let cfg = InterpConfig {
            input,
            ..InterpConfig::default()
        };
        ipcp_lang::interp::run(&checked, &cfg).expect("runs").output
    }

    const SRC: &str = "\
global n\n\
proc init()\n  n = 64\nend\n\
proc kernel(k)\n  print(n + k)\n  print(n * 2)\nend\n\
main\n  call init()\n  call kernel(8)\nend\n";

    #[test]
    fn substitutes_uniform_constants_into_source() {
        let out = transform_source(SRC, &AnalysisConfig::default()).unwrap();
        // kernel's n and k are uniformly constant; occurrences replaced.
        assert!(out.source.contains("print(64 + 8)"), "{}", out.source);
        assert!(out.source.contains("print(64 * 2)"), "{}", out.source);
        assert_eq!(out.substitutions, 3);
        // The transformed source still compiles and behaves identically.
        assert_eq!(run_source(&out.source, vec![]), run_source(SRC, vec![]));
    }

    #[test]
    fn reassigned_variables_are_not_substituted() {
        let src = "main\n  x = 5\n  print(x)\n  read(x)\n  print(x)\nend\n";
        let out = transform_source(src, &AnalysisConfig::default()).unwrap();
        // x is 5 at the first print but unknown at the second: textual
        // substitution must leave both alone.
        assert_eq!(out.substitutions, 0, "{}", out.source);
        assert_eq!(run_source(&out.source, vec![9]), run_source(src, vec![9]));
    }

    #[test]
    fn by_ref_arguments_are_preserved() {
        let src =
            "proc bump(a)\n  a = a + 1\nend\nmain\n  x = 5\n  call bump(x)\n  print(x)\nend\n";
        let out = transform_source(src, &AnalysisConfig::default()).unwrap();
        assert!(out.source.contains("call bump(x)"), "{}", out.source);
        assert_eq!(run_source(&out.source, vec![]), vec![Value::Int(6)]);
    }

    #[test]
    fn loop_bounds_become_literals() {
        let src = "\
global size\n\
proc setup()\n  size = 16\nend\n\
proc work()\n  s = 0\n  do i = 1, size\n    s = s + i\n  end\n  print(s)\nend\n\
main\n  call setup()\n  call work()\nend\n";
        let out = transform_source(src, &AnalysisConfig::default()).unwrap();
        assert!(out.source.contains("do i = 1, 16"), "{}", out.source);
        assert_eq!(run_source(&out.source, vec![]), run_source(src, vec![]));
    }

    #[test]
    fn configuration_matters() {
        // Without return jump functions the init-routine constant is lost.
        let with = transform_source(SRC, &AnalysisConfig::default()).unwrap();
        let without = transform_source(
            SRC,
            &AnalysisConfig {
                return_jump_functions: false,
                ..AnalysisConfig::default()
            },
        )
        .unwrap();
        assert!(with.substitutions > without.substitutions);
    }

    #[test]
    fn compile_errors_propagate() {
        assert!(transform_source("main\ncall nope()\nend\n", &AnalysisConfig::default()).is_err());
    }

    #[test]
    fn transformed_source_round_trips() {
        let out = transform_source(SRC, &AnalysisConfig::default()).unwrap();
        let reparsed = ipcp_lang::parser::parse(&out.source).expect("reparses");
        assert_eq!(pretty::program_to_string(&reparsed), out.source);
    }
}
