//! `ipcp serve` — a resident multi-tenant analysis daemon.
//!
//! Every one-shot CLI invocation pays parse + analyze from cold even
//! though the session cache, disk cache, and incrementality audit make
//! warm answers nearly free. This module keeps [`AnalysisSession`]s
//! resident: a persistent process accepts line-delimited JSON requests
//! over a Unix socket and multiplexes concurrent clients onto shared
//! per-program sessions backed by one artifact store and an optional
//! attached [`DiskCache`].
//!
//! ## Protocol
//!
//! One JSON object per line, in both directions. Requests:
//!
//! ```text
//! {"id":1,"op":"analyze","source":"main\n  x = 1\n  print(x)\nend\n"}
//! {"id":2,"op":"explain","source":"...","proc":"f","param":"a"}
//! {"id":3,"op":"why","source":"...","filter":"ssa","label":"x.mf"}
//! {"id":4,"op":"metrics"}
//! {"id":5,"op":"shutdown"}
//! ```
//!
//! Responses echo the id: `{"id":1,"ok":true,"output":"..."}` on
//! success, `{"id":1,"ok":false,"error":"..."}` on failure. The
//! optional `level` field selects the precision level exactly like the
//! CLI's `--level` flag (`literal|intra|pass|poly|cond`). `analyze` and
//! `explain` outputs are byte-identical to the one-shot CLI: both
//! render through [`crate::report::analyze_to_string`] /
//! [`render_explain`].
//!
//! ## Tenancy, admission, and shutdown
//!
//! Programs are tenants, keyed by the fingerprint of their source text.
//! A tenant owns one session (disk cache attached at admission) and a
//! memo of rendered responses, so concurrent identical requests compute
//! once and every later one is a string copy. The registry enforces an
//! optional byte budget with LRU eviction — the disk cache's eviction
//! idiom lifted to resident sessions. Admission control bounds in-flight
//! analysis work: past the cap, requests fail fast with an explicit
//! `overloaded` error instead of queueing unboundedly (control-plane
//! ops — `metrics`, `shutdown` — are always admitted). `shutdown`
//! drains: the listener stops accepting, every in-flight request
//! completes and its response is written, then [`run`] returns a
//! [`ServeSummary`].

use crate::diskcache::DiskCache;
use crate::driver::AnalysisConfig;
use crate::jump::JumpFunctionKind;
use crate::session::AnalysisSession;
use ipcp_obs::{parse_json, Histogram, Json};
use std::collections::{BTreeMap, HashMap};
use std::io::{self, Read as _, Write as _};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Default bound on concurrently executing analysis requests.
pub const DEFAULT_MAX_INFLIGHT: usize = 64;

/// The error string an over-admitted request is rejected with.
pub const OVERLOADED: &str = "overloaded";

/// Configuration of one daemon instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Unix socket path to listen on (created at startup, removed on
    /// clean shutdown; a stale file from a dead daemon is replaced).
    pub socket: PathBuf,
    /// Optional persistent cache shared by every tenant session.
    pub cache_dir: Option<PathBuf>,
    /// Byte budget for resident tenant sessions; `None` never evicts.
    pub max_tenant_bytes: Option<u64>,
    /// Analysis requests allowed in flight at once; excess requests are
    /// rejected with [`OVERLOADED`]. `0` rejects all analysis work
    /// (drain/maintenance mode) while control ops still answer.
    pub max_inflight: usize,
    /// Worker threads for each request's parallel analysis phases.
    pub jobs: usize,
}

impl ServeConfig {
    /// A config listening on `socket` with library defaults.
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        ServeConfig {
            socket: socket.into(),
            cache_dir: None,
            max_tenant_bytes: None,
            max_inflight: DEFAULT_MAX_INFLIGHT,
            jobs: 0,
        }
    }
}

/// What a daemon did over its lifetime, returned by [`run`] after a
/// clean shutdown.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests received (including rejected and malformed ones).
    pub requests: u64,
    /// Requests rejected by admission control.
    pub overloaded: u64,
    /// Tenant sessions evicted by the byte budget.
    pub evictions: u64,
    /// Tenants resident at shutdown.
    pub tenants: usize,
}

// ---- request parsing ------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Analyze,
    Explain,
    Why,
    Metrics,
    Shutdown,
}

impl Op {
    fn parse(word: &str) -> Option<Op> {
        Some(match word {
            "analyze" => Op::Analyze,
            "explain" => Op::Explain,
            "why" => Op::Why,
            "metrics" => Op::Metrics,
            "shutdown" => Op::Shutdown,
            _ => return None,
        })
    }

    fn name(self) -> &'static str {
        match self {
            Op::Analyze => "analyze",
            Op::Explain => "explain",
            Op::Why => "why",
            Op::Metrics => "metrics",
            Op::Shutdown => "shutdown",
        }
    }

    /// Control-plane ops bypass admission control: they are O(1) and
    /// must stay answerable even when analysis capacity is saturated —
    /// `shutdown` in particular, or a wedged daemon could never drain.
    fn is_control(self) -> bool {
        matches!(self, Op::Metrics | Op::Shutdown)
    }
}

#[derive(Debug, Clone)]
struct Request {
    id: u64,
    op: Op,
    source: String,
    level: Option<String>,
    proc: Option<String>,
    param: Option<String>,
    filter: Option<String>,
    label: Option<String>,
}

fn field<'a>(obj: &'a Json, key: &str) -> Option<&'a str> {
    obj.get(key).and_then(Json::as_str)
}

fn parse_request(line: &str) -> Result<Request, String> {
    let obj = parse_json(line).map_err(|e| format!("bad request: {e}"))?;
    let id = obj.get("id").and_then(Json::as_f64).unwrap_or(0.0) as u64;
    let op = field(&obj, "op").ok_or("bad request: missing `op`")?;
    let op = Op::parse(op).ok_or_else(|| format!("bad request: unknown op `{op}`"))?;
    let source = match field(&obj, "source") {
        Some(s) => s.to_string(),
        None if op.is_control() => String::new(),
        None => return Err(format!("bad request: `{}` needs `source`", op.name())),
    };
    if op == Op::Explain && field(&obj, "proc").is_none() {
        return Err("bad request: `explain` needs `proc`".to_string());
    }
    Ok(Request {
        id,
        op,
        source,
        level: field(&obj, "level").map(str::to_string),
        proc: field(&obj, "proc").map(str::to_string),
        param: field(&obj, "param").map(str::to_string),
        filter: field(&obj, "filter").map(str::to_string),
        label: field(&obj, "label").map(str::to_string),
    })
}

/// The request's analysis configuration — the same mapping as the CLI's
/// `--level` flag, so daemon responses match one-shot output exactly.
fn level_config(level: Option<&str>, jobs: usize) -> Result<AnalysisConfig, String> {
    let mut config = match level {
        None | Some("poly") => AnalysisConfig::default(),
        Some("literal") => AnalysisConfig {
            jump_function: JumpFunctionKind::Literal,
            ..AnalysisConfig::default()
        },
        Some("intra") => AnalysisConfig {
            jump_function: JumpFunctionKind::IntraproceduralConstant,
            ..AnalysisConfig::default()
        },
        Some("pass") => AnalysisConfig {
            jump_function: JumpFunctionKind::PassThrough,
            ..AnalysisConfig::default()
        },
        Some("cond") => AnalysisConfig::conditional(),
        Some(other) => return Err(format!("unknown level `{other}`")),
    };
    config.jobs = jobs;
    Ok(config)
}

// ---- rendering ------------------------------------------------------------

/// Renders an `explain` report exactly like the CLI: the provenance
/// explanation, plus the attribution table when no parameter narrows
/// the query. Shared by `src/cli.rs` and the daemon for byte-identity.
///
/// # Errors
///
/// The provenance layer's error string (e.g. an unknown procedure).
pub fn render_explain(
    program: &ipcp_ir::Program,
    config: &AnalysisConfig,
    proc: &str,
    param: Option<&str>,
) -> Result<String, String> {
    let prov = crate::provenance::analyze_provenance(program, config);
    let mut out = prov.explain(proc, param)?;
    if param.is_none() {
        out.push('\n');
        out.push_str(&prov.attribution_table());
    }
    Ok(out)
}

fn escape_json(out: &mut String, text: &str) {
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// The wire response minus its `{"id":N,` prefix. Escaping dominates
/// the cost of serving a memoized response, so the memo stores tails —
/// a warm hit only prepends the per-request id.
fn render_tail(result: &Result<String, String>) -> String {
    let mut out = String::new();
    match result {
        Ok(output) => {
            out.push_str("\"ok\":true,\"output\":\"");
            escape_json(&mut out, output);
        }
        Err(error) => {
            out.push_str("\"ok\":false,\"error\":\"");
            escape_json(&mut out, error);
        }
    }
    out.push_str("\"}");
    out
}

fn frame(id: u64, tail: &str) -> String {
    format!("{{\"id\":{id},{tail}")
}

fn render_response(id: u64, result: &Result<String, String>) -> String {
    frame(id, &render_tail(result))
}

// ---- tenants --------------------------------------------------------------

/// Memo key for rendered responses. Only the pure query ops memoize:
/// `why` depends on live audit state (its answer legitimately changes
/// between the first and second run over the same source) and `metrics`
/// is a live snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum MemoKey {
    Analyze {
        level: Option<String>,
    },
    Explain {
        level: Option<String>,
        proc: String,
        param: Option<String>,
    },
}

type MemoSlot = Arc<Mutex<Option<Arc<String>>>>;

/// One resident program: a shared session plus its response memo.
struct Tenant {
    source_len: u64,
    session: AnalysisSession,
    /// Compute-once slots: concurrent identical cold requests serialize
    /// on the slot, so each key consults the disk cache exactly once —
    /// no double-counted hits, no duplicated work.
    memo: Mutex<HashMap<MemoKey, MemoSlot>>,
    /// Serializes ops that must observe the session's analyze +
    /// `last_audit` pair coherently (`why`, and the analyze that feeds
    /// the memo).
    live: Mutex<()>,
    /// Logical admission clock of the most recent use (LRU order).
    last_used: AtomicU64,
}

impl Tenant {
    fn footprint(&self) -> u64 {
        let memo_entries = self.memo.lock().expect("memo lock").len() as u64;
        self.source_len + self.session.approx_footprint_bytes() + memo_entries * 256
    }
}

struct Registry {
    tenants: Mutex<HashMap<u64, Arc<Tenant>>>,
    clock: AtomicU64,
    max_bytes: Option<u64>,
    evictions: AtomicU64,
}

impl Registry {
    fn new(max_bytes: Option<u64>) -> Self {
        Registry {
            tenants: Mutex::new(HashMap::new()),
            clock: AtomicU64::new(0),
            max_bytes,
            evictions: AtomicU64::new(0),
        }
    }

    /// The tenant for `source`, admitting it if new. Compilation runs
    /// outside the registry lock; when two clients race the same new
    /// program, the first insertion wins and the loser's session is
    /// dropped.
    fn tenant(
        &self,
        source: &str,
        label: Option<&str>,
        disk: Option<&Arc<DiskCache>>,
    ) -> Result<Arc<Tenant>, String> {
        let fp = ipcp_ir::fingerprint::fingerprint_debug(&source);
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(t) = self.tenants.lock().expect("registry lock").get(&fp) {
            t.last_used.store(now, Ordering::Relaxed);
            return Ok(Arc::clone(t));
        }
        let program = ipcp_ir::compile_to_ir(source).map_err(|e| e.render(source))?;
        let mut session = AnalysisSession::new(&program);
        if let Some(cache) = disk {
            session.attach_disk_cache(Arc::clone(cache));
        }
        let label = label
            .map(str::to_string)
            .unwrap_or_else(|| format!("serve:{fp:016x}"));
        session.set_audit_label(&label);
        let fresh = Arc::new(Tenant {
            source_len: source.len() as u64,
            session,
            memo: Mutex::new(HashMap::new()),
            live: Mutex::new(()),
            last_used: AtomicU64::new(now),
        });
        let mut tenants = self.tenants.lock().expect("registry lock");
        let tenant = Arc::clone(tenants.entry(fp).or_insert_with(|| Arc::clone(&fresh)));
        tenant.last_used.store(now, Ordering::Relaxed);
        self.evict_over_budget(&mut tenants, fp);
        Ok(tenant)
    }

    /// Evicts least-recently-used tenants until the byte budget holds —
    /// the disk cache's LRU idiom with sessions for entries. The tenant
    /// just touched (`keep`) is never evicted, so the budget is a soft
    /// cap: one oversized program still analyzes, it just lives alone.
    fn evict_over_budget(&self, tenants: &mut HashMap<u64, Arc<Tenant>>, keep: u64) {
        let Some(max) = self.max_bytes else { return };
        let mut order: Vec<(u64, u64, u64)> = tenants
            .iter()
            .map(|(&fp, t)| (t.last_used.load(Ordering::Relaxed), fp, t.footprint()))
            .collect();
        let mut total: u64 = order.iter().map(|&(_, _, bytes)| bytes).sum();
        // Oldest use first; fingerprint breaks ties deterministically.
        order.sort_unstable();
        for (_, fp, bytes) in order {
            if total <= max {
                break;
            }
            if fp == keep {
                continue;
            }
            tenants.remove(&fp);
            total -= bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn resident_bytes(&self) -> u64 {
        self.tenants
            .lock()
            .expect("registry lock")
            .values()
            .map(|t| t.footprint())
            .sum()
    }

    fn count(&self) -> usize {
        self.tenants.lock().expect("registry lock").len()
    }
}

// ---- the server -----------------------------------------------------------

struct Server {
    config: ServeConfig,
    disk: Option<Arc<DiskCache>>,
    registry: Registry,
    inflight: AtomicUsize,
    requests: AtomicU64,
    overloaded: AtomicU64,
    shutdown: AtomicBool,
    /// Per-op latency histograms (microseconds); the count doubles as
    /// the per-op request counter.
    latency: Mutex<BTreeMap<&'static str, Histogram>>,
}

impl Server {
    fn new(config: ServeConfig) -> io::Result<Self> {
        let disk = match &config.cache_dir {
            Some(dir) => Some(Arc::new(DiskCache::open(dir)?)),
            None => None,
        };
        let registry = Registry::new(config.max_tenant_bytes);
        Ok(Server {
            config,
            disk,
            registry,
            inflight: AtomicUsize::new(0),
            requests: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            latency: Mutex::new(BTreeMap::new()),
        })
    }

    fn handle_line(&self, line: &str) -> String {
        let started = Instant::now();
        self.requests.fetch_add(1, Ordering::Relaxed);
        let req = match parse_request(line) {
            Ok(req) => req,
            Err(e) => {
                self.record_latency("invalid", started);
                return render_response(0, &Err(e));
            }
        };
        if !req.op.is_control() {
            let admitted = self.inflight.fetch_add(1, Ordering::SeqCst) < self.config.max_inflight;
            if !admitted {
                self.inflight.fetch_sub(1, Ordering::SeqCst);
                self.overloaded.fetch_add(1, Ordering::Relaxed);
                self.record_latency(req.op.name(), started);
                return render_response(req.id, &Err(OVERLOADED.to_string()));
            }
        }
        let tail = self.dispatch(&req);
        if !req.op.is_control() {
            self.inflight.fetch_sub(1, Ordering::SeqCst);
        }
        self.record_latency(req.op.name(), started);
        frame(req.id, &tail)
    }

    fn record_latency(&self, op: &'static str, started: Instant) {
        let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.latency
            .lock()
            .expect("latency lock")
            .entry(op)
            .or_default()
            .record(micros);
    }

    /// Serves one parsed request, returning the rendered response tail
    /// (see [`render_tail`]).
    fn dispatch(&self, req: &Request) -> Arc<String> {
        match req.op {
            Op::Shutdown => {
                self.shutdown.store(true, Ordering::SeqCst);
                Arc::new(render_tail(&Ok(
                    "shutting down: draining in-flight requests\n".to_string(),
                )))
            }
            Op::Metrics => Arc::new(render_tail(&Ok(self.metrics_text()))),
            Op::Why => Arc::new(render_tail(&self.why(req))),
            Op::Analyze | Op::Explain => {
                let tenant = match self.registry.tenant(
                    &req.source,
                    req.label.as_deref(),
                    self.disk.as_ref(),
                ) {
                    Ok(tenant) => tenant,
                    Err(e) => return Arc::new(render_tail(&Err(e))),
                };
                let key = match req.op {
                    Op::Analyze => MemoKey::Analyze {
                        level: req.level.clone(),
                    },
                    _ => MemoKey::Explain {
                        level: req.level.clone(),
                        proc: req.proc.clone().unwrap_or_default(),
                        param: req.param.clone(),
                    },
                };
                let slot = Arc::clone(
                    tenant
                        .memo
                        .lock()
                        .expect("memo lock")
                        .entry(key)
                        .or_default(),
                );
                let mut slot = slot.lock().expect("memo slot lock");
                if slot.is_none() {
                    *slot = Some(Arc::new(render_tail(&self.compute(&tenant, req))));
                }
                Arc::clone(slot.as_ref().expect("memo slot filled"))
            }
        }
    }

    fn why(&self, req: &Request) -> Result<String, String> {
        let tenant = self
            .registry
            .tenant(&req.source, req.label.as_deref(), self.disk.as_ref())?;
        let config = level_config(req.level.as_deref(), self.config.jobs)?;
        let _live = tenant.live.lock().expect("tenant live lock");
        tenant
            .session
            .analyze_checked(&config)
            .map_err(|e| e.to_string())?;
        let audit = tenant
            .session
            .last_audit()
            .ok_or_else(|| "no incrementality audit available (metered run?)".to_string())?;
        Ok(audit.render(req.filter.as_deref()))
    }

    fn compute(&self, tenant: &Tenant, req: &Request) -> Result<String, String> {
        let config = level_config(req.level.as_deref(), self.config.jobs)?;
        match req.op {
            Op::Analyze => {
                let _live = tenant.live.lock().expect("tenant live lock");
                let outcome = tenant
                    .session
                    .analyze_checked(&config)
                    .map_err(|e| e.to_string())?;
                Ok(crate::report::analyze_to_string(&outcome))
            }
            Op::Explain => {
                let proc = req.proc.as_deref().unwrap_or_default();
                render_explain(
                    tenant.session.program(),
                    &config,
                    proc,
                    req.param.as_deref(),
                )
            }
            _ => unreachable!("only query ops memoize"),
        }
    }

    fn metrics_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str(
            "# HELP ipcp_serve_requests_total Requests received, by operation.\n\
             # TYPE ipcp_serve_requests_total counter\n",
        );
        let latency = self.latency.lock().expect("latency lock").clone();
        for (op, hist) in &latency {
            let _ = writeln!(
                out,
                "ipcp_serve_requests_total{{op=\"{op}\"}} {}",
                hist.count()
            );
        }
        out.push_str(
            "# HELP ipcp_serve_request_latency_microseconds Per-op request latency \
             quantiles (log-linear histogram, 1% relative error).\n\
             # TYPE ipcp_serve_request_latency_microseconds summary\n",
        );
        for (op, hist) in &latency {
            for (label, q) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)] {
                if let Some(v) = hist.quantile(q) {
                    let _ = writeln!(
                        out,
                        "ipcp_serve_request_latency_microseconds{{op=\"{op}\",quantile=\"{label}\"}} {v:.1}"
                    );
                }
            }
            let _ = writeln!(
                out,
                "ipcp_serve_request_latency_microseconds_sum{{op=\"{op}\"}} {}",
                hist.sum()
            );
            let _ = writeln!(
                out,
                "ipcp_serve_request_latency_microseconds_count{{op=\"{op}\"}} {}",
                hist.count()
            );
        }
        out.push_str(
            "# HELP ipcp_serve_overloaded_total Requests rejected by admission control.\n\
             # TYPE ipcp_serve_overloaded_total counter\n",
        );
        let _ = writeln!(
            out,
            "ipcp_serve_overloaded_total {}",
            self.overloaded.load(Ordering::Relaxed)
        );
        out.push_str(
            "# HELP ipcp_serve_tenants Resident tenant sessions.\n\
             # TYPE ipcp_serve_tenants gauge\n",
        );
        let _ = writeln!(out, "ipcp_serve_tenants {}", self.registry.count());
        out.push_str(
            "# HELP ipcp_serve_tenant_bytes Estimated resident tenant footprint.\n\
             # TYPE ipcp_serve_tenant_bytes gauge\n",
        );
        let _ = writeln!(
            out,
            "ipcp_serve_tenant_bytes {}",
            self.registry.resident_bytes()
        );
        out.push_str(
            "# HELP ipcp_serve_tenant_evictions_total Tenant sessions evicted by the \
             byte budget.\n\
             # TYPE ipcp_serve_tenant_evictions_total counter\n",
        );
        let _ = writeln!(
            out,
            "ipcp_serve_tenant_evictions_total {}",
            self.registry.evictions.load(Ordering::Relaxed)
        );
        // Incrementality: recomputed artifacts by miss reason, summed
        // over every resident tenant. Zero first-computation misses
        // after warm-up is the "warm requests hit the shared session"
        // invariant, observable right here.
        let mut miss_reasons: BTreeMap<String, u64> = BTreeMap::new();
        {
            let tenants = self.registry.tenants.lock().expect("registry lock");
            for tenant in tenants.values() {
                for (label, n) in tenant.session.stats().miss_reasons {
                    *miss_reasons.entry(label).or_insert(0) += n;
                }
            }
        }
        if !miss_reasons.is_empty() {
            out.push_str(
                "# HELP ipcp_serve_session_miss_reason_total Recomputed artifacts by miss \
                 reason, summed over resident tenants.\n\
                 # TYPE ipcp_serve_session_miss_reason_total counter\n",
            );
            for (label, n) in &miss_reasons {
                let _ = writeln!(
                    out,
                    "ipcp_serve_session_miss_reason_total{{reason=\"{label}\"}} {n}"
                );
            }
        }
        if let Some(cache) = &self.disk {
            let cs = cache.stats();
            out.push_str(
                "# HELP ipcp_serve_diskcache_operations_total Shared persistent-cache \
                 traffic of this daemon.\n\
                 # TYPE ipcp_serve_diskcache_operations_total counter\n",
            );
            for (op, n) in [
                ("hits", cs.hits),
                ("misses", cs.misses),
                ("writes", cs.writes),
                ("write_errors", cs.write_errors),
                ("quarantined", cs.quarantined),
                ("evicted", cs.evicted),
            ] {
                let _ = writeln!(
                    out,
                    "ipcp_serve_diskcache_operations_total{{op=\"{op}\"}} {n}"
                );
            }
        }
        out
    }

    fn summary(&self) -> ServeSummary {
        ServeSummary {
            requests: self.requests.load(Ordering::Relaxed),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            evictions: self.registry.evictions.load(Ordering::Relaxed),
            tenants: self.registry.count(),
        }
    }
}

// ---- the socket loop ------------------------------------------------------

fn handle_connection(server: &Arc<Server>, mut stream: UnixStream) {
    // Short read timeouts keep the thread responsive to shutdown while
    // a client holds its connection open idle.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=pos).collect();
            let text = String::from_utf8_lossy(&line[..line.len() - 1]);
            let response = server.handle_line(text.trim_end_matches('\r'));
            if stream
                .write_all(response.as_bytes())
                .and_then(|()| stream.write_all(b"\n"))
                .is_err()
            {
                return;
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if server.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// A running daemon: connect via [`Client`], stop via a `shutdown`
/// request, then [`ServeHandle::join`] for the summary.
pub struct ServeHandle {
    thread: std::thread::JoinHandle<ServeSummary>,
}

impl ServeHandle {
    /// Waits for the daemon to drain and exit.
    ///
    /// # Errors
    ///
    /// When the daemon thread panicked.
    pub fn join(self) -> io::Result<ServeSummary> {
        self.thread
            .join()
            .map_err(|_| io::Error::other("serve thread panicked"))
    }
}

/// Starts a daemon in a background thread, returning once the socket
/// is bound and accepting. A stale socket file from a dead daemon is
/// replaced.
///
/// # Errors
///
/// When the socket cannot be bound or the cache directory not opened.
pub fn spawn(config: ServeConfig) -> io::Result<ServeHandle> {
    let server = Arc::new(Server::new(config)?);
    let _ = std::fs::remove_file(&server.config.socket);
    let listener = UnixListener::bind(&server.config.socket)?;
    listener.set_nonblocking(true)?;
    let thread = std::thread::spawn(move || accept_loop(&server, &listener));
    Ok(ServeHandle { thread })
}

/// Runs a daemon on the current thread until a `shutdown` request
/// drains it; the blocking form of [`spawn`] used by the CLI.
///
/// # Errors
///
/// When the socket cannot be bound or the cache directory not opened.
pub fn run(config: ServeConfig) -> io::Result<ServeSummary> {
    spawn(config)?.join()
}

fn accept_loop(server: &Arc<Server>, listener: &UnixListener) -> ServeSummary {
    let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !server.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let server = Arc::clone(server);
                workers.push(std::thread::spawn(move || {
                    handle_connection(&server, stream);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
        workers.retain(|w| !w.is_finished());
    }
    // Graceful drain: every connection thread finishes its in-flight
    // request and writes the response before we report done.
    for worker in workers {
        let _ = worker.join();
    }
    let _ = std::fs::remove_file(&server.config.socket);
    server.summary()
}

// ---- client ---------------------------------------------------------------

/// A parsed daemon response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Echo of the request id.
    pub id: u64,
    /// Whether the request succeeded.
    pub ok: bool,
    /// The output on success, the error text on failure.
    pub text: String,
}

impl Response {
    /// The output, or the error as `Err` — mirrors [`crate::analyze_checked`]-style results.
    ///
    /// # Errors
    ///
    /// The daemon's error text when the request failed.
    pub fn into_result(self) -> Result<String, String> {
        if self.ok {
            Ok(self.text)
        } else {
            Err(self.text)
        }
    }
}

/// Parses one response line.
///
/// # Errors
///
/// When the line is not a valid response object.
pub fn parse_response(line: &str) -> Result<Response, String> {
    let obj = parse_json(line).map_err(|e| format!("bad response: {e}"))?;
    let id = obj.get("id").and_then(Json::as_f64).unwrap_or(0.0) as u64;
    let ok = match obj.get("ok") {
        Some(Json::Bool(b)) => *b,
        _ => return Err("bad response: missing `ok`".to_string()),
    };
    let key = if ok { "output" } else { "error" };
    let text = field(&obj, key)
        .ok_or_else(|| format!("bad response: missing `{key}`"))?
        .to_string();
    Ok(Response { id, ok, text })
}

/// Builds a request line from string fields (the `id` and `op` plus any
/// of `source`, `level`, `proc`, `param`, `filter`, `label`).
pub fn request_line(id: u64, op: &str, fields: &[(&str, &str)]) -> String {
    let mut out = format!("{{\"id\":{id},\"op\":\"{op}\"");
    for (key, value) in fields {
        out.push_str(",\"");
        out.push_str(key);
        out.push_str("\":\"");
        escape_json(&mut out, value);
        out.push('"');
    }
    out.push('}');
    out
}

/// A blocking line-delimited client for tests, benches, and tooling.
pub struct Client {
    stream: UnixStream,
    buf: Vec<u8>,
}

impl Client {
    /// Connects to a daemon's socket, retrying briefly while the daemon
    /// is still binding.
    ///
    /// # Errors
    ///
    /// The last connect error after ~2 s of retries.
    pub fn connect(socket: &Path) -> io::Result<Client> {
        let mut last = io::Error::other("never attempted");
        for _ in 0..200 {
            match UnixStream::connect(socket) {
                Ok(stream) => {
                    return Ok(Client {
                        stream,
                        buf: Vec::new(),
                    });
                }
                Err(e) => last = e,
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        Err(last)
    }

    /// Sends one raw request line and reads one response line.
    ///
    /// # Errors
    ///
    /// Transport errors (the daemon died or the connection broke).
    pub fn call_raw(&mut self, line: &str) -> io::Result<String> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                let text = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
                return Ok(text);
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "daemon closed the connection",
                    ));
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Sends a structured request and parses the response.
    ///
    /// # Errors
    ///
    /// Transport errors, rendered; protocol-level failures come back as
    /// `ok: false` responses, not `Err`.
    pub fn call(&mut self, id: u64, op: &str, fields: &[(&str, &str)]) -> Result<Response, String> {
        let line = self
            .call_raw(&request_line(id, op, fields))
            .map_err(|e| format!("transport: {e}"))?;
        parse_response(&line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_parsing_rejects_malformed_input() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{\"op\":\"launder\"}").is_err());
        assert!(parse_request("{\"op\":\"analyze\"}")
            .unwrap_err()
            .contains("needs `source`"));
        assert!(parse_request("{\"op\":\"explain\",\"source\":\"x\"}")
            .unwrap_err()
            .contains("needs `proc`"));
        let req = parse_request("{\"id\":7,\"op\":\"analyze\",\"source\":\"main\\nend\\n\"}")
            .expect("valid request");
        assert_eq!((req.id, req.op), (7, Op::Analyze));
        assert_eq!(req.source, "main\nend\n");
        // Control ops need no source.
        assert!(parse_request("{\"op\":\"metrics\"}").is_ok());
        assert!(parse_request("{\"op\":\"shutdown\"}").is_ok());
    }

    #[test]
    fn response_roundtrips_through_the_wire_format() {
        for result in [
            Ok("CONSTANTS(f) = { a = 5 }\nline two\ttabbed \"quoted\"".to_string()),
            Err("unknown level `warp`".to_string()),
        ] {
            let line = render_response(42, &result);
            let back = parse_response(&line).expect("parses");
            assert_eq!(back.id, 42);
            assert_eq!(back.ok, result.is_ok());
            assert_eq!(back.into_result(), result);
        }
    }

    #[test]
    fn request_line_escapes_sources() {
        let line = request_line(3, "analyze", &[("source", "main\n  x = \"1\"\nend\n")]);
        let req = parse_request(&line).expect("roundtrips");
        assert_eq!(req.source, "main\n  x = \"1\"\nend\n");
    }

    #[test]
    fn level_config_mirrors_the_cli_flag() {
        assert_eq!(
            level_config(None, 2).unwrap(),
            AnalysisConfig {
                jobs: 2,
                ..AnalysisConfig::default()
            }
        );
        let cond = level_config(Some("cond"), 0).unwrap();
        assert!(cond.branch_feasibility);
        assert_eq!(cond.jump_function, JumpFunctionKind::Polynomial);
        assert!(level_config(Some("warp"), 0).is_err());
    }
}
