//! Human-readable rendering of analysis outcomes.

use crate::driver::AnalysisOutcome;
use ipcp_analysis::Slot;
use ipcp_ir::{ProcId, Program};
use std::fmt::Write as _;

/// Renders a slot with source-level names resolved against `program`.
pub fn slot_name(program: &Program, p: ProcId, slot: Slot) -> String {
    match slot {
        Slot::Formal(i) => {
            let proc = program.proc(p);
            proc.vars
                .get(i as usize)
                .map(|v| v.name.clone())
                .unwrap_or_else(|| format!("arg{i}"))
        }
        Slot::Global(g) => program.global(g).name.clone(),
        Slot::Result => "<result>".to_string(),
    }
}

/// Renders every non-empty `CONSTANTS(p)` set, one procedure per line:
///
/// ```text
/// CONSTANTS(compute) = { k = 8, n = 64 }
/// ```
pub fn constants_to_string(outcome: &AnalysisOutcome) -> String {
    let program = &outcome.program;
    let mut out = String::new();
    for pid in program.proc_ids() {
        let consts = outcome.constants_of(pid);
        if consts.is_empty() {
            continue;
        }
        let _ = write!(out, "CONSTANTS({}) = {{ ", program.proc(pid).name);
        for (i, (slot, value)) in consts.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{} = {value}", slot_name(program, pid, *slot));
        }
        out.push_str(" }\n");
    }
    if out.is_empty() {
        out.push_str("(no interprocedural constants)\n");
    }
    out
}

/// Renders a one-line summary of an outcome.
pub fn summary_line(outcome: &AnalysisOutcome) -> String {
    let mut line = format!(
        "constants: {} slots, substitutions: {}, return JFs: {}, forward JFs: {}/{} useful, solver iterations: {}, DCE rounds: {}",
        outcome.constant_slot_count(),
        outcome.substitutions.total,
        outcome.stats.return_jfs,
        outcome.stats.useful_forward_jfs,
        outcome.stats.forward_jfs,
        outcome.stats.solver_iterations,
        outcome.stats.dce_rounds,
    );
    // Only conditional propagation prunes edges; the default output of
    // every other level stays byte-identical.
    if outcome.stats.pruned_call_edges > 0 {
        line.push_str(&format!(
            ", pruned call edges: {}",
            outcome.stats.pruned_call_edges
        ));
    }
    line
}

/// Renders per-procedure substitution counts (procedures with zero counts
/// are omitted).
pub fn substitutions_to_string(outcome: &AnalysisOutcome) -> String {
    let program = &outcome.program;
    let mut out = String::new();
    for pid in program.proc_ids() {
        let n = outcome.substitutions.per_proc[pid.index()];
        if n > 0 {
            let _ = writeln!(out, "{:>6}  {}", n, program.proc(pid).name);
        }
    }
    let _ = writeln!(out, "{:>6}  total", outcome.substitutions.total);
    out
}

/// The complete default output of an `analyze` run: constants,
/// substitution counts, the summary line, and — only when something
/// degraded — the robustness report. The CLI and the `ipcp serve`
/// daemon both render through this one function, which is what makes a
/// daemon response byte-identical to one-shot CLI output.
pub fn analyze_to_string(outcome: &AnalysisOutcome) -> String {
    let mut out = String::new();
    out.push_str(&constants_to_string(outcome));
    out.push('\n');
    out.push_str(&substitutions_to_string(outcome));
    let _ = writeln!(out, "\n{}", summary_line(outcome));
    let robustness = robustness_to_string(outcome);
    if !robustness.is_empty() {
        let _ = write!(out, "\n{robustness}");
    }
    out
}

/// Renders the robustness report of a fuel-limited run: consumption,
/// per-phase degradation counts, and precision-ladder steps. Returns the
/// empty string for a clean run, so default output stays untouched.
pub fn robustness_to_string(outcome: &AnalysisOutcome) -> String {
    let r = &outcome.robustness;
    if r.is_clean() {
        return String::new();
    }
    let mut out = String::new();
    let limit = match r.fuel_limit {
        Some(n) => n.to_string(),
        None => "unlimited".to_string(),
    };
    let _ = writeln!(
        out,
        "robustness: fuel {}/{} consumed, {}",
        r.fuel_consumed,
        limit,
        if r.exhausted {
            "exhausted"
        } else {
            "within budget"
        },
    );
    for (phase, count) in &r.degradations {
        let _ = writeln!(out, "  degraded {phase}: {count}");
    }
    for ((from, to), count) in &r.ladder_steps {
        let _ = writeln!(out, "  ladder {from} -> {to}: {count}");
    }
    for (what, count) in &r.anomalies {
        let _ = writeln!(out, "  anomaly {what}: {count}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{analyze_source, AnalysisConfig};

    const SRC: &str = "\
global n\n\
proc init()\nn = 64\nend\n\
proc compute(k)\nprint(n + k)\nend\n\
main\ncall init()\ncall compute(8)\nend\n";

    #[test]
    fn constants_rendering() {
        let out = analyze_source(SRC, &AnalysisConfig::default()).unwrap();
        let s = constants_to_string(&out);
        assert!(s.contains("CONSTANTS(compute)"), "{s}");
        assert!(s.contains("k = 8"), "{s}");
        assert!(s.contains("n = 64"), "{s}");
    }

    #[test]
    fn empty_constants_rendering() {
        let out = analyze_source("main\nprint(1)\nend\n", &AnalysisConfig::default()).unwrap();
        assert!(constants_to_string(&out).contains("no interprocedural constants"));
    }

    #[test]
    fn summary_and_substitutions() {
        let out = analyze_source(SRC, &AnalysisConfig::default()).unwrap();
        let s = summary_line(&out);
        assert!(s.contains("substitutions"), "{s}");
        let t = substitutions_to_string(&out);
        assert!(t.contains("total"), "{t}");
        assert!(t.contains("compute"), "{t}");
    }

    #[test]
    fn robustness_rendering() {
        let clean = analyze_source(SRC, &AnalysisConfig::default()).unwrap();
        assert!(robustness_to_string(&clean).is_empty());
        let starved = analyze_source(
            SRC,
            &AnalysisConfig {
                fuel: Some(0),
                ..Default::default()
            },
        )
        .unwrap();
        let s = robustness_to_string(&starved);
        assert!(s.contains("exhausted"), "{s}");
        assert!(s.contains("degraded"), "{s}");
    }

    #[test]
    fn slot_names_resolve() {
        let out = analyze_source(SRC, &AnalysisConfig::default()).unwrap();
        let program = &out.program;
        let compute = program.proc_by_name("compute").unwrap();
        assert_eq!(slot_name(program, compute, Slot::Formal(0)), "k");
        assert_eq!(
            slot_name(program, compute, Slot::Global(ipcp_ir::GlobalId(0))),
            "n"
        );
        assert_eq!(slot_name(program, compute, Slot::Result), "<result>");
    }
}
