//! Jump function representations (paper §2–3).
//!
//! A forward jump function `J_y^s` gives the value of actual parameter
//! `y` at call site `s` as a function of the *calling* procedure's entry
//! slots. The four implementations studied, in increasing precision and
//! cost:
//!
//! 1. [`JumpFunctionKind::Literal`] — constant only when the actual is a
//!    source literal; misses globals entirely (§3.1.1);
//! 2. [`JumpFunctionKind::IntraproceduralConstant`] — constant when
//!    intraprocedural propagation (plus MOD information) proves it
//!    (§3.1.2);
//! 3. [`JumpFunctionKind::PassThrough`] — additionally transmits an
//!    unmodified entry slot symbolically (§3.1.3);
//! 4. [`JumpFunctionKind::Polynomial`] — transmits any expressible
//!    function of the entry slots (§3.1.4; like the paper's
//!    implementation, ours supports all integer operations via expression
//!    trees, with polynomials as the canonical fragment).
//!
//! The same representation serves as the *return* jump function `R_x^p`,
//! expressed over the callee's own entry slots (§3.2).

use ipcp_analysis::symeval::Sym;
use ipcp_analysis::{LatticeVal, Slot, SymExpr};
use std::collections::BTreeSet;
use std::fmt;

/// Which forward jump function implementation to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum JumpFunctionKind {
    /// §3.1.1 — source literals at the call site only.
    Literal,
    /// §3.1.2 — intraprocedural constants (and constant globals).
    IntraproceduralConstant,
    /// §3.1.3 — constants plus unmodified pass-through slots.
    PassThrough,
    /// §3.1.4 — full polynomial/expression jump functions.
    Polynomial,
}

impl JumpFunctionKind {
    /// All kinds, in increasing precision order.
    pub const ALL: [JumpFunctionKind; 4] = [
        JumpFunctionKind::Literal,
        JumpFunctionKind::IntraproceduralConstant,
        JumpFunctionKind::PassThrough,
        JumpFunctionKind::Polynomial,
    ];
}

impl fmt::Display for JumpFunctionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JumpFunctionKind::Literal => "literal",
            JumpFunctionKind::IntraproceduralConstant => "intraprocedural",
            JumpFunctionKind::PassThrough => "pass-through",
            JumpFunctionKind::Polynomial => "polynomial",
        };
        f.write_str(s)
    }
}

/// A jump function: the value of one callee slot as a function of the
/// caller's entry slots (or, for return jump functions, of the callee's
/// own entry slots).
#[derive(Debug, Clone, PartialEq)]
pub enum JumpFn {
    /// A known constant.
    Const(i64),
    /// Exactly the value of one entry slot (the pass-through shape).
    PassThrough(Slot),
    /// A general expression over entry slots.
    Expr(SymExpr),
    /// Unknown / not representable at the chosen kind — evaluates to ⊥.
    Bottom,
}

impl JumpFn {
    /// Builds a jump function of the requested `kind` from a symbolic
    /// value. The [`JumpFunctionKind::Literal`] kind is *not* handled
    /// here — literalness is a syntactic property of the call site, not
    /// of the symbolic value (see the forward builder).
    pub fn from_sym(kind: JumpFunctionKind, sym: &Sym) -> JumpFn {
        let Some(expr) = sym.as_expr() else {
            return JumpFn::Bottom;
        };
        if let Some(c) = expr.as_const() {
            return JumpFn::Const(c);
        }
        match kind {
            JumpFunctionKind::Literal | JumpFunctionKind::IntraproceduralConstant => JumpFn::Bottom,
            JumpFunctionKind::PassThrough => match expr.as_var() {
                Some(slot) => JumpFn::PassThrough(slot),
                None => JumpFn::Bottom,
            },
            JumpFunctionKind::Polynomial => JumpFn::Expr(expr.clone()),
        }
    }

    /// The paper's *support*: the exact set of entry slots whose values
    /// the jump function reads.
    pub fn support(&self) -> BTreeSet<Slot> {
        match self {
            JumpFn::Const(_) | JumpFn::Bottom => BTreeSet::new(),
            JumpFn::PassThrough(s) => std::iter::once(*s).collect(),
            JumpFn::Expr(e) => e.support(),
        }
    }

    /// Evaluates over the constant lattice given the caller's entry
    /// values.
    pub fn eval_lattice(&self, env: &dyn Fn(Slot) -> LatticeVal) -> LatticeVal {
        match self {
            JumpFn::Const(c) => LatticeVal::Const(*c),
            JumpFn::PassThrough(s) => env(*s),
            JumpFn::Expr(e) => e.eval_lattice(env),
            JumpFn::Bottom => LatticeVal::Bottom,
        }
    }

    /// The constant, if this jump function is one.
    pub fn as_const(&self) -> Option<i64> {
        match self {
            JumpFn::Const(c) => Some(*c),
            _ => None,
        }
    }

    /// Whether this jump function is ⊥.
    pub fn is_bottom(&self) -> bool {
        matches!(self, JumpFn::Bottom)
    }

    /// Converts into the underlying symbolic expression, when one exists.
    pub fn to_expr(&self) -> Option<SymExpr> {
        match self {
            JumpFn::Const(c) => Some(SymExpr::constant(*c)),
            JumpFn::PassThrough(s) => Some(SymExpr::var(*s)),
            JumpFn::Expr(e) => Some(e.clone()),
            JumpFn::Bottom => None,
        }
    }
}

impl fmt::Display for JumpFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JumpFn::Const(c) => write!(f, "{c}"),
            JumpFn::PassThrough(s) => write!(f, "{s}"),
            JumpFn::Expr(e) => write!(f, "{e}"),
            JumpFn::Bottom => f.write_str("⊥"),
        }
    }
}

/// A handle into a [`JumpFnArena`] slab.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JumpFnRef(u32);

/// An arena of jump functions: one contiguous slab per table, addressed
/// by [`JumpFnRef`] index handles.
///
/// At the ~20-procedure scale of the paper's suite, holding each
/// procedure's jump functions in its own `BTreeMap` was fine; at 100k
/// procedures the per-map node allocations dominate, and evaluation
/// chases cold pointers. Tables that arena-allocate instead keep every
/// jump function of the table in one slab — the per-slot structures
/// shrink to `(Slot, JumpFnRef)` pairs, and evaluation walks contiguous
/// memory.
///
/// Slabs report their peak size through [`arena_high_water`] so the
/// scale bench's memory column can come from the tool itself.
#[derive(Debug, Clone, Default)]
pub struct JumpFnArena {
    fns: Vec<JumpFn>,
}

/// Process-wide high-water mark of the largest jump-function slab, in
/// entries (see [`arena_high_water`]).
static ARENA_HIGH_WATER: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// The largest jump-function slab allocated by this process so far, in
/// entries — the arena high-water mark surfaced by `--timings` and
/// `ipcp metrics`.
pub fn arena_high_water() -> usize {
    ARENA_HIGH_WATER.load(std::sync::atomic::Ordering::Relaxed)
}

impl JumpFnArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates `jf` into the slab and returns its handle.
    pub fn alloc(&mut self, jf: JumpFn) -> JumpFnRef {
        let i = u32::try_from(self.fns.len()).expect("jump-function arena overflow");
        self.fns.push(jf);
        ARENA_HIGH_WATER.fetch_max(self.fns.len(), std::sync::atomic::Ordering::Relaxed);
        JumpFnRef(i)
    }

    /// Resolves a handle.
    #[inline]
    pub fn get(&self, r: JumpFnRef) -> &JumpFn {
        &self.fns[r.0 as usize]
    }

    /// Number of allocated jump functions.
    pub fn len(&self) -> usize {
        self.fns.len()
    }

    /// Whether the slab is empty.
    pub fn is_empty(&self) -> bool {
        self.fns.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcp_lang::ast::BinOp;

    fn sym_var(slot: Slot) -> Sym {
        Sym::Expr(SymExpr::var(slot))
    }

    fn sym_expr() -> Sym {
        Sym::Expr(
            SymExpr::binop(
                BinOp::Add,
                &SymExpr::var(Slot::Formal(0)),
                &SymExpr::constant(1),
            )
            .unwrap(),
        )
    }

    #[test]
    fn kinds_ordered_by_precision() {
        use JumpFunctionKind::*;
        assert!(Literal < IntraproceduralConstant);
        assert!(IntraproceduralConstant < PassThrough);
        assert!(PassThrough < Polynomial);
        assert_eq!(JumpFunctionKind::ALL.len(), 4);
    }

    #[test]
    fn constants_survive_every_kind() {
        for kind in JumpFunctionKind::ALL {
            let jf = JumpFn::from_sym(kind, &Sym::constant(7));
            assert_eq!(jf.as_const(), Some(7), "{kind}");
        }
    }

    #[test]
    fn bottom_sym_is_bottom_everywhere() {
        for kind in JumpFunctionKind::ALL {
            assert!(JumpFn::from_sym(kind, &Sym::Bottom).is_bottom(), "{kind}");
        }
    }

    #[test]
    fn pass_through_needs_pass_through_kind() {
        let v = sym_var(Slot::Formal(2));
        assert!(JumpFn::from_sym(JumpFunctionKind::IntraproceduralConstant, &v).is_bottom());
        assert_eq!(
            JumpFn::from_sym(JumpFunctionKind::PassThrough, &v),
            JumpFn::PassThrough(Slot::Formal(2))
        );
        // Polynomial represents it too (as an expression).
        let p = JumpFn::from_sym(JumpFunctionKind::Polynomial, &v);
        assert_eq!(p.support().len(), 1);
    }

    #[test]
    fn expressions_need_polynomial_kind() {
        let e = sym_expr();
        assert!(JumpFn::from_sym(JumpFunctionKind::PassThrough, &e).is_bottom());
        let p = JumpFn::from_sym(JumpFunctionKind::Polynomial, &e);
        assert!(matches!(p, JumpFn::Expr(_)));
        assert_eq!(
            p.eval_lattice(&|_| LatticeVal::Const(4)),
            LatticeVal::Const(5)
        );
    }

    #[test]
    fn support_matches_definition() {
        assert!(JumpFn::Const(3).support().is_empty());
        assert!(JumpFn::Bottom.support().is_empty());
        assert_eq!(JumpFn::PassThrough(Slot::Formal(1)).support().len(), 1);
        let p = JumpFn::from_sym(JumpFunctionKind::Polynomial, &sym_expr());
        assert!(p.support().contains(&Slot::Formal(0)));
    }

    #[test]
    fn eval_lattice_levels() {
        use LatticeVal::*;
        let pt = JumpFn::PassThrough(Slot::Formal(0));
        assert_eq!(pt.eval_lattice(&|_| Const(9)), Const(9));
        assert_eq!(pt.eval_lattice(&|_| Top), Top);
        assert_eq!(pt.eval_lattice(&|_| Bottom), Bottom);
        assert_eq!(JumpFn::Bottom.eval_lattice(&|_| Top), Bottom);
        assert_eq!(JumpFn::Const(2).eval_lattice(&|_| Bottom), Const(2));
    }

    #[test]
    fn to_expr_roundtrip() {
        assert_eq!(JumpFn::Const(4).to_expr().unwrap().as_const(), Some(4));
        assert_eq!(
            JumpFn::PassThrough(Slot::Formal(0))
                .to_expr()
                .unwrap()
                .as_var(),
            Some(Slot::Formal(0))
        );
        assert!(JumpFn::Bottom.to_expr().is_none());
    }

    #[test]
    fn arena_allocates_and_resolves() {
        let mut arena = JumpFnArena::new();
        assert!(arena.is_empty());
        let a = arena.alloc(JumpFn::Const(3));
        let b = arena.alloc(JumpFn::PassThrough(Slot::Formal(1)));
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.get(a).as_const(), Some(3));
        assert_eq!(arena.get(b), &JumpFn::PassThrough(Slot::Formal(1)));
        assert!(arena_high_water() >= 2);
    }

    #[test]
    fn display() {
        assert_eq!(JumpFn::Const(3).to_string(), "3");
        assert_eq!(JumpFn::PassThrough(Slot::Formal(0)).to_string(), "arg0");
        assert_eq!(JumpFn::Bottom.to_string(), "⊥");
        assert_eq!(JumpFunctionKind::PassThrough.to_string(), "pass-through");
    }
}
