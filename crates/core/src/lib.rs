//! # ipcp-core — interprocedural constant propagation with jump functions
//!
//! A faithful implementation of the system studied in *"Interprocedural
//! Constant Propagation: A Study of Jump Function Implementations"*
//! (Grove & Torczon, PLDI 1993), in the Callahan–Cooper–Kennedy–Torczon
//! framework:
//!
//! * the three-level constant lattice (re-exported from
//!   [`ipcp_analysis::lattice`]; the paper's Figure 1),
//! * the four **forward jump functions** — literal, intraprocedural
//!   constant, pass-through parameter, polynomial parameter ([`jump`],
//!   [`forward`]),
//! * the polynomial **return jump function**, generated bottom-up over
//!   the call graph ([`retjf`]),
//! * the interprocedural **worklist solver** over `VAL` sets ([`solver`]),
//! * **substitution counting** — the study's effectiveness metric
//!   ([`subst`]),
//! * a configurable [`driver`] covering every Table 2/3 column, including
//!   MOD on/off, return jump functions on/off, complete propagation
//!   (iterated with dead code elimination), and the purely
//!   intraprocedural baseline.
//!
//! ```
//! use ipcp_core::{analyze_source, AnalysisConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let source = "
//! global n
//! proc init()
//!   n = 64
//! end
//! proc compute(k)
//!   print(n + k)
//! end
//! main
//!   call init()
//!   call compute(8)
//! end
//! ";
//! let outcome = analyze_source(source, &AnalysisConfig::default())?;
//! // `compute` learns both its formal k = 8 and the global n = 64.
//! assert_eq!(outcome.constant_slot_count(), 2);
//! # Ok(())
//! # }
//! ```

pub mod audit;
pub mod binding;
pub mod cloning;
pub mod cond;
pub mod dependence;
pub mod diskcache;
pub mod driver;
pub mod forward;
pub mod framework;
pub mod jump;
pub mod optimize;
pub mod parallel;
pub mod provenance;
pub mod report;
pub mod retjf;
pub mod serve;
pub mod session;
pub mod solver;
pub mod source_transform;
pub mod subst;

/// The constant-propagation lattice (the paper's Figure 1).
pub mod lattice {
    pub use ipcp_analysis::lattice::LatticeVal;
}

/// The structured-observability layer (re-exported from [`ipcp_obs`]):
/// sinks, the in-memory trace recorder, Chrome trace-event export, and
/// Prometheus-style metrics exposition.
pub mod obs {
    pub use ipcp_obs::*;
}

pub use audit::{IncrementalAudit, Ledger, MissReason, PhaseAudit};
pub use binding::{solve_binding, solve_binding_budgeted};
pub use cloning::{apply_cloning, cloning_opportunities, CloneOpportunity};
pub use cond::{solve_cond, solve_cond_budgeted, solve_cond_traced};
pub use dependence::subscript_counts;
pub use diskcache::{
    outcome_key, CacheIo, CacheStats, DiskCache, FaultyIo, LoadMiss, RealIo, VerifyOutcome,
};
pub use driver::{
    analyze, analyze_checked, analyze_reference, analyze_source, analyze_with_budget,
    analyze_with_budget_reference, AnalysisConfig, AnalysisOutcome, PhaseStats, ResourceExhausted,
    SolverKind,
};
pub use forward::{
    build_forward_jfs, build_forward_jfs_budgeted, build_forward_jfs_with, build_literal_jfs_fast,
    ForwardJumpFns, SiteJumpFns,
};
pub use framework::{
    run_budgeted_pass, solve_value_contexts, BudgetedProcPass, DataflowProblem, EdgeSink,
    EngineOutcome, Rung,
};
pub use ipcp_analysis::{
    Budget, ExhaustionPolicy, FaultInjector, FuelSource, IoFaultInjector, IoFaultKind, IoOp,
    LatticeVal, Phase, RobustnessReport, Slot,
};
pub use jump::{arena_high_water, JumpFn, JumpFnArena, JumpFnRef, JumpFunctionKind};
pub use optimize::{optimize, OptimizeConfig, OptimizeStats};
pub use parallel::{effective_jobs, Parallelism};
pub use provenance::{
    analyze_provenance, analyze_provenance_obs, Attribution, JustifyingEdge, Provenance,
    RjfRecovery, SlotProvenance,
};
pub use retjf::{
    build_return_jfs, build_return_jfs_budgeted, build_return_jfs_with, ReturnJumpFns, RjfComposer,
    RjfConstEval, RjfLattice,
};
pub use serve::{ServeConfig, ServeHandle, ServeSummary};
pub use session::{AnalysisSession, ArtifactStore, PhaseCounter, SessionPhase, SessionStats};
pub use solver::{solve, solve_budgeted, ValSets};
pub use source_transform::{transform_source, TransformedSource};
pub use subst::{
    apply_substitutions, count_substitutions, count_substitutions_with_ssa,
    count_substitutions_with_ssa_jobs, SubstitutionCounts,
};
