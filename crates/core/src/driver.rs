//! The analyzer driver: wires the full pipeline together under one
//! configuration, reproducing every column of the paper's Tables 2 and 3.
//!
//! Pipeline (paper §4.1): call graph → MOD/REF summaries → return jump
//! function generation (bottom-up) → forward jump function generation →
//! interprocedural propagation → substitution counting; with *complete
//! propagation* (Table 3, column 3) the driver additionally runs dead
//! code elimination and, if anything died, resets and repeats from
//! scratch.

use crate::binding::solve_binding_budgeted;
use crate::cond::solve_cond_budgeted;
use crate::forward::{build_forward_jfs_budgeted, ForwardJumpFns};
use crate::jump::JumpFunctionKind;
use crate::retjf::{
    build_return_jfs_budgeted, ReturnJumpFns, RjfComposer, RjfConstEval, RjfLattice,
};
use crate::solver::{entry_env_of, solve_budgeted, ValSets};
use crate::subst::{count_substitutions, SubstitutionCounts};
use ipcp_analysis::dce::dce_round_budgeted;
use ipcp_analysis::sccp::{bottom_entry, sccp_budgeted, SccpConfig};
use ipcp_analysis::symeval::{CallSymbolics, NoCallSymbolics, SymEvalOptions};
use ipcp_analysis::{
    augment_global_vars, compute_modref_budgeted, Budget, CallGraph, CallLattice, ExhaustionPolicy,
    ModKills, PessimisticCalls, RobustnessReport, Slot,
};
use ipcp_ir::Program;
use ipcp_lang::Diagnostics;
use ipcp_ssa::{build_ssa, KillOracle, WorstCaseKills};
use std::collections::BTreeMap;

/// Which interprocedural solver formulation to run (both produce
/// identical `VAL` sets; see `crate::binding`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SolverKind {
    /// The paper's simple worklist iteration over the call graph (§4.1).
    #[default]
    CallGraph,
    /// The sparse binding-multigraph formulation (§2, citing
    /// Cooper–Kennedy).
    BindingGraph,
}

/// Full analyzer configuration — one point in the study's design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisConfig {
    /// Which forward jump function implementation to use (Table 2
    /// columns).
    pub jump_function: JumpFunctionKind,
    /// Whether return jump functions are generated and used (Table 2,
    /// "Using"/"No Return Jump Functions").
    pub return_jump_functions: bool,
    /// Whether interprocedural MOD information is available (Table 3,
    /// "without MOD"/"with MOD"). Without it, SSA construction assumes
    /// every call kills every by-ref actual and every global.
    pub mod_info: bool,
    /// Whether to iterate propagation with dead code elimination until
    /// nothing more dies (Table 3, "Complete Propagation").
    pub complete_propagation: bool,
    /// Whether interprocedural propagation runs at all; `false` is the
    /// purely intraprocedural baseline (Table 3, column 4 — MOD
    /// information is still honoured).
    pub interprocedural: bool,
    /// Extension beyond the paper: evaluate return jump functions at
    /// forward-generation time by full symbolic composition instead of
    /// the paper's constant-or-⊥ rule (§3.2). Off by default.
    pub rjf_full_composition: bool,
    /// Which solver formulation to use (identical results either way).
    pub solver: SolverKind,
    /// Extension beyond the paper: build gated (γ) jump functions from
    /// if-joins, the gated-single-assignment idea of §4.2. Subsumes most
    /// of what complete propagation buys, without iterating dead code
    /// elimination. Off by default.
    pub gsa: bool,
    /// Extension beyond the paper: conditional constant propagation with
    /// interprocedural branch feasibility (`--level cond`). The solver
    /// prunes call edges sitting in branches whose predicates are proven
    /// constant under the caller's entry context (SCCP executable-edge
    /// tracking lifted across calls; see [`crate::cond`]), sharpening
    /// callee contexts. Always solves over the call graph regardless of
    /// [`AnalysisConfig::solver`] (the binding-graph formulation has no
    /// per-procedure visit at which to re-decide feasibility). Off by
    /// default.
    pub branch_feasibility: bool,
    /// Worker threads for the session's parallel fan-outs (0 is treated
    /// as 1; see [`ipcp_analysis::Parallelism`]). Results are
    /// bit-identical at every setting — parallelism only changes
    /// wall-clock — so `jobs` deliberately takes no part in artifact
    /// cache keys. Metered (finite-fuel) runs ignore it and stay on the
    /// sequential reference pipeline. Defaults to the `IPCP_JOBS`
    /// environment override, else 1; the CLI defaults to every
    /// available core instead.
    pub jobs: usize,
    /// Fuel budget shared by every analysis phase; `None` is unlimited.
    /// When the tank runs dry, phases degrade along the jump-function
    /// precision ladder instead of panicking or looping (see
    /// [`ipcp_analysis::budget`]).
    pub fuel: Option<u64>,
    /// What exhaustion means for the caller: keep the degraded (sound,
    /// coarser) result, or treat it as an error.
    pub on_exhausted: ExhaustionPolicy,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            jump_function: JumpFunctionKind::Polynomial,
            return_jump_functions: true,
            mod_info: true,
            complete_propagation: false,
            interprocedural: true,
            rjf_full_composition: false,
            solver: SolverKind::CallGraph,
            gsa: false,
            branch_feasibility: false,
            jobs: ipcp_analysis::Parallelism::default_jobs(),
            fuel: None,
            on_exhausted: ExhaustionPolicy::Degrade,
        }
    }
}

impl AnalysisConfig {
    /// The paper's best practical configuration: pass-through jump
    /// functions with return jump functions and MOD information.
    pub fn pass_through() -> Self {
        AnalysisConfig {
            jump_function: JumpFunctionKind::PassThrough,
            ..Self::default()
        }
    }

    /// The purely intraprocedural baseline (Table 3, column 4).
    pub fn intraprocedural_baseline() -> Self {
        AnalysisConfig {
            interprocedural: false,
            return_jump_functions: false,
            ..Self::default()
        }
    }

    /// Conditional constant propagation (`--level cond`): polynomial
    /// jump functions plus interprocedural branch feasibility.
    pub fn conditional() -> Self {
        AnalysisConfig {
            jump_function: JumpFunctionKind::Polynomial,
            branch_feasibility: true,
            ..Self::default()
        }
    }
}

/// Aggregate cost/size statistics of one analysis run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Return jump functions built (non-⊥).
    pub return_jfs: usize,
    /// Forward (site, slot) jump functions built.
    pub forward_jfs: usize,
    /// Non-⊥ forward jump functions.
    pub useful_forward_jfs: usize,
    /// Worklist pops in the interprocedural solver.
    pub solver_iterations: usize,
    /// Complete-propagation rounds that found dead code.
    pub dce_rounds: usize,
    /// Call edges pruned as infeasible by conditional propagation
    /// (always 0 unless [`AnalysisConfig::branch_feasibility`]).
    pub pruned_call_edges: usize,
}

/// Everything an analysis run produces.
#[derive(Debug, Clone)]
pub struct AnalysisOutcome {
    /// The analyzed program (transformed when complete propagation ran).
    pub program: Program,
    /// `CONSTANTS(p)` per procedure. Empty (zero-length) for the
    /// intraprocedural baseline — no per-procedure placeholder maps are
    /// materialized; index through [`AnalysisOutcome::constants_of`].
    pub constants: Vec<BTreeMap<Slot, i64>>,
    /// Substitution counts — the study's effectiveness metric.
    pub substitutions: SubstitutionCounts,
    /// Cost statistics.
    pub stats: PhaseStats,
    /// What the fuel budget did to the run: consumption, exhaustion,
    /// per-phase degradation counts and precision-ladder steps. Clean
    /// (all-zero) for unlimited fuel.
    pub robustness: RobustnessReport,
}

/// The shared empty `CONSTANTS` set returned for baseline outcomes —
/// one static map instead of one placeholder per procedure.
static NO_CONSTANTS: BTreeMap<Slot, i64> = BTreeMap::new();

impl AnalysisOutcome {
    /// Total number of interprocedural constants across all `CONSTANTS`
    /// sets.
    pub fn constant_slot_count(&self) -> usize {
        self.constants.iter().map(BTreeMap::len).sum()
    }

    /// `CONSTANTS(p)`: the procedure's entry in [`Self::constants`], or
    /// the shared empty set when the run tracked none (intraprocedural
    /// baseline).
    pub fn constants_of(&self, p: ipcp_ir::ProcId) -> &BTreeMap<Slot, i64> {
        self.constants.get(p.index()).unwrap_or(&NO_CONSTANTS)
    }
}

/// The analysis ran out of fuel under [`ExhaustionPolicy::Error`]. The
/// degraded-but-sound outcome is included so the caller can still
/// inspect (or salvage) it.
#[derive(Debug, Clone)]
pub struct ResourceExhausted {
    /// What degraded, and by how much.
    pub report: RobustnessReport,
}

impl std::fmt::Display for ResourceExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "analysis fuel exhausted after {} units ({} degradations); \
             rerun with a larger --fuel or --on-exhausted degrade",
            self.report.fuel_consumed,
            self.report.total_degradations()
        )
    }
}

impl std::error::Error for ResourceExhausted {}

/// Runs the configured analysis on a program.
///
/// One-shot entry point: opens a throwaway [`crate::AnalysisSession`]
/// and analyzes once. Callers analyzing the same program under several
/// configurations (a Table-2/3 sweep) should hold a session themselves
/// to reuse artifacts across the runs.
pub fn analyze(program: &Program, config: &AnalysisConfig) -> AnalysisOutcome {
    analyze_with_budget(program, config, &Budget::for_limit(config.fuel))
}

/// [`analyze`] through the straight-line single-shot pipeline, with no
/// session or memoization involved — the pre-session behaviour, kept as
/// the equivalence oracle for the session path.
pub fn analyze_reference(program: &Program, config: &AnalysisConfig) -> AnalysisOutcome {
    analyze_with_budget_reference(program, config, &Budget::for_limit(config.fuel))
}

/// [`analyze`], but honoring [`AnalysisConfig::on_exhausted`]: under
/// [`ExhaustionPolicy::Error`] a run that exhausts its fuel becomes an
/// error instead of a silently coarser result.
///
/// # Errors
///
/// Returns [`ResourceExhausted`] when the budget ran dry and the policy
/// is [`ExhaustionPolicy::Error`].
pub fn analyze_checked(
    program: &Program,
    config: &AnalysisConfig,
) -> Result<AnalysisOutcome, ResourceExhausted> {
    let outcome = analyze(program, config);
    if config.on_exhausted == ExhaustionPolicy::Error && outcome.robustness.exhausted {
        return Err(ResourceExhausted {
            report: outcome.robustness,
        });
    }
    Ok(outcome)
}

/// [`analyze`] against a caller-supplied fuel source — the entry point
/// the fault-injection harness uses to fail the analysis at an exact
/// checkpoint. `config.fuel` is ignored; the budget decides.
pub fn analyze_with_budget(
    program: &Program,
    config: &AnalysisConfig,
    budget: &Budget,
) -> AnalysisOutcome {
    crate::session::AnalysisSession::new(program).analyze_with_budget(config, budget)
}

/// The straight-line single-shot pipeline behind [`analyze_with_budget`].
///
/// This is the original (pre-[`crate::AnalysisSession`]) driver, kept
/// both as the equivalence oracle for the memoized phase-split path and
/// as the execution path for *metered* budgets, whose degradation
/// behaviour depends on exact fuel ordering and must not be interleaved
/// with cache hits.
pub fn analyze_with_budget_reference(
    program: &Program,
    config: &AnalysisConfig,
    budget: &Budget,
) -> AnalysisOutcome {
    let pristine = program.clone();
    let mut program = program.clone();
    let mut stats = PhaseStats::default();

    loop {
        let cg = CallGraph::new(&program);
        let modref = compute_modref_budgeted(&program, &cg, budget);
        augment_global_vars(&mut program, &modref);

        // Everything below borrows `program` immutably; the DCE rewrites
        // are collected and applied after the borrows end.
        let (substitutions, vals, changed, new_procs) = {
            // The kill oracle realizes the MOD configuration.
            let mod_kills;
            let kills: &dyn KillOracle = if config.mod_info {
                mod_kills = ModKills::new(&program, &modref);
                &mod_kills
            } else {
                &WorstCaseKills
            };

            let sym_options = SymEvalOptions {
                gated_phis: config.gsa,
            };

            // Return jump functions.
            let rjfs: ReturnJumpFns = if config.return_jump_functions {
                build_return_jfs_budgeted(&program, &cg, kills, sym_options, budget)
            } else {
                ReturnJumpFns::empty(program.procs.len())
            };
            stats.return_jfs = rjfs.useful_count();

            // Without MOD information the paper's value numbering "had to use
            // worst case assumptions about any call sites" (§4.2): every call
            // kills everything and nothing is recovered through return jump
            // functions, regardless of whether they were built.
            let rjf_recovery = config.return_jump_functions && config.mod_info;
            let const_eval = RjfConstEval { rjfs: &rjfs };
            let composer = RjfComposer { rjfs: &rjfs };
            let call_sym: &dyn CallSymbolics = if !rjf_recovery {
                &NoCallSymbolics
            } else if config.rjf_full_composition {
                &composer
            } else {
                &const_eval
            };

            // Call effects for the counting/DCE SCCP — and for the
            // feasibility SCCP of conditional propagation (same no-MOD
            // rule).
            let rjf_lattice = RjfLattice { rjfs: &rjfs };
            let calls: &dyn CallLattice = if rjf_recovery {
                &rjf_lattice
            } else {
                &PessimisticCalls
            };

            // Forward jump functions and interprocedural propagation.
            let vals: Option<ValSets> = if config.interprocedural {
                let jfs: ForwardJumpFns = build_forward_jfs_budgeted(
                    &program,
                    &cg,
                    &modref,
                    config.jump_function,
                    kills,
                    call_sym,
                    sym_options,
                    budget,
                );
                stats.forward_jfs = jfs.count();
                stats.useful_forward_jfs = jfs.useful_count();
                let v = if config.branch_feasibility {
                    solve_cond_budgeted(&program, &cg, &modref, &jfs, kills, calls, budget)
                } else {
                    match config.solver {
                        SolverKind::CallGraph => {
                            solve_budgeted(&program, &cg, &modref, &jfs, budget)
                        }
                        SolverKind::BindingGraph => {
                            solve_binding_budgeted(&program, &cg, &modref, &jfs, budget)
                        }
                    }
                };
                stats.solver_iterations += v.iterations();
                stats.pruned_call_edges += v.pruned_call_edges();
                Some(v)
            } else {
                None
            };

            let substitutions = count_substitutions(&program, &cg, kills, calls, vals.as_ref());

            // Complete propagation: eliminate dead code and start over if
            // anything died (the paper resets all CONSTANTS to ⊤ and
            // reruns).
            let mut changed = false;
            let mut new_procs = Vec::new();
            if config.complete_propagation {
                for pid in program.proc_ids().collect::<Vec<_>>() {
                    let proc_copy = program.proc(pid).clone();
                    let ssa = build_ssa(&program, &proc_copy, kills);
                    let result = match vals.as_ref() {
                        Some(v) => {
                            let env = entry_env_of(&program, pid, v);
                            sccp_budgeted(
                                &proc_copy,
                                &ssa,
                                &SccpConfig {
                                    entry_env: &env,
                                    calls,
                                },
                                budget,
                            )
                        }
                        None => sccp_budgeted(
                            &proc_copy,
                            &ssa,
                            &SccpConfig {
                                entry_env: &bottom_entry,
                                calls,
                            },
                            budget,
                        ),
                    };
                    let mut proc = proc_copy;
                    changed |=
                        dce_round_budgeted(&program, &mut proc, &ssa, &result, kills, budget);
                    new_procs.push((pid, proc));
                }
            }
            (substitutions, vals, changed, new_procs)
        };

        for (pid, proc) in new_procs {
            *program.proc_mut(pid) = proc;
        }
        if changed {
            stats.dce_rounds += 1;
            continue;
        }

        let constants: Vec<BTreeMap<Slot, i64>> = match vals.as_ref() {
            Some(v) => program.proc_ids().map(|p| v.constants(p)).collect(),
            None => Vec::new(),
        };

        // Complete propagation substitutes into the *original* source:
        // recount against the pristine program with the final (DCE-refined)
        // CONSTANTS. DCE-deleted code still hosts its substitutions there.
        let substitutions = if stats.dce_rounds > 0 {
            let mut orig = pristine;
            counting_pass(&mut orig, config, vals.as_ref(), budget)
        } else {
            substitutions
        };

        return AnalysisOutcome {
            program,
            constants,
            substitutions,
            stats,
            robustness: budget.report(),
        };
    }
}

/// One substitution-counting pass over `program` under `config`,
/// rebuilding the per-program side tables it needs.
fn counting_pass(
    program: &mut Program,
    config: &AnalysisConfig,
    vals: Option<&ValSets>,
    budget: &Budget,
) -> SubstitutionCounts {
    let cg = CallGraph::new(program);
    let modref = compute_modref_budgeted(program, &cg, budget);
    augment_global_vars(program, &modref);
    let program = &*program;
    let mod_kills;
    let kills: &dyn KillOracle = if config.mod_info {
        mod_kills = ModKills::new(program, &modref);
        &mod_kills
    } else {
        &WorstCaseKills
    };
    let rjfs = if config.return_jump_functions {
        build_return_jfs_budgeted(program, &cg, kills, SymEvalOptions::default(), budget)
    } else {
        ReturnJumpFns::empty(program.procs.len())
    };
    let rjf_lattice = RjfLattice { rjfs: &rjfs };
    let calls: &dyn CallLattice = if config.return_jump_functions && config.mod_info {
        &rjf_lattice
    } else {
        &PessimisticCalls
    };
    count_substitutions(program, &cg, kills, calls, vals)
}

/// Compiles Minifor source and runs the configured analysis.
///
/// # Errors
///
/// Returns front-end diagnostics if the source does not compile.
pub fn analyze_source(
    source: &str,
    config: &AnalysisConfig,
) -> Result<AnalysisOutcome, Diagnostics> {
    let program = ipcp_ir::compile_to_ir(source)?;
    Ok(analyze(&program, config))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Table 2/3 configurations, by column.
    fn table2_config(kind: JumpFunctionKind, rjf: bool) -> AnalysisConfig {
        AnalysisConfig {
            jump_function: kind,
            return_jump_functions: rjf,
            ..Default::default()
        }
    }

    const OCEAN_LIKE: &str = "\
global n\nglobal m\n\
proc init()\nn = 64\nm = 32\nend\n\
proc compute(k)\nx = n\ny = m\nz = k\nprint(x + y + z)\nend\n\
main\ncall init()\ncall compute(8)\nend\n";

    #[test]
    fn default_config_finds_init_constants() {
        let out = analyze_source(OCEAN_LIKE, &AnalysisConfig::default()).unwrap();
        // compute sees n=64, m=32, k=8.
        assert!(out.constant_slot_count() >= 3, "{:?}", out.constants);
        assert!(out.substitutions.total >= 3);
        assert!(out.stats.return_jfs >= 2);
    }

    #[test]
    fn return_jfs_matter_for_init_pattern() {
        let with = analyze_source(
            OCEAN_LIKE,
            &table2_config(JumpFunctionKind::Polynomial, true),
        )
        .unwrap();
        let without = analyze_source(
            OCEAN_LIKE,
            &table2_config(JumpFunctionKind::Polynomial, false),
        )
        .unwrap();
        assert!(
            with.substitutions.total > without.substitutions.total,
            "with {} vs without {}",
            with.substitutions.total,
            without.substitutions.total
        );
    }

    const CHAIN: &str = "\
proc c(z)\nprint(z)\nend\n\
proc b(y)\ncall c(y)\nend\n\
proc a(x)\ncall b(x)\nend\n\
main\ncall a(7)\nend\n";

    #[test]
    fn jump_function_hierarchy_on_chain() {
        let mut totals = Vec::new();
        for kind in JumpFunctionKind::ALL {
            let out = analyze_source(CHAIN, &table2_config(kind, true)).unwrap();
            totals.push(out.substitutions.total);
        }
        // Non-decreasing in precision; pass-through strictly beats
        // intraprocedural here.
        assert!(totals.windows(2).all(|w| w[0] <= w[1]), "{totals:?}");
        assert!(totals[2] > totals[1], "{totals:?}");
        // Pass-through and polynomial agree (the paper's headline).
        assert_eq!(totals[2], totals[3], "{totals:?}");
    }

    const MOD_SENSITIVE: &str = "\
global g\n\
proc harmless(x)\nprint(x)\nend\n\
proc f()\ng = 5\ncall harmless(1)\nprint(g)\nend\n\
main\ncall f()\nend\n";

    #[test]
    fn mod_information_matters() {
        let with = analyze_source(
            MOD_SENSITIVE,
            &AnalysisConfig {
                mod_info: true,
                ..Default::default()
            },
        )
        .unwrap();
        let without = analyze_source(
            MOD_SENSITIVE,
            &AnalysisConfig {
                mod_info: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            with.substitutions.total > without.substitutions.total,
            "with {} vs without {}",
            with.substitutions.total,
            without.substitutions.total
        );
    }

    const DEAD_GUARD: &str = "\
proc f(debug)\n\
if debug then\n\
read(q)\nx = q\n\
else\n\
x = 3\n\
end\n\
print(x)\nend\n\
main\ncall f(0)\nend\n";

    #[test]
    fn complete_propagation_exposes_more() {
        let plain = analyze_source(DEAD_GUARD, &AnalysisConfig::default()).unwrap();
        let complete = analyze_source(
            DEAD_GUARD,
            &AnalysisConfig {
                complete_propagation: true,
                ..Default::default()
            },
        )
        .unwrap();
        // With debug = 0 the read-branch is dead; x is 3 at the print.
        assert!(complete.substitutions.total >= plain.substitutions.total);
        assert!(complete.stats.dce_rounds >= 1);
    }

    #[test]
    fn intraprocedural_baseline_finds_less() {
        let inter = analyze_source(CHAIN, &AnalysisConfig::default()).unwrap();
        let intra = analyze_source(CHAIN, &AnalysisConfig::intraprocedural_baseline()).unwrap();
        assert!(intra.substitutions.total < inter.substitutions.total);
        assert_eq!(intra.constant_slot_count(), 0);
    }

    #[test]
    fn full_composition_extension_is_at_least_as_good() {
        let src = "\
global g\n\
proc setg(v)\ng = v\nend\n\
proc f(a)\ncall setg(a)\ncall useg()\nend\n\
proc useg()\nprint(g)\nend\n\
main\ncall f(5)\nend\n";
        let paper = analyze_source(src, &AnalysisConfig::default()).unwrap();
        let ext = analyze_source(
            src,
            &AnalysisConfig {
                rjf_full_composition: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(ext.substitutions.total >= paper.substitutions.total);
        // Composition tracks g = a through f's body; the paper rule cannot.
        assert!(
            ext.constant_slot_count() > paper.constant_slot_count(),
            "ext {:?} vs paper {:?}",
            ext.constants,
            paper.constants
        );
    }

    #[test]
    fn analyze_source_reports_errors() {
        assert!(analyze_source("main\n", &AnalysisConfig::default()).is_err());
    }

    #[test]
    fn outcome_program_still_validates() {
        let out = analyze_source(
            DEAD_GUARD,
            &AnalysisConfig {
                complete_propagation: true,
                ..Default::default()
            },
        )
        .unwrap();
        ipcp_ir::validate::validate(&out.program).expect("transformed program validates");
    }

    #[test]
    fn pass_through_constructor() {
        let c = AnalysisConfig::pass_through();
        assert_eq!(c.jump_function, JumpFunctionKind::PassThrough);
        assert!(c.return_jump_functions && c.mod_info && c.interprocedural);
    }
}
