//! Forward jump function construction (paper §3.1, §4.1).
//!
//! For every call site `s` in every procedure, and for every slot of the
//! callee (formal positions plus the globals the callee transitively
//! touches — its implicit parameters), a [`JumpFn`] of the configured
//! [`JumpFunctionKind`] is built from the caller's symbolic values at the
//! site:
//!
//! * **literal** — a constant only when the actual is a source literal;
//!   global slots are always ⊥ ("this jump function misses any constant
//!   globals which are passed implicitly at the call site", §3.1.1);
//! * **intraprocedural constant** — the symbolic value must already be
//!   constant (`gcp(y, s)`);
//! * **pass-through** — additionally keeps a bare entry slot;
//! * **polynomial** — keeps any representable expression.
//!
//! Call sites in CFG-unreachable code get no jump functions and are
//! skipped by the solver (they can never execute).

use crate::framework::{run_budgeted_pass, BudgetedProcPass, Rung};
use crate::jump::{JumpFn, JumpFunctionKind};
use ipcp_analysis::symeval::{symbolic_eval_budgeted, CallSymbolics, SymEvalOptions};
use ipcp_analysis::{Budget, CallGraph, ModRefInfo, Phase, Slot, SlotTable};
use ipcp_ir::{ProcId, Program, VarKind};
use ipcp_ssa::{build_ssa, KillOracle, SsaInstr, SsaOperand};

/// Jump functions of one call site.
#[derive(Debug, Clone)]
pub struct SiteJumpFns {
    /// The callee.
    pub callee: ProcId,
    /// Whether the site sits in CFG-reachable code; unreachable sites
    /// never propagate.
    pub reachable: bool,
    /// Callee slot → jump function over the *caller's* entry slots —
    /// a dense table: slots and jump functions in two contiguous,
    /// slot-ordered vectors instead of a map of heap nodes.
    pub jfs: SlotTable<JumpFn>,
}

/// Forward jump functions for every call site of every procedure,
/// parallel to [`CallGraph::sites`].
#[derive(Debug, Clone)]
pub struct ForwardJumpFns {
    per_proc: Vec<Vec<SiteJumpFns>>,
}

impl ForwardJumpFns {
    /// Jump functions of `p`'s call sites, in [`CallGraph::sites`] order.
    pub fn sites(&self, p: ProcId) -> &[SiteJumpFns] {
        &self.per_proc[p.index()]
    }

    /// Total number of constructed (site, slot) jump functions.
    pub fn count(&self) -> usize {
        self.per_proc.iter().flatten().map(|s| s.jfs.len()).sum()
    }

    /// Total number of non-⊥ jump functions.
    pub fn useful_count(&self) -> usize {
        self.per_proc
            .iter()
            .flatten()
            .flat_map(|s| s.jfs.values())
            .filter(|jf| !jf.is_bottom())
            .count()
    }

    /// Assembles a table from per-procedure site vectors (used by the
    /// session, which caches those vectors individually).
    pub(crate) fn from_parts(per_proc: Vec<Vec<SiteJumpFns>>) -> Self {
        ForwardJumpFns { per_proc }
    }

    /// Reports summary counters to `sink`: the table size plus a
    /// breakdown by jump-function representation (`jf.const`,
    /// `jf.pass_through`, `jf.expr`, `jf.bottom`). No-op when disabled.
    pub fn emit_counters(&self, sink: &dyn ipcp_obs::ObsSink) {
        if !sink.enabled() {
            return;
        }
        let (mut consts, mut pass, mut exprs, mut bottoms) = (0u64, 0u64, 0u64, 0u64);
        for jf in self.per_proc.iter().flatten().flat_map(|s| s.jfs.values()) {
            match jf {
                JumpFn::Const(_) => consts += 1,
                JumpFn::PassThrough(_) => pass += 1,
                JumpFn::Expr(_) => exprs += 1,
                JumpFn::Bottom => bottoms += 1,
            }
        }
        sink.count("jf.sites", self.per_proc.iter().flatten().count() as u64);
        sink.count("jf.const", consts);
        sink.count("jf.pass_through", pass);
        sink.count("jf.expr", exprs);
        sink.count("jf.bottom", bottoms);
    }
}

/// Builds forward jump functions of the given kind for the whole program.
///
/// `call_sym` supplies the effect of calls on the caller's symbolic state
/// (return-jump-function constant evaluation, or the pessimistic provider
/// when return jump functions are disabled).
pub fn build_forward_jfs(
    program: &Program,
    cg: &CallGraph,
    modref: &ModRefInfo,
    kind: JumpFunctionKind,
    kills: &dyn KillOracle,
    call_sym: &dyn CallSymbolics,
) -> ForwardJumpFns {
    build_forward_jfs_with(
        program,
        cg,
        modref,
        kind,
        kills,
        call_sym,
        SymEvalOptions::default(),
    )
}

/// Builds forward jump functions with explicit symbolic-evaluation
/// options (e.g. the gated-single-assignment extension).
#[allow(clippy::too_many_arguments)]
pub fn build_forward_jfs_with(
    program: &Program,
    cg: &CallGraph,
    modref: &ModRefInfo,
    kind: JumpFunctionKind,
    kills: &dyn KillOracle,
    call_sym: &dyn CallSymbolics,
    options: SymEvalOptions,
) -> ForwardJumpFns {
    build_forward_jfs_budgeted(
        program,
        cg,
        modref,
        kind,
        kills,
        call_sym,
        options,
        &Budget::unlimited(),
    )
}

/// Relative construction cost of each jump-function kind — the §3.1.5
/// cost ordering, used to decide which rung of the precision ladder the
/// remaining fuel can afford.
pub(crate) fn kind_weight(kind: JumpFunctionKind) -> u64 {
    match kind {
        JumpFunctionKind::Literal => 1,
        JumpFunctionKind::IntraproceduralConstant => 2,
        JumpFunctionKind::PassThrough => 4,
        JumpFunctionKind::Polynomial => 8,
    }
}

/// The next rung down the precision ladder, or `None` below Literal (⊥).
fn next_rung_down(kind: JumpFunctionKind) -> Option<JumpFunctionKind> {
    match kind {
        JumpFunctionKind::Polynomial => Some(JumpFunctionKind::PassThrough),
        JumpFunctionKind::PassThrough => Some(JumpFunctionKind::IntraproceduralConstant),
        JumpFunctionKind::IntraproceduralConstant => Some(JumpFunctionKind::Literal),
        JumpFunctionKind::Literal => None,
    }
}

/// All-⊥ jump functions for every site of `pid` — the bottom of the
/// precision ladder. Sites stay `reachable` (an unreachable-marked site
/// would be skipped by the solver, which is only sound when reachability
/// was actually proven); ⊥ functions merely propagate nothing.
fn bottom_sites_for_proc(
    program: &Program,
    cg: &CallGraph,
    modref: &ModRefInfo,
    pid: ProcId,
) -> Vec<SiteJumpFns> {
    cg.sites(pid)
        .iter()
        .map(|site| {
            let jfs = modref
                .param_slots(program, site.callee)
                .into_iter()
                .filter(|slot| *slot != Slot::Result)
                .map(|slot| (slot, JumpFn::Bottom))
                .collect();
            SiteJumpFns {
                callee: site.callee,
                reachable: true,
                jfs,
            }
        })
        .collect()
}

/// Builds forward jump functions under a fuel budget. Per procedure the
/// cost is `kind_weight × instruction count`; when the remaining fuel
/// cannot afford the requested kind the builder slides down the paper's
/// precision ladder (`Polynomial → PassThrough → IntraproceduralConstant
/// → Literal → ⊥`), recording every ladder step, until a rung fits. At ⊥
/// no SSA is built at all: every slot's jump function is ⊥, which
/// propagates nothing and is sound for any solver.
#[allow(clippy::too_many_arguments)]
pub fn build_forward_jfs_budgeted(
    program: &Program,
    cg: &CallGraph,
    modref: &ModRefInfo,
    kind: JumpFunctionKind,
    kills: &dyn KillOracle,
    call_sym: &dyn CallSymbolics,
    options: SymEvalOptions,
    budget: &Budget,
) -> ForwardJumpFns {
    let mut per_proc = Vec::with_capacity(program.procs.len());
    let pass = ForwardPass {
        program,
        cg,
        modref,
        kind,
        kills,
        call_sym,
        options,
    };
    run_budgeted_pass(&pass, &mut per_proc, budget);
    ForwardJumpFns { per_proc }
}

/// Forward jump function construction as a problem definition for
/// [`run_budgeted_pass`]: the §3.1.5 precision ladder from the requested
/// kind down to Literal, per-instruction cost estimates, and all-⊥ site
/// tables as the exhaustion fallback.
struct ForwardPass<'a> {
    program: &'a Program,
    cg: &'a CallGraph,
    modref: &'a ModRefInfo,
    kind: JumpFunctionKind,
    kills: &'a dyn KillOracle,
    call_sym: &'a dyn CallSymbolics,
    options: SymEvalOptions,
}

impl BudgetedProcPass for ForwardPass<'_> {
    type Acc = Vec<Vec<SiteJumpFns>>;
    type Kind = JumpFunctionKind;

    fn phase(&self) -> Phase {
        Phase::ForwardJf
    }

    fn order(&self) -> Vec<ProcId> {
        self.program.proc_ids().collect()
    }

    fn ladder(&self) -> Vec<Rung<JumpFunctionKind>> {
        let mut rungs = Vec::new();
        let mut next = Some(self.kind);
        while let Some(k) = next {
            rungs.push(Rung {
                kind: k,
                name: k.to_string(),
                weight: kind_weight(k),
            });
            next = next_rung_down(k);
        }
        rungs
    }

    fn estimate(&self, p: ProcId) -> u64 {
        proc_estimate(self.program.proc(p))
    }

    fn build(
        &self,
        acc: &mut Vec<Vec<SiteJumpFns>>,
        p: ProcId,
        kind: JumpFunctionKind,
        budget: &Budget,
    ) {
        let proc = self.program.proc(p);
        let ssa = build_ssa(self.program, proc, self.kills);
        let sym = symbolic_eval_budgeted(proc, &ssa, self.call_sym, self.options, budget);
        acc.push(site_jfs_for_proc(
            self.program,
            self.cg,
            self.modref,
            kind,
            p,
            &ssa,
            &sym,
        ));
    }

    fn fallback(&self, acc: &mut Vec<Vec<SiteJumpFns>>, p: ProcId) {
        acc.push(bottom_sites_for_proc(self.program, self.cg, self.modref, p));
    }
}

/// The per-procedure fuel estimate of forward jump function construction
/// (`kind_weight × this`): one unit per instruction plus one per block.
pub(crate) fn proc_estimate(proc: &ipcp_ir::Procedure) -> u64 {
    proc.block_ids()
        .map(|b| proc.block(b).instrs.len() as u64 + 1)
        .sum::<u64>()
        .max(1)
}

/// Builds the jump functions of every call site of `pid` from its SSA
/// form and symbolic values — the pure, fuel-free tail of the budgeted
/// builder, exposed at crate level so the session can reuse cached SSA
/// and symbolic-evaluation artifacts.
pub(crate) fn site_jfs_for_proc(
    program: &Program,
    cg: &CallGraph,
    modref: &ModRefInfo,
    kind: JumpFunctionKind,
    pid: ProcId,
    ssa: &ipcp_ssa::SsaProc,
    sym: &ipcp_analysis::symeval::SymMap,
) -> Vec<SiteJumpFns> {
    let proc = program.proc(pid);
    let mut sites = Vec::new();
    for site in cg.sites(pid) {
        let Some(ssa_block) = ssa.block(site.block) else {
            sites.push(SiteJumpFns {
                callee: site.callee,
                reachable: false,
                jfs: SlotTable::new(),
            });
            continue;
        };
        let SsaInstr::Call {
            callee,
            args,
            globals_in,
            ..
        } = &ssa_block.instrs[site.index]
        else {
            unreachable!("call site indexes a call instruction");
        };
        debug_assert_eq!(*callee, site.callee);

        let mut jfs = SlotTable::new();
        for slot in modref.param_slots(program, site.callee) {
            let jf = match slot {
                Slot::Formal(k) => {
                    let value = args.get(k as usize).and_then(|a| a.value);
                    match (kind, value) {
                        // Literal: only source literals count.
                        (JumpFunctionKind::Literal, Some(SsaOperand::Const(c))) => JumpFn::Const(c),
                        (JumpFunctionKind::Literal, _) => JumpFn::Bottom,
                        (_, Some(op)) => JumpFn::from_sym(kind, &sym.of_operand(op)),
                        (_, None) => JumpFn::Bottom,
                    }
                }
                Slot::Global(g) => {
                    if kind == JumpFunctionKind::Literal {
                        // Globals are passed implicitly; the literal
                        // jump function misses them (§3.1.1).
                        JumpFn::Bottom
                    } else {
                        let snapshot = globals_in
                            .iter()
                            .find(|&&(var, _)| proc.var(var).kind == VarKind::Global(g));
                        match snapshot {
                            Some(&(_, name)) => JumpFn::from_sym(kind, sym.of(name)),
                            None => JumpFn::Bottom,
                        }
                    }
                }
                Slot::Result => continue,
            };
            jfs.insert(slot, jf);
        }
        sites.push(SiteJumpFns {
            callee: site.callee,
            reachable: true,
            jfs,
        });
    }
    sites
}

/// Builds **literal** jump functions with the cheap construction the
/// paper describes: "a textual scan of the call sites provides all the
/// required information" (§3.1.5) — no SSA, no value numbering, just the
/// IR call instructions plus CFG reachability. Produces exactly the same
/// table as [`build_forward_jfs`] at [`JumpFunctionKind::Literal`]; a
/// differential test and a bench pin down the equivalence and the cost
/// gap.
pub fn build_literal_jfs_fast(
    program: &Program,
    cg: &CallGraph,
    modref: &ModRefInfo,
) -> ForwardJumpFns {
    let mut per_proc = Vec::with_capacity(program.procs.len());
    for pid in program.proc_ids() {
        let proc = program.proc(pid);
        let cfg = ipcp_ssa::Cfg::new(proc);
        let mut sites = Vec::new();
        for site in cg.sites(pid) {
            if !cfg.is_reachable(site.block) {
                sites.push(SiteJumpFns {
                    callee: site.callee,
                    reachable: false,
                    jfs: SlotTable::new(),
                });
                continue;
            }
            let ipcp_ir::Instr::Call { args, .. } = &proc.block(site.block).instrs[site.index]
            else {
                unreachable!("call site indexes a call instruction");
            };
            let mut jfs = SlotTable::new();
            for slot in modref.param_slots(program, site.callee) {
                let jf = match slot {
                    Slot::Formal(k) => match args.get(k as usize) {
                        Some(arg) if !arg.by_ref => match arg.value.as_const() {
                            Some(c) => JumpFn::Const(c),
                            None => JumpFn::Bottom,
                        },
                        _ => JumpFn::Bottom,
                    },
                    // Implicitly-passed globals are missed (§3.1.1).
                    Slot::Global(_) => JumpFn::Bottom,
                    Slot::Result => continue,
                };
                jfs.insert(slot, jf);
            }
            sites.push(SiteJumpFns {
                callee: site.callee,
                reachable: true,
                jfs,
            });
        }
        per_proc.push(sites);
    }
    ForwardJumpFns { per_proc }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retjf::{build_return_jfs, RjfConstEval};
    use ipcp_analysis::symeval::NoCallSymbolics;
    use ipcp_analysis::{augment_global_vars, compute_modref, ModKills};
    use ipcp_ir::compile_to_ir;

    /// Builds JFs for `src` at `kind` with MOD info and return JFs.
    fn build(src: &str, kind: JumpFunctionKind) -> (Program, CallGraph, ForwardJumpFns) {
        let mut program = compile_to_ir(src).expect("compiles");
        let cg = CallGraph::new(&program);
        let modref = compute_modref(&program, &cg);
        augment_global_vars(&mut program, &modref);
        let cg = CallGraph::new(&program);
        let kills = ModKills::new(&program, &modref);
        let rjfs = build_return_jfs(&program, &cg, &kills);
        let eval = RjfConstEval { rjfs: &rjfs };
        let jfs = build_forward_jfs(&program, &cg, &modref, kind, &kills, &eval);
        (program, cg, jfs)
    }

    /// The jump function for `slot` at the first call site of `caller`.
    fn jf_at(src: &str, kind: JumpFunctionKind, caller: &str, slot: Slot) -> JumpFn {
        let (program, _, jfs) = build(src, kind);
        let pid = program.proc_by_name(caller).unwrap();
        let site = &jfs.sites(pid)[0];
        site.jfs.get(&slot).cloned().unwrap_or(JumpFn::Bottom)
    }

    const LIT: &str = "proc f(a)\nend\nmain\ncall f(5)\nend\n";

    #[test]
    fn literal_actual_is_constant_for_all_kinds() {
        for kind in JumpFunctionKind::ALL {
            assert_eq!(
                jf_at(LIT, kind, "main", Slot::Formal(0)).as_const(),
                Some(5),
                "{kind}"
            );
        }
    }

    const COMPUTED: &str = "proc f(a)\nend\nmain\nx = 2 + 3\ncall f(x)\nend\n";

    #[test]
    fn computed_constant_needs_intraprocedural() {
        assert!(jf_at(COMPUTED, JumpFunctionKind::Literal, "main", Slot::Formal(0)).is_bottom());
        for kind in &JumpFunctionKind::ALL[1..] {
            assert_eq!(
                jf_at(COMPUTED, *kind, "main", Slot::Formal(0)).as_const(),
                Some(5),
                "{kind}"
            );
        }
    }

    const CHAIN: &str =
        "proc inner(b)\nend\nproc outer(a)\ncall inner(a)\nend\nmain\ncall outer(7)\nend\n";

    #[test]
    fn pass_through_needs_pass_through_kind() {
        for kind in [
            JumpFunctionKind::Literal,
            JumpFunctionKind::IntraproceduralConstant,
        ] {
            assert!(
                jf_at(CHAIN, kind, "outer", Slot::Formal(0)).is_bottom(),
                "{kind}"
            );
        }
        assert_eq!(
            jf_at(
                CHAIN,
                JumpFunctionKind::PassThrough,
                "outer",
                Slot::Formal(0)
            ),
            JumpFn::PassThrough(Slot::Formal(0))
        );
        let poly = jf_at(
            CHAIN,
            JumpFunctionKind::Polynomial,
            "outer",
            Slot::Formal(0),
        );
        assert!(!poly.is_bottom());
    }

    const POLY: &str =
        "proc inner(b)\nend\nproc outer(a)\ncall inner(a * 2 + 1)\nend\nmain\ncall outer(7)\nend\n";

    #[test]
    fn polynomial_needs_polynomial_kind() {
        assert!(jf_at(
            POLY,
            JumpFunctionKind::PassThrough,
            "outer",
            Slot::Formal(0)
        )
        .is_bottom());
        let jf = jf_at(POLY, JumpFunctionKind::Polynomial, "outer", Slot::Formal(0));
        let e = jf.to_expr().expect("polynomial");
        assert_eq!(e.eval(&|_| Some(7)), Some(15));
    }

    const GLOBALS: &str = "global n = 0\nproc f()\nx = n\nend\nmain\nn = 9\ncall f()\nend\n";

    #[test]
    fn global_slots_missed_by_literal_kind() {
        let (program, _, jfs) = build(GLOBALS, JumpFunctionKind::Literal);
        let main = program.main;
        let site = &jfs.sites(main)[0];
        let g = site
            .jfs
            .iter()
            .find(|(s, _)| matches!(s, Slot::Global(_)))
            .expect("global slot");
        assert!(g.1.is_bottom());
    }

    #[test]
    fn global_slots_seen_by_intraprocedural_kind() {
        let (program, _, jfs) = build(GLOBALS, JumpFunctionKind::IntraproceduralConstant);
        let main = program.main;
        let site = &jfs.sites(main)[0];
        let (_, jf) = site
            .jfs
            .iter()
            .find(|(s, _)| matches!(s, Slot::Global(_)))
            .unwrap();
        assert_eq!(jf.as_const(), Some(9));
    }

    #[test]
    fn global_pass_through() {
        // f reads n; caller g doesn't touch n: n passes through g's body.
        let src =
            "global n\nproc f()\nx = n\nend\nproc g()\ncall f()\nend\nmain\nn = 3\ncall g()\nend\n";
        let (program, _, jfs) = build(src, JumpFunctionKind::PassThrough);
        let gp = program.proc_by_name("g").unwrap();
        let site = &jfs.sites(gp)[0];
        let (slot, jf) = site
            .jfs
            .iter()
            .find(|(s, _)| matches!(s, Slot::Global(_)))
            .unwrap();
        assert_eq!(jf, &JumpFn::PassThrough(*slot));
    }

    #[test]
    fn return_jump_functions_feed_forward_jfs() {
        // init() sets n = 4; after the call main passes n to f — the RJF
        // constant makes the jump function constant.
        let src = "global n\nproc init()\nn = 4\nend\nproc f(a)\nend\nmain\ncall init()\ncall f(n)\nend\n";
        let (program, _, jfs) = build(src, JumpFunctionKind::IntraproceduralConstant);
        let main = program.main;
        let f_site = &jfs.sites(main)[1];
        assert_eq!(
            f_site.jfs.get(&Slot::Formal(0)).unwrap().as_const(),
            Some(4)
        );
    }

    #[test]
    fn without_return_jfs_calls_kill() {
        let src = "global n\nproc init()\nn = 4\nend\nproc f(a)\nend\nmain\ncall init()\ncall f(n)\nend\n";
        let mut program = compile_to_ir(src).unwrap();
        let cg = CallGraph::new(&program);
        let modref = compute_modref(&program, &cg);
        augment_global_vars(&mut program, &modref);
        let cg = CallGraph::new(&program);
        let kills = ModKills::new(&program, &modref);
        let jfs = build_forward_jfs(
            &program,
            &cg,
            &modref,
            JumpFunctionKind::Polynomial,
            &kills,
            &NoCallSymbolics,
        );
        let f_site = &jfs.sites(program.main)[1];
        assert!(f_site.jfs.get(&Slot::Formal(0)).unwrap().is_bottom());
    }

    #[test]
    fn unreachable_sites_marked() {
        let src = "proc f(a)\nend\nproc g()\nreturn\ncall f(1)\nend\nmain\ncall g()\nend\n";
        let (program, _, jfs) = build(src, JumpFunctionKind::Polynomial);
        let gp = program.proc_by_name("g").unwrap();
        assert_eq!(jfs.sites(gp).len(), 1);
        assert!(!jfs.sites(gp)[0].reachable);
        assert!(jfs.sites(gp)[0].jfs.is_empty());
    }

    #[test]
    fn counts() {
        let (_, _, jfs) = build(CHAIN, JumpFunctionKind::PassThrough);
        assert_eq!(jfs.count(), 2);
        assert_eq!(jfs.useful_count(), 2);
        let (_, _, jfs) = build(CHAIN, JumpFunctionKind::Literal);
        assert_eq!(jfs.useful_count(), 1);
    }

    #[test]
    fn by_value_expression_arguments_use_their_value() {
        let src = "proc f(a)\nend\nproc outer(k)\ncall f(k + k)\nend\nmain\ncall outer(1)\nend\n";
        let jf = jf_at(src, JumpFunctionKind::Polynomial, "outer", Slot::Formal(0));
        let e = jf.to_expr().expect("2k");
        assert_eq!(e.eval(&|_| Some(3)), Some(6));
    }

    #[test]
    fn fast_literal_builder_matches_general_path() {
        let srcs = [
            LIT,
            COMPUTED,
            CHAIN,
            POLY,
            GLOBALS,
            "proc f(a)\nend\nproc g()\nreturn\ncall f(1)\nend\nmain\ncall g()\ncall f(2 + 3)\ncall f(9)\nend\n",
        ];
        for src in srcs {
            let (program, cg, general) = build(src, JumpFunctionKind::Literal);
            let modref = compute_modref(&program, &cg);
            let fast = build_literal_jfs_fast(&program, &cg, &modref);
            for pid in program.proc_ids() {
                let a = general.sites(pid);
                let b = fast.sites(pid);
                assert_eq!(a.len(), b.len(), "{src}");
                for (x, y) in a.iter().zip(b.iter()) {
                    assert_eq!(x.callee, y.callee, "{src}");
                    assert_eq!(x.reachable, y.reachable, "{src}");
                    assert_eq!(x.jfs, y.jfs, "{src}");
                }
            }
        }
    }

    #[test]
    fn zero_fuel_bottoms_every_site_without_panicking() {
        let mut program = compile_to_ir(CHAIN).unwrap();
        let cg = CallGraph::new(&program);
        let modref = compute_modref(&program, &cg);
        augment_global_vars(&mut program, &modref);
        let cg = CallGraph::new(&program);
        let kills = ModKills::new(&program, &modref);
        let budget = Budget::with_fuel(0);
        let jfs = build_forward_jfs_budgeted(
            &program,
            &cg,
            &modref,
            JumpFunctionKind::Polynomial,
            &kills,
            &NoCallSymbolics,
            SymEvalOptions::default(),
            &budget,
        );
        for pid in program.proc_ids() {
            for site in jfs.sites(pid) {
                assert!(site.reachable, "⊥ sites stay reachable for soundness");
                assert!(site.jfs.values().all(|jf| jf.is_bottom()));
            }
        }
        let report = budget.report();
        assert!(report.degradations[&Phase::ForwardJf] > 0);
        // The full ladder was walked: polynomial → … → ⊥.
        assert!(report
            .ladder_steps
            .keys()
            .any(|(from, to)| from == "polynomial" && to == "pass-through"));
        assert!(report.ladder_steps.keys().any(|(_, to)| to == "⊥"));
    }

    #[test]
    fn small_fuel_clamps_to_a_cheaper_rung() {
        // Enough fuel for literal-kind construction but not polynomial.
        let mut program = compile_to_ir(CHAIN).unwrap();
        let cg = CallGraph::new(&program);
        let modref = compute_modref(&program, &cg);
        augment_global_vars(&mut program, &modref);
        let cg = CallGraph::new(&program);
        let kills = ModKills::new(&program, &modref);
        for fuel in 1..64u64 {
            let budget = Budget::with_fuel(fuel);
            let jfs = build_forward_jfs_budgeted(
                &program,
                &cg,
                &modref,
                JumpFunctionKind::Polynomial,
                &kills,
                &NoCallSymbolics,
                SymEvalOptions::default(),
                &budget,
            );
            // Whatever rung was used, the result must be sound: any
            // constant it claims must match the polynomial run's claim.
            let full = build_forward_jfs(
                &program,
                &cg,
                &modref,
                JumpFunctionKind::Polynomial,
                &kills,
                &NoCallSymbolics,
            );
            for pid in program.proc_ids() {
                for (site, full_site) in jfs.sites(pid).iter().zip(full.sites(pid)) {
                    for (slot, jf) in &site.jfs {
                        if let Some(c) = jf.as_const() {
                            assert_eq!(
                                full_site.jfs.get(slot).and_then(JumpFn::as_const),
                                Some(c),
                                "fuel {fuel}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn real_arguments_are_bottom() {
        let src = "proc f(real r)\nend\nmain\nreal q\nq = 1.5\ncall f(q)\nend\n";
        let jf = jf_at(src, JumpFunctionKind::Polynomial, "main", Slot::Formal(0));
        assert!(jf.is_bottom());
    }
}
