//! Constant substitution — the study's effectiveness metric (paper §4.1,
//! "Recording the results").
//!
//! Following Metzger & Stroud, effectiveness is measured as *the number
//! of constants textually substituted into the code*: every use of a
//! named variable (formal, global, or local — compiler temporaries do not
//! correspond to source text) that the seeded intraprocedural propagation
//! proves constant counts once, in executable code only. By-reference
//! actual arguments are never substituted (replacing them with a literal
//! would break the callee's store), and call-graph-unreachable procedures
//! are not counted.
//!
//! [`apply_substitutions`] performs the same rewrite on the IR itself
//! (all constant operands, including temporaries), which the examples use
//! to emit transformed programs and the property tests use to check
//! semantic preservation.

use crate::solver::{entry_env_of, ValSets};
use ipcp_analysis::sccp::{sccp, CallLattice, SccpConfig};
use ipcp_analysis::{CallGraph, LatticeVal};
use ipcp_ir::{Instr, Operand, Program, Terminator, VarKind};
use ipcp_ssa::{build_ssa, KillOracle, SsaInstr, SsaOperand, SsaTerminator};

/// Per-procedure and total substitution counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubstitutionCounts {
    /// Substitutions per procedure (0 for unreachable procedures).
    pub per_proc: Vec<usize>,
    /// Program total.
    pub total: usize,
}

/// Counts substitutions for every procedure under the given information
/// sources (see module docs for the exact metric).
pub fn count_substitutions(
    program: &Program,
    cg: &CallGraph,
    kills: &dyn KillOracle,
    calls: &dyn CallLattice,
    vals: Option<&ValSets>,
) -> SubstitutionCounts {
    count_substitutions_with_ssa(program, cg, calls, vals, &|pid| {
        std::sync::Arc::new(build_ssa(program, program.proc(pid), kills))
    })
}

/// [`count_substitutions`] with a caller-supplied SSA provider, so the
/// session can feed cached SSA artifacts instead of rebuilding them per
/// counting pass. The provider must return the SSA form `build_ssa`
/// would produce for the same program and kill oracle.
pub fn count_substitutions_with_ssa(
    program: &Program,
    cg: &CallGraph,
    calls: &dyn CallLattice,
    vals: Option<&ValSets>,
    ssa_of: &(dyn Fn(ipcp_ir::ProcId) -> std::sync::Arc<ipcp_ssa::SsaProc> + Sync),
) -> SubstitutionCounts {
    count_substitutions_with_ssa_jobs(program, cg, calls, vals, ssa_of, 1)
}

/// [`count_substitutions_with_ssa`] fanned out over up to `jobs` worker
/// threads. Each procedure's count is independent (the per-proc SCCP is
/// a pure function of the program, `VAL` sets, and call lattice) and the
/// per-procedure vector merges in `ProcId` order, so the result is
/// bit-identical at any thread count.
pub fn count_substitutions_with_ssa_jobs(
    program: &Program,
    cg: &CallGraph,
    calls: &dyn CallLattice,
    vals: Option<&ValSets>,
    ssa_of: &(dyn Fn(ipcp_ir::ProcId) -> std::sync::Arc<ipcp_ssa::SsaProc> + Sync),
    jobs: usize,
) -> SubstitutionCounts {
    let pids: Vec<ipcp_ir::ProcId> = program.proc_ids().collect();
    let per_proc = ipcp_analysis::par_map(jobs, &pids, |_, &pid| {
        if !cg.is_reachable(pid) {
            return 0;
        }
        count_one_proc(program, calls, vals, pid, &ssa_of(pid))
    });
    let total = per_proc.iter().sum();
    SubstitutionCounts { per_proc, total }
}

/// The substitution count of one reachable procedure (see the module
/// docs for the metric).
fn count_one_proc(
    program: &Program,
    calls: &dyn CallLattice,
    vals: Option<&ValSets>,
    pid: ipcp_ir::ProcId,
    ssa: &ipcp_ssa::SsaProc,
) -> usize {
    let proc = program.proc(pid);
    let bottom = ipcp_analysis::sccp::bottom_entry;
    let result = match vals {
        Some(v) => {
            let env = entry_env_of(program, pid, v);
            sccp(
                proc,
                ssa,
                &SccpConfig {
                    entry_env: &env,
                    calls,
                },
            )
        }
        None => sccp(
            proc,
            ssa,
            &SccpConfig {
                entry_env: &bottom,
                calls,
            },
        ),
    };

    let mut count = 0usize;
    for_each_counted_use(proc, ssa, &result, &mut |_| count += 1);
    count
}

/// Visits every *counted* use of one procedure: each executable textual
/// use of a named (non-temporary) variable whose SCCP value is constant,
/// with by-reference actuals skipped. [`count_one_proc`] and the
/// provenance attribution pass share this walk, so per-level attribution
/// totals sum to the substitution count by construction.
pub(crate) fn for_each_counted_use(
    proc: &ipcp_ir::Procedure,
    ssa: &ipcp_ssa::SsaProc,
    result: &ipcp_analysis::SccpResult,
    f: &mut dyn FnMut(ipcp_ssa::SsaName),
) {
    let mut visit = |op: SsaOperand| {
        let Some(n) = op.as_name() else { return };
        if proc.var(ssa.var_of(n)).kind == VarKind::Temp {
            return;
        }
        if matches!(result.values[n.index()], LatticeVal::Const(_)) {
            f(n);
        }
    };
    for (b, blk) in ssa.rpo_blocks() {
        if !result.executable[b.index()] {
            continue;
        }
        for instr in &blk.instrs {
            match instr {
                SsaInstr::Call { args, .. } => {
                    for a in args {
                        // Only by-value actuals are textual value uses.
                        if a.by_ref_var.is_none() {
                            if let Some(op) = a.value {
                                visit(op);
                            }
                        }
                    }
                }
                other => {
                    other.for_each_use(&mut visit);
                }
            }
        }
        match &blk.term {
            SsaTerminator::Branch { cond, .. } => visit(*cond),
            SsaTerminator::Return {
                value: Some(op), ..
            } => {
                visit(*op);
            }
            _ => {}
        }
    }
}

/// Rewrites every substitutable operand (including temporaries) to its
/// constant in the IR, skipping by-reference arguments and non-executable
/// code. Returns the number of operands rewritten.
pub fn apply_substitutions(
    program: &mut Program,
    kills: &dyn KillOracle,
    calls: &dyn CallLattice,
    vals: Option<&ValSets>,
) -> usize {
    let snapshot = program.clone();
    let mut rewritten = 0usize;
    for pid in snapshot.proc_ids() {
        let proc = snapshot.proc(pid);
        let ssa = build_ssa(&snapshot, proc, kills);
        let bottom = ipcp_analysis::sccp::bottom_entry;
        let result = match vals {
            Some(v) => {
                let env = entry_env_of(&snapshot, pid, v);
                sccp(
                    proc,
                    &ssa,
                    &SccpConfig {
                        entry_env: &env,
                        calls,
                    },
                )
            }
            None => sccp(
                proc,
                &ssa,
                &SccpConfig {
                    entry_env: &bottom,
                    calls,
                },
            ),
        };

        let rewrite = |ir_op: &mut Operand, ssa_op: SsaOperand, rewritten: &mut usize| {
            if let SsaOperand::Name(n) = ssa_op {
                if let LatticeVal::Const(c) = result.values[n.index()] {
                    if matches!(ir_op, Operand::Var(_)) {
                        *ir_op = Operand::Const(c);
                        *rewritten += 1;
                    }
                }
            }
        };

        let target = program.proc_mut(pid);
        for b in proc.block_ids() {
            let Some(ssa_blk) = ssa.block(b) else {
                continue;
            };
            if !result.executable[b.index()] {
                continue;
            }
            let blk = target.block_mut(b);
            debug_assert_eq!(blk.instrs.len(), ssa_blk.instrs.len());
            for (instr, ssa_instr) in blk.instrs.iter_mut().zip(ssa_blk.instrs.iter()) {
                match (instr, ssa_instr) {
                    (Instr::Copy { src, .. }, SsaInstr::Copy { src: s, .. })
                    | (Instr::Unary { src, .. }, SsaInstr::Unary { src: s, .. })
                    | (Instr::IntToReal { src, .. }, SsaInstr::IntToReal { src: s, .. }) => {
                        rewrite(src, *s, &mut rewritten);
                    }
                    (
                        Instr::Binary { lhs, rhs, .. },
                        SsaInstr::Binary {
                            lhs: sl, rhs: sr, ..
                        },
                    ) => {
                        rewrite(lhs, *sl, &mut rewritten);
                        rewrite(rhs, *sr, &mut rewritten);
                    }
                    (Instr::Load { index, .. }, SsaInstr::Load { index: si, .. }) => {
                        rewrite(index, *si, &mut rewritten);
                    }
                    (
                        Instr::Store { index, value, .. },
                        SsaInstr::Store {
                            index: si,
                            value: sv,
                            ..
                        },
                    ) => {
                        rewrite(index, *si, &mut rewritten);
                        rewrite(value, *sv, &mut rewritten);
                    }
                    (Instr::Call { args, .. }, SsaInstr::Call { args: sargs, .. }) => {
                        for (arg, sarg) in args.iter_mut().zip(sargs.iter()) {
                            if !arg.by_ref {
                                if let Some(sop) = sarg.value {
                                    rewrite(&mut arg.value, sop, &mut rewritten);
                                }
                            }
                        }
                    }
                    (Instr::Print { value }, SsaInstr::Print { value: sv }) => {
                        rewrite(value, *sv, &mut rewritten);
                    }
                    _ => {}
                }
            }
            match (&mut blk.term, &ssa_blk.term) {
                (Terminator::Branch { cond, .. }, SsaTerminator::Branch { cond: sc, .. }) => {
                    rewrite(cond, *sc, &mut rewritten);
                }
                (
                    Terminator::Return(Some(op)),
                    SsaTerminator::Return {
                        value: Some(sv), ..
                    },
                ) => {
                    rewrite(op, *sv, &mut rewritten);
                }
                _ => {}
            }
        }
    }
    rewritten
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcp_analysis::{augment_global_vars, compute_modref, ModKills, PessimisticCalls};
    use ipcp_ir::compile_to_ir;
    use ipcp_lang::interp::{InterpConfig, Value};

    /// Counts with MOD info but no interprocedural seeding.
    fn count_plain(src: &str) -> SubstitutionCounts {
        let mut program = compile_to_ir(src).expect("compiles");
        let cg = CallGraph::new(&program);
        let modref = compute_modref(&program, &cg);
        augment_global_vars(&mut program, &modref);
        let cg = CallGraph::new(&program);
        let kills = ModKills::new(&program, &modref);
        count_substitutions(&program, &cg, &kills, &PessimisticCalls, None)
    }

    #[test]
    fn straight_line_counting() {
        // Uses of x and of y after constant propagation: `y = x + 1` (x),
        // `print(y)` (y) — 2 substitutions. Literal operands don't count.
        let c = count_plain("main\nx = 5\ny = x + 1\nprint(y)\nend\n");
        assert_eq!(c.total, 2);
    }

    #[test]
    fn non_constants_not_counted() {
        let c = count_plain("main\nread(x)\ny = x + 1\nprint(y)\nend\n");
        assert_eq!(c.total, 0);
    }

    #[test]
    fn each_use_counts_once() {
        let c = count_plain("main\nx = 2\ny = x * x + x\nprint(x)\nend\n");
        // Three uses in the expression + one in print.
        assert_eq!(c.total, 4);
    }

    #[test]
    fn by_ref_args_not_counted() {
        // x is constant 5 but passed by reference — not substitutable.
        let c = count_plain("proc f(a)\na = a + 1\nend\nmain\nx = 5\ncall f(x)\nprint(9)\nend\n");
        assert_eq!(c.total, 0);
    }

    #[test]
    fn by_value_args_counted() {
        let c = count_plain("proc f(a)\nend\nmain\nx = 5\ncall f(x + 0)\nend\n");
        // The use of x inside the argument expression counts once.
        assert_eq!(c.total, 1);
    }

    #[test]
    fn unreachable_code_not_counted() {
        let c = count_plain("main\nx = 1\nif x == 0 then\ny = 2\nprint(y)\nend\nprint(x)\nend\n");
        // Only the branch condition use of x and the final print(x):
        // the `then` block is not executable.
        assert_eq!(c.total, 2);
    }

    #[test]
    fn uncalled_procs_not_counted() {
        let c = count_plain("proc dead()\nx = 1\nprint(x)\nend\nmain\nprint(2)\nend\n");
        assert_eq!(c.total, 0);
    }

    #[test]
    fn branch_and_loop_conditions_counted() {
        let src = "main\nn = 3\nif n > 0 then\nprint(n)\nend\nend\n";
        // Uses: `n > 0` (1) + print (1). The comparison's result feeds the
        // branch through a temp, which does not count.
        let c = count_plain(src);
        assert_eq!(c.total, 2);
    }

    #[test]
    fn apply_substitutions_preserves_semantics() {
        let srcs = [
            "main\nx = 5\ny = x + 1\nprint(y)\nprint(x * 2)\nend\n",
            "main\nk = 2\ns = 0\ndo i = 1, 10, k\ns = s + i\nend\nprint(s)\nend\n",
            "proc f(a)\nprint(a)\nend\nmain\nx = 3\ncall f(x)\nprint(x)\nend\n",
            "main\nread(q)\nx = 4\nif q then\nprint(x)\nelse\nprint(x + 1)\nend\nend\n",
        ];
        for src in srcs {
            let mut program = compile_to_ir(src).expect("compiles");
            let cg = CallGraph::new(&program);
            let modref = compute_modref(&program, &cg);
            augment_global_vars(&mut program, &modref);
            let _ = cg;
            let kills = ModKills::new(&program, &modref);
            let before = ipcp_ir::eval::run(
                &program,
                &InterpConfig {
                    input: vec![1],
                    ..InterpConfig::default()
                },
            )
            .expect("runs");
            let mut transformed = program.clone();
            let n = apply_substitutions(&mut transformed, &kills, &PessimisticCalls, None);
            assert!(n > 0, "{src}");
            ipcp_ir::validate::validate(&transformed).expect("still valid");
            let after = ipcp_ir::eval::run(
                &transformed,
                &InterpConfig {
                    input: vec![1],
                    ..InterpConfig::default()
                },
            )
            .expect("still runs");
            assert_eq!(before.output, after.output, "{src}");
        }
    }

    #[test]
    fn apply_skips_by_ref_args() {
        let src = "proc bump(a)\na = a + 1\nend\nmain\nx = 5\ncall bump(x)\nprint(x)\nend\n";
        let mut program = compile_to_ir(src).unwrap();
        let cg = CallGraph::new(&program);
        let modref = compute_modref(&program, &cg);
        augment_global_vars(&mut program, &modref);
        let kills = ModKills::new(&program, &modref);
        let mut transformed = program.clone();
        apply_substitutions(&mut transformed, &kills, &PessimisticCalls, None);
        let out = ipcp_ir::eval::run(&transformed, &InterpConfig::default()).unwrap();
        assert_eq!(out.output, vec![Value::Int(6)]);
    }
}
