//! The whole-program optimizer: analysis plus transformation in one call.
//!
//! [`optimize`] is the entry point a downstream compiler would use: run
//! interprocedural constant propagation at a chosen configuration, then
//! *apply* the results — substitute constants into the IR, fold branches,
//! strip unreachable code, delete dead assignments, and (optionally)
//! clone procedures by arriving constant and re-run to convergence. The
//! result is a semantically equivalent program (pinned by the equivalence
//! tests) plus a metrics trail.

use crate::cloning::{apply_cloning, cloning_opportunities};
use crate::driver::AnalysisConfig;
use crate::forward::build_forward_jfs_with;
use crate::retjf::{build_return_jfs_with, ReturnJumpFns, RjfConstEval, RjfLattice};
use crate::solver::{entry_env_of, solve, ValSets};
use crate::subst::apply_substitutions;
use ipcp_analysis::dce::dce_round;
use ipcp_analysis::sccp::{sccp, SccpConfig};
use ipcp_analysis::symeval::SymEvalOptions;
use ipcp_analysis::{augment_global_vars, compute_modref, CallGraph, CallLattice, ModKills};
use ipcp_ir::Program;
use ipcp_ssa::build_ssa;

/// Options for [`optimize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizeConfig {
    /// The analysis configuration (jump function kind, MOD, return JFs,
    /// gsa, …). `complete_propagation` is ignored: the optimizer always
    /// iterates substitution + DCE to a fixpoint itself.
    pub analysis: AnalysisConfig,
    /// Additionally clone procedures whose slots receive conflicting
    /// constants, then re-analyze (Metzger & Stroud).
    pub clone_procedures: bool,
    /// Upper bound on substitute/DCE/clone rounds (a safety valve; two or
    /// three rounds reach the fixpoint in practice).
    pub max_rounds: usize,
}

impl Default for OptimizeConfig {
    fn default() -> Self {
        OptimizeConfig {
            analysis: AnalysisConfig::default(),
            clone_procedures: false,
            max_rounds: 8,
        }
    }
}

/// What [`optimize`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptimizeStats {
    /// Operands rewritten to constants.
    pub substituted_operands: usize,
    /// Procedure clones created.
    pub clones_created: usize,
    /// Substitute/DCE rounds executed.
    pub rounds: usize,
    /// Instructions before optimization.
    pub instrs_before: usize,
    /// Instructions after optimization.
    pub instrs_after: usize,
}

/// Runs the full optimize pipeline; returns the transformed program and
/// the work done. The result is observationally equivalent to the input.
pub fn optimize(program: &Program, config: &OptimizeConfig) -> (Program, OptimizeStats) {
    let mut program = program.clone();
    let mut stats = OptimizeStats {
        instrs_before: program.instr_count(),
        ..OptimizeStats::default()
    };
    let sym_options = SymEvalOptions {
        gated_phis: config.analysis.gsa,
    };

    for _round in 0..config.max_rounds {
        stats.rounds += 1;
        let mut changed = false;

        // ---- analyze -----------------------------------------------------
        // The analysis borrows an immutable view so the transforms below
        // can mutate `program` (the view and the program are identical at
        // this point).
        let pre_cg = CallGraph::new(&program);
        let modref = compute_modref(&program, &pre_cg);
        augment_global_vars(&mut program, &modref);
        let view = program.clone();
        let cg = CallGraph::new(&view);
        let kills = ModKills::new(&view, &modref);
        let rjfs: ReturnJumpFns = if config.analysis.return_jump_functions {
            build_return_jfs_with(&view, &cg, &kills, sym_options)
        } else {
            ReturnJumpFns::empty(view.procs.len())
        };
        let const_eval = RjfConstEval { rjfs: &rjfs };
        let jfs = build_forward_jfs_with(
            &view,
            &cg,
            &modref,
            config.analysis.jump_function,
            &kills,
            &const_eval,
            sym_options,
        );
        let vals: ValSets = solve(&view, &cg, &modref, &jfs);
        let rjf_lattice = RjfLattice { rjfs: &rjfs };
        let calls: &dyn CallLattice = &rjf_lattice;

        // ---- clone (optional) ---------------------------------------------
        if config.clone_procedures {
            let ops = cloning_opportunities(&view, &cg, &jfs, &vals);
            if !ops.is_empty() {
                let (cloned, n) = apply_cloning(&view, &cg, &jfs, &vals, &ops);
                if n > 0 {
                    program = cloned;
                    stats.clones_created += n;
                    // Re-analyze the cloned program next round.
                    continue;
                }
            }
        }

        // ---- substitute ----------------------------------------------------
        let n = apply_substitutions(&mut program, &kills, calls, Some(&vals));
        stats.substituted_operands += n;
        changed |= n > 0;

        // ---- dead code elimination ------------------------------------------
        for pid in program.proc_ids().collect::<Vec<_>>() {
            let proc_copy = program.proc(pid).clone();
            let ssa = build_ssa(&program, &proc_copy, &kills);
            let env = entry_env_of(&view, pid, &vals);
            let result = sccp(
                &proc_copy,
                &ssa,
                &SccpConfig {
                    entry_env: &env,
                    calls,
                },
            );
            let mut proc = proc_copy;
            changed |= dce_round(&program, &mut proc, &ssa, &result, &kills);
            *program.proc_mut(pid) = proc;
        }

        if !changed {
            break;
        }
    }

    stats.instrs_after = program.instr_count();
    (program, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcp_ir::compile_to_ir;
    use ipcp_lang::interp::{InterpConfig, Value};

    fn run_program(p: &Program, input: Vec<i64>) -> Vec<Value> {
        ipcp_ir::eval::run(
            p,
            &InterpConfig {
                input,
                ..InterpConfig::default()
            },
        )
        .expect("runs")
        .output
    }

    #[test]
    fn optimize_shrinks_and_preserves() {
        let src = "
global mode
proc configure()
  mode = 2
end
proc kernel(n)
  if mode == 1 then
    read(extra)
    print(n + extra)
  else
    print(n * mode)
  end
end
main
  call configure()
  call kernel(21)
end
";
        let program = compile_to_ir(src).unwrap();
        let before = run_program(&program, vec![]);
        let (optimized, stats) = optimize(&program, &OptimizeConfig::default());
        ipcp_ir::validate::validate(&optimized).expect("valid");
        assert_eq!(run_program(&optimized, vec![]), before);
        assert!(stats.substituted_operands > 0);
        assert!(stats.instrs_after < stats.instrs_before, "{stats:?}");
        // The dead `mode == 1` arm is gone: no Read instructions remain.
        let reads = optimized
            .procs
            .iter()
            .flat_map(|p| p.blocks.iter())
            .flat_map(|b| b.instrs.iter())
            .filter(|i| matches!(i, ipcp_ir::Instr::Read { .. }))
            .count();
        assert_eq!(reads, 0);
    }

    #[test]
    fn optimize_with_cloning_specializes() {
        let src = "
proc kernel(radius)
  s = 0
  do i = 1, 8
    s = s + i * radius
  end
  print(s)
end
main
  call kernel(1)
  call kernel(3)
end
";
        let program = compile_to_ir(src).unwrap();
        let before = run_program(&program, vec![]);
        let config = OptimizeConfig {
            clone_procedures: true,
            ..OptimizeConfig::default()
        };
        let (optimized, stats) = optimize(&program, &config);
        ipcp_ir::validate::validate(&optimized).expect("valid");
        assert_eq!(run_program(&optimized, vec![]), before);
        assert_eq!(stats.clones_created, 2);
        // Each clone has its radius substituted: no remaining reference to
        // the clones' formal in their multiply.
        assert!(stats.substituted_operands >= 2, "{stats:?}");
    }

    #[test]
    fn optimize_reaches_fixpoint_quickly() {
        let src = "main\nx = 1\nif x then\nprint(2)\nelse\nprint(3)\nend\nend\n";
        let program = compile_to_ir(src).unwrap();
        let (optimized, stats) = optimize(&program, &OptimizeConfig::default());
        assert!(stats.rounds <= 3, "{stats:?}");
        assert_eq!(run_program(&optimized, vec![]), vec![Value::Int(2)]);
    }

    #[test]
    fn optimize_is_idempotent() {
        let src = "global n\nproc init()\nn = 4\nend\nproc f(k)\nprint(n + k)\nend\nmain\ncall init()\ncall f(1)\nend\n";
        let program = compile_to_ir(src).unwrap();
        let (once, _) = optimize(&program, &OptimizeConfig::default());
        let (twice, stats) = optimize(&once, &OptimizeConfig::default());
        assert_eq!(
            ipcp_ir::print::program_to_string(&once),
            ipcp_ir::print::program_to_string(&twice)
        );
        assert_eq!(stats.substituted_operands, 0, "nothing left to do");
    }

    #[test]
    fn optimize_noop_on_dynamic_program() {
        let src = "main\nread(x)\nprint(x + 1)\nend\n";
        let program = compile_to_ir(src).unwrap();
        let (optimized, stats) = optimize(&program, &OptimizeConfig::default());
        assert_eq!(stats.substituted_operands, 0);
        assert_eq!(run_program(&optimized, vec![7]), vec![Value::Int(8)]);
    }
}
