//! The pluggable interprocedural dataflow framework.
//!
//! The paper's four jump-function implementations — and every analysis
//! the ROADMAP wants after them — are specializations of one scheme: a
//! *value context* per procedure (a map from entry slots to elements of
//! a bounded lattice), transfer functions attached to call edges, and a
//! worklist fixpoint over the call graph (Padhye & Khedker's
//! value-contexts method, restricted to the paper's one-context-per-
//! procedure regime). This module extracts that scheme into two generic
//! drivers so a new analysis is a *problem definition*, not a new
//! solver:
//!
//! * [`DataflowProblem`] + [`solve_value_contexts`] — the worklist
//!   engine. A problem supplies the lattice (top/bottom/meet), the
//!   context shape per procedure, the root seeding, the call-edge
//!   transfer functions, and (optionally) an edge *feasibility* hook —
//!   the extension point behind conditional constant propagation, where
//!   a constant-valued predicate proves a call edge dead and the engine
//!   prunes it. The engine owns the worklist discipline, the fuel
//!   accounting (one [`Phase`] unit per pop, with the sound
//!   collapse-to-⊥ degradation on exhaustion), and lattice-transition
//!   observability.
//! * [`BudgetedProcPass`] + [`run_budgeted_pass`] — the per-procedure
//!   construction driver shared by forward and return jump function
//!   generation: a build order (flat or bottom-up over SCCs), a
//!   *precision ladder* of rungs with §3.1.5 cost weights, fuel
//!   checkpoints per procedure, ladder-step/degradation bookkeeping,
//!   and a sound fallback when even the cheapest rung is unaffordable.
//!
//! Both drivers reproduce the bespoke loops they replaced bit for bit:
//! same iteration order, same fuel draws, same degradation records, same
//! observability events (`crates/bench/tests/framework_golden.rs` pins
//! all 72 Table-2 cells through this engine).

use ipcp_analysis::{Budget, Phase, Slot, SlotTable};
use ipcp_ir::{ProcId, Program};
use std::collections::VecDeque;
use std::fmt;

/// The mutable engine state a problem's edge transfer evaluates against.
///
/// Reads ([`EdgeSink::caller_value`]) and writes
/// ([`EdgeSink::meet_into`]) go through the *live* contexts: an update
/// to the callee is visible to the very next transfer evaluation of the
/// same pop — required for bit-identical convergence on self-recursive
/// procedures, where caller and callee share one context.
pub trait EdgeSink<V> {
    /// Current value of `slot` in the caller's entry context (the
    /// problem's missing-slot fallback when untracked).
    fn caller_value(&self, slot: Slot) -> V;

    /// Meets `incoming` into the callee's `slot`, enqueueing the callee
    /// when its context lowers. `transfer` is only rendered when a
    /// tracing sink is attached (it names the justifying jump function
    /// in the transition event).
    fn meet_into(&mut self, slot: Slot, incoming: V, transfer: &dyn fmt::Display);
}

/// An interprocedural dataflow problem: a bounded lattice, a value
/// context per procedure, and transfer functions on call edges. The
/// generic engine ([`solve_value_contexts`]) drives any implementation
/// to its least fixpoint.
pub trait DataflowProblem {
    /// The lattice element propagated along call edges.
    type Value: Copy + PartialEq + fmt::Display;

    /// ⊤ — the optimistic initial element of every context slot.
    fn top(&self) -> Self::Value;

    /// ⊥ — the sound worst case. Every tracked slot collapses here when
    /// the fuel budget exhausts mid-solve (the widening bound: leaving
    /// optimistic intermediates in place would be unsound, because a
    /// slot still at ⊤ or a constant may not have seen all its edges).
    fn bottom(&self) -> Self::Value;

    /// The meet of the bounded lattice.
    fn meet(&self, a: Self::Value, b: Self::Value) -> Self::Value;

    /// Fallback value when an edge transfer reads a slot absent from
    /// the caller's context.
    fn missing_value(&self) -> Self::Value;

    /// The slots forming `p`'s value context.
    fn context_slots(&self, program: &Program, p: ProcId) -> Vec<Slot>;

    /// Seed of one root (`main`) context slot — the root has no callers,
    /// so its context is fixed by the problem, not by propagation.
    fn root_value(&self, program: &Program, slot: Slot) -> Self::Value;

    /// Whether `p` is reachable from the root: reachable procedures are
    /// seeded onto the worklist so their call sites are evaluated at
    /// least once even when their own context never changes.
    fn seeded(&self, p: ProcId) -> bool;

    /// Number of call sites of `p`; the engine walks them in order.
    fn site_count(&self, p: ProcId) -> usize;

    /// Callee of site `s` of `p`, or `None` when the site sits in
    /// statically unreachable code (its edges never fire).
    fn site_target(&self, p: ProcId, s: usize) -> Option<ProcId>;

    /// Whether the edge is feasible under the caller's *current* entry
    /// context — the conditional-propagation hook. A pruned edge
    /// contributes nothing this visit; because contexts only descend
    /// and implementations must be monotone in `env` (lower contexts
    /// prune no more edges), pruning is sound. Default: all edges
    /// feasible (plain constant propagation).
    fn site_feasible(&self, p: ProcId, s: usize, env: &dyn Fn(Slot) -> Self::Value) -> bool {
        let _ = (p, s, env);
        true
    }

    /// Evaluates every (callee slot → transfer function) pair of edge
    /// `s` of `p` against the live engine state, in slot order:
    /// `sink.caller_value` reads the caller context, `sink.meet_into`
    /// lowers the callee context.
    fn eval_edge(&self, p: ProcId, s: usize, sink: &mut dyn EdgeSink<Self::Value>);

    /// The fuel phase one worklist pop draws a unit from.
    fn phase(&self) -> Phase {
        Phase::Solver
    }

    /// Procedure name, for transition events (rendered lazily).
    fn proc_name(&self, p: ProcId) -> &str;

    /// Human-readable name of `slot` of `q`, for transition events.
    fn slot_name(&self, q: ProcId, slot: Slot) -> String;

    /// Label of call site `s` of `p` (e.g. `b2#0`), for transition
    /// events.
    fn site_label(&self, p: ProcId, s: usize) -> String;
}

/// The engine's result: one value context per procedure plus the cost
/// counters.
#[derive(Debug, Clone)]
pub struct EngineOutcome<V> {
    /// Per-procedure contexts, indexed by [`ProcId`] — dense slot
    /// tables, iterated in the same ascending slot order as the
    /// `BTreeMap`s they replaced.
    pub contexts: Vec<SlotTable<V>>,
    /// Worklist pops taken (the solver's cost proxy).
    pub iterations: usize,
    /// Call-edge visits skipped by [`DataflowProblem::site_feasible`].
    pub pruned_edges: usize,
}

/// Engine state threaded through edge evaluation; implements
/// [`EdgeSink`] over the live contexts, the worklist, and the trace
/// sink.
struct EngineState<'a, P: DataflowProblem> {
    problem: &'a P,
    contexts: &'a mut Vec<SlotTable<P::Value>>,
    queued: &'a mut Vec<bool>,
    work: &'a mut VecDeque<ProcId>,
    sink: &'a dyn ipcp_obs::ObsSink,
    /// Caller being popped.
    p: ProcId,
    /// Callee of the edge under evaluation.
    q: ProcId,
    /// Site index of the edge under evaluation.
    s: usize,
}

impl<P: DataflowProblem> EdgeSink<P::Value> for EngineState<'_, P> {
    fn caller_value(&self, slot: Slot) -> P::Value {
        debug_assert!(
            self.contexts[self.p.index()].contains_key(&slot) || matches!(slot, Slot::Result),
            "transfer function support slot {slot} missing from caller {}",
            self.problem.proc_name(self.p)
        );
        self.contexts[self.p.index()]
            .get(&slot)
            .copied()
            .unwrap_or_else(|| self.problem.missing_value())
    }

    fn meet_into(&mut self, slot: Slot, incoming: P::Value, transfer: &dyn fmt::Display) {
        let old = self.contexts[self.q.index()]
            .get(&slot)
            .copied()
            .unwrap_or_else(|| self.problem.top());
        let new = self.problem.meet(old, incoming);
        if new != old {
            if self.sink.enabled() {
                self.sink.transition(ipcp_obs::TransitionEvent {
                    callee: self.problem.proc_name(self.q).to_string(),
                    slot: self.problem.slot_name(self.q, slot),
                    caller: self.problem.proc_name(self.p).to_string(),
                    site: self.problem.site_label(self.p, self.s),
                    jump_fn: transfer.to_string(),
                    from: old.to_string(),
                    to: new.to_string(),
                });
            }
            self.contexts[self.q.index()].insert(slot, new);
            if !self.queued[self.q.index()] {
                self.queued[self.q.index()] = true;
                self.work.push_back(self.q);
            }
        }
    }
}

/// Runs `problem` to its least fixpoint: the generic value-context
/// worklist engine.
///
/// Every context starts ⊤ (the root's is seeded by the problem), every
/// seeded procedure is visited at least once, each pop draws one unit of
/// the problem's fuel phase, and on exhaustion every tracked slot is
/// lowered to ⊥ — an always-sound (if useless) fixpoint. Lattice
/// transitions are reported to `sink` with their justifying call edge.
pub fn solve_value_contexts<P: DataflowProblem>(
    program: &Program,
    problem: &P,
    budget: &Budget,
    sink: &dyn ipcp_obs::ObsSink,
) -> EngineOutcome<P::Value> {
    let n = program.procs.len();
    let mut contexts: Vec<SlotTable<P::Value>> = Vec::with_capacity(n);
    for pid in program.proc_ids() {
        contexts.push(SlotTable::from_universe(
            problem.context_slots(program, pid),
            problem.top(),
        ));
    }

    // Seed the root's context: it has no incoming edges, so its values
    // come from the problem (global initializers for constant
    // propagation), not from propagation.
    let main = program.main;
    let main_slots: Vec<Slot> = contexts[main.index()].keys().copied().collect();
    for slot in main_slots {
        let v = problem.root_value(program, slot);
        contexts[main.index()].insert(slot, v);
    }

    // Seed the worklist with every procedure reachable from the root
    // (root first): a procedure's call sites must be evaluated at least
    // once even if its own context never changes (e.g. it has no slots
    // at all).
    let mut queued = vec![false; n];
    let mut work: VecDeque<ProcId> = VecDeque::new();
    work.push_back(main);
    queued[main.index()] = true;
    for pid in program.proc_ids() {
        if problem.seeded(pid) && !queued[pid.index()] {
            queued[pid.index()] = true;
            work.push_back(pid);
        }
    }

    let mut iterations = 0usize;
    let mut pruned_edges = 0usize;
    while let Some(p) = work.pop_front() {
        if !budget.checkpoint(problem.phase(), 1) {
            budget.record_degradation(problem.phase());
            for map in &mut contexts {
                for v in map.values_mut() {
                    *v = problem.bottom();
                }
            }
            break;
        }
        queued[p.index()] = false;
        iterations += 1;

        for s in 0..problem.site_count(p) {
            let Some(q) = problem.site_target(p, s) else {
                continue;
            };
            {
                let ctx = &contexts[p.index()];
                let env = |slot: Slot| -> P::Value {
                    ctx.get(&slot)
                        .copied()
                        .unwrap_or_else(|| problem.missing_value())
                };
                if !problem.site_feasible(p, s, &env) {
                    pruned_edges += 1;
                    continue;
                }
            }
            let mut state = EngineState {
                problem,
                contexts: &mut contexts,
                queued: &mut queued,
                work: &mut work,
                sink,
                p,
                q,
                s,
            };
            problem.eval_edge(p, s, &mut state);
        }
    }

    // Per-procedure context size is the scalability telemetry the
    // value-contexts literature reports; feed it to the sink's value
    // histogram (one sample per procedure).
    if sink.enabled() {
        for ctx in &contexts {
            sink.value("framework.context_slots", ctx.len() as u64);
        }
    }

    EngineOutcome {
        contexts,
        iterations,
        pruned_edges,
    }
}

// ---- budgeted per-procedure construction ----------------------------------

/// One rung of a precision ladder: the kind built at that rung, its
/// display name (for ladder-step records), and its relative §3.1.5 cost
/// weight.
#[derive(Debug, Clone)]
pub struct Rung<K> {
    /// What this rung builds.
    pub kind: K,
    /// Display name recorded in ladder steps.
    pub name: String,
    /// Relative cost weight (multiplied by the per-procedure estimate).
    pub weight: u64,
}

/// A per-procedure transfer-function construction pass under a fuel
/// budget — the shape shared by forward jump function generation (a
/// four-rung precision ladder over a flat procedure order) and return
/// jump function generation (a single rung over the bottom-up SCC
/// order, accumulating callee tables as it goes).
pub trait BudgetedProcPass {
    /// The accumulated output table.
    type Acc;
    /// The rung descriptor (a jump-function kind; `()` for single-rung
    /// passes).
    type Kind: Copy;

    /// The fuel phase this pass draws from.
    fn phase(&self) -> Phase;

    /// Procedures in build order (bottom-up SCC order when later builds
    /// compose earlier results).
    fn order(&self) -> Vec<ProcId>;

    /// The descending precision ladder, starting at the requested rung.
    /// Single-rung passes return one entry; below the last rung sits ⊥
    /// (the fallback).
    fn ladder(&self) -> Vec<Rung<Self::Kind>>;

    /// Fuel estimate of building `p` (multiplied by the rung weight).
    fn estimate(&self, p: ProcId) -> u64;

    /// Builds `p` at `kind` into the accumulator. `budget` meters any
    /// inner symbolic evaluation.
    fn build(&self, acc: &mut Self::Acc, p: ProcId, kind: Self::Kind, budget: &Budget);

    /// Installs the sound ⊥ fallback for `p` (fuel could not afford even
    /// the cheapest rung).
    fn fallback(&self, acc: &mut Self::Acc, p: ProcId);

    /// Whether fuel-driven rung slides are recorded as ladder steps (and
    /// a cheaper-than-requested rung as a degradation). Forward jump
    /// functions track their precision ladder; the single-rung return
    /// pass degrades silently to its fallback, as its bespoke loop did.
    fn tracks_ladder(&self) -> bool {
        true
    }
}

/// Drives a [`BudgetedProcPass`] over its procedures: slides down the
/// precision ladder until a rung fits the remaining fuel (recording
/// every ladder step when the pass
/// [tracks its ladder](BudgetedProcPass::tracks_ladder)), checkpoints
/// the rung's cost, records a degradation whenever the requested rung
/// was not built, and installs the ⊥ fallback when nothing was
/// affordable.
pub fn run_budgeted_pass<P: BudgetedProcPass>(pass: &P, acc: &mut P::Acc, budget: &Budget) {
    let ladder = pass.ladder();
    let tracked = pass.tracks_ladder();
    for p in pass.order() {
        let estimate = pass.estimate(p);

        // Slide down the ladder until a rung fits the remaining fuel.
        let mut rung = Some(0usize);
        if tracked {
            if let Some(remaining) = budget.fuel_remaining() {
                while let Some(i) = rung {
                    if ladder[i].weight.saturating_mul(estimate) <= remaining {
                        break;
                    }
                    let lower = (i + 1 < ladder.len()).then_some(i + 1);
                    budget.record_ladder_step(
                        &ladder[i].name,
                        &lower.map_or("⊥".to_string(), |j| ladder[j].name.clone()),
                    );
                    rung = lower;
                }
            }
        }
        let affordable = match rung {
            Some(i) => budget.checkpoint(pass.phase(), ladder[i].weight.saturating_mul(estimate)),
            None => false,
        };
        if !affordable {
            if tracked {
                if let Some(i) = rung {
                    // The checkpoint itself failed (shared tank drained
                    // by a concurrent phase or a fault injector): fall
                    // to ⊥.
                    budget.record_ladder_step(&ladder[i].name, "⊥");
                }
            }
            budget.record_degradation(pass.phase());
            pass.fallback(acc, p);
            continue;
        }
        let i = rung.expect("affordable rung");
        if tracked && i != 0 {
            budget.record_degradation(pass.phase());
        }
        pass.build(acc, p, ladder[i].kind, budget);
    }
}
