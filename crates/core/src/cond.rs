//! Conditional constant propagation with interprocedural branch
//! feasibility — the first genuinely new analysis on the dataflow
//! framework (`--level cond`).
//!
//! Plain interprocedural propagation evaluates the jump functions of
//! *every* CFG-reachable call site. But when a branch predicate is a
//! known constant under the caller's current entry context, one arm of
//! the branch can never execute — and any call sites in it should not
//! lower their callees. This is Wegman–Zadeck executable-edge tracking
//! (SCCP) lifted across calls: as the solver discovers a procedure's
//! entry constants, an intraprocedural SCCP pass over that procedure
//! (seeded *optimistically* — ⊤ entries stay ⊤) decides which blocks
//! can execute, and the generic engine's
//! [`site_feasible`](crate::framework::DataflowProblem::site_feasible)
//! hook prunes the call edges in dead blocks. Pruned edges sharpen
//! callee contexts: two sites that meet a formal to ⊥ under `poly`
//! leave it a constant under `cond` when one of them is infeasible.
//!
//! **Soundness.** Contexts only descend, and the SCCP executable set
//! only *grows* as entry values descend (⊤ predicates execute nothing,
//! constants one arm, ⊥ both), so feasibility is monotone: an edge is
//! pruned only while the caller's context proves its block dead, and
//! the caller is re-popped — re-deciding feasibility — whenever its
//! context lowers. At the fixpoint every feasible edge has been
//! evaluated under the final context. A procedure all of whose
//! incoming edges are pruned keeps its optimistic ⊤ context; ⊤ slots
//! are not constants ([`ValSets::constants`]) and are mapped to ⊥ by
//! [`entry_env_of`](crate::solver::entry_env_of) before any
//! transformation, exactly like statically-uncalled procedures.
//!
//! **Budgeting.** Feasibility SCCP runs on a scratch unlimited budget:
//! it is a pruning device computed on the side, and drawing from the
//! main tank would perturb the solver phase's fuel accounting (which
//! the session records and replays on cache hits). The engine's
//! per-pop checkpoint still degrades the whole result to ⊥ on
//! exhaustion, which is sound with or without pruning.
//!
//! `cond` always solves over the call graph (the binding-graph
//! formulation has no per-procedure pop at which to re-decide
//! feasibility); the driver routes `branch_feasibility` configurations
//! here regardless of [`SolverKind`](crate::driver::SolverKind).

use crate::forward::ForwardJumpFns;
use crate::framework::{solve_value_contexts, DataflowProblem, EdgeSink};
use crate::solver::{ConstProp, ValSets};
use ipcp_analysis::{
    sccp_budgeted, Budget, CallGraph, CallLattice, LatticeVal, ModRefInfo, Phase, SccpConfig, Slot,
};
use ipcp_ir::{ProcId, Program, VarKind};
use ipcp_ssa::{build_ssa, KillOracle, SsaProc};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

/// [`crate::solver::solve`] with interprocedural branch feasibility.
pub fn solve_cond(
    program: &Program,
    cg: &CallGraph,
    modref: &ModRefInfo,
    jfs: &ForwardJumpFns,
    kills: &dyn KillOracle,
    calls: &dyn CallLattice,
) -> ValSets {
    solve_cond_traced(
        program,
        cg,
        modref,
        jfs,
        kills,
        calls,
        &Budget::unlimited(),
        &ipcp_obs::NoopSink,
    )
}

/// [`solve_cond`] under a fuel budget (same solver-phase discipline as
/// [`crate::solver::solve_budgeted`]).
#[allow(clippy::too_many_arguments)]
pub fn solve_cond_budgeted(
    program: &Program,
    cg: &CallGraph,
    modref: &ModRefInfo,
    jfs: &ForwardJumpFns,
    kills: &dyn KillOracle,
    calls: &dyn CallLattice,
    budget: &Budget,
) -> ValSets {
    solve_cond_traced(
        program,
        cg,
        modref,
        jfs,
        kills,
        calls,
        budget,
        &ipcp_obs::NoopSink,
    )
}

/// [`solve_cond_budgeted`] with lattice transitions reported to `sink`
/// (the `ipcp explain` provenance path): the [`CondProp`] problem run
/// through the generic value-context engine.
#[allow(clippy::too_many_arguments)]
pub fn solve_cond_traced(
    program: &Program,
    cg: &CallGraph,
    modref: &ModRefInfo,
    jfs: &ForwardJumpFns,
    kills: &dyn KillOracle,
    calls: &dyn CallLattice,
    budget: &Budget,
    sink: &dyn ipcp_obs::ObsSink,
) -> ValSets {
    let problem = CondProp {
        base: ConstProp {
            program,
            cg,
            modref,
            jfs,
        },
        kills,
        calls,
        ssa_cache: RefCell::new(vec![None; program.procs.len()]),
        slots_cache: RefCell::new(vec![None; program.procs.len()]),
        feasibility: RefCell::new(HashMap::new()),
    };
    ValSets::from_engine(solve_value_contexts(program, &problem, budget, sink))
}

/// (procedure, entry-context snapshot) → per-site feasibility flags.
type FeasibilityMemo = HashMap<(ProcId, Vec<LatticeVal>), Rc<Vec<bool>>>;

/// The conditional-propagation problem: [`ConstProp`] plus an SCCP-based
/// edge-feasibility oracle, memoized per (procedure, entry-context
/// snapshot).
struct CondProp<'a> {
    base: ConstProp<'a>,
    kills: &'a dyn KillOracle,
    calls: &'a dyn CallLattice,
    /// SSA per procedure, built lazily (feasibility only needs the
    /// procedures the solver actually pops).
    ssa_cache: RefCell<Vec<Option<Rc<SsaProc>>>>,
    /// Context slots per procedure, built lazily: [`site_feasible`]
    /// (DataflowProblem::site_feasible) runs on every call-site visit and
    /// recomputing the slot universe each time is a hot-path allocation.
    slots_cache: RefCell<Vec<Option<Rc<Vec<Slot>>>>>,
    feasibility: RefCell<FeasibilityMemo>,
}

impl CondProp<'_> {
    fn slots_of(&self, p: ProcId) -> Rc<Vec<Slot>> {
        let mut cache = self.slots_cache.borrow_mut();
        let entry = &mut cache[p.index()];
        if entry.is_none() {
            *entry = Some(Rc::new(self.base.context_slots(self.base.program, p)));
        }
        Rc::clone(entry.as_ref().expect("just built"))
    }

    fn ssa_of(&self, p: ProcId) -> Rc<SsaProc> {
        let mut cache = self.ssa_cache.borrow_mut();
        let entry = &mut cache[p.index()];
        if entry.is_none() {
            let program = self.base.program;
            *entry = Some(Rc::new(build_ssa(program, program.proc(p), self.kills)));
        }
        Rc::clone(entry.as_ref().expect("just built"))
    }

    /// Per-site feasibility of `p` under the entry snapshot `key`: a
    /// site is feasible iff its block is SCCP-executable when `p`'s
    /// entry variables are seeded with the snapshot values.
    fn feasible_sites(&self, p: ProcId, slots: &[Slot], key: Vec<LatticeVal>) -> Rc<Vec<bool>> {
        if let Some(hit) = self.feasibility.borrow().get(&(p, key.clone())) {
            return Rc::clone(hit);
        }
        let program = self.base.program;
        let proc = program.proc(p);
        let by_slot: BTreeMap<Slot, LatticeVal> =
            slots.iter().copied().zip(key.iter().copied()).collect();

        // The *optimistic* entry environment: tracked slots keep their
        // current lattice value — crucially, ⊤ stays ⊤ (a not-yet-seen
        // entry executes nothing), unlike `entry_env_of`, which maps ⊤
        // to ⊥ for counting. Mapping ⊤ to ⊥ here would raise the seed
        // from ⊥ back to a constant as the context descends, breaking
        // the monotone-growth argument. Slot-less variables (locals,
        // temporaries) are ⊥.
        let mut per_var = Vec::with_capacity(proc.vars.len());
        for v in proc.var_ids() {
            let value = match proc.var(v).kind {
                VarKind::Formal(i) => by_slot
                    .get(&Slot::Formal(i))
                    .copied()
                    .unwrap_or(LatticeVal::Bottom),
                VarKind::Global(g) => by_slot
                    .get(&Slot::Global(g))
                    .copied()
                    .unwrap_or(LatticeVal::Bottom),
                _ => LatticeVal::Bottom,
            };
            per_var.push(value);
        }
        let entry = |v: ipcp_ir::VarId| -> LatticeVal {
            per_var
                .get(v.index())
                .copied()
                .unwrap_or(LatticeVal::Bottom)
        };
        let config = SccpConfig {
            entry_env: &entry,
            calls: self.calls,
        };
        let ssa = self.ssa_of(p);
        let result = sccp_budgeted(proc, &ssa, &config, &Budget::unlimited());
        let flags: Vec<bool> = self
            .base
            .cg
            .sites(p)
            .iter()
            .map(|site| result.executable[site.block.index()])
            .collect();
        let rc = Rc::new(flags);
        self.feasibility
            .borrow_mut()
            .insert((p, key), Rc::clone(&rc));
        rc
    }
}

impl DataflowProblem for CondProp<'_> {
    type Value = LatticeVal;

    fn top(&self) -> LatticeVal {
        self.base.top()
    }

    fn bottom(&self) -> LatticeVal {
        self.base.bottom()
    }

    fn meet(&self, a: LatticeVal, b: LatticeVal) -> LatticeVal {
        self.base.meet(a, b)
    }

    fn missing_value(&self) -> LatticeVal {
        self.base.missing_value()
    }

    fn context_slots(&self, program: &Program, p: ProcId) -> Vec<Slot> {
        self.base.context_slots(program, p)
    }

    fn root_value(&self, program: &Program, slot: Slot) -> LatticeVal {
        self.base.root_value(program, slot)
    }

    fn seeded(&self, p: ProcId) -> bool {
        self.base.seeded(p)
    }

    fn site_count(&self, p: ProcId) -> usize {
        self.base.site_count(p)
    }

    fn site_target(&self, p: ProcId, s: usize) -> Option<ProcId> {
        self.base.site_target(p, s)
    }

    fn site_feasible(&self, p: ProcId, s: usize, env: &dyn Fn(Slot) -> LatticeVal) -> bool {
        let slots = self.slots_of(p);
        let key: Vec<LatticeVal> = slots.iter().map(|&sl| env(sl)).collect();
        let flags = self.feasible_sites(p, &slots, key);
        flags.get(s).copied().unwrap_or(true)
    }

    fn eval_edge(&self, p: ProcId, s: usize, sink: &mut dyn EdgeSink<LatticeVal>) {
        self.base.eval_edge(p, s, sink);
    }

    fn phase(&self) -> Phase {
        self.base.phase()
    }

    fn proc_name(&self, p: ProcId) -> &str {
        self.base.proc_name(p)
    }

    fn slot_name(&self, q: ProcId, slot: Slot) -> String {
        self.base.slot_name(q, slot)
    }

    fn site_label(&self, p: ProcId, s: usize) -> String {
        self.base.site_label(p, s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forward::build_forward_jfs;
    use crate::jump::JumpFunctionKind;
    use crate::retjf::{build_return_jfs, RjfConstEval, RjfLattice};
    use ipcp_analysis::{augment_global_vars, compute_modref, ModKills};
    use ipcp_ir::compile_to_ir;

    /// An interprocedurally-constant predicate (`mode == 1`) proves the
    /// `else` arm of `dispatch` dead; only then is `kernel(3)` the sole
    /// live call and `k` a constant.
    pub const DISPATCH: &str = "proc kernel(k)\nprint(k + 1)\nend\n\
        proc dispatch(mode)\nif mode == 1 then\ncall kernel(3)\nelse\ncall kernel(9)\nend\nend\n\
        main\ncall dispatch(1)\nend\n";

    fn solve_both(src: &str) -> (Program, ValSets, ValSets) {
        let mut program = compile_to_ir(src).expect("compiles");
        let cg = CallGraph::new(&program);
        let modref = compute_modref(&program, &cg);
        augment_global_vars(&mut program, &modref);
        let cg = CallGraph::new(&program);
        let kills = ModKills::new(&program, &modref);
        let rjfs = build_return_jfs(&program, &cg, &kills);
        let eval = RjfConstEval { rjfs: &rjfs };
        let jfs = build_forward_jfs(
            &program,
            &cg,
            &modref,
            JumpFunctionKind::Polynomial,
            &kills,
            &eval,
        );
        let poly = crate::solver::solve(&program, &cg, &modref, &jfs);
        let calls = RjfLattice { rjfs: &rjfs };
        let cond = solve_cond(&program, &cg, &modref, &jfs, &kills, &calls);
        (program, poly, cond)
    }

    #[test]
    fn infeasible_branch_prune_sharpens_callee() {
        let (p, poly, cond) = solve_both(DISPATCH);
        let kernel = p.proc_by_name("kernel").unwrap();
        // poly meets 3 ∧ 9 = ⊥; cond prunes the else-arm call.
        assert_eq!(poly.value(kernel, Slot::Formal(0)), LatticeVal::Bottom);
        assert_eq!(cond.value(kernel, Slot::Formal(0)), LatticeVal::Const(3));
        assert!(cond.pruned_call_edges() > 0);
        assert_eq!(poly.pruned_call_edges(), 0);
    }

    #[test]
    fn cond_never_loses_per_proc_constants() {
        // On every procedure where cond claims any constant, it must
        // preserve all of poly's constants for that procedure.
        for src in [
            DISPATCH,
            "proc f(a)\nend\nmain\ncall f(5)\ncall f(6)\nend\n",
            "global n = 4\nproc g(x)\nend\nproc h(y)\nif y then\ncall g(n)\nend\nend\nmain\ncall h(0)\ncall h(2)\nend\n",
        ] {
            let (p, poly, cond) = solve_both(src);
            for pid in p.proc_ids() {
                let cc = cond.constants(pid);
                if cc.is_empty() {
                    continue; // proved infeasible — exempt
                }
                for (slot, c) in poly.constants(pid) {
                    assert_eq!(cc.get(&slot), Some(&c), "{src}: {}", p.proc(pid).name);
                }
            }
        }
    }

    #[test]
    fn feasible_programs_match_plain_solver() {
        // No constant predicates: cond must agree with poly exactly.
        let src = "proc f(a)\nend\nproc g(b)\ncall f(b)\nend\nmain\ncall g(7)\ncall f(2)\nend\n";
        let (p, poly, cond) = solve_both(src);
        for pid in p.proc_ids() {
            assert_eq!(poly.of(pid), cond.of(pid));
        }
        assert_eq!(cond.pruned_call_edges(), 0);
    }

    #[test]
    fn exhausted_budget_is_sound_under_pruning() {
        let mut program = compile_to_ir(DISPATCH).unwrap();
        let cg = CallGraph::new(&program);
        let modref = compute_modref(&program, &cg);
        augment_global_vars(&mut program, &modref);
        let cg = CallGraph::new(&program);
        let kills = ModKills::new(&program, &modref);
        let rjfs = build_return_jfs(&program, &cg, &kills);
        let eval = RjfConstEval { rjfs: &rjfs };
        let jfs = build_forward_jfs(
            &program,
            &cg,
            &modref,
            JumpFunctionKind::Polynomial,
            &kills,
            &eval,
        );
        let calls = RjfLattice { rjfs: &rjfs };
        let full = solve_cond(&program, &cg, &modref, &jfs, &kills, &calls);
        for fuel in 0..8u64 {
            let budget = Budget::with_fuel(fuel);
            let v = solve_cond_budgeted(&program, &cg, &modref, &jfs, &kills, &calls, &budget);
            for pid in program.proc_ids() {
                for (&slot, &val) in v.of(pid) {
                    if let LatticeVal::Const(c) = val {
                        assert_eq!(full.value(pid, slot), LatticeVal::Const(c), "fuel {fuel}");
                    }
                }
            }
        }
    }
}
