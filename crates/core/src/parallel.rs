//! Parallelism plumbing for the analysis pipeline.
//!
//! The actual thread pool lives in [`ipcp_analysis::par`] (the analysis
//! crate owns the dependency-free scoped `par_map` and the SCC wave
//! scheduler); this module re-exports the configuration knob and maps an
//! [`AnalysisConfig`] to the effective worker count the session's
//! fan-outs use. Results are bit-identical at every setting — see the
//! determinism notes in [`crate::session`].

use crate::driver::AnalysisConfig;
pub use ipcp_analysis::{par_map, scc_waves, Parallelism};

/// The worker count a session run under `config` fans out to
/// (`jobs == 0` is treated as 1; see [`Parallelism::effective`]).
pub fn effective_jobs(config: &AnalysisConfig) -> usize {
    Parallelism { jobs: config.jobs }.effective()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_jobs_runs_sequentially() {
        let config = AnalysisConfig {
            jobs: 0,
            ..AnalysisConfig::default()
        };
        assert_eq!(effective_jobs(&config), 1);
        let config = AnalysisConfig {
            jobs: 6,
            ..AnalysisConfig::default()
        };
        assert_eq!(effective_jobs(&config), 6);
    }
}
