//! The binding-(multi)graph formulation of the interprocedural solve.
//!
//! The paper notes (§2) that "alternative formulations based on the
//! binding multi-graph are possible", citing Cooper–Kennedy. Instead of
//! iterating over *procedures*, this solver builds a graph whose nodes
//! are `(procedure, slot)` pairs and whose edges connect each slot to the
//! jump-function applications whose *support* contains it. When a node's
//! value lowers, exactly the dependent jump functions are re-evaluated —
//! the sparse propagation that achieves the paper's §3.1.5 case-2 bound
//! `O(Σ_s Σ_y cost(J_y^s))` for pass-through jump functions (each
//! application re-runs at most twice per support slot).
//!
//! [`solve_binding`] computes exactly the same `VAL` sets as
//! [`crate::solver::solve`]; the differential tests and an ablation bench
//! pin that down.

use crate::forward::ForwardJumpFns;
use crate::jump::JumpFn;
use crate::solver::ValSets;
use ipcp_analysis::{Budget, CallGraph, LatticeVal, ModRefInfo, Phase, Slot};
use ipcp_ir::{ProcId, Program};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// One jump-function application: a `(call site, callee slot)` pair.
struct JfApp {
    caller: ProcId,
    jf: JumpFn,
    /// Target node index.
    target: usize,
}

/// Runs the interprocedural propagation on the binding graph. Produces
/// the same result as [`crate::solver::solve`].
pub fn solve_binding(
    program: &Program,
    cg: &CallGraph,
    modref: &ModRefInfo,
    jfs: &ForwardJumpFns,
) -> ValSets {
    solve_binding_budgeted(program, cg, modref, jfs, &Budget::unlimited())
}

/// [`solve_binding`] under a fuel budget: each jump-function evaluation
/// costs one unit of [`Phase::Solver`] fuel. On exhaustion the sparse
/// iteration stops and every node is lowered to ⊥ — the same sound
/// fallback as the call-graph solver's, so the two formulations stay
/// interchangeable even when starved.
pub fn solve_binding_budgeted(
    program: &Program,
    cg: &CallGraph,
    modref: &ModRefInfo,
    jfs: &ForwardJumpFns,
    budget: &Budget,
) -> ValSets {
    // ---- nodes -----------------------------------------------------------
    let mut nodes: Vec<(ProcId, Slot)> = Vec::new();
    let mut node_of: HashMap<(ProcId, Slot), usize> = HashMap::new();
    for pid in program.proc_ids() {
        for slot in modref.param_slots(program, pid) {
            node_of.insert((pid, slot), nodes.len());
            nodes.push((pid, slot));
        }
    }

    let mut values: Vec<LatticeVal> = vec![LatticeVal::Top; nodes.len()];

    // Seed main's globals from their initializers (⊥ when uninitialized).
    let main = program.main;
    for (i, &(pid, slot)) in nodes.iter().enumerate() {
        if pid == main {
            if let Slot::Global(g) = slot {
                values[i] = match program.global(g).init {
                    Some(c) => LatticeVal::Const(c),
                    None => LatticeVal::Bottom,
                };
            }
        }
    }

    // ---- jump-function applications and dependence edges -----------------
    let mut apps: Vec<JfApp> = Vec::new();
    let mut uses: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for pid in program.proc_ids() {
        if !cg.is_reachable(pid) {
            continue;
        }
        for site in jfs.sites(pid) {
            if !site.reachable {
                continue;
            }
            for (&slot, jf) in &site.jfs {
                let Some(&target) = node_of.get(&(site.callee, slot)) else {
                    continue;
                };
                let app = apps.len();
                for support in jf.support() {
                    if let Some(&src) = node_of.get(&(pid, support)) {
                        uses[src].push(app);
                    }
                }
                apps.push(JfApp {
                    caller: pid,
                    jf: jf.clone(),
                    target,
                });
            }
        }
    }

    // ---- sparse worklist over applications --------------------------------
    let mut queued = vec![false; apps.len()];
    let mut work: VecDeque<usize> = (0..apps.len()).collect();
    queued.iter_mut().for_each(|q| *q = true);

    let mut evaluations = 0usize;
    while let Some(a) = work.pop_front() {
        if !budget.checkpoint(Phase::Solver, 1) {
            budget.record_degradation(Phase::Solver);
            values.fill(LatticeVal::Bottom);
            break;
        }
        queued[a] = false;
        evaluations += 1;
        let app = &apps[a];
        let caller = app.caller;
        let env = |s: Slot| -> LatticeVal {
            node_of
                .get(&(caller, s))
                .map(|&i| values[i])
                .unwrap_or(LatticeVal::Bottom)
        };
        let incoming = app.jf.eval_lattice(&env);
        let old = values[app.target];
        let new = old.meet(incoming);
        if new != old {
            values[app.target] = new;
            for &dep in &uses[app.target] {
                if !queued[dep] {
                    queued[dep] = true;
                    work.push_back(dep);
                }
            }
        }
    }

    // ---- package as ValSets ----------------------------------------------
    let mut vals: Vec<BTreeMap<Slot, LatticeVal>> = vec![BTreeMap::new(); program.procs.len()];
    for (i, &(pid, slot)) in nodes.iter().enumerate() {
        vals[pid.index()].insert(slot, values[i]);
    }
    ValSets::from_parts(vals, evaluations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forward::build_forward_jfs;
    use crate::jump::JumpFunctionKind;
    use crate::retjf::{build_return_jfs, RjfConstEval};
    use crate::solver::solve;
    use ipcp_analysis::{augment_global_vars, compute_modref, ModKills};
    use ipcp_ir::compile_to_ir;

    fn both(src: &str, kind: JumpFunctionKind) -> (Program, ValSets, ValSets) {
        let mut program = compile_to_ir(src).expect("compiles");
        let cg = CallGraph::new(&program);
        let modref = compute_modref(&program, &cg);
        augment_global_vars(&mut program, &modref);
        let cg = CallGraph::new(&program);
        let kills = ModKills::new(&program, &modref);
        let rjfs = build_return_jfs(&program, &cg, &kills);
        let eval = RjfConstEval { rjfs: &rjfs };
        let jfs = build_forward_jfs(&program, &cg, &modref, kind, &kills, &eval);
        let a = solve(&program, &cg, &modref, &jfs);
        let b = solve_binding(&program, &cg, &modref, &jfs);
        (program, a, b)
    }

    fn assert_equal_vals(program: &Program, a: &ValSets, b: &ValSets) {
        for pid in program.proc_ids() {
            assert_eq!(
                a.of(pid),
                b.of(pid),
                "VAL({}) differs",
                program.proc(pid).name
            );
        }
    }

    #[test]
    fn agrees_on_chains() {
        let src = "proc c(z)\nprint(z)\nend\nproc b(y)\ncall c(y)\nend\nproc a(x)\ncall b(x)\nend\nmain\ncall a(7)\nend\n";
        for kind in JumpFunctionKind::ALL {
            let (p, a, b) = both(src, kind);
            assert_equal_vals(&p, &a, &b);
        }
    }

    #[test]
    fn agrees_on_conflicts_and_globals() {
        let src = "global g = 3\nproc f(a, b)\nx = g\nend\nmain\ncall f(1, q)\ncall f(1, 2)\nend\n";
        for kind in JumpFunctionKind::ALL {
            let (p, a, b) = both(src, kind);
            assert_equal_vals(&p, &a, &b);
        }
    }

    #[test]
    fn agrees_on_recursion() {
        let src = "proc walk(n, k)\nif n > 0 then\ncall walk(n - 1, k)\nend\nend\nmain\ncall walk(9, 3)\nend\n";
        let (p, a, b) = both(src, JumpFunctionKind::Polynomial);
        assert_equal_vals(&p, &a, &b);
    }

    #[test]
    fn agrees_on_init_pattern() {
        let src = "global n\nproc init()\nn = 64\nend\nproc use0()\nx = n\nend\nmain\ncall init()\ncall use0()\nend\n";
        let (p, a, b) = both(src, JumpFunctionKind::Polynomial);
        assert_equal_vals(&p, &a, &b);
    }

    #[test]
    fn agrees_on_slotless_intermediaries() {
        let src = "proc r(a)\nprint(a)\nend\nproc q()\ncall r(5)\nend\nmain\ncall q()\nend\n";
        let (p, a, b) = both(src, JumpFunctionKind::Literal);
        assert_equal_vals(&p, &a, &b);
    }

    #[test]
    fn unreachable_procs_stay_top() {
        let src = "proc dead(a)\nend\nmain\nprint(1)\nend\n";
        let (p, _, b) = both(src, JumpFunctionKind::Polynomial);
        let dead = p.proc_by_name("dead").unwrap();
        assert_eq!(b.value(dead, Slot::Formal(0)), LatticeVal::Top);
    }

    #[test]
    fn exhausted_budget_lowers_every_node_to_bottom() {
        let src = "proc c(z)\nprint(z)\nend\nproc b(y)\ncall c(y)\nend\nproc a(x)\ncall b(x)\nend\nmain\ncall a(7)\nend\n";
        let mut program = compile_to_ir(src).expect("compiles");
        let cg = CallGraph::new(&program);
        let modref = compute_modref(&program, &cg);
        augment_global_vars(&mut program, &modref);
        let cg = CallGraph::new(&program);
        let kills = ModKills::new(&program, &modref);
        let rjfs = build_return_jfs(&program, &cg, &kills);
        let eval = RjfConstEval { rjfs: &rjfs };
        let jfs = build_forward_jfs(
            &program,
            &cg,
            &modref,
            JumpFunctionKind::Polynomial,
            &kills,
            &eval,
        );
        let full = solve_binding(&program, &cg, &modref, &jfs);
        for fuel in 0..8u64 {
            let budget = Budget::with_fuel(fuel);
            let v = solve_binding_budgeted(&program, &cg, &modref, &jfs, &budget);
            for pid in program.proc_ids() {
                for (&slot, &val) in v.of(pid) {
                    if let LatticeVal::Const(c) = val {
                        assert_eq!(
                            full.value(pid, slot),
                            LatticeVal::Const(c),
                            "degraded run invented a constant at fuel {fuel}"
                        );
                    }
                    if budget.is_exhausted() {
                        assert_eq!(val, LatticeVal::Bottom, "{slot} left optimistic");
                    }
                }
            }
        }
    }

    #[test]
    fn evaluation_count_is_bounded() {
        // Each application re-evaluates at most 1 + 2·|support| times; a
        // pass-through chain of length d therefore needs O(d) evaluations.
        let mut src = String::new();
        let depth = 40;
        src.push_str(&format!("proc p{depth}(v)\nprint(v)\nend\n"));
        for i in (1..depth).rev() {
            src.push_str(&format!("proc p{i}(v)\ncall p{}(v)\nend\n", i + 1));
        }
        src.push_str("main\ncall p1(9)\nend\n");
        let (_, _, b) = both(&src, JumpFunctionKind::PassThrough);
        assert!(
            b.iterations() <= 3 * depth,
            "evaluations {} should be linear in depth {depth}",
            b.iterations()
        );
    }
}
