//! Return jump functions (paper §3.2).
//!
//! For each procedure `p` and each slot `x` (by-reference formal, global,
//! or the function result), `R_x^p` approximates `x`'s value on return
//! from `p` as a function of `p`'s entry slots. They are generated in a
//! bottom-up pass over the call graph: the symbolic evaluation of `p`
//! *composes* the already-computed return jump functions of `p`'s callees
//! into `p`'s own exit values ([`RjfComposer`]). Procedures in recursive
//! cycles use ⊥ for their same-cycle callees (FORTRAN has no recursion;
//! Minifor allows it and stays sound).
//!
//! During *forward* jump function generation the paper evaluates each
//! return jump function with intraprocedural information and keeps only
//! constants: "any return jump function that cannot be evaluated as
//! constant … is set to ⊥", so "return jump functions that depend on
//! parameters to the calling procedure can never be evaluated as
//! constant". [`RjfConstEval`] implements exactly that behaviour;
//! [`RjfComposer`] (full symbolic composition) is also available as an
//! extension toggle in the driver.

use crate::framework::{run_budgeted_pass, BudgetedProcPass, Rung};
use crate::jump::{JumpFn, JumpFnArena, JumpFnRef, JumpFunctionKind};
use ipcp_analysis::symeval::{symbolic_eval_budgeted, CallSymbolics, Sym, SymEvalOptions};
use ipcp_analysis::{Budget, CallGraph, LatticeVal, Phase, Slot, SlotTable};
use ipcp_ir::{GlobalId, ProcId, Program};
use ipcp_ssa::{build_ssa, KillOracle, SsaTerminator};
use std::collections::BTreeMap;

/// Return jump functions of every procedure, keyed by slot and expressed
/// over the owning procedure's entry slots.
///
/// Storage is arena-flat: every jump function of the table lives in one
/// [`JumpFnArena`] slab, and the per-procedure tables are dense
/// [`SlotTable`]s of [`JumpFnRef`] index handles — two contiguous
/// allocations per procedure instead of a `BTreeMap` of heap nodes.
#[derive(Debug, Clone, Default)]
pub struct ReturnJumpFns {
    arena: JumpFnArena,
    per_proc: Vec<SlotTable<JumpFnRef>>,
}

impl ReturnJumpFns {
    /// An empty table (the "no return jump functions" configuration —
    /// every lookup misses, so every call effect is ⊥).
    pub fn empty(proc_count: usize) -> Self {
        ReturnJumpFns {
            arena: JumpFnArena::new(),
            per_proc: vec![SlotTable::new(); proc_count],
        }
    }

    /// The return jump function of `(p, slot)`, if one was built.
    pub fn get(&self, p: ProcId, slot: Slot) -> Option<&JumpFn> {
        self.per_proc
            .get(p.index())
            .and_then(|m| m.get(&slot))
            .map(|&r| self.arena.get(r))
    }

    /// Iterates over the slots of `p` with return jump functions.
    pub fn slots(&self, p: ProcId) -> impl Iterator<Item = (&Slot, &JumpFn)> {
        self.per_proc[p.index()]
            .iter()
            .map(|(s, &r)| (s, self.arena.get(r)))
    }

    /// Total number of non-⊥ return jump functions.
    pub fn useful_count(&self) -> usize {
        self.per_proc
            .iter()
            .flat_map(|m| m.values())
            .filter(|&&r| !self.arena.get(r).is_bottom())
            .count()
    }

    /// Installs the slot table of `p` (used by the session when it
    /// assembles a table from cached per-procedure pieces).
    pub(crate) fn set_proc(&mut self, p: ProcId, map: BTreeMap<Slot, JumpFn>) {
        self.per_proc[p.index()] = map
            .into_iter()
            .map(|(s, jf)| (s, self.arena.alloc(jf)))
            .collect();
    }

    /// Records table-shape counters (slot totals per jump-function form)
    /// into the observability sink. No-op when tracing is disabled.
    pub fn emit_counters(&self, sink: &dyn ipcp_obs::ObsSink) {
        if !sink.enabled() {
            return;
        }
        let (mut consts, mut pass, mut exprs, mut bottoms) = (0u64, 0u64, 0u64, 0u64);
        for jf in self
            .per_proc
            .iter()
            .flat_map(|m| m.values())
            .map(|&r| self.arena.get(r))
        {
            match jf {
                JumpFn::Const(_) => consts += 1,
                JumpFn::PassThrough(_) => pass += 1,
                JumpFn::Expr(_) => exprs += 1,
                JumpFn::Bottom => bottoms += 1,
            }
        }
        sink.count("rjf.useful", self.useful_count() as u64);
        sink.count("rjf.const", consts);
        sink.count("rjf.pass_through", pass);
        sink.count("rjf.expr", exprs);
        sink.count("rjf.bottom", bottoms);
    }
}

/// Builds return jump functions for all procedures, bottom-up over the
/// call-graph condensation, with default symbolic-evaluation options.
pub fn build_return_jfs(
    program: &Program,
    cg: &CallGraph,
    kills: &dyn KillOracle,
) -> ReturnJumpFns {
    build_return_jfs_with(program, cg, kills, SymEvalOptions::default())
}

/// Builds return jump functions with explicit symbolic-evaluation options
/// (e.g. the gated-single-assignment extension).
pub fn build_return_jfs_with(
    program: &Program,
    cg: &CallGraph,
    kills: &dyn KillOracle,
    options: SymEvalOptions,
) -> ReturnJumpFns {
    build_return_jfs_budgeted(program, cg, kills, options, &Budget::unlimited())
}

/// Builds return jump functions under a fuel budget. Each procedure
/// draws one unit before its SSA construction and symbolic evaluation;
/// on exhaustion the procedure's table stays empty — every lookup misses
/// and call effects degrade to ⊥, exactly the "no return jump functions"
/// configuration.
///
/// This is the bottom-up construction expressed as a single-rung
/// [`BudgetedProcPass`]: the SCC condensation supplies the build order
/// (members of a recursive SCC see ⊥ for in-SCC callees, whose entries
/// are still empty when processed), and the generic driver supplies the
/// fuel checkpoints and degradation records.
pub fn build_return_jfs_budgeted(
    program: &Program,
    cg: &CallGraph,
    kills: &dyn KillOracle,
    options: SymEvalOptions,
    budget: &Budget,
) -> ReturnJumpFns {
    let mut rjfs = ReturnJumpFns::empty(program.procs.len());
    let pass = RjfPass {
        program,
        cg,
        kills,
        options,
    };
    run_budgeted_pass(&pass, &mut rjfs, budget);
    rjfs
}

/// The return-jump-function construction as a problem definition for
/// [`run_budgeted_pass`]: one rung of unit weight per procedure, the
/// bottom-up SCC order, and the empty table as the exhaustion fallback.
struct RjfPass<'a> {
    program: &'a Program,
    cg: &'a CallGraph,
    kills: &'a dyn KillOracle,
    options: SymEvalOptions,
}

impl BudgetedProcPass for RjfPass<'_> {
    type Acc = ReturnJumpFns;
    type Kind = ();

    fn phase(&self) -> Phase {
        Phase::ReturnJf
    }

    fn order(&self) -> Vec<ProcId> {
        self.cg.sccs().iter().flatten().copied().collect()
    }

    fn ladder(&self) -> Vec<Rung<()>> {
        vec![Rung {
            kind: (),
            name: "rjf".to_string(),
            weight: 1,
        }]
    }

    fn estimate(&self, _p: ProcId) -> u64 {
        1
    }

    fn build(&self, acc: &mut ReturnJumpFns, p: ProcId, _kind: (), budget: &Budget) {
        let ssa = build_ssa(self.program, self.program.proc(p), self.kills);
        let map = build_rjf_for_proc(self.program, p, acc, &ssa, self.options, budget);
        acc.set_proc(p, map);
    }

    fn fallback(&self, _acc: &mut ReturnJumpFns, _p: ProcId) {
        // The entry stays empty: every lookup misses, call effects are ⊥.
    }

    fn tracks_ladder(&self) -> bool {
        false
    }
}

/// Builds the return-jump-function table of one procedure from its
/// (prebuilt) SSA form and the tables of its already-processed callees.
/// Exposed at crate level so the session can drive the bottom-up pass
/// with cached SSA artifacts.
pub(crate) fn build_rjf_for_proc(
    program: &Program,
    pid: ProcId,
    rjfs: &dyn RjfSource,
    ssa: &ipcp_ssa::SsaProc,
    options: SymEvalOptions,
    budget: &Budget,
) -> BTreeMap<Slot, JumpFn> {
    let proc = program.proc(pid);
    let composer = SourceComposer { src: rjfs };
    let sym = symbolic_eval_budgeted(proc, ssa, &composer, options, budget);

    // Meet the exit snapshots of every reachable return.
    let mut merged: BTreeMap<ipcp_ir::VarId, Option<Sym>> = BTreeMap::new();
    let mut result: Option<Sym> = None;
    let mut saw_return = false;
    for (_, blk) in ssa.rpo_blocks() {
        let SsaTerminator::Return { value, exit } = &blk.term else {
            continue;
        };
        saw_return = true;
        for &(var, name) in exit {
            let v = sym.of(name).clone();
            merged
                .entry(var)
                .and_modify(|acc| {
                    if let Some(prev) = acc {
                        if *prev != v {
                            *acc = None; // differing exit values ⇒ ⊥
                        }
                    }
                })
                .or_insert(Some(v));
        }
        if let Some(op) = value {
            let v = sym.of_operand(*op);
            match &result {
                None => result = Some(v),
                Some(prev) if *prev != v => result = Some(Sym::Bottom),
                _ => {}
            }
        }
    }

    let mut map = BTreeMap::new();
    if !saw_return {
        // The procedure never returns normally; leave everything ⊥ (miss).
        return map;
    }
    for (var, acc) in merged {
        let decl = proc.var(var);
        if decl.ty != ipcp_lang::ast::Ty::INT {
            continue;
        }
        let Some(slot) = ipcp_analysis::slot_of_var(proc, var) else {
            continue;
        };
        let jf = match acc {
            Some(s) => JumpFn::from_sym(JumpFunctionKind::Polynomial, &s),
            None => JumpFn::Bottom,
        };
        map.insert(slot, jf);
    }
    if let Some(r) = result {
        map.insert(
            Slot::Result,
            JumpFn::from_sym(JumpFunctionKind::Polynomial, &r),
        );
    }
    map
}

/// A return-jump-function lookup source: the complete shared table, or a
/// copy-free SCC overlay layered on top of it.
pub(crate) trait RjfSource: Sync {
    /// The return jump function of `(p, slot)`, if one was built.
    fn lookup(&self, p: ProcId, slot: Slot) -> Option<&JumpFn>;
}

impl RjfSource for ReturnJumpFns {
    fn lookup(&self, p: ProcId, slot: Slot) -> Option<&JumpFn> {
        self.get(p, slot)
    }
}

/// A recursive SCC's private view of the table under construction:
/// entries of members already processed this SCC shadow the shared base.
/// Lookups scan the (SCC-sized) local list first — the base is never
/// cloned, so building an SCC costs O(SCC), not O(program).
pub(crate) struct SccOverlay<'a> {
    base: &'a ReturnJumpFns,
    local: Vec<(ProcId, BTreeMap<Slot, JumpFn>)>,
}

impl<'a> SccOverlay<'a> {
    /// An overlay with no local entries yet.
    pub(crate) fn new(base: &'a ReturnJumpFns) -> Self {
        SccOverlay {
            base,
            local: Vec::new(),
        }
    }

    /// Records `p`'s freshly built table; later members see it.
    pub(crate) fn push(&mut self, p: ProcId, map: BTreeMap<Slot, JumpFn>) {
        self.local.push((p, map));
    }
}

impl RjfSource for SccOverlay<'_> {
    fn lookup(&self, p: ProcId, slot: Slot) -> Option<&JumpFn> {
        for (member, map) in &self.local {
            if *member == p {
                return map.get(&slot);
            }
        }
        self.base.get(p, slot)
    }
}

/// Full symbolic composition of return jump functions into a caller's
/// value numbering — used while *generating* the caller's own return jump
/// functions ("to expose as many return jump functions as possible in the
/// calling procedure", §3.2).
#[derive(Debug, Clone, Copy)]
pub struct RjfComposer<'a> {
    /// The return jump functions computed so far.
    pub rjfs: &'a ReturnJumpFns,
}

impl CallSymbolics for RjfComposer<'_> {
    fn slot_after_call(
        &self,
        callee: ProcId,
        slot: Slot,
        arg_sym: &dyn Fn(u32) -> Sym,
        global_sym: &dyn Fn(GlobalId) -> Sym,
    ) -> Sym {
        compose_after_call(self.rjfs, callee, slot, arg_sym, global_sym)
    }
}

/// [`RjfComposer`] over any [`RjfSource`] — the crate-internal face used
/// by the bottom-up builder, where a recursive SCC composes against its
/// overlay instead of a clone of the whole table.
struct SourceComposer<'a> {
    src: &'a dyn RjfSource,
}

impl CallSymbolics for SourceComposer<'_> {
    fn slot_after_call(
        &self,
        callee: ProcId,
        slot: Slot,
        arg_sym: &dyn Fn(u32) -> Sym,
        global_sym: &dyn Fn(GlobalId) -> Sym,
    ) -> Sym {
        compose_after_call(self.src, callee, slot, arg_sym, global_sym)
    }
}

/// The composition shared by both composer fronts: substitute the call's
/// argument and global symbolics into the callee's return jump function.
fn compose_after_call(
    src: &dyn RjfSource,
    callee: ProcId,
    slot: Slot,
    arg_sym: &dyn Fn(u32) -> Sym,
    global_sym: &dyn Fn(GlobalId) -> Sym,
) -> Sym {
    let Some(jf) = src.lookup(callee, slot) else {
        return Sym::Bottom;
    };
    if let Some(c) = jf.as_const() {
        return Sym::constant(c);
    }
    let Some(expr) = jf.to_expr() else {
        return Sym::Bottom;
    };
    let substituted = expr.subst(&|s| match s {
        Slot::Formal(k) => arg_sym(k).as_expr().cloned(),
        Slot::Global(g) => global_sym(g).as_expr().cloned(),
        Slot::Result => None,
    });
    match substituted {
        Some(e) => Sym::Expr(e),
        None => Sym::Bottom,
    }
}

/// The paper's forward-generation evaluation: a return jump function
/// contributes only when it evaluates to a *constant* from the values
/// known at the call site; anything symbolic is ⊥.
#[derive(Debug, Clone, Copy)]
pub struct RjfConstEval<'a> {
    /// The completed return jump function table.
    pub rjfs: &'a ReturnJumpFns,
}

impl CallSymbolics for RjfConstEval<'_> {
    fn slot_after_call(
        &self,
        callee: ProcId,
        slot: Slot,
        arg_sym: &dyn Fn(u32) -> Sym,
        global_sym: &dyn Fn(GlobalId) -> Sym,
    ) -> Sym {
        let Some(jf) = self.rjfs.get(callee, slot) else {
            return Sym::Bottom;
        };
        if let Some(c) = jf.as_const() {
            return Sym::constant(c);
        }
        let Some(expr) = jf.to_expr() else {
            return Sym::Bottom;
        };
        let value = expr.eval(&|s| match s {
            Slot::Formal(k) => arg_sym(k).as_const(),
            Slot::Global(g) => global_sym(g).as_const(),
            Slot::Result => None,
        });
        match value {
            Some(c) => Sym::constant(c),
            None => Sym::Bottom,
        }
    }
}

/// Lattice-level return-jump-function evaluation, used when SCCP needs
/// call effects (substitution counting and dead-code elimination).
#[derive(Debug, Clone, Copy)]
pub struct RjfLattice<'a> {
    /// The completed return jump function table.
    pub rjfs: &'a ReturnJumpFns,
}

impl ipcp_analysis::CallLattice for RjfLattice<'_> {
    fn slot_after_call(
        &self,
        callee: ProcId,
        slot: Slot,
        arg: &dyn Fn(u32) -> LatticeVal,
        global: &dyn Fn(GlobalId) -> LatticeVal,
    ) -> LatticeVal {
        let Some(jf) = self.rjfs.get(callee, slot) else {
            return LatticeVal::Bottom;
        };
        jf.eval_lattice(&|s| match s {
            Slot::Formal(k) => arg(k),
            Slot::Global(g) => global(g),
            Slot::Result => LatticeVal::Bottom,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcp_analysis::{augment_global_vars, compute_modref, ModKills};
    use ipcp_ir::compile_to_ir;

    fn build(src: &str) -> (Program, ReturnJumpFns) {
        let mut program = compile_to_ir(src).expect("compiles");
        let cg = CallGraph::new(&program);
        let modref = compute_modref(&program, &cg);
        augment_global_vars(&mut program, &modref);
        let cg = CallGraph::new(&program);
        let kills = ModKills::new(&program, &modref);
        let rjfs = build_return_jfs(&program, &cg, &kills);
        (program, rjfs)
    }

    fn rjf_of(program: &Program, rjfs: &ReturnJumpFns, proc: &str, slot: Slot) -> JumpFn {
        let pid = program.proc_by_name(proc).unwrap();
        rjfs.get(pid, slot).cloned().unwrap_or(JumpFn::Bottom)
    }

    #[test]
    fn constant_assignment_gives_constant_rjf() {
        let (p, r) = build("proc init(x)\nx = 42\nend\nmain\ncall init(q)\nprint(q)\nend\n");
        assert_eq!(rjf_of(&p, &r, "init", Slot::Formal(0)).as_const(), Some(42));
    }

    #[test]
    fn unmodified_formal_gives_identity_rjf() {
        let (p, r) = build("proc f(x, y)\ny = 1\nend\nmain\ncall f(a, b)\nend\n");
        let jf = rjf_of(&p, &r, "f", Slot::Formal(0));
        assert_eq!(jf.to_expr().and_then(|e| e.as_var()), Some(Slot::Formal(0)));
    }

    #[test]
    fn symbolic_rjf_over_own_formals() {
        let (p, r) = build("proc f(x, y)\ny = x * 2 + 1\nend\nmain\ncall f(3, b)\nprint(b)\nend\n");
        let jf = rjf_of(&p, &r, "f", Slot::Formal(1));
        let e = jf.to_expr().expect("expression");
        assert_eq!(e.eval(&|_| Some(3)), Some(7));
    }

    #[test]
    fn global_initialization_rjf() {
        let (p, r) = build("global n\nglobal m\nproc init()\nn = 10\nm = 20\nend\nmain\ncall init()\nprint(n + m)\nend\n");
        assert_eq!(
            rjf_of(&p, &r, "init", Slot::Global(GlobalId(0))).as_const(),
            Some(10)
        );
        assert_eq!(
            rjf_of(&p, &r, "init", Slot::Global(GlobalId(1))).as_const(),
            Some(20)
        );
    }

    #[test]
    fn function_result_rjf() {
        let (p, r) = build("func sq(x)\nreturn x * x\nend\nmain\ny = sq(4)\nprint(y)\nend\n");
        let jf = rjf_of(&p, &r, "sq", Slot::Result);
        assert_eq!(jf.to_expr().unwrap().eval(&|_| Some(4)), Some(16));
    }

    #[test]
    fn conflicting_exits_are_bottom() {
        let src =
            "proc f(x, c)\nif c then\nx = 1\nelse\nx = 2\nend\nend\nmain\ncall f(a, b)\nend\n";
        let (p, r) = build(src);
        assert!(rjf_of(&p, &r, "f", Slot::Formal(0)).is_bottom());
    }

    #[test]
    fn agreeing_exits_merge() {
        let src =
            "proc f(x, c)\nif c then\nx = 5\nreturn\nend\nx = 5\nend\nmain\ncall f(a, b)\nend\n";
        let (p, r) = build(src);
        assert_eq!(rjf_of(&p, &r, "f", Slot::Formal(0)).as_const(), Some(5));
    }

    #[test]
    fn composition_chains_bottom_up() {
        // inner sets g = 7; outer calls inner; outer's RJF for g is 7.
        let src = "global g\nproc inner()\ng = 7\nend\nproc outer()\ncall inner()\nend\nmain\ncall outer()\nprint(g)\nend\n";
        let (p, r) = build(src);
        assert_eq!(
            rjf_of(&p, &r, "inner", Slot::Global(GlobalId(0))).as_const(),
            Some(7)
        );
        assert_eq!(
            rjf_of(&p, &r, "outer", Slot::Global(GlobalId(0))).as_const(),
            Some(7)
        );
    }

    #[test]
    fn composition_substitutes_arguments() {
        // inner doubles its arg into g; outer passes its own formal + 1.
        let src = "global g\nproc inner(x)\ng = x * 2\nend\nproc outer(y)\ncall inner(y + 1)\nend\nmain\ncall outer(4)\nprint(g)\nend\n";
        let (p, r) = build(src);
        let jf = rjf_of(&p, &r, "outer", Slot::Global(GlobalId(0)));
        let e = jf.to_expr().expect("composed");
        // g on return from outer(y) = (y + 1) * 2.
        assert_eq!(e.eval(&|_| Some(4)), Some(10));
    }

    #[test]
    fn recursion_is_conservative() {
        let src = "global acc\nproc walk(n)\nif n > 0 then\nacc = n\ncall walk(n - 1)\nend\nend\nmain\ncall walk(3)\nend\n";
        let (p, r) = build(src);
        assert!(rjf_of(&p, &r, "walk", Slot::Global(GlobalId(0))).is_bottom());
    }

    #[test]
    fn loops_inside_make_bottom() {
        let src = "proc f(x)\nx = 0\ndo i = 1, 3\nx = x + 1\nend\nend\nmain\ncall f(a)\nend\n";
        let (p, r) = build(src);
        assert!(rjf_of(&p, &r, "f", Slot::Formal(0)).is_bottom());
    }

    #[test]
    fn const_eval_mode_keeps_constants_only() {
        let (p, r) = build("proc f(x, y)\ny = x + 1\nend\nmain\ncall f(a, b)\nend\n");
        let pid = p.proc_by_name("f").unwrap();
        let eval = RjfConstEval { rjfs: &r };
        // Constant argument ⇒ constant effect.
        let got = eval.slot_after_call(pid, Slot::Formal(1), &|_| Sym::constant(9), &|_| {
            Sym::Bottom
        });
        assert_eq!(got.as_const(), Some(10));
        // Symbolic argument ⇒ ⊥ (the paper's limitation).
        let got = eval.slot_after_call(
            pid,
            Slot::Formal(1),
            &|_| Sym::Expr(ipcp_analysis::SymExpr::var(Slot::Formal(0))),
            &|_| Sym::Bottom,
        );
        assert!(got.is_bottom());
    }

    #[test]
    fn composer_mode_keeps_symbolic_results() {
        let (p, r) = build("proc f(x, y)\ny = x + 1\nend\nmain\ncall f(a, b)\nend\n");
        let pid = p.proc_by_name("f").unwrap();
        let comp = RjfComposer { rjfs: &r };
        let got = comp.slot_after_call(
            pid,
            Slot::Formal(1),
            &|_| Sym::Expr(ipcp_analysis::SymExpr::var(Slot::Formal(0))),
            &|_| Sym::Bottom,
        );
        let e = got.as_expr().expect("symbolic composition");
        assert_eq!(e.eval(&|_| Some(4)), Some(5));
    }

    #[test]
    fn lattice_mode() {
        use LatticeVal::*;
        let (p, r) = build("proc f(x, y)\ny = x + 1\nend\nmain\ncall f(a, b)\nend\n");
        let pid = p.proc_by_name("f").unwrap();
        let lat = RjfLattice { rjfs: &r };
        use ipcp_analysis::CallLattice as _;
        assert_eq!(
            lat.slot_after_call(pid, Slot::Formal(1), &|_| Const(1), &|_| Bottom),
            Const(2)
        );
        assert_eq!(
            lat.slot_after_call(pid, Slot::Formal(1), &|_| Bottom, &|_| Bottom),
            Bottom
        );
        assert_eq!(
            lat.slot_after_call(pid, Slot::Formal(1), &|_| Top, &|_| Bottom),
            Top
        );
    }

    #[test]
    fn empty_table_misses() {
        let (p, _) = build("proc f(x)\nx = 1\nend\nmain\ncall f(a)\nend\n");
        let empty = ReturnJumpFns::empty(p.procs.len());
        assert!(empty.get(ipcp_ir::ProcId(0), Slot::Formal(0)).is_none());
        assert_eq!(empty.useful_count(), 0);
    }

    #[test]
    fn useful_count_counts_non_bottom() {
        let (p, r) = build("proc f(x)\nx = 1\nend\nmain\ncall f(a)\nend\n");
        let _ = p;
        assert!(r.useful_count() >= 1);
    }

    #[test]
    fn exhausted_budget_leaves_tables_empty() {
        let src = "proc init(x)\nx = 42\nend\nmain\ncall init(q)\nprint(q)\nend\n";
        let mut program = compile_to_ir(src).unwrap();
        let cg = CallGraph::new(&program);
        let modref = compute_modref(&program, &cg);
        augment_global_vars(&mut program, &modref);
        let cg = CallGraph::new(&program);
        let kills = ModKills::new(&program, &modref);
        let budget = Budget::with_fuel(0);
        let rjfs =
            build_return_jfs_budgeted(&program, &cg, &kills, SymEvalOptions::default(), &budget);
        assert_eq!(rjfs.useful_count(), 0, "every lookup misses (⊥)");
        assert!(budget.report().degradations[&Phase::ReturnJf] > 0);
    }
}
