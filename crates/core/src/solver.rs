//! The interprocedural propagation phase (paper §2, §4.1).
//!
//! A worklist iteration over the call graph: each procedure's `VAL` set
//! maps its slots (formals + transitively-touched globals) to lattice
//! values, initialized optimistically to ⊤; `main`'s globals are seeded
//! from their compile-time initializers (uninitialized globals are ⊥,
//! like FORTRAN's undefined values). Processing a procedure evaluates the
//! jump functions at each of its (reachable) call sites against its
//! current `VAL` and meets the results into the callees. The lattice has
//! bounded depth (every value lowers at most twice), so the iteration
//! terminates; the paper reports the same scheme "converged quickly".

use crate::forward::ForwardJumpFns;
use crate::framework::{solve_value_contexts, DataflowProblem, EdgeSink, EngineOutcome};
use ipcp_analysis::{Budget, CallGraph, LatticeVal, ModRefInfo, Slot, SlotTable};
use ipcp_ir::{ProcId, Program, VarKind};
use std::collections::BTreeMap;

/// The solver's result: per-procedure `VAL` sets, stored as dense
/// [`SlotTable`]s (ascending slot order, as the maps they replaced).
#[derive(Debug, Clone)]
pub struct ValSets {
    vals: Vec<SlotTable<LatticeVal>>,
    iterations: usize,
    pruned: usize,
}

impl ValSets {
    /// The `VAL` set of `p`.
    pub fn of(&self, p: ProcId) -> &SlotTable<LatticeVal> {
        &self.vals[p.index()]
    }

    /// Value of one slot (⊤ when the slot is untracked).
    pub fn value(&self, p: ProcId, slot: Slot) -> LatticeVal {
        self.vals[p.index()]
            .get(&slot)
            .copied()
            .unwrap_or(LatticeVal::Top)
    }

    /// `CONSTANTS(p)`: the slots with known constant entry values.
    pub fn constants(&self, p: ProcId) -> BTreeMap<Slot, i64> {
        self.vals[p.index()]
            .iter()
            .filter_map(|(s, v)| v.as_const().map(|c| (*s, c)))
            .collect()
    }

    /// Number of worklist steps taken (a cost proxy: procedure visits for
    /// the call-graph solver, jump-function evaluations for the
    /// binding-graph solver).
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Call edges pruned as infeasible by conditional propagation
    /// (always 0 for the unconditional solvers).
    pub fn pruned_call_edges(&self) -> usize {
        self.pruned
    }

    /// Assembles a result (used by the alternative solver formulations).
    pub(crate) fn from_parts(vals: Vec<BTreeMap<Slot, LatticeVal>>, iterations: usize) -> ValSets {
        ValSets {
            vals: vals.into_iter().map(SlotTable::from_map).collect(),
            iterations,
            pruned: 0,
        }
    }

    /// Assembles a result from a generic-engine outcome.
    pub(crate) fn from_engine(outcome: EngineOutcome<LatticeVal>) -> ValSets {
        ValSets {
            vals: outcome.contexts,
            iterations: outcome.iterations,
            pruned: outcome.pruned_edges,
        }
    }
}

/// The paper's interprocedural constant propagation as a
/// [`DataflowProblem`]: the Figure-1 lattice over `VAL` contexts
/// (formals + transitively-touched globals), forward jump functions as
/// the call-edge transfers, and global initializers seeding `main`.
pub(crate) struct ConstProp<'a> {
    pub program: &'a Program,
    pub cg: &'a CallGraph,
    pub modref: &'a ModRefInfo,
    pub jfs: &'a ForwardJumpFns,
}

impl DataflowProblem for ConstProp<'_> {
    type Value = LatticeVal;

    fn top(&self) -> LatticeVal {
        LatticeVal::Top
    }

    fn bottom(&self) -> LatticeVal {
        LatticeVal::Bottom
    }

    fn meet(&self, a: LatticeVal, b: LatticeVal) -> LatticeVal {
        a.meet(b)
    }

    fn missing_value(&self) -> LatticeVal {
        LatticeVal::Bottom
    }

    fn context_slots(&self, program: &Program, p: ProcId) -> Vec<Slot> {
        self.modref.param_slots(program, p)
    }

    fn root_value(&self, program: &Program, slot: Slot) -> LatticeVal {
        // Global initializers are constants, uninitialized globals are ⊥
        // (FORTRAN-undefined). Main has no formals; anything else stays ⊤.
        match slot {
            Slot::Global(g) => match program.global(g).init {
                Some(c) => LatticeVal::Const(c),
                None => LatticeVal::Bottom,
            },
            _ => LatticeVal::Top,
        }
    }

    fn seeded(&self, p: ProcId) -> bool {
        self.cg.is_reachable(p)
    }

    fn site_count(&self, p: ProcId) -> usize {
        self.jfs.sites(p).len()
    }

    fn site_target(&self, p: ProcId, s: usize) -> Option<ProcId> {
        let site = &self.jfs.sites(p)[s];
        site.reachable.then_some(site.callee)
    }

    fn eval_edge(&self, p: ProcId, s: usize, sink: &mut dyn EdgeSink<LatticeVal>) {
        for (&slot, jf) in &self.jfs.sites(p)[s].jfs {
            let incoming = jf.eval_lattice(&|sl| sink.caller_value(sl));
            sink.meet_into(slot, incoming, jf);
        }
    }

    fn proc_name(&self, p: ProcId) -> &str {
        &self.program.proc(p).name
    }

    fn slot_name(&self, q: ProcId, slot: Slot) -> String {
        crate::report::slot_name(self.program, q, slot)
    }

    fn site_label(&self, p: ProcId, s: usize) -> String {
        let cs = &self.cg.sites(p)[s];
        format!("b{}#{}", cs.block.index(), cs.index)
    }
}

/// Runs the interprocedural propagation.
pub fn solve(
    program: &Program,
    cg: &CallGraph,
    modref: &ModRefInfo,
    jfs: &ForwardJumpFns,
) -> ValSets {
    solve_budgeted(program, cg, modref, jfs, &Budget::unlimited())
}

/// [`solve`] under a fuel budget: each worklist pop costs one unit of
/// [`Phase::Solver`] fuel. On exhaustion the iteration stops and every
/// tracked slot is lowered to ⊥ — an always-sound (if useless) fixpoint.
/// Leaving the optimistic intermediate values in place would be unsound:
/// a slot still at ⊤ or at a constant may not have seen all its call
/// sites yet.
pub fn solve_budgeted(
    program: &Program,
    cg: &CallGraph,
    modref: &ModRefInfo,
    jfs: &ForwardJumpFns,
    budget: &Budget,
) -> ValSets {
    solve_traced(program, cg, modref, jfs, budget, &ipcp_obs::NoopSink)
}

/// [`solve_budgeted`] with every lattice transition reported to `sink`:
/// the moment a slot's value lowers (⊤→c or c/⊤→⊥), a
/// [`ipcp_obs::TransitionEvent`] records the justifying call edge —
/// caller, call site, and the jump function whose evaluation forced the
/// meet. With a disabled sink this *is* `solve_budgeted` (one shared
/// code path), so results and fuel draw are identical bytes.
///
/// This is the [`ConstProp`] problem run through the generic
/// value-context engine ([`crate::framework::solve_value_contexts`]);
/// the bespoke worklist loop it replaced is bit-identical to the
/// engine's.
pub fn solve_traced(
    program: &Program,
    cg: &CallGraph,
    modref: &ModRefInfo,
    jfs: &ForwardJumpFns,
    budget: &Budget,
    sink: &dyn ipcp_obs::ObsSink,
) -> ValSets {
    let problem = ConstProp {
        program,
        cg,
        modref,
        jfs,
    };
    ValSets::from_engine(solve_value_contexts(program, &problem, budget, sink))
}

/// Builds a per-variable entry environment for SCCP from a procedure's
/// `VAL` set (used by substitution counting and complete propagation).
/// Variables without slots (locals, temporaries) are ⊥; ⊤ slots — a
/// procedure never actually invoked — are conservatively ⊥ as well.
pub fn entry_env_of(
    program: &Program,
    p: ProcId,
    vals: &ValSets,
) -> impl Fn(ipcp_ir::VarId) -> LatticeVal {
    let proc = program.proc(p);
    let mut per_var = Vec::with_capacity(proc.vars.len());
    for v in proc.var_ids() {
        let slot = match proc.var(v).kind {
            VarKind::Formal(i) => Some(Slot::Formal(i)),
            VarKind::Global(g) => Some(Slot::Global(g)),
            _ => None,
        };
        let value = match slot.map(|s| vals.value(p, s)) {
            Some(LatticeVal::Const(c)) => LatticeVal::Const(c),
            _ => LatticeVal::Bottom,
        };
        per_var.push(value);
    }
    move |v: ipcp_ir::VarId| {
        per_var
            .get(v.index())
            .copied()
            .unwrap_or(LatticeVal::Bottom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forward::build_forward_jfs;
    use crate::jump::JumpFunctionKind;
    use crate::retjf::{build_return_jfs, RjfConstEval};
    use ipcp_analysis::symeval::NoCallSymbolics;
    use ipcp_analysis::{augment_global_vars, compute_modref, ModKills, Phase};
    use ipcp_ir::compile_to_ir;

    fn run(src: &str, kind: JumpFunctionKind, rjf: bool) -> (Program, ValSets) {
        let mut program = compile_to_ir(src).expect("compiles");
        let cg = CallGraph::new(&program);
        let modref = compute_modref(&program, &cg);
        augment_global_vars(&mut program, &modref);
        let cg = CallGraph::new(&program);
        let kills = ModKills::new(&program, &modref);
        let rjfs = build_return_jfs(&program, &cg, &kills);
        let jfs = if rjf {
            let eval = RjfConstEval { rjfs: &rjfs };
            build_forward_jfs(&program, &cg, &modref, kind, &kills, &eval)
        } else {
            build_forward_jfs(&program, &cg, &modref, kind, &kills, &NoCallSymbolics)
        };
        let vals = solve(&program, &cg, &modref, &jfs);
        (program, vals)
    }

    fn const_of(program: &Program, vals: &ValSets, proc: &str, slot: Slot) -> Option<i64> {
        vals.value(program.proc_by_name(proc).unwrap(), slot)
            .as_const()
    }

    #[test]
    fn single_literal_call() {
        let (p, v) = run(
            "proc f(a)\nend\nmain\ncall f(5)\nend\n",
            JumpFunctionKind::Literal,
            true,
        );
        assert_eq!(const_of(&p, &v, "f", Slot::Formal(0)), Some(5));
    }

    #[test]
    fn conflicting_calls_meet_to_bottom() {
        let src = "proc f(a)\nend\nmain\ncall f(5)\ncall f(6)\nend\n";
        let (p, v) = run(src, JumpFunctionKind::Polynomial, true);
        assert_eq!(
            v.value(p.proc_by_name("f").unwrap(), Slot::Formal(0)),
            LatticeVal::Bottom
        );
    }

    #[test]
    fn agreeing_calls_stay_constant() {
        let src = "proc f(a)\nend\nmain\ncall f(5)\ncall f(2 + 3)\nend\n";
        let (p, v) = run(src, JumpFunctionKind::Polynomial, true);
        assert_eq!(const_of(&p, &v, "f", Slot::Formal(0)), Some(5));
    }

    #[test]
    fn pass_through_chains_constants() {
        // 7 flows main → a → b → c only with pass-through or better.
        let src = "proc c(z)\nend\nproc b(y)\ncall c(y)\nend\nproc a(x)\ncall b(x)\nend\nmain\ncall a(7)\nend\n";
        for (kind, expect) in [
            (JumpFunctionKind::Literal, None),
            (JumpFunctionKind::IntraproceduralConstant, None),
            (JumpFunctionKind::PassThrough, Some(7)),
            (JumpFunctionKind::Polynomial, Some(7)),
        ] {
            let (p, v) = run(src, kind, true);
            assert_eq!(const_of(&p, &v, "c", Slot::Formal(0)), expect, "{kind}");
        }
    }

    #[test]
    fn polynomial_chains_computed_values() {
        let src =
            "proc leaf(z)\nend\nproc mid(x)\ncall leaf(x * x + 1)\nend\nmain\ncall mid(3)\nend\n";
        let (p, v) = run(src, JumpFunctionKind::Polynomial, true);
        assert_eq!(const_of(&p, &v, "leaf", Slot::Formal(0)), Some(10));
        // Pass-through cannot express x*x+1.
        let (p, v) = run(src, JumpFunctionKind::PassThrough, true);
        assert_eq!(const_of(&p, &v, "leaf", Slot::Formal(0)), None);
    }

    #[test]
    fn global_initializers_seed_main() {
        let src = "global n = 11\nproc f()\nx = n\nend\nmain\ncall f()\nend\n";
        let (p, v) = run(src, JumpFunctionKind::PassThrough, true);
        let g = Slot::Global(ipcp_ir::GlobalId(0));
        assert_eq!(const_of(&p, &v, "f", g), Some(11));
    }

    #[test]
    fn uninitialized_globals_are_bottom() {
        let src = "global n\nproc f()\nx = n\nend\nmain\ncall f()\nend\n";
        let (p, v) = run(src, JumpFunctionKind::Polynomial, true);
        let g = Slot::Global(ipcp_ir::GlobalId(0));
        assert_eq!(v.value(p.proc_by_name("f").unwrap(), g), LatticeVal::Bottom);
    }

    #[test]
    fn init_routine_requires_return_jfs() {
        // The ocean pattern: an initialization routine assigns globals,
        // and later calls see them — but only with return jump functions.
        let src = "global n\nproc init()\nn = 64\nend\nproc compute()\nx = n\nend\n\
                   main\ncall init()\ncall compute()\nend\n";
        let g = Slot::Global(ipcp_ir::GlobalId(0));
        let (p, v) = run(src, JumpFunctionKind::Polynomial, true);
        assert_eq!(const_of(&p, &v, "compute", g), Some(64));
        let (p, v) = run(src, JumpFunctionKind::Polynomial, false);
        assert_eq!(
            v.value(p.proc_by_name("compute").unwrap(), g),
            LatticeVal::Bottom
        );
    }

    #[test]
    fn uncalled_procedures_stay_top() {
        let src = "proc dead(a)\nend\nproc live(b)\nend\nmain\ncall live(1)\nend\n";
        let (p, v) = run(src, JumpFunctionKind::Polynomial, true);
        assert_eq!(
            v.value(p.proc_by_name("dead").unwrap(), Slot::Formal(0)),
            LatticeVal::Top
        );
        assert_eq!(const_of(&p, &v, "live", Slot::Formal(0)), Some(1));
        // ⊤ slots are not constants.
        assert!(v.constants(p.proc_by_name("dead").unwrap()).is_empty());
    }

    #[test]
    fn recursion_converges() {
        let src = "proc walk(n, k)\nif n > 0 then\ncall walk(n - 1, k)\nend\nend\nmain\ncall walk(9, 3)\nend\n";
        let (p, v) = run(src, JumpFunctionKind::Polynomial, true);
        let walk = p.proc_by_name("walk").unwrap();
        // n varies (9, n-1), k is invariant 3.
        assert_eq!(v.value(walk, Slot::Formal(0)), LatticeVal::Bottom);
        assert_eq!(v.value(walk, Slot::Formal(1)).as_const(), Some(3));
    }

    #[test]
    fn function_results_propagate_through_rjfs() {
        let src = "func five()\nreturn 5\nend\nproc f(a)\nend\nmain\nx = five()\ncall f(x)\nend\n";
        let (p, v) = run(src, JumpFunctionKind::IntraproceduralConstant, true);
        assert_eq!(const_of(&p, &v, "f", Slot::Formal(0)), Some(5));
        let (p, v) = run(src, JumpFunctionKind::IntraproceduralConstant, false);
        assert_eq!(
            v.value(p.proc_by_name("f").unwrap(), Slot::Formal(0)),
            LatticeVal::Bottom
        );
    }

    #[test]
    fn constants_sets_extracted() {
        let src = "global g = 2\nproc f(a, b)\nx = g\nend\nmain\ncall f(1, q)\nend\n";
        let (p, v) = run(src, JumpFunctionKind::Polynomial, true);
        let f = p.proc_by_name("f").unwrap();
        let consts = v.constants(f);
        assert_eq!(consts.get(&Slot::Formal(0)), Some(&1));
        assert_eq!(
            consts.get(&Slot::Formal(1)),
            None,
            "q is an undefined local → ⊥"
        );
        assert_eq!(consts.get(&Slot::Global(ipcp_ir::GlobalId(0))), Some(&2));
    }

    #[test]
    fn slotless_intermediaries_still_propagate() {
        // q has no formals and touches no globals, so its VAL set never
        // changes — its call sites must still be evaluated.
        let src = "proc r(a)\nprint(a)\nend\nproc q()\ncall r(5)\nend\nmain\ncall q()\nend\n";
        let (p, v) = run(src, JumpFunctionKind::Literal, true);
        assert_eq!(const_of(&p, &v, "r", Slot::Formal(0)), Some(5));
    }

    #[test]
    fn iterations_counted() {
        let (_, v) = run(
            "proc f(a)\nend\nmain\ncall f(1)\nend\n",
            JumpFunctionKind::Literal,
            true,
        );
        assert!(v.iterations() >= 1);
    }

    #[test]
    fn exhausted_budget_lowers_every_slot_to_bottom() {
        let src = "proc c(z)\nend\nproc b(y)\ncall c(y)\nend\nproc a(x)\ncall b(x)\nend\nmain\ncall a(7)\nend\n";
        let mut program = compile_to_ir(src).expect("compiles");
        let cg = CallGraph::new(&program);
        let modref = compute_modref(&program, &cg);
        augment_global_vars(&mut program, &modref);
        let cg = CallGraph::new(&program);
        let kills = ModKills::new(&program, &modref);
        let rjfs = build_return_jfs(&program, &cg, &kills);
        let eval = RjfConstEval { rjfs: &rjfs };
        let jfs = build_forward_jfs(
            &program,
            &cg,
            &modref,
            JumpFunctionKind::Polynomial,
            &kills,
            &eval,
        );
        let full = solve(&program, &cg, &modref, &jfs);
        // Partial budgets never claim a constant the full run disagrees with.
        for fuel in 0..8u64 {
            let budget = Budget::with_fuel(fuel);
            let v = solve_budgeted(&program, &cg, &modref, &jfs, &budget);
            for pid in program.proc_ids() {
                for (&slot, &val) in v.of(pid) {
                    if let LatticeVal::Const(c) = val {
                        assert_eq!(
                            full.value(pid, slot),
                            LatticeVal::Const(c),
                            "degraded run invented a constant at fuel {fuel}"
                        );
                    }
                }
            }
            if budget.is_exhausted() {
                for pid in program.proc_ids() {
                    for (&slot, &val) in v.of(pid) {
                        assert_eq!(val, LatticeVal::Bottom, "{slot} left optimistic");
                    }
                }
                assert!(budget.report().degradations[&Phase::Solver] > 0);
            }
        }
    }

    #[test]
    fn entry_env_maps_vars() {
        let src = "global g = 2\nproc f(a)\nx = g + a\nend\nmain\ncall f(1)\nend\n";
        let (p, v) = run(src, JumpFunctionKind::Polynomial, true);
        let f = p.proc_by_name("f").unwrap();
        let env = entry_env_of(&p, f, &v);
        let proc = p.proc(f);
        for var in proc.var_ids() {
            let val = env(var);
            match proc.var(var).kind {
                VarKind::Formal(0) => assert_eq!(val, LatticeVal::Const(1)),
                VarKind::Global(_) => assert_eq!(val, LatticeVal::Const(2)),
                _ => assert_eq!(val, LatticeVal::Bottom),
            }
        }
    }
}
