//! Procedure-cloning guidance from interprocedural constants.
//!
//! One of the paper's motivating applications (§1): Metzger & Stroud
//! "used interprocedural constants to guide procedure cloning", and
//! found that "goal-directed cloning of procedures based on
//! interprocedural constants can substantially increase the number of
//! interprocedural constants available".
//!
//! This module reports the opportunities such a cloner would act on: a
//! slot whose `VAL` met to ⊥ *only because different call sites supply
//! different constants*. Cloning the procedure per arriving value would
//! make the slot constant inside each clone.

use crate::forward::ForwardJumpFns;
use crate::solver::ValSets;
use ipcp_analysis::{CallGraph, LatticeVal, Slot};
use ipcp_ir::{ProcId, Program};
use std::collections::BTreeMap;

/// A slot that would become constant under per-value procedure cloning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CloneOpportunity {
    /// The procedure to clone.
    pub proc: ProcId,
    /// The slot that would become constant in each clone.
    pub slot: Slot,
    /// Distinct constant values arriving, with how many call sites supply
    /// each.
    pub variants: Vec<(i64, usize)>,
    /// Call sites supplying a non-constant value (these would share one
    /// "generic" clone).
    pub unknown_sites: usize,
}

impl CloneOpportunity {
    /// Number of clones a by-value cloner would create (one per distinct
    /// constant, plus one generic clone if any site is unknown).
    pub fn clone_count(&self) -> usize {
        self.variants.len() + usize::from(self.unknown_sites > 0)
    }
}

/// Finds cloning opportunities: reachable procedures with a ⊥ slot fed by
/// at least two sites of which at least two supply constants (or one
/// constant shared by several sites mixed with unknowns).
pub fn cloning_opportunities(
    program: &Program,
    cg: &CallGraph,
    jfs: &ForwardJumpFns,
    vals: &ValSets,
) -> Vec<CloneOpportunity> {
    // Gather, per (callee, slot), the incoming lattice values.
    let mut incoming: BTreeMap<(ProcId, Slot), (BTreeMap<i64, usize>, usize)> = BTreeMap::new();
    for pid in program.proc_ids() {
        if !cg.is_reachable(pid) {
            continue;
        }
        for site in jfs.sites(pid) {
            if !site.reachable {
                continue;
            }
            for (&slot, jf) in &site.jfs {
                let env = |s: Slot| vals.value(pid, s);
                let v = jf.eval_lattice(&env);
                let entry = incoming.entry((site.callee, slot)).or_default();
                match v {
                    LatticeVal::Const(c) => *entry.0.entry(c).or_default() += 1,
                    LatticeVal::Bottom => entry.1 += 1,
                    // A ⊤ input comes from a never-invoked caller; ignore.
                    LatticeVal::Top => {}
                }
            }
        }
    }

    let mut out = Vec::new();
    for ((proc, slot), (consts, unknown_sites)) in incoming {
        // Only slots that actually met to ⊥ are interesting.
        if vals.value(proc, slot) != LatticeVal::Bottom {
            continue;
        }
        // A cloner needs at least one constant variant, and the situation
        // must actually be resolved by cloning: either ≥2 distinct
        // constants, or ≥1 constant alongside unknown sites.
        let worthwhile = consts.len() >= 2 || (!consts.is_empty() && unknown_sites > 0);
        if !worthwhile {
            continue;
        }
        out.push(CloneOpportunity {
            proc,
            slot,
            variants: consts.into_iter().collect(),
            unknown_sites,
        });
    }
    // Most valuable first: most constant-providing sites.
    out.sort_by_key(|o| {
        let sites: usize = o.variants.iter().map(|&(_, n)| n).sum();
        (std::cmp::Reverse(sites), o.proc, o.slot)
    });
    out
}

/// Applies by-value procedure cloning for the given opportunities
/// (formal-parameter slots only — global-slot cloning would need calling
/// contexts): each constant variant gets a dedicated clone, and every
/// call site whose jump function evaluates to that constant is redirected
/// to it. Returns the transformed program and the number of clones
/// created.
///
/// The transformation is semantics-preserving (clones are exact copies);
/// re-running the analysis afterwards finds strictly more constants when
/// any opportunity existed — Metzger & Stroud's observation.
pub fn apply_cloning(
    program: &Program,
    cg: &CallGraph,
    jfs: &ForwardJumpFns,
    vals: &ValSets,
    opportunities: &[CloneOpportunity],
) -> (Program, usize) {
    use std::collections::HashMap;

    let mut out = program.clone();
    let mut clones_created = 0usize;
    // One cloned slot per procedure (the best opportunity is listed
    // first); (proc, value) → clone ProcId.
    let mut cloned_slot: HashMap<ProcId, Slot> = HashMap::new();
    let mut clone_of: HashMap<(ProcId, i64), ProcId> = HashMap::new();

    for o in opportunities {
        let Slot::Formal(_) = o.slot else { continue };
        cloned_slot.entry(o.proc).or_insert(o.slot);
    }

    // Redirect call sites. Iterate the *original* program's sites; clones
    // appended to `out` only contain calls to original procedures, which
    // we do not redirect again (one level of cloning per application).
    for pid in program.proc_ids() {
        if !cg.is_reachable(pid) {
            continue;
        }
        for (call_site, site_jfs) in cg.sites(pid).iter().zip(jfs.sites(pid)) {
            if !site_jfs.reachable {
                continue;
            }
            let Some(&slot) = cloned_slot.get(&site_jfs.callee) else {
                continue;
            };
            let Some(jf) = site_jfs.jfs.get(&slot) else {
                continue;
            };
            let env = |s: Slot| vals.value(pid, s);
            let LatticeVal::Const(c) = jf.eval_lattice(&env) else {
                continue;
            };
            let clones = &mut clones_created;
            let target = *clone_of.entry((site_jfs.callee, c)).or_insert_with(|| {
                let original = program.proc(site_jfs.callee);
                let mut clone = original.clone();
                let tag = if c < 0 {
                    format!("m{}", c.unsigned_abs())
                } else {
                    c.to_string()
                };
                clone.name = format!("{}__c{}", original.name, tag);
                *clones += 1;
                let id = ProcId::from_index(out.procs.len());
                out.procs.push(clone);
                id
            });
            let block = out.proc_mut(pid).block_mut(call_site.block);
            let ipcp_ir::Instr::Call { callee, .. } = &mut block.instrs[call_site.index] else {
                unreachable!("call site indexes a call instruction");
            };
            *callee = target;
        }
    }
    (out, clones_created)
}

/// Renders opportunities with source names resolved.
pub fn opportunities_to_string(program: &Program, opportunities: &[CloneOpportunity]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if opportunities.is_empty() {
        out.push_str("(no cloning opportunities)\n");
        return out;
    }
    for o in opportunities {
        let name = &program.proc(o.proc).name;
        let slot = crate::report::slot_name(program, o.proc, o.slot);
        let _ = write!(out, "clone `{name}` on {slot}: ");
        for (i, (value, sites)) in o.variants.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{value} ({sites} site(s))");
        }
        if o.unknown_sites > 0 {
            let _ = write!(out, ", non-constant ({} site(s))", o.unknown_sites);
        }
        let _ = writeln!(out, " → {} clones", o.clone_count());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forward::build_forward_jfs;
    use crate::jump::JumpFunctionKind;
    use crate::retjf::{build_return_jfs, RjfConstEval};
    use crate::solver::solve;
    use ipcp_analysis::{augment_global_vars, compute_modref, ModKills};
    use ipcp_ir::compile_to_ir;

    fn opportunities(src: &str) -> (Program, Vec<CloneOpportunity>) {
        let mut program = compile_to_ir(src).expect("compiles");
        let cg = CallGraph::new(&program);
        let modref = compute_modref(&program, &cg);
        augment_global_vars(&mut program, &modref);
        let cg = CallGraph::new(&program);
        let kills = ModKills::new(&program, &modref);
        let rjfs = build_return_jfs(&program, &cg, &kills);
        let eval = RjfConstEval { rjfs: &rjfs };
        let jfs = build_forward_jfs(
            &program,
            &cg,
            &modref,
            JumpFunctionKind::Polynomial,
            &kills,
            &eval,
        );
        let vals = solve(&program, &cg, &modref, &jfs);
        let ops = cloning_opportunities(&program, &cg, &jfs, &vals);
        (program, ops)
    }

    #[test]
    fn two_constant_variants() {
        let src = "proc f(a)\nprint(a)\nend\nmain\ncall f(1)\ncall f(2)\ncall f(2)\nend\n";
        let (program, ops) = opportunities(src);
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].proc, program.proc_by_name("f").unwrap());
        assert_eq!(ops[0].slot, Slot::Formal(0));
        assert_eq!(ops[0].variants, vec![(1, 1), (2, 2)]);
        assert_eq!(ops[0].unknown_sites, 0);
        assert_eq!(ops[0].clone_count(), 2);
        let s = opportunities_to_string(&program, &ops);
        assert!(s.contains("clone `f` on a"), "{s}");
    }

    #[test]
    fn constant_plus_unknown() {
        let src = "proc f(a)\nprint(a)\nend\nmain\nread(x)\ncall f(7)\ncall f(x)\nend\n";
        let (_, ops) = opportunities(src);
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].variants, vec![(7, 1)]);
        assert_eq!(ops[0].unknown_sites, 1);
        assert_eq!(ops[0].clone_count(), 2);
    }

    #[test]
    fn already_constant_slots_not_reported() {
        let src = "proc f(a)\nprint(a)\nend\nmain\ncall f(5)\ncall f(5)\nend\n";
        let (_, ops) = opportunities(src);
        assert!(ops.is_empty(), "{ops:?}");
    }

    #[test]
    fn all_unknown_not_reported() {
        let src = "proc f(a)\nprint(a)\nend\nmain\nread(x)\nread(y)\ncall f(x)\ncall f(y)\nend\n";
        let (_, ops) = opportunities(src);
        assert!(ops.is_empty(), "{ops:?}");
    }

    #[test]
    fn ordering_by_constant_site_count() {
        let src = "\
proc f(a)\nprint(a)\nend\n\
proc g(b)\nprint(b)\nend\n\
main\n\
call f(1)\ncall f(2)\n\
call g(1)\ncall g(2)\ncall g(3)\n\
end\n";
        let (program, ops) = opportunities(src);
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].proc, program.proc_by_name("g").unwrap());
        assert_eq!(ops[0].clone_count(), 3);
    }

    #[test]
    fn apply_cloning_redirects_sites_and_preserves_behaviour() {
        use ipcp_lang::interp::{InterpConfig, Value};
        let src = "proc f(a)\nprint(a * 10)\nend\nmain\ncall f(1)\ncall f(2)\ncall f(2)\nend\n";
        let mut program = compile_to_ir(src).unwrap();
        let cg = CallGraph::new(&program);
        let modref = compute_modref(&program, &cg);
        augment_global_vars(&mut program, &modref);
        let cg = CallGraph::new(&program);
        let kills = ModKills::new(&program, &modref);
        let rjfs = build_return_jfs(&program, &cg, &kills);
        let eval = RjfConstEval { rjfs: &rjfs };
        let jfs = build_forward_jfs(
            &program,
            &cg,
            &modref,
            JumpFunctionKind::Polynomial,
            &kills,
            &eval,
        );
        let vals = solve(&program, &cg, &modref, &jfs);
        let ops = cloning_opportunities(&program, &cg, &jfs, &vals);
        assert_eq!(ops.len(), 1);

        let (cloned, n) = apply_cloning(&program, &cg, &jfs, &vals, &ops);
        assert_eq!(n, 2, "one clone per distinct constant");
        assert_eq!(cloned.procs.len(), program.procs.len() + 2);
        ipcp_ir::validate::validate(&cloned).expect("cloned program validates");

        // Behaviour unchanged.
        let before = ipcp_ir::eval::run(&program, &InterpConfig::default()).unwrap();
        let after = ipcp_ir::eval::run(&cloned, &InterpConfig::default()).unwrap();
        assert_eq!(before.output, after.output);
        assert_eq!(
            after.output,
            vec![Value::Int(10), Value::Int(20), Value::Int(20)]
        );

        // Re-analysis on the cloned program finds MORE constants: each
        // clone's formal is now constant.
        let plain = crate::driver::analyze(&program, &crate::driver::AnalysisConfig::default());
        let recloned = crate::driver::analyze(&cloned, &crate::driver::AnalysisConfig::default());
        assert!(
            recloned.constant_slot_count() > plain.constant_slot_count(),
            "cloning exposes constants: {} vs {}",
            recloned.constant_slot_count(),
            plain.constant_slot_count()
        );
        assert!(recloned.substitutions.total > plain.substitutions.total);
    }

    #[test]
    fn apply_cloning_with_unknown_sites() {
        let src = "proc f(a)\nprint(a)\nend\nmain\nread(x)\ncall f(7)\ncall f(x)\nend\n";
        let mut program = compile_to_ir(src).unwrap();
        let cg = CallGraph::new(&program);
        let modref = compute_modref(&program, &cg);
        augment_global_vars(&mut program, &modref);
        let cg = CallGraph::new(&program);
        let kills = ModKills::new(&program, &modref);
        let rjfs = build_return_jfs(&program, &cg, &kills);
        let eval = RjfConstEval { rjfs: &rjfs };
        let jfs = build_forward_jfs(
            &program,
            &cg,
            &modref,
            JumpFunctionKind::Polynomial,
            &kills,
            &eval,
        );
        let vals = solve(&program, &cg, &modref, &jfs);
        let ops = cloning_opportunities(&program, &cg, &jfs, &vals);
        let (cloned, n) = apply_cloning(&program, &cg, &jfs, &vals, &ops);
        assert_eq!(n, 1, "only the constant site is redirected");
        // The unknown site still calls the original f.
        use ipcp_lang::interp::{InterpConfig, Value};
        let out = ipcp_ir::eval::run(
            &cloned,
            &InterpConfig {
                input: vec![3],
                ..InterpConfig::default()
            },
        )
        .unwrap();
        assert_eq!(out.output, vec![Value::Int(7), Value::Int(3)]);
    }

    #[test]
    fn empty_rendering() {
        let (program, ops) = opportunities("main\nprint(1)\nend\n");
        assert!(opportunities_to_string(&program, &ops).contains("no cloning"));
    }
}
