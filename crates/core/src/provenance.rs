//! Solver provenance: *why* each interprocedural constant holds.
//!
//! The propagation solver (`crate::solver`) computes `VAL(p, slot)` by
//! meeting forward-jump-function evaluations over every reachable call
//! edge. This module reruns one round of the reference pipeline and
//! records, for every slot that ends `Const`, the **justifying edges**:
//! the reachable call sites whose jump functions evaluate to exactly
//! that constant under the final `VAL` sets. By the meet semantics a
//! final `Const` value always has at least one such edge (or, for
//! `main`'s globals, a compile-time initializer seed): a `⊤` edge never
//! contributes and a `⊥`-evaluating edge would have forced the meet to
//! `⊥`.
//!
//! Each edge carries its **representation level** — the weakest forward
//! jump function implementation (Table 2 column) able to express it:
//! `literal` for a constant actual at the call site, `intraprocedural`
//! for a locally derived constant, `pass-through` for a forwarded
//! formal/global, `polynomial` for anything needing symbolic
//! composition. A slot's **transitive level** is the maximum along its
//! justification chain (a pass-through of an intraprocedural constant
//! is still intraprocedural-expressible end to end only if every link
//! is): levels only rise during the fixpoint and are bounded by
//! `polynomial`, so it terminates.
//!
//! The module also decomposes the study's substitution counts (Figure
//! 7/8) by provenance level. The attribution pass replays the exact
//! SCCP walk `crate::subst` counts with ([`for_each_counted_use`] is
//! shared), tracking for every SSA name the set of constant entry slots
//! it was derived from; a counted use is attributed to the maximum
//! ledger level of its dependency slots, or to `local` when it owes
//! nothing to interprocedural propagation. Because walk and inputs are
//! identical, per-level totals sum to the substitution count by
//! construction.

use crate::binding::solve_binding_budgeted;
use crate::driver::{AnalysisConfig, SolverKind};
use crate::forward::{build_forward_jfs_budgeted, ForwardJumpFns};
use crate::jump::{JumpFn, JumpFunctionKind};
use crate::retjf::{
    build_return_jfs_budgeted, ReturnJumpFns, RjfComposer, RjfConstEval, RjfLattice,
};
use crate::solver::{entry_env_of, solve_traced, ValSets};
use crate::subst::for_each_counted_use;
use ipcp_analysis::sccp::{bottom_entry, sccp, SccpConfig, SccpResult};
use ipcp_analysis::symeval::{
    symbolic_eval_with, CallSymbolics, NoCallSymbolics, Sym, SymEvalOptions,
};
use ipcp_analysis::{
    augment_global_vars, compute_modref_budgeted, slot_of_var, Budget, CallGraph, CallLattice,
    LatticeVal, ModKills, PessimisticCalls, Slot,
};
use ipcp_ir::{BlockId, GlobalId, Instr, ProcId, Procedure, Program, VarKind};
use ipcp_obs::{NoopSink, ObsSink, SpanGuard};
use ipcp_ssa::{
    build_ssa, KillOracle, SsaInstr, SsaName, SsaOperand, SsaProc, SsaTerminator, WorstCaseKills,
};
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::sync::Mutex;

/// One reachable call edge that justifies a constant slot value: the
/// site's jump function evaluates to the slot's constant under the
/// caller's final `VAL` set.
#[derive(Debug, Clone)]
pub struct JustifyingEdge {
    /// The calling procedure.
    pub caller: ProcId,
    /// Block containing the call site.
    pub block: BlockId,
    /// Instruction index of the call within the block.
    pub index: usize,
    /// The forward jump function for this `(site, slot)` pair.
    pub jump_fn: JumpFn,
    /// The weakest jump function implementation able to express this
    /// edge (not counting what its support slots themselves needed).
    pub level: JumpFunctionKind,
}

/// The recorded provenance of one constant entry-slot value.
#[derive(Debug, Clone)]
pub struct SlotProvenance {
    /// The propagated constant.
    pub value: i64,
    /// Transitive representation level: the weakest jump function
    /// implementation able to establish this constant end to end.
    pub level: JumpFunctionKind,
    /// Justified by a compile-time global initializer at `main`.
    pub seeded: bool,
    /// Justifying call edges (empty only for pure seeds).
    pub edges: Vec<JustifyingEdge>,
}

/// One constant recovered through a return jump function while building
/// a caller's symbolic values (the chain `explain` reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RjfRecovery {
    /// The callee whose return jump function produced the constant.
    pub callee: ProcId,
    /// The callee slot (formal, global, or result) that was recovered.
    pub slot: Slot,
    /// The recovered constant.
    pub value: i64,
}

/// Substitution counts decomposed by provenance level (the per-level
/// attribution of the study's Figure 7/8 totals).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Attribution {
    /// Uses owing to literal-expressible constants.
    pub literal: usize,
    /// Uses owing to intraprocedural-constant jump functions.
    pub intraprocedural: usize,
    /// Uses owing to pass-through jump functions.
    pub pass_through: usize,
    /// Uses needing polynomial (symbolic) jump functions.
    pub polynomial: usize,
    /// Uses established without interprocedural propagation.
    pub local: usize,
}

impl Attribution {
    /// Sum of all five buckets; equals the substitution total of the
    /// same configuration by construction.
    pub fn total(&self) -> usize {
        self.literal + self.intraprocedural + self.pass_through + self.polynomial + self.local
    }

    /// The bucket for one jump-function level.
    pub fn of_level(&self, level: JumpFunctionKind) -> usize {
        match level {
            JumpFunctionKind::Literal => self.literal,
            JumpFunctionKind::IntraproceduralConstant => self.intraprocedural,
            JumpFunctionKind::PassThrough => self.pass_through,
            JumpFunctionKind::Polynomial => self.polynomial,
        }
    }

    fn bump(&mut self, level: JumpFunctionKind) {
        match level {
            JumpFunctionKind::Literal => self.literal += 1,
            JumpFunctionKind::IntraproceduralConstant => self.intraprocedural += 1,
            JumpFunctionKind::PassThrough => self.pass_through += 1,
            JumpFunctionKind::Polynomial => self.polynomial += 1,
        }
    }
}

/// The provenance ledger of one analysis configuration: every constant
/// slot with its justifying edges, per-caller return-jump-function
/// recovery chains, and the per-level substitution attribution.
#[derive(Debug, Clone)]
pub struct Provenance {
    /// The analyzed (globals-augmented) program the ledger indexes into.
    program: Program,
    /// Per-procedure slot ledger.
    ledger: Vec<BTreeMap<Slot, SlotProvenance>>,
    /// Per-caller constants recovered through return jump functions.
    rjf_chains: Vec<Vec<RjfRecovery>>,
    /// Substitution counts decomposed by provenance level.
    pub attribution: Attribution,
}

/// Builds the provenance ledger for `program` under `config`.
///
/// Runs one round of the reference pipeline with unlimited fuel; the
/// `complete_propagation` flag is ignored (the ledger explains the
/// first-round `VAL` sets, which is exact for every Table 2
/// configuration).
pub fn analyze_provenance(program: &Program, config: &AnalysisConfig) -> Provenance {
    analyze_provenance_obs(program, config, &NoopSink)
}

/// [`analyze_provenance`] with solver lattice transitions and a
/// `provenance` phase span reported to `sink`.
pub fn analyze_provenance_obs(
    program: &Program,
    config: &AnalysisConfig,
    sink: &dyn ObsSink,
) -> Provenance {
    let _span = SpanGuard::enter(sink, "provenance", "phase");
    let budget = Budget::unlimited();
    let mut program = program.clone();
    let cg = CallGraph::new(&program);
    let modref = compute_modref_budgeted(&program, &cg, &budget);
    augment_global_vars(&mut program, &modref);
    let program = program;

    let mod_kills;
    let kills: &dyn KillOracle = if config.mod_info {
        mod_kills = ModKills::new(&program, &modref);
        &mod_kills
    } else {
        &WorstCaseKills
    };
    let sym_options = SymEvalOptions {
        gated_phis: config.gsa,
    };
    let rjfs = if config.return_jump_functions {
        build_return_jfs_budgeted(&program, &cg, kills, sym_options, &budget)
    } else {
        ReturnJumpFns::empty(program.procs.len())
    };
    let rjf_recovery = config.return_jump_functions && config.mod_info;
    let const_eval = RjfConstEval { rjfs: &rjfs };
    let composer = RjfComposer { rjfs: &rjfs };
    let call_sym: &dyn CallSymbolics = if !rjf_recovery {
        &NoCallSymbolics
    } else if config.rjf_full_composition {
        &composer
    } else {
        &const_eval
    };

    // Conditional propagation's feasibility SCCP models calls through
    // the same lattice the driver uses: return-jump-function recovery
    // when available, pessimistic otherwise.
    let rjf_lattice = RjfLattice { rjfs: &rjfs };
    let feas_calls: &dyn CallLattice = if rjf_recovery {
        &rjf_lattice
    } else {
        &PessimisticCalls
    };

    let solved: Option<(ForwardJumpFns, ValSets)> = if config.interprocedural {
        let jfs = build_forward_jfs_budgeted(
            &program,
            &cg,
            &modref,
            config.jump_function,
            kills,
            call_sym,
            sym_options,
            &budget,
        );
        let vals = if config.branch_feasibility {
            // Pruned (infeasible) edges either evaluate away from the
            // final constant — and drop out of the ledger by the exact
            // match below — or agree with it, in which case listing
            // them as justification is harmless.
            crate::cond::solve_cond_traced(
                &program, &cg, &modref, &jfs, kills, feas_calls, &budget, sink,
            )
        } else {
            match config.solver {
                SolverKind::CallGraph => solve_traced(&program, &cg, &modref, &jfs, &budget, sink),
                SolverKind::BindingGraph => {
                    solve_binding_budgeted(&program, &cg, &modref, &jfs, &budget)
                }
            }
        };
        Some((jfs, vals))
    } else {
        None
    };

    let ledger = build_ledger(&program, &cg, solved.as_ref());
    sink.count(
        "provenance.constants",
        ledger.iter().map(BTreeMap::len).sum::<usize>() as u64,
    );

    // Replay each reachable caller's symbolic evaluation with a
    // recording wrapper to capture which callee slots were recovered
    // through return jump functions (the `explain` chain).
    let mut rjf_chains: Vec<Vec<RjfRecovery>> = vec![Vec::new(); program.procs.len()];
    if rjf_recovery {
        for p in program.proc_ids() {
            if !cg.is_reachable(p) {
                continue;
            }
            let recorder = Recording {
                inner: call_sym,
                log: Mutex::new(Vec::new()),
            };
            let proc = program.proc(p);
            let ssa = build_ssa(&program, proc, kills);
            let _ = symbolic_eval_with(proc, &ssa, &recorder, sym_options);
            let mut log = recorder.log.into_inner().expect("recorder lock");
            log.sort_by_key(|r| (r.callee.index(), r.slot, r.value));
            log.dedup();
            rjf_chains[p.index()] = log;
        }
    }

    // Attribution: the exact SCCP + counted-use walk of the counting
    // pass, with constant-entry-slot dependency tracking on top.
    let vals_ref = solved.as_ref().map(|(_, v)| v);
    let rjf_lattice = RjfLattice { rjfs: &rjfs };
    let calls: &dyn CallLattice = if rjf_recovery {
        &rjf_lattice
    } else {
        &PessimisticCalls
    };
    let mut attribution = Attribution::default();
    for pid in program.proc_ids() {
        if !cg.is_reachable(pid) {
            continue;
        }
        let proc = program.proc(pid);
        let ssa = build_ssa(&program, proc, kills);
        let result = match vals_ref {
            Some(v) => {
                let env = entry_env_of(&program, pid, v);
                sccp(
                    proc,
                    &ssa,
                    &SccpConfig {
                        entry_env: &env,
                        calls,
                    },
                )
            }
            None => sccp(
                proc,
                &ssa,
                &SccpConfig {
                    entry_env: &bottom_entry,
                    calls,
                },
            ),
        };
        let deps = const_slot_deps(
            proc,
            pid,
            &ssa,
            &result,
            vals_ref,
            if rjf_recovery { Some(&rjfs) } else { None },
        );
        for_each_counted_use(proc, &ssa, &result, &mut |n| {
            let d = &deps[n.index()];
            if d.is_empty() {
                attribution.local += 1;
            } else {
                let level = d
                    .iter()
                    .filter_map(|t| ledger[pid.index()].get(t))
                    .map(|e| e.level)
                    .max()
                    .unwrap_or(JumpFunctionKind::Polynomial);
                attribution.bump(level);
            }
        });
    }

    Provenance {
        program,
        ledger,
        rjf_chains,
        attribution,
    }
}

/// Builds the slot ledger: entries for every constant slot of every
/// reachable procedure, initializer seeds for `main`'s globals, one
/// pass over all reachable sites for justifying edges, then the
/// transitive-level fixpoint.
fn build_ledger(
    program: &Program,
    cg: &CallGraph,
    solved: Option<&(ForwardJumpFns, ValSets)>,
) -> Vec<BTreeMap<Slot, SlotProvenance>> {
    let mut ledger: Vec<BTreeMap<Slot, SlotProvenance>> =
        vec![BTreeMap::new(); program.procs.len()];
    let Some((jfs, vals)) = solved else {
        return ledger;
    };

    for q in program.proc_ids() {
        if !cg.is_reachable(q) {
            continue;
        }
        for (&slot, lv) in vals.of(q) {
            if let Some(v) = lv.as_const() {
                ledger[q.index()].insert(
                    slot,
                    SlotProvenance {
                        value: v,
                        level: JumpFunctionKind::Literal,
                        seeded: false,
                        edges: Vec::new(),
                    },
                );
            }
        }
    }

    // The solver seeds main's global slots from compile-time
    // initializers; those constants are justified by the seed, not by a
    // call edge (main has no callers).
    let main = program.main;
    for g in program.global_ids() {
        if let Some(init) = program.global(g).init {
            if let Some(entry) = ledger[main.index()].get_mut(&Slot::Global(g)) {
                if entry.value == init {
                    entry.seeded = true;
                }
            }
        }
    }

    for p in program.proc_ids() {
        if !cg.is_reachable(p) {
            continue;
        }
        let sites = cg.sites(p);
        for (i, sjf) in jfs.sites(p).iter().enumerate() {
            if !sjf.reachable {
                continue;
            }
            let q = sjf.callee;
            for (&slot, jf) in &sjf.jfs {
                let Some(value) = ledger[q.index()].get(&slot).map(|e| e.value) else {
                    continue;
                };
                let env = |t: Slot| vals.value(p, t);
                if jf.eval_lattice(&env) == LatticeVal::Const(value) {
                    let level = repr_level(program, p, sites[i].block, sites[i].index, slot, jf);
                    ledger[q.index()]
                        .get_mut(&slot)
                        .expect("entry present")
                        .edges
                        .push(JustifyingEdge {
                            caller: p,
                            block: sites[i].block,
                            index: sites[i].index,
                            jump_fn: jf.clone(),
                            level,
                        });
                }
            }
        }
    }

    // Transitive levels: a chain is only as cheap as its weakest link.
    // Levels start at `literal` and only rise, bounded by `polynomial`.
    let mut changed = true;
    while changed {
        changed = false;
        for q in program.proc_ids() {
            let slots: Vec<Slot> = ledger[q.index()].keys().copied().collect();
            for s in slots {
                let entry = &ledger[q.index()][&s];
                let mut level = JumpFunctionKind::Literal;
                for e in &entry.edges {
                    let mut edge_level = e.level;
                    for t in e.jump_fn.support() {
                        if let Some(dep) = ledger[e.caller.index()].get(&t) {
                            edge_level = edge_level.max(dep.level);
                        }
                    }
                    level = level.max(edge_level);
                }
                if level > ledger[q.index()][&s].level {
                    ledger[q.index()].get_mut(&s).expect("entry present").level = level;
                    changed = true;
                }
            }
        }
    }
    ledger
}

/// The weakest forward jump function implementation (Table 2 column)
/// able to express one `(site, slot)` jump function.
fn repr_level(
    program: &Program,
    caller: ProcId,
    block: BlockId,
    index: usize,
    slot: Slot,
    jf: &JumpFn,
) -> JumpFunctionKind {
    match jf {
        JumpFn::Const(_) => {
            // A constant jump function is literal-expressible only when
            // the actual at the call site is itself a literal; constant
            // globals and locally folded actuals need the
            // intraprocedural implementation.
            if let Slot::Formal(k) = slot {
                let instr = &program.proc(caller).block(block).instrs[index];
                if let Instr::Call { args, .. } = instr {
                    if let Some(a) = args.get(k as usize) {
                        if !a.by_ref && a.value.as_const().is_some() {
                            return JumpFunctionKind::Literal;
                        }
                    }
                }
            }
            JumpFunctionKind::IntraproceduralConstant
        }
        JumpFn::PassThrough(_) => JumpFunctionKind::PassThrough,
        JumpFn::Expr(e) => {
            if e.as_const().is_some() {
                JumpFunctionKind::IntraproceduralConstant
            } else if e.as_var().is_some() {
                JumpFunctionKind::PassThrough
            } else {
                JumpFunctionKind::Polynomial
            }
        }
        JumpFn::Bottom => JumpFunctionKind::Polynomial,
    }
}

/// Wraps a [`CallSymbolics`] provider, logging every constant it
/// recovers (the visible effect a return jump function has on a
/// caller's symbolic values).
struct Recording<'a> {
    inner: &'a dyn CallSymbolics,
    log: Mutex<Vec<RjfRecovery>>,
}

impl CallSymbolics for Recording<'_> {
    fn slot_after_call(
        &self,
        callee: ProcId,
        slot: Slot,
        arg_sym: &dyn Fn(u32) -> Sym,
        global_sym: &dyn Fn(GlobalId) -> Sym,
    ) -> Sym {
        let r = self
            .inner
            .slot_after_call(callee, slot, arg_sym, global_sym);
        if let Some(value) = r.as_const() {
            self.log.lock().expect("recorder lock").push(RjfRecovery {
                callee,
                slot,
                value,
            });
        }
        r
    }
}

/// For every SSA name of `proc`, the set of constant entry slots its
/// (constant) value was derived from — empty for names owing nothing to
/// interprocedural propagation. A may-dependency fixpoint over the
/// executable portion of the SCCP result: sets only grow, so it
/// terminates.
fn const_slot_deps(
    proc: &Procedure,
    pid: ProcId,
    ssa: &SsaProc,
    result: &SccpResult,
    vals: Option<&ValSets>,
    rjfs: Option<&ReturnJumpFns>,
) -> Vec<BTreeSet<Slot>> {
    let mut deps: Vec<BTreeSet<Slot>> = vec![BTreeSet::new(); ssa.name_count()];
    let Some(vals) = vals else {
        return deps;
    };
    for (&var, &name) in &ssa.entry_names {
        if let Some(slot) = slot_of_var(proc, var) {
            if vals.value(pid, slot).as_const().is_some() {
                deps[name.index()].insert(slot);
            }
        }
    }

    // Replay the executable CFG edges from the final SCCP values (the
    // lattice only descends, so the final values induce the same edge
    // set the internal fixpoint saw).
    let mut exec: HashSet<(BlockId, BlockId)> = HashSet::new();
    for (b, blk) in ssa.rpo_blocks() {
        if !result.executable[b.index()] {
            continue;
        }
        match &blk.term {
            SsaTerminator::Jump(t) => {
                exec.insert((b, *t));
            }
            SsaTerminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => match result.of_operand(*cond) {
                LatticeVal::Top => {}
                LatticeVal::Const(c) => {
                    exec.insert((b, if c != 0 { *then_bb } else { *else_bb }));
                }
                LatticeVal::Bottom => {
                    exec.insert((b, *then_bb));
                    exec.insert((b, *else_bb));
                }
            },
            SsaTerminator::Return { .. } | SsaTerminator::Trap(_) => {}
        }
    }

    fn operand_deps(op: SsaOperand, deps: &[BTreeSet<Slot>]) -> BTreeSet<Slot> {
        match op {
            SsaOperand::Name(n) => deps[n.index()].clone(),
            SsaOperand::Const(_) | SsaOperand::RealConst(_) => BTreeSet::new(),
        }
    }
    fn grow(deps: &mut [BTreeSet<Slot>], name: SsaName, acc: BTreeSet<Slot>) -> bool {
        let before = deps[name.index()].len();
        deps[name.index()].extend(acc);
        deps[name.index()].len() != before
    }

    let mut changed = true;
    while changed {
        changed = false;
        for (b, blk) in ssa.rpo_blocks() {
            if !result.executable[b.index()] {
                continue;
            }
            for phi in &blk.phis {
                let mut acc = BTreeSet::new();
                for &(pred, arg) in &phi.args {
                    if exec.contains(&(pred, b)) {
                        acc.extend(deps[arg.index()].iter().copied());
                    }
                }
                changed |= grow(&mut deps, phi.dst, acc);
            }
            for instr in &blk.instrs {
                match instr {
                    SsaInstr::Copy { dst, src }
                    | SsaInstr::Unary { dst, src, .. }
                    | SsaInstr::IntToReal { dst, src } => {
                        let acc = operand_deps(*src, &deps);
                        changed |= grow(&mut deps, *dst, acc);
                    }
                    SsaInstr::Binary { dst, lhs, rhs, .. } => {
                        let mut acc = operand_deps(*lhs, &deps);
                        acc.extend(operand_deps(*rhs, &deps));
                        changed |= grow(&mut deps, *dst, acc);
                    }
                    SsaInstr::Call {
                        callee,
                        args,
                        dst,
                        kills,
                        globals_in,
                    } => {
                        // Post-call values come from the callee's return
                        // jump functions; their dependencies are the
                        // caller-side values bound to the RJF's support
                        // slots at this site. Without RJF recovery every
                        // killed name is ⊥ (never counted), so empty
                        // dependencies are exact.
                        let Some(rjfs) = rjfs else { continue };
                        let site_deps = |t: Slot, deps: &[BTreeSet<Slot>]| -> BTreeSet<Slot> {
                            match t {
                                Slot::Formal(j) => args
                                    .get(j as usize)
                                    .and_then(|a| a.value)
                                    .map(|v| operand_deps(v, deps))
                                    .unwrap_or_default(),
                                Slot::Global(g) => globals_in
                                    .iter()
                                    .find(|(var, _)| proc.var(*var).kind == VarKind::Global(g))
                                    .map(|&(_, nm)| deps[nm.index()].clone())
                                    .unwrap_or_default(),
                                Slot::Result => BTreeSet::new(),
                            }
                        };
                        let callee_slot_deps =
                            |cs: Slot, deps: &[BTreeSet<Slot>]| -> BTreeSet<Slot> {
                                let mut acc = BTreeSet::new();
                                if let Some(jf) = rjfs.get(*callee, cs) {
                                    for t in jf.support() {
                                        acc.extend(site_deps(t, deps));
                                    }
                                }
                                acc
                            };
                        for k in kills {
                            let cs = if let Some(j) =
                                args.iter().position(|a| a.by_ref_var == Some(k.var))
                            {
                                Some(Slot::Formal(j as u32))
                            } else if let VarKind::Global(g) = proc.var(k.var).kind {
                                Some(Slot::Global(g))
                            } else {
                                None
                            };
                            let acc = cs.map(|cs| callee_slot_deps(cs, &deps)).unwrap_or_default();
                            changed |= grow(&mut deps, k.name, acc);
                        }
                        if let Some(d) = dst {
                            let acc = callee_slot_deps(Slot::Result, &deps);
                            changed |= grow(&mut deps, *d, acc);
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    deps
}

impl Provenance {
    /// The (globals-augmented) program the ledger describes.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The ledger entries of one procedure.
    pub fn of(&self, p: ProcId) -> &BTreeMap<Slot, SlotProvenance> {
        &self.ledger[p.index()]
    }

    /// Constants recovered through return jump functions while building
    /// `p`'s symbolic values.
    pub fn rjf_chain(&self, p: ProcId) -> &[RjfRecovery] {
        &self.rjf_chains[p.index()]
    }

    /// Total number of ledger entries (constant slots).
    pub fn constant_count(&self) -> usize {
        self.ledger.iter().map(BTreeMap::len).sum()
    }

    /// True when every constant in the ledger has at least one
    /// justifying edge or an initializer seed — the solver never
    /// produced a constant this module cannot explain.
    pub fn fully_justified(&self) -> bool {
        self.ledger
            .iter()
            .flat_map(|m| m.values())
            .all(|e| e.seeded || !e.edges.is_empty())
    }

    /// Renders the provenance of `proc_name`'s constants — all of them,
    /// or just the slot named `param` — as the `ipcp explain` report.
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown procedure, or for a named slot
    /// that holds no interprocedural constant.
    pub fn explain(&self, proc_name: &str, param: Option<&str>) -> Result<String, String> {
        let pid = self
            .program
            .proc_by_name(proc_name)
            .ok_or_else(|| format!("unknown procedure `{proc_name}`"))?;
        let entries: Vec<(Slot, &SlotProvenance)> = self.ledger[pid.index()]
            .iter()
            .filter(|(s, _)| match param {
                Some(p) => crate::report::slot_name(&self.program, pid, **s) == p,
                None => true,
            })
            .map(|(s, e)| (*s, e))
            .collect();
        if entries.is_empty() {
            if let Some(p) = param {
                return Err(format!(
                    "no interprocedural constant for `{p}` in `{proc_name}`"
                ));
            }
        }

        let mut out = String::new();
        if entries.is_empty() {
            out.push_str(&format!("{proc_name}: no interprocedural constants\n"));
        }
        for (slot, e) in &entries {
            out.push_str(&format!(
                "{}.{} = {}  [level: {}]\n",
                proc_name,
                crate::report::slot_name(&self.program, pid, *slot),
                e.value,
                e.level
            ));
            if e.seeded {
                out.push_str("  <- seeded by compile-time global initializer\n");
            }
            for edge in &e.edges {
                let caller = &self.program.proc(edge.caller).name;
                out.push_str(&format!(
                    "  <- {} at b{}#{}: jump function `{}` ({})\n",
                    caller,
                    edge.block.index(),
                    edge.index,
                    edge.jump_fn,
                    edge.level
                ));
                for t in edge.jump_fn.support() {
                    if let Some(dep) = self.ledger[edge.caller.index()].get(&t) {
                        out.push_str(&format!(
                            "     where {}.{} = {} ({})\n",
                            caller,
                            crate::report::slot_name(&self.program, edge.caller, t),
                            dep.value,
                            dep.level
                        ));
                    }
                }
            }
        }
        if param.is_none() {
            let chain = &self.rjf_chains[pid.index()];
            if !chain.is_empty() {
                out.push_str("return-jump-function recoveries:\n");
                for r in chain {
                    out.push_str(&format!(
                        "  {}.{} -> {}\n",
                        self.program.proc(r.callee).name,
                        crate::report::slot_name(&self.program, r.callee, r.slot),
                        r.value
                    ));
                }
            }
        }
        Ok(out)
    }

    /// Renders the per-level attribution table (one line per level plus
    /// `local` and the total).
    pub fn attribution_table(&self) -> String {
        let a = &self.attribution;
        let mut out = String::from("substitutions by provenance level:\n");
        for kind in JumpFunctionKind::ALL {
            out.push_str(&format!(
                "  {:<16} {:>6}\n",
                kind.to_string(),
                a.of_level(kind)
            ));
        }
        out.push_str(&format!("  {:<16} {:>6}\n", "local", a.local));
        out.push_str(&format!("  {:<16} {:>6}\n", "total", a.total()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{analyze, AnalysisConfig};
    use ipcp_ir::compile_to_ir;

    const OCEAN_LIKE: &str = "\
global n\nglobal m\n\
proc init()\nn = 64\nm = 32\nend\n\
proc compute(k)\nx = n\ny = m\nz = k\nprint(x + y + z)\nend\n\
main\ncall init()\ncall compute(8)\nend\n";

    const CHAIN: &str = "\
proc c(z)\nprint(z)\nend\n\
proc b(y)\ncall c(y)\nend\n\
proc a(x)\ncall b(x)\nend\n\
main\ncall a(7)\nend\n";

    fn sweep() -> Vec<AnalysisConfig> {
        let mut configs = Vec::new();
        for kind in JumpFunctionKind::ALL {
            for rjf in [true, false] {
                configs.push(AnalysisConfig {
                    jump_function: kind,
                    return_jump_functions: rjf,
                    ..AnalysisConfig::default()
                });
            }
        }
        configs.push(AnalysisConfig::intraprocedural_baseline());
        configs.push(AnalysisConfig {
            rjf_full_composition: true,
            ..AnalysisConfig::default()
        });
        configs
    }

    #[test]
    fn attribution_sums_to_substitution_total() {
        for src in [OCEAN_LIKE, CHAIN] {
            let program = compile_to_ir(src).expect("compiles");
            for config in sweep() {
                let out = analyze(&program, &config);
                let prov = analyze_provenance(&program, &config);
                assert_eq!(
                    prov.attribution.total(),
                    out.substitutions.total,
                    "{config:?}"
                );
            }
        }
    }

    #[test]
    fn every_constant_is_justified() {
        for src in [OCEAN_LIKE, CHAIN] {
            let program = compile_to_ir(src).expect("compiles");
            for config in sweep() {
                let prov = analyze_provenance(&program, &config);
                assert!(prov.fully_justified(), "{config:?}");
            }
        }
    }

    #[test]
    fn literal_actual_is_attributed_literal() {
        let program = compile_to_ir(CHAIN).expect("compiles");
        let prov = analyze_provenance(&program, &AnalysisConfig::default());
        // a(7) is a literal actual; the chained pass-throughs in b and c
        // raise the transitive level of y and z to pass-through.
        let a = program.proc_by_name("a").expect("a exists");
        let entry = &prov.of(a)[&Slot::Formal(0)];
        assert_eq!(entry.value, 7);
        assert_eq!(entry.level, JumpFunctionKind::Literal);
        let c = program.proc_by_name("c").expect("c exists");
        let entry = &prov.of(c)[&Slot::Formal(0)];
        assert_eq!(entry.value, 7);
        assert_eq!(entry.level, JumpFunctionKind::PassThrough);
        assert!(prov.attribution.pass_through >= 1, "{:?}", prov.attribution);
    }

    #[test]
    fn explain_reports_justifying_edges() {
        let program = compile_to_ir(OCEAN_LIKE).expect("compiles");
        let prov = analyze_provenance(&program, &AnalysisConfig::default());
        let text = prov.explain("compute", Some("k")).expect("explains");
        assert!(text.contains("compute.k = 8"), "{text}");
        assert!(text.contains("<- main"), "{text}");
        let all = prov.explain("compute", None).expect("explains");
        assert!(all.contains("compute.n = 64"), "{all}");
        // main calls init(), whose return jump functions recover the
        // global constants — the chain is reported on the caller.
        let main = prov.explain("main", None).expect("explains");
        assert!(main.contains("return-jump-function recoveries"), "{main}");
        assert!(main.contains("init.n -> 64"), "{main}");
    }

    #[test]
    fn explain_rejects_unknowns() {
        let program = compile_to_ir(OCEAN_LIKE).expect("compiles");
        let prov = analyze_provenance(&program, &AnalysisConfig::default());
        assert!(prov.explain("nosuch", None).is_err());
        assert!(prov.explain("compute", Some("nosuch")).is_err());
    }

    #[test]
    fn seeded_globals_need_no_edges() {
        let program = compile_to_ir("global g = 5\nproc f()\nprint(g)\nend\nmain\ncall f()\nend\n")
            .expect("compiles");
        let prov = analyze_provenance(&program, &AnalysisConfig::default());
        let g = program.global_ids().next().expect("one global");
        let entry = prov.of(program.main).get(&Slot::Global(g));
        if let Some(entry) = entry {
            assert!(entry.seeded);
        }
        assert!(prov.fully_justified());
    }

    #[test]
    fn intraprocedural_baseline_is_all_local() {
        let program = compile_to_ir(OCEAN_LIKE).expect("compiles");
        let prov = analyze_provenance(&program, &AnalysisConfig::intraprocedural_baseline());
        assert_eq!(prov.constant_count(), 0);
        let a = prov.attribution;
        assert_eq!(a.total(), a.local);
    }

    #[test]
    fn attribution_table_renders() {
        let program = compile_to_ir(CHAIN).expect("compiles");
        let prov = analyze_provenance(&program, &AnalysisConfig::default());
        let table = prov.attribution_table();
        assert!(table.contains("pass-through"), "{table}");
        assert!(table.contains("total"), "{table}");
    }
}
